#!/usr/bin/env bash
# Repo-wide verification: vet, build, the full test suite under the race
# detector, then the observability smoke test against a live cmd/serve.
# CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./scripts/smoke"
go run ./scripts/smoke

echo "OK"
