#!/usr/bin/env bash
# Repo-wide verification: vet, build, the full test suite under the race
# detector (including the store/rank crash-injection and corruption tests
# and the cluster coordinator's deterministic fault-schedule tests), an
# ingest + `svq fsck` round trip, then the smoke test, which covers
# durability (ingest -> SIGKILL -> resume -> fsck), observability against a
# live cmd/serve, and the sharded cluster (svq split -> two shards + a
# coordinator -> replica kill/failover -> shard loss -> restart recovery).
# CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "==> rolling-swap chaos property tests (-race, bounded schedules)"
# Concurrent query load through an in-flight rollout with injected reload
# failures, throttles and a crashed replica: answers must match their
# shards' reported generations, mixed merges must be flagged, and the
# rollout must complete or halt with the old generation serving. The fault
# schedules are deterministic, so this is repeatable despite the chaos.
go test -race -run 'TestRolloutChaos' -count=1 ./internal/cluster/

echo "==> tier-invariance property suite (-race, -count=1)"
# The cascade refactor's correctness contract: running the tiered detector
# cascades — any tier mode, any predicate order, online or offline — must
# be bit-identical to running the accurate models alone, and a too-small
# inference budget must degrade (skip-and-flag) instead of erroring. The
# full suite above already runs these, but a dedicated uncached pass keeps
# the contract visible and immune to test caching.
go test -race -count=1 -run 'TierInvariance|InferenceBudget|OfflineIngestIdenticalUnderCascade|ReportUnderConcurrentTierObservation' \
  ./internal/core/ ./internal/rank/ ./internal/plan/

echo "==> allocation bounds (no race: counts skip under the detector)"
# The pooled-scratch aliasing tests above ran under -race; the numeric
# AllocsPerRun bounds skip there (instrumentation inflates counts), so run
# them again without it to enforce the hot path's allocation budget.
go test -run 'AllocsSteadyState' ./internal/core/ ./internal/rank/

echo "==> sqlq fuzz smoke (-fuzztime=5s)"
# A short native-fuzzing burst over the lexer and parser (EXPLAIN included
# via the seed corpus): catches panics and contract violations cheaply.
go test -fuzz '^FuzzParse$' -fuzztime=5s ./internal/sqlq
go test -fuzz '^FuzzLex$' -fuzztime=5s ./internal/sqlq

echo "==> benchmark smoke (-benchtime=1x -benchmem)"
# One iteration of every benchmark: catches bit-rot in the experiment and
# microbenchmark harnesses without paying for real measurements. -benchmem
# keeps allocs/op in the output so hot-path allocation creep is visible in
# every CI log, not only when the AllocsPerRun bounds trip.
go test -run '^$' -bench . -benchtime=1x -benchmem .

echo "==> scaling report + regression gate (BENCH_scaling.json)"
# Appends a git-rev-stamped entry to the BENCH series and fails on a >25%
# peak-throughput drop vs the latest prior entry with a matching config
# (gomaxprocs, fleet size, frames/video, scale, seed); a config change
# skips the comparison instead of comparing apples to oranges.
go run ./cmd/experiments -scale 0.1 -bench-json BENCH_scaling.json -bench-gate 25 >/dev/null

echo "==> ingest + svq fsck round trip"
fscktmp=$(mktemp -d)
trap 'rm -rf "$fscktmp"' EXIT
go run ./cmd/ingest -dataset movies -scale 0.02 -out "$fscktmp/repo" >/dev/null
go run ./cmd/svq fsck "$fscktmp/repo"

echo "==> go run ./scripts/smoke"
go run ./scripts/smoke

echo "OK"
