// Smoke is the end-to-end check CI runs after the unit suites
// (scripts/check.sh). It exercises two surfaces:
//
// Durability: cmd/ingest builds a repository, gets SIGKILLed mid-run, is
// re-run to completion (resuming from its checkpoint), and the result must
// pass `svq fsck`; a deliberately bit-flipped table must then fail it.
//
// Observability: cmd/serve starts with fault injection and the
// freshly-ingested repository, a query runs over plain HTTP (no curl), and
// the whole surface is verified — X-Query-ID header, trace spans in the
// response, the structured JSON log line, a hot /repo/reload, and a
// /metrics scrape that must contain every required metric family, obey
// Prometheus naming conventions, and show the fault machinery's and the
// repository's counters moving.
//
//	go run ./scripts/smoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"
)

const query = `{"sql": "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID) WHERE act='blowing_leaves' AND obj.include('car')"}`

// requiredFamilies must all appear on /metrics after one query.
var requiredFamilies = []string{
	"svqact_queries_inflight",
	"svqact_queries_waiting",
	"svqact_queries_served_total",
	"svqact_queries_rejected_total",
	"svqact_panics_total",
	"svqact_query_duration_seconds",
	"svqact_rank_sorted_accesses_total",
	"svqact_rank_random_accesses_total",
	"svqact_plan_queries_total",
	"svqact_plan_replans_total",
	"svqact_plan_skipped_evaluations_total",
	"svqact_plan_saved_cost_ms_total",
	"svqact_uptime_seconds",
	"svqact_detect_inferences_total",
	"svqact_detect_attempts_total",
	"svqact_detect_retries_total",
	"svqact_detect_faults_total",
	"svqact_detect_flagged_clips_total",
	"svqact_repo_generation",
	"svqact_repo_members",
	"svqact_repo_reloads_total",
	"svqact_repo_corruption_total",
	"svqact_repo_recoveries_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run() error {
	dir, err := os.MkdirTemp("", "svqact-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bins := map[string]string{}
	for _, name := range []string{"serve", "ingest", "svq"} {
		bins[name] = filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bins[name], "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("building cmd/%s: %v\n%s", name, err, out)
		}
	}

	repoDir := filepath.Join(dir, "repo")
	if err := durabilityPhase(bins, repoDir); err != nil {
		return fmt.Errorf("durability: %w", err)
	}

	cmd := exec.Command(bins["serve"],
		"-addr", "127.0.0.1:0", "-scale", "0.05",
		"-repo", repoDir,
		"-fault-transient", "0.1", "-fault-permanent", "0.005",
		"-detect-retries", "3", "-failure-budget", "0.9")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
		}
	}()

	// The server logs structured JSON; its listening line carries the
	// resolved ephemeral address, and later lines the per-query records.
	var mu sync.Mutex
	var logLines []map[string]any
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue
			}
			mu.Lock()
			logLines = append(logLines, rec)
			mu.Unlock()
			if rec["msg"] == "svq-act query server listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server never logged its listening address")
	}
	if err := waitHealthy(base); err != nil {
		return err
	}

	// Execute the fault-injected query and check the trace surface.
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(query))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query status %d: %s", resp.StatusCode, body)
	}
	qid := resp.Header.Get("X-Query-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(qid) {
		return fmt.Errorf("X-Query-ID = %q, want 16 hex chars", qid)
	}
	var qr struct {
		QueryID string `json:"query_id"`
		Plan    *struct {
			Adaptive bool     `json:"adaptive"`
			Order    []string `json:"order"`
			Declared []string `json:"declared"`
			Nodes    []struct {
				Name string `json:"name"`
			} `json:"nodes"`
		} `json:"plan"`
		Trace *struct {
			QueryID string `json:"query_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("query response not JSON: %v", err)
	}
	if qr.QueryID != qid || qr.Trace == nil || qr.Trace.QueryID != qid {
		return fmt.Errorf("query ID not stable across header/body/trace: header %q body %q", qid, qr.QueryID)
	}
	spans := map[string]bool{}
	for _, sp := range qr.Trace.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"engine.run", "plan.order", "predicate:car", "predicate:blowing_leaves"} {
		if !spans[want] {
			return fmt.Errorf("trace missing span %q (have %v)", want, qr.Trace.Spans)
		}
	}

	// The response must carry the predicate plan block: adaptive, with both
	// the chosen and declared orders over the query's two predicates.
	if qr.Plan == nil {
		return fmt.Errorf("query response carries no plan block: %s", body)
	}
	if !qr.Plan.Adaptive || len(qr.Plan.Order) != 2 || len(qr.Plan.Declared) != 2 || len(qr.Plan.Nodes) != 2 {
		return fmt.Errorf("malformed plan block: %+v", qr.Plan)
	}

	// Scrape and validate /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	if err := validateExposition(mbody); err != nil {
		return err
	}
	text := string(mbody)
	for _, fam := range requiredFamilies {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			return fmt.Errorf("metrics missing family %s", fam)
		}
	}
	for _, nonzero := range []string{
		`svqact_detect_retries_total{kind="action"}`,
		`svqact_detect_flagged_clips_total{kind="action"}`,
		`svqact_query_duration_seconds_count`,
	} {
		v, ok := seriesValue(text, nonzero)
		if !ok {
			return fmt.Errorf("metrics missing series %s", nonzero)
		}
		if v <= 0 {
			return fmt.Errorf("series %s = %v, want > 0 under fault injection", nonzero, v)
		}
	}

	// The repository must be serving a committed generation, and a hot
	// reload must succeed and show up on the counters.
	if v, ok := seriesValue(text, "svqact_repo_generation"); !ok || v <= 0 {
		return fmt.Errorf("svqact_repo_generation = %v, want > 0 with -repo", v)
	}
	rresp, err := http.Post(base+"/repo/reload", "application/json", nil)
	if err != nil {
		return err
	}
	rbody, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/repo/reload status %d: %s", rresp.StatusCode, rbody)
	}
	mresp2, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody2, _ := io.ReadAll(mresp2.Body)
	mresp2.Body.Close()
	if v, ok := seriesValue(string(mbody2), `svqact_repo_reloads_total{outcome="ok"}`); !ok || v < 2 {
		return fmt.Errorf(`svqact_repo_reloads_total{outcome="ok"} = %v, want >= 2 (startup + hot reload)`, v)
	}

	// /healthz and /metrics must agree on the shared counters.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var hz struct {
		Served float64 `json:"served"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		return err
	}
	hresp.Body.Close()
	if v, _ := seriesValue(text, "svqact_queries_served_total"); v != hz.Served {
		return fmt.Errorf("served disagrees: metrics %v, healthz %v", v, hz.Served)
	}

	// The query must have produced a structured log line.
	mu.Lock()
	defer mu.Unlock()
	for _, rec := range logLines {
		if rec["msg"] == "query" && rec["query_id"] == qid {
			for _, key := range []string{"statement", "outcome", "degraded", "interrupted"} {
				if _, ok := rec[key]; !ok {
					return fmt.Errorf("query log line missing %q: %v", key, rec)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("no structured log line for query %s", qid)
}

// durabilityPhase proves the crash-safety contract end to end with real
// processes: an ingest run is SIGKILLed as soon as its first generation
// commits, the re-run resumes and completes, the result passes `svq fsck`,
// and a bit-flipped table makes fsck fail.
func durabilityPhase(bins map[string]string, repoDir string) error {
	ingest := func() (string, error) {
		out, err := exec.Command(bins["ingest"],
			"-dataset", "movies", "-scale", "0.05", "-out", repoDir).CombinedOutput()
		return string(out), err
	}

	// First run: kill -9 as soon as the first unit is checkpointed. The
	// checkpoint is written (atomically) right after the member's generation
	// commits, so at that instant the repo holds exactly one finished video.
	first := exec.Command(bins["ingest"], "-dataset", "movies", "-scale", "0.05", "-out", repoDir)
	first.Stdout, first.Stderr = io.Discard, io.Discard
	if err := first.Start(); err != nil {
		return err
	}
	firstDone := make(chan error, 1)
	go func() { firstDone <- first.Wait() }()
	killed := false
	deadline := time.Now().Add(60 * time.Second)
poll:
	for time.Now().Before(deadline) {
		select {
		case <-firstDone:
			// Finished before we could kill it — the resume path then
			// degenerates to "skip everything", which is still valid.
			break poll
		default:
		}
		if _, err := os.Stat(filepath.Join(repoDir, ".ingest-checkpoint.json")); err == nil {
			_ = first.Process.Kill() // SIGKILL: no cleanup, no graceful shutdown
			<-firstDone
			killed = true
			break poll
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		select {
		case <-firstDone:
		default:
			_ = first.Process.Kill()
			<-firstDone
			return fmt.Errorf("ingest neither committed a generation nor finished within 60s")
		}
	}

	// Second run must complete the repository from whatever survived.
	out, err := ingest()
	if err != nil {
		return fmt.Errorf("resumed ingest failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "now holds 4 videos") {
		return fmt.Errorf("resumed ingest did not complete the repository:\n%s", out)
	}
	if killed && !strings.Contains(out, "skipped") && !strings.Contains(out, "resuming") {
		return fmt.Errorf("resumed ingest after SIGKILL shows no resume/skip activity:\n%s", out)
	}

	// The recovered repository must pass fsck.
	if out, err := exec.Command(bins["svq"], "fsck", repoDir).CombinedOutput(); err != nil {
		return fmt.Errorf("fsck of recovered repository failed: %v\n%s", err, out)
	}

	// …and fsck must actually detect damage: flip one byte of one table.
	var tbl string
	filepath.WalkDir(repoDir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, ".tbl") && tbl == "" {
			tbl = p
		}
		return nil
	})
	if tbl == "" {
		return fmt.Errorf("no table files in %s", repoDir)
	}
	orig, err := os.ReadFile(tbl)
	if err != nil {
		return err
	}
	mut := append([]byte(nil), orig...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(tbl, mut, 0o644); err != nil {
		return err
	}
	if out, err := exec.Command(bins["svq"], "fsck", repoDir).CombinedOutput(); err == nil {
		return fmt.Errorf("fsck accepted a bit-flipped table:\n%s", out)
	}
	if err := os.WriteFile(tbl, orig, 0o644); err != nil {
		return err
	}
	fmt.Printf("smoke: durability OK (killed mid-ingest: %v)\n", killed)
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server never became healthy")
}

var (
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?(Inf|[0-9].*))$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validateExposition enforces the Prometheus text format conventions the
// registry promises: legal metric and label names, a # TYPE line per
// family, and counter families named *_total.
func validateExposition(body []byte) error {
	types := map[string]string{}
	for _, line := range bytes.Split(body, []byte("\n")) {
		s := string(line)
		switch {
		case s == "":
		case strings.HasPrefix(s, "# TYPE "):
			fields := strings.Fields(s)
			if len(fields) != 4 {
				return fmt.Errorf("malformed TYPE line %q", s)
			}
			name, typ := fields[2], fields[3]
			types[name] = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("counter %q violates the _total naming convention", name)
			}
		case strings.HasPrefix(s, "# HELP "):
		case strings.HasPrefix(s, "#"):
			return fmt.Errorf("unknown comment line %q", s)
		default:
			m := seriesRe.FindStringSubmatch(s)
			if m == nil {
				return fmt.Errorf("malformed series line %q", s)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if _, ok := types[m[1]]; !ok {
				if _, ok := types[base]; !ok {
					return fmt.Errorf("series %q has no TYPE declaration", m[1])
				}
			}
			if m[2] != "" {
				for _, pair := range strings.Split(strings.Trim(m[2], "{}"), ",") {
					name, _, ok := strings.Cut(pair, "=")
					if !ok || !labelRe.MatchString(name) {
						return fmt.Errorf("bad label %q in %q", pair, s)
					}
				}
			}
		}
	}
	return nil
}

func seriesValue(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscan(rest, &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
