// Smoke is the end-to-end check CI runs after the unit suites
// (scripts/check.sh). It exercises two surfaces:
//
// Durability: cmd/ingest builds a repository, gets SIGKILLed mid-run, is
// re-run to completion (resuming from its checkpoint), and the result must
// pass `svq fsck`; a deliberately bit-flipped table must then fail it.
//
// Observability: cmd/serve starts with fault injection and the
// freshly-ingested repository, a query runs over plain HTTP (no curl), and
// the whole surface is verified — X-Query-ID header, trace spans in the
// response, the structured JSON log line, a hot /repo/reload, and a
// /metrics scrape that must contain every required metric family, obey
// Prometheus naming conventions, and show the fault machinery's and the
// repository's counters moving.
//
//	go run ./scripts/smoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"svqact/internal/rank"
)

const query = `{"sql": "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID) WHERE act='blowing_leaves' AND obj.include('car')"}`

// requiredFamilies must all appear on /metrics after one query.
var requiredFamilies = []string{
	"svqact_queries_inflight",
	"svqact_queries_waiting",
	"svqact_queries_served_total",
	"svqact_queries_rejected_total",
	"svqact_panics_total",
	"svqact_query_duration_seconds",
	"svqact_rank_sorted_accesses_total",
	"svqact_rank_random_accesses_total",
	"svqact_plan_queries_total",
	"svqact_plan_replans_total",
	"svqact_plan_skipped_evaluations_total",
	"svqact_plan_saved_cost_ms_total",
	"svqact_uptime_seconds",
	"svqact_detect_inferences_total",
	"svqact_detect_attempts_total",
	"svqact_detect_retries_total",
	"svqact_detect_faults_total",
	"svqact_detect_flagged_clips_total",
	"svqact_repo_generation",
	"svqact_repo_members",
	"svqact_repo_reloads_total",
	"svqact_repo_corruption_total",
	"svqact_repo_recoveries_total",
	"svqact_traces_seen_total",
	"svqact_traces_retained_total",
	"svqact_trace_store_size",
	"svqact_query_duration_seconds_p50",
	"svqact_query_duration_seconds_p95",
	"svqact_query_duration_seconds_p99",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run() error {
	dir, err := os.MkdirTemp("", "svqact-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bins := map[string]string{}
	for _, name := range []string{"serve", "ingest", "svq", "coordinator"} {
		bins[name] = filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bins[name], "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("building cmd/%s: %v\n%s", name, err, out)
		}
	}

	repoDir := filepath.Join(dir, "repo")
	if err := durabilityPhase(bins, repoDir); err != nil {
		return fmt.Errorf("durability: %w", err)
	}

	cmd := exec.Command(bins["serve"],
		"-addr", "127.0.0.1:0", "-scale", "0.05",
		"-repo", repoDir,
		"-fault-transient", "0.1", "-fault-permanent", "0.005",
		"-detect-retries", "3", "-failure-budget", "0.9")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
		}
	}()

	// The server logs structured JSON; its listening line carries the
	// resolved ephemeral address, and later lines the per-query records.
	var mu sync.Mutex
	var logLines []map[string]any
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue
			}
			mu.Lock()
			logLines = append(logLines, rec)
			mu.Unlock()
			if rec["msg"] == "svq-act query server listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server never logged its listening address")
	}
	if err := waitHealthy(base); err != nil {
		return err
	}

	// Execute the fault-injected query and check the trace surface.
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(query))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query status %d: %s", resp.StatusCode, body)
	}
	qid := resp.Header.Get("X-Query-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(qid) {
		return fmt.Errorf("X-Query-ID = %q, want 16 hex chars", qid)
	}
	var qr struct {
		QueryID string `json:"query_id"`
		Plan    *struct {
			Adaptive bool     `json:"adaptive"`
			Order    []string `json:"order"`
			Declared []string `json:"declared"`
			Nodes    []struct {
				Name string `json:"name"`
			} `json:"nodes"`
		} `json:"plan"`
		Trace *struct {
			QueryID string `json:"query_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("query response not JSON: %v", err)
	}
	if qr.QueryID != qid || qr.Trace == nil || qr.Trace.QueryID != qid {
		return fmt.Errorf("query ID not stable across header/body/trace: header %q body %q", qid, qr.QueryID)
	}
	spans := map[string]bool{}
	for _, sp := range qr.Trace.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"engine.run", "plan.order", "predicate:car", "predicate:blowing_leaves"} {
		if !spans[want] {
			return fmt.Errorf("trace missing span %q (have %v)", want, qr.Trace.Spans)
		}
	}

	// The response must carry the predicate plan block: adaptive, with both
	// the chosen and declared orders over the query's two predicates.
	if qr.Plan == nil {
		return fmt.Errorf("query response carries no plan block: %s", body)
	}
	if !qr.Plan.Adaptive || len(qr.Plan.Order) != 2 || len(qr.Plan.Declared) != 2 || len(qr.Plan.Nodes) != 2 {
		return fmt.Errorf("malformed plan block: %+v", qr.Plan)
	}

	// Scrape and validate /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	if err := validateExposition(mbody); err != nil {
		return err
	}
	text := string(mbody)
	for _, fam := range requiredFamilies {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			return fmt.Errorf("metrics missing family %s", fam)
		}
	}
	for _, nonzero := range []string{
		`svqact_detect_retries_total{kind="action"}`,
		`svqact_detect_flagged_clips_total{kind="action"}`,
		`svqact_query_duration_seconds_count`,
	} {
		v, ok := seriesValue(text, nonzero)
		if !ok {
			return fmt.Errorf("metrics missing series %s", nonzero)
		}
		if v <= 0 {
			return fmt.Errorf("series %s = %v, want > 0 under fault injection", nonzero, v)
		}
	}

	// The repository must be serving a committed generation, and a hot
	// reload must succeed and show up on the counters.
	if v, ok := seriesValue(text, "svqact_repo_generation"); !ok || v <= 0 {
		return fmt.Errorf("svqact_repo_generation = %v, want > 0 with -repo", v)
	}
	rresp, err := http.Post(base+"/repo/reload", "application/json", nil)
	if err != nil {
		return err
	}
	rbody, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/repo/reload status %d: %s", rresp.StatusCode, rbody)
	}
	mresp2, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody2, _ := io.ReadAll(mresp2.Body)
	mresp2.Body.Close()
	if v, ok := seriesValue(string(mbody2), `svqact_repo_reloads_total{outcome="ok"}`); !ok || v < 2 {
		return fmt.Errorf(`svqact_repo_reloads_total{outcome="ok"} = %v, want >= 2 (startup + hot reload)`, v)
	}

	// /healthz and /metrics must agree on the shared counters.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var hz struct {
		Served float64 `json:"served"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		return err
	}
	hresp.Body.Close()
	if v, _ := seriesValue(text, "svqact_queries_served_total"); v != hz.Served {
		return fmt.Errorf("served disagrees: metrics %v, healthz %v", v, hz.Served)
	}

	// The query must have produced a structured log line.
	mu.Lock()
	found := false
	for _, rec := range logLines {
		if rec["msg"] == "query" && rec["query_id"] == qid {
			for _, key := range []string{"statement", "outcome", "degraded", "interrupted"} {
				if _, ok := rec[key]; !ok {
					mu.Unlock()
					return fmt.Errorf("query log line missing %q: %v", key, rec)
				}
			}
			found = true
			break
		}
	}
	mu.Unlock()
	if !found {
		return fmt.Errorf("no structured log line for query %s", qid)
	}

	if err := cascadePhase(bins); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}

	if err := clusterPhase(bins, dir, repoDir, base); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// cascadePhase proves the tiered-cascade serving surface end to end: a
// -cascade server answers a budget-capped query by degrading (clips
// skipped and flagged, budget block honest, HTTP 200), and /metrics shows
// the per-tier detector counters and the budget families moving.
func cascadePhase(bins map[string]string) error {
	cmd := exec.Command(bins["serve"], "-addr", "127.0.0.1:0", "-scale", "0.05", "-cascade")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue
			}
			if rec["msg"] == "svq-act query server listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("cascade server never logged its listening address")
	}
	if err := waitHealthy(base); err != nil {
		return err
	}

	budgeted := `{"sql": "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID) WHERE act='blowing_leaves' AND obj.include('car')", "budget_ms": 200}`
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(budgeted))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("budget-capped query must degrade, got status %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		FlaggedClips int `json:"flagged_clips"`
		Plan         *struct {
			Tiered bool `json:"tiered"`
			Budget *struct {
				LimitMS      float64 `json:"limit_ms"`
				SpentMS      float64 `json:"spent_ms"`
				SkippedClips int64   `json:"skipped_clips"`
				Exhausted    bool    `json:"exhausted"`
			} `json:"budget"`
			Nodes []struct {
				Name  string `json:"name"`
				Tier  string `json:"tier"`
				Tiers []struct {
					Name  string `json:"name"`
					Units int64  `json:"units"`
				} `json:"tiers"`
			} `json:"nodes"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("cascade query response not JSON: %v", err)
	}
	if qr.Plan == nil || !qr.Plan.Tiered {
		return fmt.Errorf("cascade plan block not tiered: %s", body)
	}
	b := qr.Plan.Budget
	if b == nil || !b.Exhausted || b.SkippedClips == 0 || b.LimitMS != 200 {
		return fmt.Errorf("budget block not honest under a 200ms cap: %s", body)
	}
	if int64(qr.FlaggedClips) < b.SkippedClips {
		return fmt.Errorf("flagged_clips %d below budget-skipped %d", qr.FlaggedClips, b.SkippedClips)
	}
	for _, n := range qr.Plan.Nodes {
		if n.Tier == "" || len(n.Tiers) != 2 {
			return fmt.Errorf("node %s missing tier model: %s", n.Name, body)
		}
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, nonzero := range []string{
		`svqact_detect_tier_units_total{kind="object",tier="distilled-rcnn"}`,
		`svqact_detect_tier_decisions_total{kind="object",outcome="decided",tier="distilled-rcnn"}`,
		`svqact_plan_tier_queries_total`,
		`svqact_plan_tier_budget_skipped_clips_total`,
		`svqact_plan_tier_budget_exhausted_total`,
	} {
		v, ok := seriesValue(text, nonzero)
		if !ok {
			return fmt.Errorf("metrics missing series %s", nonzero)
		}
		if v <= 0 {
			return fmt.Errorf("series %s = %v, want > 0 after a cascade query", nonzero, v)
		}
	}
	fmt.Println("smoke: cascade OK (budget-capped query degraded with tier metrics moving)")
	return nil
}

// durabilityPhase proves the crash-safety contract end to end with real
// processes: an ingest run is SIGKILLed as soon as its first generation
// commits, the re-run resumes and completes, the result passes `svq fsck`,
// and a bit-flipped table makes fsck fail.
func durabilityPhase(bins map[string]string, repoDir string) error {
	ingest := func() (string, error) {
		out, err := exec.Command(bins["ingest"],
			"-dataset", "movies", "-scale", "0.05", "-out", repoDir).CombinedOutput()
		return string(out), err
	}

	// First run: kill -9 as soon as the first unit is checkpointed. The
	// checkpoint is written (atomically) right after the member's generation
	// commits, so at that instant the repo holds exactly one finished video.
	first := exec.Command(bins["ingest"], "-dataset", "movies", "-scale", "0.05", "-out", repoDir)
	first.Stdout, first.Stderr = io.Discard, io.Discard
	if err := first.Start(); err != nil {
		return err
	}
	firstDone := make(chan error, 1)
	go func() { firstDone <- first.Wait() }()
	killed := false
	deadline := time.Now().Add(60 * time.Second)
poll:
	for time.Now().Before(deadline) {
		select {
		case <-firstDone:
			// Finished before we could kill it — the resume path then
			// degenerates to "skip everything", which is still valid.
			break poll
		default:
		}
		if _, err := os.Stat(filepath.Join(repoDir, ".ingest-checkpoint.json")); err == nil {
			_ = first.Process.Kill() // SIGKILL: no cleanup, no graceful shutdown
			<-firstDone
			killed = true
			break poll
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		select {
		case <-firstDone:
		default:
			_ = first.Process.Kill()
			<-firstDone
			return fmt.Errorf("ingest neither committed a generation nor finished within 60s")
		}
	}

	// Second run must complete the repository from whatever survived.
	out, err := ingest()
	if err != nil {
		return fmt.Errorf("resumed ingest failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "now holds 4 videos") {
		return fmt.Errorf("resumed ingest did not complete the repository:\n%s", out)
	}
	if killed && !strings.Contains(out, "skipped") && !strings.Contains(out, "resuming") {
		return fmt.Errorf("resumed ingest after SIGKILL shows no resume/skip activity:\n%s", out)
	}

	// The recovered repository must pass fsck.
	if out, err := exec.Command(bins["svq"], "fsck", repoDir).CombinedOutput(); err != nil {
		return fmt.Errorf("fsck of recovered repository failed: %v\n%s", err, out)
	}

	// …and fsck must actually detect damage: flip one byte of one table.
	var tbl string
	filepath.WalkDir(repoDir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, ".tbl") && tbl == "" {
			tbl = p
		}
		return nil
	})
	if tbl == "" {
		return fmt.Errorf("no table files in %s", repoDir)
	}
	orig, err := os.ReadFile(tbl)
	if err != nil {
		return err
	}
	mut := append([]byte(nil), orig...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(tbl, mut, 0o644); err != nil {
		return err
	}
	if out, err := exec.Command(bins["svq"], "fsck", repoDir).CombinedOutput(); err == nil {
		return fmt.Errorf("fsck accepted a bit-flipped table:\n%s", out)
	}
	if err := os.WriteFile(tbl, orig, 0o644); err != nil {
		return err
	}
	fmt.Printf("smoke: durability OK (killed mid-ingest: %v)\n", killed)
	return nil
}

// rankedBatch is the /query/batch body the cluster phase replays: the
// titanic query of the movies workload (Table 2), at three depths.
const rankedBatch = `{"queries": [
  "SELECT MERGE(clipID) AS s, RANK(act, obj) FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer) WHERE act='kissing' AND obj.include('surfboard','boat') ORDER BY RANK(act, obj) LIMIT 3",
  "SELECT MERGE(clipID) AS s, RANK(act, obj) FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer) WHERE act='kissing' AND obj.include('surfboard','boat') ORDER BY RANK(act, obj) LIMIT 1",
  "SELECT MERGE(clipID) AS s, RANK(act, obj) FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer) WHERE act='kissing' AND obj.include('surfboard','boat') ORDER BY RANK(act, obj) LIMIT 5"
]}`

// clusterSeq is the sequence shape shared by the coordinator's entries and
// the single-process server's ranked answers.
type clusterSeq struct {
	Video     string  `json:"video"`
	StartClip int     `json:"start_clip"`
	EndClip   int     `json:"end_clip"`
	Score     float64 `json:"score"`
}

type clusterBatchAnswer struct {
	QueryID string `json:"query_id"`
	Entries []struct {
		Sequences        []clusterSeq `json:"sequences"`
		Degraded         bool         `json:"degraded"`
		MixedGenerations bool         `json:"mixed_generations"`
		Error            string       `json:"error"`
	} `json:"entries"`
	Shards struct {
		OK       []string `json:"ok"`
		Degraded []string `json:"degraded"`
		Failed   []string `json:"failed"`
	} `json:"shards"`
	Degraded bool `json:"degraded"`
}

// startShard launches a cmd/serve shard replica and returns its process and
// resolved base URL (the listening line of its JSON log).
func startShard(bin, repoDir, shardName, addr string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, "-addr", addr, "-scale", "0.05",
		"-repo", repoDir, "-shard-name", shardName)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue
			}
			if rec["msg"] == "svq-act query server listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		return cmd, "http://" + a, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("shard %s never logged its listening address", shardName)
	}
}

func postBatch(base string) (*clusterBatchAnswer, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/query/batch", strings.NewReader(rankedBatch))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Query-ID", "feedc0defeedc0de")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch status %d (want 200 even when degraded): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Query-ID"); got != "feedc0defeedc0de" {
		return nil, fmt.Errorf("coordinator X-Query-ID = %q, want the inbound id adopted", got)
	}
	var ans clusterBatchAnswer
	if err := json.Unmarshal(body, &ans); err != nil {
		return nil, fmt.Errorf("batch response not JSON: %v\n%s", err, body)
	}
	return &ans, nil
}

// clusterPhase proves the sharded serving stack with real processes: the
// repository is split into two shard repositories (`svq split`), served by
// three cmd/serve replicas (shard s1 has two), fronted by cmd/coordinator.
// A ranked batch must match the single-process server byte-for-score; then
// s1's primary is killed (degraded partition, same answers via failover),
// then its last replica (failed partition, partial answers), then both are
// restarted (health probes close the breakers and the cluster recovers).
func clusterPhase(bins map[string]string, dir, repoDir, monoBase string) error {
	shardsDir := filepath.Join(dir, "shards")
	if out, err := exec.Command(bins["svq"], "split", "-n", "2", "-out", shardsDir, repoDir).CombinedOutput(); err != nil {
		return fmt.Errorf("svq split: %v\n%s", err, out)
	}
	s0dir := filepath.Join(shardsDir, "shard0")
	s1dir := filepath.Join(shardsDir, "shard1")

	// Single-process ground truth: the same three statements against the
	// unsharded repository.
	var want [][]clusterSeq
	var batch struct {
		Queries []string `json:"queries"`
	}
	if err := json.Unmarshal([]byte(rankedBatch), &batch); err != nil {
		return err
	}
	for _, sql := range batch.Queries {
		raw, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := http.Post(monoBase+"/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("monolith query status %d: %s", resp.StatusCode, body)
		}
		var qr struct {
			Sequences []clusterSeq `json:"sequences"`
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			return err
		}
		if len(qr.Sequences) == 0 {
			return fmt.Errorf("monolith ranked query returned no sequences: %s", body)
		}
		want = append(want, qr.Sequences)
	}

	procs := map[string]*exec.Cmd{}
	kill := func(name string) {
		if cmd := procs[name]; cmd != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			procs[name] = nil
		}
	}
	defer func() {
		for name := range procs {
			kill(name)
		}
	}()
	urls := map[string]string{}
	for _, rep := range []struct{ name, dir, shard string }{
		{"s0-r0", s0dir, "s0"}, {"s1-r0", s1dir, "s1"}, {"s1-r1", s1dir, "s1"},
	} {
		cmd, base, err := startShard(bins["serve"], rep.dir, rep.shard, "127.0.0.1:0")
		if err != nil {
			return err
		}
		procs[rep.name] = cmd
		urls[rep.name] = base
	}

	coord, coordBase, coordLogs, err := startCoordinator(bins["coordinator"],
		"-shard", "s0="+urls["s0-r0"],
		"-shard", "s1="+urls["s1-r0"]+","+urls["s1-r1"])
	if err != nil {
		return err
	}
	defer func() {
		_ = coord.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = coord.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = coord.Process.Kill()
		}
	}()
	if err := waitHealthy(coordBase); err != nil {
		return err
	}

	// Healthy cluster: every entry matches the single-process answers and
	// both shards are ok.
	ans, err := postBatch(coordBase)
	if err != nil {
		return err
	}
	if ans.Degraded || len(ans.Shards.OK) != 2 {
		return fmt.Errorf("healthy batch reports partition %+v", ans.Shards)
	}
	if err := matchEntries(ans, want); err != nil {
		return err
	}

	// Kill s1's primary: answers must not change, but the partition must
	// name s1 degraded (served by its failover replica).
	kill("s1-r0")
	ans, err = postBatch(coordBase)
	if err != nil {
		return err
	}
	if !ans.Degraded || fmt.Sprint(ans.Shards.Degraded) != "[s1]" {
		return fmt.Errorf("after killing s1 primary: degraded=%v partition %+v, want s1 degraded", ans.Degraded, ans.Shards)
	}
	if err := matchEntries(ans, want); err != nil {
		return fmt.Errorf("failover changed answers: %w", err)
	}

	// With s1 degraded, prove the distributed-tracing surface end to end.
	if err := tracingPhase(bins, coordBase, batch.Queries[0], coordLogs); err != nil {
		return fmt.Errorf("tracing: %w", err)
	}

	// Kill s1's last replica: the batch still answers 200 with partial
	// results and the failed partition names the lost shard.
	kill("s1-r1")
	ans, err = postBatch(coordBase)
	if err != nil {
		return err
	}
	if !ans.Degraded || fmt.Sprint(ans.Shards.Failed) != "[s1]" {
		return fmt.Errorf("after losing s1: degraded=%v partition %+v, want s1 failed", ans.Degraded, ans.Shards)
	}
	for i, e := range ans.Entries {
		if !e.Degraded || !strings.Contains(e.Error, "s1") {
			return fmt.Errorf("entry %d of a degraded batch should carry an error naming s1: %+v", i, e)
		}
	}

	// Restart both replicas on their old addresses: the health checker
	// closes the breakers and the cluster recovers to a clean partition.
	for _, name := range []string{"s1-r0", "s1-r1"} {
		cmd, _, err := startShard(bins["serve"], s1dir, "s1", strings.TrimPrefix(urls[name], "http://"))
		if err != nil {
			return fmt.Errorf("restarting %s: %w", name, err)
		}
		procs[name] = cmd
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ans, err = postBatch(coordBase)
		if err != nil {
			return err
		}
		if !ans.Degraded && len(ans.Shards.OK) == 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster never recovered after replica restart: partition %+v", ans.Shards)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err := matchEntries(ans, want); err != nil {
		return fmt.Errorf("recovered cluster disagrees with the monolith: %w", err)
	}

	// Overload protection: a burst beyond the admission limits must be
	// shed with 429 + Retry-After before it reaches the shards.
	if err := overloadPhase(coordBase, batch.Queries[0]); err != nil {
		return fmt.Errorf("overload: %w", err)
	}

	// Rolling generation swap: commit a new generation to every shard
	// repository, halt a rollout on a killed replica, verify the old
	// generation keeps answering (flagged mixed), repair, re-run to done.
	if err := rolloutPhase(bins, s0dir, s1dir, coordBase, urls, procs, kill, want); err != nil {
		return fmt.Errorf("rollout: %w", err)
	}

	// The coordinator's metrics surface must expose the cluster families,
	// with the failover counter moving.
	mresp, err := http.Get(coordBase + "/metrics")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := validateExposition(mbody); err != nil {
		return fmt.Errorf("coordinator metrics: %w", err)
	}
	text := string(mbody)
	for _, fam := range []string{
		"svqact_cluster_queries_total",
		"svqact_cluster_shard_requests_total",
		"svqact_cluster_failovers_total",
		"svqact_cluster_health_probes_total",
		"svqact_cluster_shards",
		"svqact_cluster_replicas",
		"svqact_cluster_scatter_seconds",
		"svqact_traces_seen_total",
		"svqact_traces_retained_total",
		"svqact_trace_store_size",
		"svqact_cluster_scatter_seconds_p50",
		"svqact_cluster_scatter_seconds_p95",
		"svqact_cluster_scatter_seconds_p99",
		"svqact_cluster_admission_waiting",
		"svqact_cluster_admission_inflight",
		"svqact_cluster_admission_admitted_total",
		"svqact_cluster_admission_rejected_total",
		"svqact_cluster_admission_wait_seconds",
		"svqact_cluster_admission_backpressure_total",
		"svqact_cluster_mixed_generation_answers_total",
		"svqact_cluster_rollouts_total",
		"svqact_cluster_rollout_running",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			return fmt.Errorf("coordinator metrics missing family %s", fam)
		}
	}
	if v, ok := seriesValue(text, `svqact_cluster_failovers_total{shard="s1"}`); !ok || v <= 0 {
		return fmt.Errorf(`svqact_cluster_failovers_total{shard="s1"} = %v, want > 0 after the kill`, v)
	}
	for series, why := range map[string]string{
		`svqact_cluster_rollouts_total{outcome="completed"}`:           "the repaired rollout completed",
		`svqact_cluster_rollouts_total{outcome="failed"}`:              "the first rollout halted on the killed replica",
		`svqact_cluster_mixed_generation_answers_total`:                "the halted rollout left mixed generations",
		`svqact_cluster_admission_rejected_total{reason="queue_full"}`: "the overload burst was shed",
	} {
		if v, ok := seriesValue(text, series); !ok || v <= 0 {
			return fmt.Errorf("%s = %v, want > 0 (%s)", series, v, why)
		}
	}
	fmt.Println("smoke: cluster OK (failover, shard loss, recovery, overload shed, rolling swap)")
	return nil
}

// overloadPhase fires a burst of concurrent queries far beyond the
// coordinator's admission limits (-admit-concurrent 2 -admit-queue 2) and
// requires load shedding: at least one 429 with a Retry-After hint, while
// the rest still answer 200. The admission block on /healthz must agree.
func overloadPhase(coordBase, sql string) error {
	raw, _ := json.Marshal(map[string]string{"sql": sql})
	const burst = 24
	codes := make(chan int, burst)
	retryAfter := make(chan string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(coordBase+"/query", "application/json", bytes.NewReader(raw))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter <- resp.Header.Get("Retry-After")
			}
		}()
	}
	wg.Wait()
	close(codes)
	close(retryAfter)
	var ok200, shed, other int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed++
		default:
			other++
		}
	}
	if other > 0 {
		return fmt.Errorf("burst of %d: %d answers were neither 200 nor 429", burst, other)
	}
	if shed == 0 {
		return fmt.Errorf("burst of %d against capacity 2 + queue 2 shed nothing", burst)
	}
	if ok200 == 0 {
		return fmt.Errorf("burst of %d: everything was shed, nothing served", burst)
	}
	for ra := range retryAfter {
		if ra == "" || ra == "0" {
			return fmt.Errorf("a 429 carried Retry-After %q, want a positive seconds value", ra)
		}
	}

	hresp, err := http.Get(coordBase + "/healthz")
	if err != nil {
		return err
	}
	var hz struct {
		Admission struct {
			Capacity int `json:"capacity"`
			Admitted int `json:"admitted"`
			Rejected int `json:"rejected"`
		} `json:"admission"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&hz)
	hresp.Body.Close()
	if err != nil {
		return err
	}
	if hz.Admission.Capacity != 2 || hz.Admission.Admitted <= 0 || hz.Admission.Rejected < shed {
		return fmt.Errorf("healthz admission block %+v disagrees with the burst (shed %d)", hz.Admission, shed)
	}
	fmt.Printf("smoke: overload OK (%d served, %d shed with Retry-After)\n", ok200, shed)
	return nil
}

// bumpGenerations commits a fresh generation to every member of a shard
// repository — same data, new generation number — the on-disk state a real
// re-ingest would leave for a rollout to pick up.
func bumpGenerations(shardDir string) error {
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		member := filepath.Join(shardDir, e.Name())
		if _, err := os.Stat(filepath.Join(member, "CURRENT")); err != nil {
			continue
		}
		ix, err := rank.Load(member)
		if err != nil {
			return fmt.Errorf("loading %s: %w", member, err)
		}
		if err := rank.Save(member, ix); err != nil {
			return fmt.Errorf("re-saving %s: %w", member, err)
		}
	}
	return nil
}

// replicaGeneration reads one replica's served generation off GET
// /repo/status.
func replicaGeneration(base string) (int, error) {
	resp, err := http.Get(base + "/repo/status")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var rh struct {
		Generation int `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rh); err != nil {
		return 0, err
	}
	return rh.Generation, nil
}

// rolloutPhase proves the health-gated rolling generation swap with real
// processes. Generation 2 is committed to both shard repositories, s1's
// primary is killed, and `svq rollout` must halt there (exit 1) with s0
// already swapped — the cluster keeps answering correctly, flagged as
// mixed-generation, with s1's survivor still on the old generation. After
// restarting the dead replica a second `svq rollout` must run to
// completion and converge every replica on generation 2.
func rolloutPhase(bins map[string]string, s0dir, s1dir, coordBase string,
	urls map[string]string, procs map[string]*exec.Cmd, kill func(string), want [][]clusterSeq) error {
	for _, dir := range []string{s0dir, s1dir} {
		if err := bumpGenerations(dir); err != nil {
			return err
		}
	}
	kill("s1-r0")

	canary := "SELECT MERGE(clipID) AS s, RANK(act, obj) FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer) WHERE act='kissing' AND obj.include('surfboard','boat') ORDER BY RANK(act, obj) LIMIT 1"
	rollout := func() (string, int, error) {
		out, err := exec.Command(bins["svq"], "rollout",
			"-server", coordBase, "-canary", canary,
			"-drain-wait", "50ms", "-interval", "50ms", "-timeout", "60s").CombinedOutput()
		if err == nil {
			return string(out), 0, nil
		}
		var xerr *exec.ExitError
		if errors.As(err, &xerr) {
			return string(out), xerr.ExitCode(), nil
		}
		return string(out), 0, err
	}

	// First walk: s0 swaps to generation 2, then the dead s1-r0 halts the
	// rollout before s1's survivor is ever touched.
	out, code, err := rollout()
	if err != nil {
		return err
	}
	if code != 1 || !strings.Contains(out, "failed") || !strings.Contains(out, "s1-r0") {
		return fmt.Errorf("rollout against a dead replica: exit %d, want 1 with a failure naming s1-r0\n%s", code, out)
	}
	if g, err := replicaGeneration(urls["s0-r0"]); err != nil || g != 2 {
		return fmt.Errorf("s0-r0 generation after the halted rollout = %d (%v), want 2", g, err)
	}
	if g, err := replicaGeneration(urls["s1-r1"]); err != nil || g != 1 {
		return fmt.Errorf("s1-r1 generation after the halt = %d (%v), want 1 (old generation keeps serving)", g, err)
	}

	// Mid-halt the cluster is mixed (s0 on 2, s1 surviving on 1): answers
	// must still match the ground truth, flagged mixed and degraded.
	ans, err := postBatch(coordBase)
	if err != nil {
		return err
	}
	if err := matchEntries(ans, want); err != nil {
		return fmt.Errorf("halted rollout changed answers: %w", err)
	}
	if !ans.Degraded {
		return fmt.Errorf("mid-halt batch not degraded: partition %+v", ans.Shards)
	}
	for i, e := range ans.Entries {
		if !e.MixedGenerations {
			return fmt.Errorf("mid-halt entry %d not flagged mixed_generations", i)
		}
	}

	// Repair: restart the dead replica on its old address and wait for the
	// health checker to close its breaker again.
	cmd, _, err := startShard(bins["serve"], s1dir, "s1", strings.TrimPrefix(urls["s1-r0"], "http://"))
	if err != nil {
		return fmt.Errorf("restarting s1-r0: %w", err)
	}
	procs["s1-r0"] = cmd
	deadline := time.Now().Add(30 * time.Second)
	for {
		sresp, err := http.Get(coordBase + "/shards")
		if err != nil {
			return err
		}
		var shards struct {
			Shards []struct {
				Replicas []struct {
					Breaker   string `json:"breaker"`
					LastError string `json:"last_error"`
				} `json:"replicas"`
			} `json:"shards"`
		}
		err = json.NewDecoder(sresp.Body).Decode(&shards)
		sresp.Body.Close()
		if err != nil {
			return err
		}
		healthy := true
		for _, sh := range shards.Shards {
			for _, r := range sh.Replicas {
				if r.Breaker != "closed" || r.LastError != "" {
					healthy = false
				}
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("s1-r0 never rejoined after restart")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Second walk resumes: already-swapped replicas reload as no-ops, the
	// repaired shard completes, and every replica converges on 2.
	out, code, err = rollout()
	if err != nil {
		return err
	}
	if code != 0 || !strings.Contains(out, "rollout done") {
		return fmt.Errorf("re-run rollout after repair: exit %d\n%s", code, out)
	}
	for _, rep := range []string{"s0-r0", "s1-r0", "s1-r1"} {
		if g, err := replicaGeneration(urls[rep]); err != nil || g != 2 {
			return fmt.Errorf("%s generation after the completed rollout = %d (%v), want 2", rep, g, err)
		}
	}
	ans, err = postBatch(coordBase)
	if err != nil {
		return err
	}
	if err := matchEntries(ans, want); err != nil {
		return fmt.Errorf("completed rollout changed answers: %w", err)
	}
	if ans.Degraded {
		return fmt.Errorf("post-rollout batch still degraded: partition %+v", ans.Shards)
	}
	for i, e := range ans.Entries {
		if e.MixedGenerations {
			return fmt.Errorf("post-rollout entry %d still flagged mixed_generations", i)
		}
	}
	fmt.Println("smoke: rollout OK (halt on dead replica, old generation served, repaired re-run to done)")
	return nil
}

// smokeSpan is the span shape the tracing assertions need.
type smokeSpan struct {
	Name   string         `json:"name"`
	ID     string         `json:"id"`
	Parent string         `json:"parent"`
	Attrs  map[string]any `json:"attrs"`
}

// tracingPhase proves the distributed-tracing contract against the degraded
// cluster (s1's primary is down): a ranked query with a known id must leave a
// retained trace on the coordinator — listed by GET /debug/traces, fetchable
// as an assembled tree whose cluster.shard:* subtrees contain the shards' own
// grafted rank spans — must render through `svq trace`, and must emit the
// one-line structured "trace retained" log record.
func tracingPhase(bins map[string]string, coordBase, sql string, coordLogs func() []map[string]any) error {
	const traceQID = "0ddba11cab1e0fae"
	raw, _ := json.Marshal(map[string]string{"sql": sql})
	req, err := http.NewRequest(http.MethodPost, coordBase+"/query", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Query-ID", traceQID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query status %d: %s", resp.StatusCode, body)
	}
	var qa struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &qa); err != nil {
		return err
	}
	if !qa.Degraded {
		return fmt.Errorf("query with a dead primary should be degraded: %s", body)
	}

	// The trace must appear on the coordinator's index with the degradation
	// as its retention reason.
	iresp, err := http.Get(coordBase + "/debug/traces")
	if err != nil {
		return err
	}
	ibody, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/traces status %d", iresp.StatusCode)
	}
	var idx struct {
		Count  int `json:"count"`
		Traces []struct {
			ID     string `json:"id"`
			Reason string `json:"reason"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(ibody, &idx); err != nil {
		return fmt.Errorf("trace index not JSON: %v\n%s", err, ibody)
	}
	found := false
	for _, e := range idx.Traces {
		if e.ID == traceQID {
			found = true
			if e.Reason != "degraded" {
				return fmt.Errorf("trace %s retained for %q, want degraded", e.ID, e.Reason)
			}
		}
	}
	if !found {
		return fmt.Errorf("trace %s not in /debug/traces (count %d): %s", traceQID, idx.Count, ibody)
	}

	// The full stored trace must be an assembled tree: the coordinator's
	// scatter spans with each shard's own execution spans grafted beneath
	// the winning attempt.
	tresp, err := http.Get(coordBase + "/debug/traces/" + traceQID)
	if err != nil {
		return err
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/traces/%s status %d: %s", traceQID, tresp.StatusCode, tbody)
	}
	var st struct {
		Outcome string `json:"outcome"`
		Trace   struct {
			QueryID string      `json:"query_id"`
			Spans   []smokeSpan `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(tbody, &st); err != nil {
		return fmt.Errorf("stored trace not JSON: %v\n%s", err, tbody)
	}
	if st.Outcome != "degraded" || st.Trace.QueryID != traceQID {
		return fmt.Errorf("stored trace outcome=%q query_id=%q", st.Outcome, st.Trace.QueryID)
	}
	byID := map[string]smokeSpan{}
	for _, sp := range st.Trace.Spans {
		byID[sp.ID] = sp
	}
	// ancestorNamed walks the parent chain looking for a span name.
	ancestorNamed := func(sp smokeSpan, name string) bool {
		for p := sp.Parent; p != ""; {
			ps, ok := byID[p]
			if !ok {
				return false
			}
			if ps.Name == name {
				return true
			}
			p = ps.Parent
		}
		return false
	}
	var root *smokeSpan
	for i, sp := range st.Trace.Spans {
		if sp.Name == "cluster.topk" && sp.Parent == "" {
			root = &st.Trace.Spans[i]
		}
	}
	if root == nil {
		return fmt.Errorf("no cluster.topk root span in %s", tbody)
	}
	for _, shardName := range []string{"cluster.shard:s0", "cluster.shard:s1"} {
		var shardSpan *smokeSpan
		for i, sp := range st.Trace.Spans {
			if sp.Name == shardName {
				shardSpan = &st.Trace.Spans[i]
			}
		}
		if shardSpan == nil || shardSpan.Parent != root.ID {
			return fmt.Errorf("%s missing or not under cluster.topk: %s", shardName, tbody)
		}
		attempts, grafted := 0, false
		for _, sp := range st.Trace.Spans {
			if sp.Name == "cluster.attempt" && sp.Parent == shardSpan.ID {
				attempts++
				if _, ok := sp.Attrs["replica"]; !ok {
					return fmt.Errorf("attempt under %s lacks replica attr: %+v", shardName, sp)
				}
			}
			// The shard's own spans arrive by graft: composite ids,
			// descendants of the shard span.
			if sp.Name == "rank.topk" && ancestorNamed(sp, shardName) {
				grafted = true
				if !strings.Contains(sp.ID, "/") {
					return fmt.Errorf("grafted rank.topk has non-composite id %q", sp.ID)
				}
			}
		}
		if attempts == 0 {
			return fmt.Errorf("no cluster.attempt span under %s: %s", shardName, tbody)
		}
		if !grafted {
			return fmt.Errorf("%s subtree lacks the shard's grafted rank.topk span: %s", shardName, tbody)
		}
	}
	if s1 := func() smokeSpan {
		for _, sp := range st.Trace.Spans {
			if sp.Name == "cluster.shard:s1" {
				return sp
			}
		}
		return smokeSpan{}
	}(); s1.Attrs["outcome"] != "degraded" {
		return fmt.Errorf("cluster.shard:s1 outcome attr = %v, want degraded (failover)", s1.Attrs["outcome"])
	}

	// `svq trace` renders the index and the waterfall from the same
	// endpoints.
	iout, err := exec.Command(bins["svq"], "trace", "-server", coordBase).CombinedOutput()
	if err != nil {
		return fmt.Errorf("svq trace (index): %v\n%s", err, iout)
	}
	if !strings.Contains(string(iout), traceQID) {
		return fmt.Errorf("svq trace index does not list %s:\n%s", traceQID, iout)
	}
	wout, err := exec.Command(bins["svq"], "trace", "-server", coordBase, traceQID).CombinedOutput()
	if err != nil {
		return fmt.Errorf("svq trace %s: %v\n%s", traceQID, err, wout)
	}
	wtext := string(wout)
	for _, wantLine := range []string{"trace " + traceQID, "cluster.topk", "cluster.shard:s1", "cluster.attempt", "rank.topk", "#"} {
		if !strings.Contains(wtext, wantLine) {
			return fmt.Errorf("svq trace waterfall missing %q:\n%s", wantLine, wtext)
		}
	}

	// The retention must have left the one-line structured log record.
	logged := false
	for _, rec := range coordLogs() {
		if rec["msg"] == "trace retained" && rec["trace_id"] == traceQID {
			for _, key := range []string{"reason", "outcome", "duration_ms", "sql_digest"} {
				if _, ok := rec[key]; !ok {
					return fmt.Errorf("trace-retained log line missing %q: %v", key, rec)
				}
			}
			logged = true
		}
	}
	if !logged {
		return fmt.Errorf("coordinator never logged 'trace retained' for %s", traceQID)
	}
	fmt.Println("smoke: tracing OK (retained trace, assembled tree, svq trace, log line)")
	return nil
}

// matchEntries compares every batch entry's top-k against the
// single-process ground truth.
func matchEntries(ans *clusterBatchAnswer, want [][]clusterSeq) error {
	if len(ans.Entries) != len(want) {
		return fmt.Errorf("batch has %d entries, want %d", len(ans.Entries), len(want))
	}
	for i, e := range ans.Entries {
		if len(e.Sequences) != len(want[i]) {
			return fmt.Errorf("entry %d: %d sequences, want %d", i, len(e.Sequences), len(want[i]))
		}
		for j, got := range e.Sequences {
			w := want[i][j]
			if got.Video != w.Video || got.StartClip != w.StartClip || got.EndClip != w.EndClip ||
				math.Abs(got.Score-w.Score) > 1e-9 {
				return fmt.Errorf("entry %d seq %d: got %+v, want %+v", i, j, got, w)
			}
		}
	}
	return nil
}

// startCoordinator launches cmd/coordinator with fast-recovery tuning and
// returns its process, resolved base URL, and a snapshot function over its
// structured log records (the tracing phase greps them for the retained-trace
// line).
func startCoordinator(bin string, shardArgs ...string) (*exec.Cmd, string, func() []map[string]any, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-base-backoff", "5ms", "-max-backoff", "50ms",
		"-breaker-threshold", "3", "-breaker-cooloff", "500ms",
		"-health-interval", "150ms",
		// Tight admission limits so the overload phase can provoke 429s
		// with a modest burst; the sequential phases never queue deeper
		// than one batch, so this does not perturb them.
		"-admit-concurrent", "2", "-admit-queue", "2", "-admit-wait", "300ms",
	}, shardArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", nil, err
	}
	var mu sync.Mutex
	var logLines []map[string]any
	logs := func() []map[string]any {
		mu.Lock()
		defer mu.Unlock()
		return append([]map[string]any(nil), logLines...)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue
			}
			mu.Lock()
			logLines = append(logLines, rec)
			mu.Unlock()
			if rec["msg"] == "svq-act cluster coordinator listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		return cmd, "http://" + a, logs, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", nil, fmt.Errorf("coordinator never logged its listening address")
	}
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server never became healthy")
}

var (
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?(Inf|[0-9].*))$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validateExposition enforces the Prometheus text format conventions the
// registry promises: legal metric and label names, a # TYPE line per
// family, and counter families named *_total.
func validateExposition(body []byte) error {
	types := map[string]string{}
	for _, line := range bytes.Split(body, []byte("\n")) {
		s := string(line)
		switch {
		case s == "":
		case strings.HasPrefix(s, "# TYPE "):
			fields := strings.Fields(s)
			if len(fields) != 4 {
				return fmt.Errorf("malformed TYPE line %q", s)
			}
			name, typ := fields[2], fields[3]
			types[name] = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("counter %q violates the _total naming convention", name)
			}
		case strings.HasPrefix(s, "# HELP "):
		case strings.HasPrefix(s, "#"):
			return fmt.Errorf("unknown comment line %q", s)
		default:
			m := seriesRe.FindStringSubmatch(s)
			if m == nil {
				return fmt.Errorf("malformed series line %q", s)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if _, ok := types[m[1]]; !ok {
				if _, ok := types[base]; !ok {
					return fmt.Errorf("series %q has no TYPE declaration", m[1])
				}
			}
			if m[2] != "" {
				for _, pair := range strings.Split(strings.Trim(m[2], "{}"), ",") {
					name, _, ok := strings.Cut(pair, "=")
					if !ok || !labelRe.MatchString(name) {
						return fmt.Errorf("bad label %q in %q", pair, s)
					}
				}
			}
		}
	}
	return nil
}

func seriesValue(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscan(rest, &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
