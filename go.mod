module svqact

go 1.22
