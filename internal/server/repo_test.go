package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"svqact/internal/rank"
	"svqact/internal/store"
	"svqact/internal/video"
)

const repoSQL = `SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car')
ORDER BY RANK(act, obj) LIMIT 3`

// buildRepoDir materialises a small two-member repository on disk.
func buildRepoDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	repo, err := rank.OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, name := range []string{"alpha", "beta"} {
		ix := &rank.Index{
			Name: name, NumClips: 30,
			Objects: map[string]*rank.TypeIndex{},
			Actions: map[string]*rank.TypeIndex{},
		}
		mk := func(typ string) *rank.TypeIndex {
			var entries []store.Entry
			for c := 0; c < 30; c++ {
				entries = append(entries, store.Entry{Clip: c, Score: float64(1 + (c*7+len(typ))%13)})
			}
			tbl, err := store.NewMemTable(typ, entries)
			if err != nil {
				t.Fatal(err)
			}
			seqs := video.NewIntervalSet(video.Interval{Start: 2, End: 5}, video.Interval{Start: 10, End: 14})
			return &rank.TypeIndex{Table: tbl, Seqs: seqs}
		}
		ix.Objects["car"] = mk("car")
		ix.Actions["jumping"] = mk("jumping")
		if err := repo.Add(ix); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRepoServingAndReload(t *testing.T) {
	dir := buildRepoDir(t)
	srv := New(Config{Scale: 0.05, Seed: 1, RepoDir: dir})
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func(t *testing.T) (int, QueryResponse) {
		t.Helper()
		resp, body := post(t, ts.URL+"/query", QueryRequest{SQL: repoSQL})
		var qr QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatalf("bad response %s: %v", body, err)
			}
		}
		return resp.StatusCode, qr
	}

	status, qr := query(t)
	if status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if qr.Mode != "RVAQ" || len(qr.Sequences) == 0 {
		t.Fatalf("mode %q with %d sequences", qr.Mode, len(qr.Sequences))
	}
	for _, seq := range qr.Sequences {
		if seq.Video == "" {
			t.Errorf("sequence missing member video attribution: %+v", seq)
		}
	}

	// Health reports the loaded repository.
	h := srv.Health()
	if h.Repo == nil || h.Repo.Videos != 2 || h.Repo.Generation == 0 || h.Repo.Failed {
		t.Fatalf("health repo = %+v", h.Repo)
	}

	// Corrupt one member: the reload must be rejected, the old repository
	// must keep serving, and the corruption must be counted.
	tblPath := ""
	filepath.WalkDir(filepath.Join(dir, "beta"), func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == ".tbl" && tblPath == "" {
			tblPath = p
		}
		return nil
	})
	if tblPath == "" {
		t.Fatal("no table file found")
	}
	orig, err := os.ReadFile(tblPath)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), orig...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(tblPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/repo/reload", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload of corrupt repo: status %d, body %s", resp.StatusCode, body)
	}
	if status, _ := query(t); status != http.StatusOK {
		t.Fatalf("old generation stopped serving after failed reload: %d", status)
	}
	if h := srv.Health(); h.Repo == nil || !h.Repo.Failed {
		t.Fatal("failed reload not reflected in health")
	}
	if got := srv.repoCorruption.Value(); got != 1 {
		t.Errorf("corruption counter = %d, want 1", got)
	}

	// Repair and reload: recovery succeeds and is counted.
	if err := os.WriteFile(tblPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/repo/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after repair: status %d, body %s", resp.StatusCode, body)
	}
	if got := srv.repoRecoveries.Value(); got != 1 {
		t.Errorf("recovery counter = %d, want 1", got)
	}
	if status, _ := query(t); status != http.StatusOK {
		t.Fatalf("query after recovery: %d", status)
	}

	// /repo/status mirrors the health section.
	sresp, sbody := get(t, ts.URL+"/repo/status")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/repo/status: %d %s", sresp.StatusCode, sbody)
	}
}

func TestRepoRoutesWithoutRepo(t *testing.T) {
	srv := New(Config{Scale: 0.05, Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := post(t, ts.URL+"/repo/reload", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("reload without -repo: status %d", resp.StatusCode)
	}
	resp2, _ := get(t, ts.URL+"/repo/status")
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("status without -repo: status %d", resp2.StatusCode)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
