package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"svqact/internal/rank"
	"svqact/internal/store"
	"svqact/internal/video"
)

// altMemberIndex builds a replacement "alpha" member whose scores differ
// from buildRepoDir's, so a committed update visibly changes answers.
func altMemberIndex(t *testing.T) *rank.Index {
	t.Helper()
	ix := &rank.Index{
		Name: "alpha", NumClips: 30,
		Objects: map[string]*rank.TypeIndex{},
		Actions: map[string]*rank.TypeIndex{},
	}
	mk := func(typ string) *rank.TypeIndex {
		var entries []store.Entry
		for c := 0; c < 30; c++ {
			entries = append(entries, store.Entry{Clip: c, Score: float64(2 + (c*11+len(typ))%17)})
		}
		tbl, err := store.NewMemTable(typ, entries)
		if err != nil {
			t.Fatal(err)
		}
		seqs := video.NewIntervalSet(video.Interval{Start: 3, End: 7}, video.Interval{Start: 20, End: 24})
		return &rank.TypeIndex{Table: tbl, Seqs: seqs}
	}
	ix.Objects["car"] = mk("car")
	ix.Actions["jumping"] = mk("jumping")
	return ix
}

// Hot-reload robustness under injected filesystem faults: a member save
// that crashes at any step must leave the repository reloadable with the
// OLD generation still serving, and a torn commit pointer must make the
// reload fail closed — 409, old generation keeps answering queries, and
// /repo/status names the error.
func TestRepoReloadFlakyFS(t *testing.T) {
	dir := buildRepoDir(t)
	srv := New(Config{Scale: 0.05, Seed: 1, RepoDir: dir})
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func(t *testing.T) (int, QueryResponse) {
		t.Helper()
		resp, body := post(t, ts.URL+"/query", QueryRequest{SQL: repoSQL})
		var qr QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatalf("bad response %s: %v", body, err)
			}
		}
		return resp.StatusCode, qr
	}
	seqKeys := func(qr QueryResponse) string {
		raw, _ := json.Marshal(qr.Sequences)
		return string(raw)
	}
	reload := func(t *testing.T) int {
		t.Helper()
		resp, _ := post(t, ts.URL+"/repo/reload", struct{}{})
		return resp.StatusCode
	}

	status, base := query(t)
	if status != http.StatusOK || len(base.Sequences) == 0 {
		t.Fatalf("baseline query: status %d, %d sequences", status, len(base.Sequences))
	}
	baseKeys := seqKeys(base)
	baseGen := base.Generation
	if baseGen == 0 {
		t.Fatal("baseline response carries no repository generation")
	}

	// Precompute the answers a COMMITTED alpha update produces, from an
	// identical second repository (buildRepoDir is deterministic).
	altDir := buildRepoDir(t)
	if err := rank.Save(filepath.Join(altDir, "alpha"), altMemberIndex(t)); err != nil {
		t.Fatal(err)
	}
	srvAlt := New(Config{Scale: 0.05, Seed: 1, RepoDir: altDir})
	if err := srvAlt.Reload(); err != nil {
		t.Fatal(err)
	}
	tsAlt := httptest.NewServer(srvAlt.Handler())
	respAlt, bodyAlt := post(t, tsAlt.URL+"/query", QueryRequest{SQL: repoSQL})
	tsAlt.Close()
	if respAlt.StatusCode != http.StatusOK {
		t.Fatalf("alt baseline query: %d", respAlt.StatusCode)
	}
	var qrAlt QueryResponse
	if err := json.Unmarshal(bodyAlt, &qrAlt); err != nil {
		t.Fatal(err)
	}
	altKeys := seqKeys(qrAlt)
	if altKeys == baseKeys {
		t.Fatal("alt member update does not change answers — sweep would be vacuous")
	}

	// Count the mutating ops of a full member save, then crash the save at
	// every step. After each crash the repository must reload cleanly and
	// answer with EITHER the old or the (fully committed) new content —
	// never a torn mix, never an error. Crashes before the CURRENT rename
	// leave the old generation; crashes after it (e.g. during generation
	// GC) legitimately serve the new one.
	alphaDir := filepath.Join(dir, "alpha")
	probe := store.NewFlakyFS(store.OS, store.FlakyOptions{})
	scratch := t.TempDir()
	if err := rank.SaveFS(probe, filepath.Join(scratch, "alpha"), altMemberIndex(t)); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()
	if ops < 5 {
		t.Fatalf("save performed only %d mutating ops — FlakyFS sweep is vacuous", ops)
	}
	sawOld := false
	for step := 1; step <= ops; step++ {
		ffs := store.NewFlakyFS(store.OS, store.FlakyOptions{FailAt: step, ShortWrite: step%2 == 0})
		saveErr := rank.SaveFS(ffs, alphaDir, altMemberIndex(t))
		if saveErr == nil && !ffs.Crashed() {
			t.Fatalf("step %d: FlakyFS never crashed — op count shrank?", step)
		}
		if st := reload(t); st != http.StatusOK {
			t.Fatalf("step %d: reload after crashed save = %d, want 200 (a committed generation serves)", step, st)
		}
		st, qr := query(t)
		if st != http.StatusOK {
			t.Fatalf("step %d: query after crashed save = %d", step, st)
		}
		if got := seqKeys(qr); got != baseKeys && got != altKeys {
			t.Fatalf("step %d: answers are neither old nor new content: %s", step, got)
		} else if got == baseKeys {
			sawOld = true
		}
		if h := srv.Health(); h.Repo == nil || h.Repo.Failed || h.Repo.Error != "" {
			t.Fatalf("step %d: repo health = %+v, want clean", step, h.Repo)
		}
	}
	if !sawOld {
		t.Fatal("no crash point left the old generation serving — sweep is not covering the pre-commit steps")
	}

	// Re-baseline: a late-crash sweep step may have legitimately committed
	// the alt content, so "old generation" from here on means whatever the
	// last successful reload is serving.
	st, cur := query(t)
	if st != http.StatusOK {
		t.Fatalf("post-sweep query = %d", st)
	}
	curKeys, curGen := seqKeys(cur), cur.Generation

	// A torn CURRENT (the non-atomic-rename disaster the format defends
	// against) must fail the reload closed: 409, error surfaced on
	// /repo/status, old generation still serving.
	currentPath := filepath.Join(alphaDir, "CURRENT")
	orig, err := os.ReadFile(currentPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(currentPath, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if st := reload(t); st != http.StatusConflict {
		t.Fatalf("reload with torn CURRENT = %d, want 409", st)
	}
	stResp, err := http.Get(ts.URL + "/repo/status")
	if err != nil {
		t.Fatal(err)
	}
	var rh RepoHealth
	if err := json.NewDecoder(stResp.Body).Decode(&rh); err != nil {
		t.Fatalf("bad repo status: %v", err)
	}
	stResp.Body.Close()
	if !rh.Failed || rh.Error == "" {
		t.Fatalf("repo status after failed reload = %+v, want Failed with Error message", rh)
	}
	if st, qr := query(t); st != http.StatusOK || seqKeys(qr) != curKeys || qr.Generation != curGen {
		t.Fatalf("old generation stopped serving after failed reload: status %d gen %d, want gen %d", st, qr.Generation, curGen)
	}

	// Restoring the commit pointer recovers: reload succeeds and the
	// error clears.
	if err := os.WriteFile(currentPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if st := reload(t); st != http.StatusOK {
		t.Fatalf("reload after repair = %d, want 200", st)
	}
	if h := srv.Health(); h.Repo == nil || h.Repo.Failed || h.Repo.Error != "" {
		t.Fatalf("repo health after repair = %+v, want clean", h.Repo)
	}

	// A clean (non-crashed) save of the new member commits: the reload
	// must now swap to the new content — proving the sweep above asserted
	// "unchanged" for the right reason.
	if err := rank.Save(alphaDir, altMemberIndex(t)); err != nil {
		t.Fatal(err)
	}
	if st := reload(t); st != http.StatusOK {
		t.Fatalf("reload after committed save = %d", st)
	}
	if _, qr := query(t); seqKeys(qr) == baseKeys {
		t.Fatal("committed member update did not change answers — reload swap is a no-op")
	}
}
