// Package server exposes the query engine over HTTP: statements of the
// SQL-like dialect are POSTed to /query and executed against the benchmark
// datasets — streaming (SVAQ/SVAQD) or ranked offline (RVAQ with lazy
// ingestion) according to the statement's plan.
//
// The serving path is hardened for unattended operation: every query runs
// under a deadline and the client's cancellation, admission control bounds
// the number of concurrent queries (excess requests wait briefly, then get
// 429 with Retry-After), request bodies are size-limited, and handler panics
// are contained and reported as JSON 500s instead of tearing down the
// connection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/plan"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// Config parameterises a server instance.
type Config struct {
	// Scale and Seed control the benchmark datasets served.
	Scale float64
	Seed  int64

	// QueryTimeout bounds the execution of one query; 0 means 30s and a
	// negative value disables the deadline (the client's disconnect still
	// cancels).
	QueryTimeout time.Duration
	// MaxConcurrent bounds the queries executing at once; 0 means 8.
	MaxConcurrent int
	// QueueDepth bounds how many requests may wait for an execution slot
	// beyond MaxConcurrent; 0 means 16. Requests beyond the queue are
	// rejected immediately with 429.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// giving up with 429; 0 means 2s.
	QueueWait time.Duration
	// MaxBodyBytes bounds the /query request body; 0 means 1 MiB.
	MaxBodyBytes int64

	// Workers bounds the videos a /query/batch fleet evaluates concurrently;
	// <= 0 means GOMAXPROCS. A request's "workers" field, when positive,
	// overrides it per batch.
	Workers int

	// RepoDir, when set, answers offline (RVAQ) statements from the saved
	// repository at that directory instead of lazily ingesting the
	// synthetic datasets. Call Reload (or POST /repo/reload) to load it and
	// to pick up newly committed generations without restarting.
	RepoDir string

	// ShardName, when set, marks this process as one shard of a cluster:
	// every response carries it in the X-SVQ-Shard header and /healthz
	// reports it, so a coordinator (and an operator reading traces) can
	// attribute answers to shards.
	ShardName string

	// Cascade runs the detectors as tiered cascades: a recall-complete
	// distilled cheap tier in front of each accurate model, with the
	// planner pricing per-query tier decisions. Results are identical to
	// the accurate models alone; only cost and the tier observability
	// change.
	Cascade bool
	// InferenceBudget caps the simulated inference cost of one online
	// query; 0 means unlimited. A request's budget_ms field, when positive,
	// overrides it per query. Exhaustion degrades gracefully: remaining
	// clips are skipped-and-flagged and the plan report carries the budget
	// block.
	InferenceBudget time.Duration

	// Fault, when set, wraps the detection models with the fault injector —
	// the operational testbed for the retry and skip-and-flag machinery.
	// With Cascade it composes per tier: each tier keeps its own fault
	// realisation and its own retry budget.
	Fault *detect.FaultConfig
	// Retry and FailureBudget configure the engines built per query; zero
	// values take the core defaults.
	Retry         detect.RetryConfig
	FailureBudget float64

	// Logger receives structured operational log lines (one per query,
	// plus panic reports); nil means slog.Default().
	Logger *slog.Logger

	// Registry receives the server's metrics and serves /metrics; nil means
	// a fresh registry per server, keeping test instances independent.
	Registry *obs.Registry

	// Traces is the retained trace store behind /debug/traces (errors,
	// degraded answers, tail latency, and a sampled remainder); nil means a
	// default-sized one.
	Traces *obs.TraceStore
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Traces == nil {
		c.Traces = obs.NewTraceStore(obs.TraceStoreConfig{})
	}
	return c
}

// Server resolves query sources against the benchmark datasets and caches
// offline indexes per source. It is safe for concurrent use.
type Server struct {
	cfg    Config
	models detect.Models
	start  time.Time
	log    *slog.Logger
	reg    *obs.Registry
	traces *obs.TraceStore

	// sem holds one token per admitted query. The admission and outcome
	// counters live on the registry, so /healthz and /metrics read the same
	// instruments.
	sem      chan struct{}
	waiting  *obs.Gauge
	inflight *obs.Gauge
	served   *obs.Counter
	rejected *obs.Counter
	panics   *obs.Counter

	// latency is the end-to-end /query execution histogram; rankSorted and
	// rankRandom accumulate offline score-table accesses across queries.
	latency    *obs.Histogram
	rankSorted *obs.Counter
	rankRandom *obs.Counter

	// Predicate-planner instruments, fed from every query's plan report
	// (online, offline and batch alike).
	planQueries *obs.Counter
	planReplans *obs.Counter
	planSkipped *obs.Counter
	planSavedMS *obs.Counter

	// Tier instruments: queries whose plan carried a detector cascade,
	// units escalated past their entry tier, and inference-budget outcomes.
	planTierQueries     *obs.Counter
	planTierEscalations *obs.Counter
	planBudgetSkipped   *obs.Counter
	planBudgetExhausted *obs.Counter

	// Fleet instruments: batches served, end-to-end batch latency, and
	// per-outcome video counts across every /query/batch fleet.
	fleetBatches *obs.Counter
	fleetLatency *obs.Histogram
	fleetVideos  map[string]*obs.Counter

	// meter is the process-lifetime inference meter every engine charges
	// (wired through core.Config.Meter, so ingestion engines deep inside
	// rank charge it too).
	meter detect.Meter

	// Repository serving state (see repo.go): the live refcounted handle,
	// whether the last reload failed, and the durability instruments.
	repoMu         sync.Mutex
	repo           *repoHandle
	repoFailed     bool
	repoErr        string
	repoLoadedAt   time.Time
	repoGeneration *obs.Gauge
	repoMembers    *obs.Gauge
	repoReloads    map[string]*obs.Counter
	repoCorruption *obs.Counter
	repoRecoveries *obs.Counter

	once    sync.Once
	youtube *synth.Dataset
	movies  *synth.Dataset

	mu      sync.Mutex
	streams map[string]detect.TruthVideo
	indexes map[string]*rank.Index
}

// New creates a server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	models := buildModels(cfg)
	s := &Server{
		cfg:     cfg,
		models:  models,
		start:   time.Now(),
		log:     cfg.Logger,
		reg:     cfg.Registry,
		traces:  cfg.Traces,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		streams: map[string]detect.TruthVideo{},
		indexes: map[string]*rank.Index{},
	}
	r := s.reg
	s.waiting = r.Gauge("svqact_queries_waiting",
		"Requests queued for an execution slot.")
	s.inflight = r.Gauge("svqact_queries_inflight",
		"Queries currently executing.")
	s.served = r.Counter("svqact_queries_served_total",
		"Admitted queries whose handler completed (any status).")
	s.rejected = r.Counter("svqact_queries_rejected_total",
		"Requests rejected by admission control with 429.")
	s.panics = r.Counter("svqact_panics_total",
		"Handler panics contained by the recovery middleware.")
	s.latency = r.Histogram("svqact_query_duration_seconds",
		"End-to-end /query execution latency.", nil)
	s.rankSorted = r.Counter("svqact_rank_sorted_accesses_total",
		"Sorted score-table accesses performed by offline queries.")
	s.rankRandom = r.Counter("svqact_rank_random_accesses_total",
		"Random score-table accesses performed by offline queries.")
	s.planQueries = r.Counter("svqact_plan_queries_total",
		"Queries that executed with a predicate-ordering plan.")
	s.planReplans = r.Counter("svqact_plan_replans_total",
		"Times the adaptive predicate planner changed its evaluation order.")
	s.planSkipped = r.Counter("svqact_plan_skipped_evaluations_total",
		"Predicate evaluations avoided by short-circuiting under the plan.")
	s.planSavedMS = r.Counter("svqact_plan_saved_cost_ms_total",
		"Estimated simulated-inference milliseconds saved by plan short-circuiting.")
	s.planTierQueries = r.Counter("svqact_plan_tier_queries_total",
		"Queries whose plan priced detector cascade tiers.")
	s.planTierEscalations = r.Counter("svqact_plan_tier_escalations_total",
		"Units escalated past a cascade tier under the plan's tier decisions.")
	s.planBudgetSkipped = r.Counter("svqact_plan_tier_budget_skipped_clips_total",
		"Clips skipped-and-flagged after a query's inference budget ran out.")
	s.planBudgetExhausted = r.Counter("svqact_plan_tier_budget_exhausted_total",
		"Queries whose inference budget ran out before the stream did.")
	s.fleetBatches = r.Counter("svqact_fleet_batches_total",
		"Fleet evaluations served by /query/batch.")
	s.fleetLatency = r.Histogram("svqact_fleet_batch_duration_seconds",
		"End-to-end /query/batch fleet execution latency.", nil)
	s.fleetVideos = map[string]*obs.Counter{}
	for _, outcome := range []string{"ok", "degraded", "interrupted", "skipped", "error"} {
		s.fleetVideos[outcome] = r.Counter("svqact_fleet_videos_total",
			"Videos evaluated by /query/batch fleets, by outcome.",
			obs.L("outcome", outcome))
	}
	s.repoGeneration = r.Gauge("svqact_repo_generation",
		"Highest committed generation across the loaded repository's members.")
	s.repoMembers = r.Gauge("svqact_repo_members",
		"Member indexes in the loaded repository.")
	s.repoReloads = map[string]*obs.Counter{}
	for _, outcome := range []string{"ok", "error"} {
		s.repoReloads[outcome] = r.Counter("svqact_repo_reloads_total",
			"Repository reload attempts, by outcome.",
			obs.L("outcome", outcome))
	}
	s.repoCorruption = r.Counter("svqact_repo_corruption_total",
		"Repository reloads rejected because of a failed integrity check.")
	s.repoRecoveries = r.Counter("svqact_repo_recoveries_total",
		"Successful repository reloads that followed a failed one.")
	r.GaugeFunc("svqact_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.meter.Register(r)
	s.traces.Register(r)
	return s
}

// buildModels assembles the serving detection models: the base simulated
// models, optionally stacked into distilled cascades, optionally wrapped
// with the fault injector. Fault decorators compose per tier, so under
// -cascade each tier carries its own fault realisation and retry budget.
func buildModels(cfg Config) detect.Models {
	var obj detect.ObjectDetector = detect.NewObjectDetector(detect.MaskRCNN, cfg.Seed)
	var act detect.ActionRecognizer = detect.NewActionRecognizer(detect.I3D, cfg.Seed)
	if !cfg.Cascade {
		models := detect.NewModels(obj, act)
		if cfg.Fault != nil {
			models.Objects = detect.InjectObjectFaults(models.Objects, *cfg.Fault)
			models.Actions = detect.InjectActionFaults(models.Actions, *cfg.Fault)
		}
		return models
	}
	var objCheap detect.ObjectDetector = detect.NewDistilledObjectDetector(obj, detect.DistilledRCNN, cfg.Seed)
	var actCheap detect.ActionRecognizer = detect.NewDistilledActionRecognizer(act, detect.DistilledI3D, cfg.Seed)
	if cfg.Fault != nil {
		objCheap = detect.InjectObjectFaults(objCheap, *cfg.Fault)
		obj = detect.InjectObjectFaults(obj, *cfg.Fault)
		actCheap = detect.InjectActionFaults(actCheap, *cfg.Fault)
		act = detect.InjectActionFaults(act, *cfg.Fault)
	}
	return detect.NewModels(
		detect.NewObjectCascade(
			detect.ObjectTier{Detector: objCheap, Band: detect.RecallBand(), PriorEscalate: detect.DistilledRCNN.EscalationPrior(detect.RecallBand())},
			detect.ObjectTier{Detector: obj},
		),
		detect.NewActionCascade(
			detect.ActionTier{Recognizer: actCheap, Band: detect.RecallBand(), PriorEscalate: detect.DistilledI3D.EscalationPrior(detect.RecallBand())},
			detect.ActionTier{Recognizer: act},
		),
	)
}

// Registry returns the server's metrics registry (the one /metrics serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// observePlan folds one query's plan report into the planner instruments.
func (s *Server) observePlan(rep *plan.Report) {
	if rep == nil {
		return
	}
	s.planQueries.Inc()
	s.planReplans.Add(int64(rep.Replans))
	s.planSkipped.Add(rep.SkippedEvaluations)
	s.planSavedMS.Add(int64(rep.SavedCostMS))
	if rep.Tiered {
		s.planTierQueries.Inc()
		var escalated int64
		for _, n := range rep.Nodes {
			for _, t := range n.Tiers {
				escalated += t.Escalated
			}
		}
		s.planTierEscalations.Add(escalated)
	}
	if b := rep.Budget; b != nil {
		s.planBudgetSkipped.Add(b.SkippedClips)
		if b.Exhausted {
			s.planBudgetExhausted.Inc()
		}
	}
}

func (s *Server) engineConfig() core.Config {
	cfg := core.DefaultConfig()
	if s.cfg.Retry.Attempts > 0 {
		cfg.Retry = s.cfg.Retry
	}
	if s.cfg.FailureBudget > 0 {
		cfg.FailureBudget = s.cfg.FailureBudget
	}
	cfg.InferenceBudget = s.cfg.InferenceBudget
	cfg.Meter = &s.meter
	return cfg
}

func (s *Server) datasets() (*synth.Dataset, *synth.Dataset) {
	s.once.Do(func() {
		s.youtube = synth.YouTube(synth.Options{Scale: s.cfg.Scale, Seed: s.cfg.Seed})
		s.movies = synth.Movies(synth.Options{Scale: s.cfg.Scale, Seed: s.cfg.Seed})
	})
	return s.youtube, s.movies
}

// Sources lists the resolvable PROCESS sources.
func (s *Server) Sources() []string {
	yt, mv := s.datasets()
	var out []string
	for _, q := range yt.Queries {
		out = append(out, q.Name)
	}
	for _, v := range mv.Videos {
		out = append(out, v.ID())
	}
	sort.Strings(out)
	return out
}

// resolve maps a PROCESS source to a stream.
func (s *Server) resolve(name string) (detect.TruthVideo, error) {
	s.mu.Lock()
	if v, ok := s.streams[name]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	yt, mv := s.datasets()
	var stream detect.TruthVideo
	if v := mv.Video(name); v != nil {
		stream = v
	} else if spec := yt.Query(name); spec != nil {
		var vids []*synth.Video
		for _, v := range yt.Videos {
			if !v.ActionPresence(spec.Action).Empty() {
				vids = append(vids, v)
			}
		}
		c, err := synth.NewConcat(name, vids)
		if err != nil {
			return nil, err
		}
		stream = c
	} else {
		return nil, fmt.Errorf("unknown source %q", name)
	}
	s.mu.Lock()
	s.streams[name] = stream
	s.mu.Unlock()
	return stream, nil
}

// index lazily ingests a source for offline queries.
func (s *Server) index(ctx context.Context, name string) (*rank.Index, error) {
	s.mu.Lock()
	if ix, ok := s.indexes[name]; ok {
		s.mu.Unlock()
		return ix, nil
	}
	s.mu.Unlock()
	stream, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	icfg := rank.DefaultIngestConfig()
	icfg.Core = s.engineConfig()
	var ix *rank.Index
	if c, ok := stream.(*synth.Concat); ok {
		var tvs []detect.TruthVideo
		for _, v := range c.Components() {
			tvs = append(tvs, v)
		}
		ix, err = rank.IngestAllParallel(ctx, name, tvs, s.models, rank.PaperScoring(), icfg, 0)
	} else {
		ix, err = rank.Ingest(ctx, stream, s.models, rank.PaperScoring(), icfg)
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.indexes[name] = ix
	s.mu.Unlock()
	return ix, nil
}

// QueryRequest is the /query request body.
type QueryRequest struct {
	// SQL is a statement of the dialect.
	SQL string `json:"sql"`
	// Algo selects the online algorithm: "svaqd" (default) or "svaq".
	Algo string `json:"algo,omitempty"`
	// K, when positive, overrides the statement's LIMIT for offline
	// (ranked) plans. A cluster coordinator uses it to pull a deeper
	// top-k from a shard during distributed-threshold refinement without
	// rewriting the SQL text.
	K int `json:"k,omitempty"`
	// BudgetMS, when positive, caps this online query's simulated
	// inference spend (overriding the server's -budget default). Past the
	// budget the query degrades gracefully — remaining clips are
	// skipped-and-flagged and the plan report carries the budget block —
	// instead of erroring.
	BudgetMS float64 `json:"budget_ms,omitempty"`
}

// Sequence is one result sequence. Repository-backed answers resolve clips
// to the member video and report member-local clip ids with no frame ranges
// (the repository stores clip score tables, not video geometry). Ranked
// answers additionally carry the score bounds (rank.Bounds): Lower == Upper
// when Exact, and a scatter-gather coordinator merges shards on the bounds
// rather than the point score.
type Sequence struct {
	StartClip  int     `json:"start_clip"`
	EndClip    int     `json:"end_clip"`
	StartFrame int     `json:"start_frame"`
	EndFrame   int     `json:"end_frame"`
	Score      float64 `json:"score,omitempty"`
	Video      string  `json:"video,omitempty"`
	Lower      float64 `json:"lower,omitempty"`
	Upper      float64 `json:"upper,omitempty"`
	Exact      bool    `json:"exact,omitempty"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	// QueryID identifies the query across the response, the X-Query-ID
	// header, the trace and the server log line.
	QueryID    string     `json:"query_id,omitempty"`
	Source     string     `json:"source"`
	Mode       string     `json:"mode"` // SVAQ, SVAQD or RVAQ
	Extended   bool       `json:"extended,omitempty"`
	K          int        `json:"k,omitempty"`
	Candidates int        `json:"candidates,omitempty"`
	NumClips   int        `json:"num_clips"`
	Sequences  []Sequence `json:"sequences"`
	// FlaggedClips counts clips skipped after detector retry exhaustion
	// (online modes with fault injection only).
	FlaggedClips int   `json:"flagged_clips,omitempty"`
	ElapsedMS    int64 `json:"elapsed_ms"`
	// RandomAccesses counts offline table accesses (RVAQ only).
	RandomAccesses int64 `json:"random_accesses,omitempty"`
	// Truncated reports that ranked candidates beyond the returned top-k
	// exist; ResidualUpper then bounds every omitted candidate's score —
	// the coordinator's distributed Blo_K pruning signal.
	Truncated     bool    `json:"truncated,omitempty"`
	ResidualUpper float64 `json:"residual_upper,omitempty"`
	// Generation is the repository generation that answered (repository-
	// backed offline statements only).
	Generation int `json:"generation,omitempty"`
	// Plan reports the predicate-ordering plan the query executed with:
	// adaptive or pinned, the chosen vs declared order, and per-predicate
	// cost and selectivity statistics. Ordering never changes results.
	Plan *plan.Report `json:"plan,omitempty"`
	// Trace is the query's span tree: per-predicate evaluation, ranking
	// traversal and ingestion stages with durations and attributes.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// BatchRequest is the /query/batch request body: one online statement
// evaluated over every video of the source as a fleet.
type BatchRequest struct {
	// SQL is a statement of the dialect; its PROCESS source names the video
	// repository (a query set fans out per component video).
	SQL string `json:"sql"`
	// Algo selects the online algorithm: "svaqd" (default) or "svaq".
	Algo string `json:"algo,omitempty"`
	// Workers bounds the videos evaluated concurrently; 0 means the
	// server's -workers setting (itself defaulting to GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// BatchVideo is one video's outcome within a /query/batch response.
type BatchVideo struct {
	ID string `json:"id"`
	// Outcome is ok, degraded, interrupted, skipped or error.
	Outcome        string     `json:"outcome"`
	NumClips       int        `json:"num_clips,omitempty"`
	ProcessedClips int        `json:"processed_clips,omitempty"`
	FlaggedClips   int        `json:"flagged_clips,omitempty"`
	Sequences      []Sequence `json:"sequences,omitempty"`
	Error          string     `json:"error,omitempty"`
	ElapsedMS      int64      `json:"elapsed_ms"`
	// Trace is this video's own span tree (trace ID = the batch query ID
	// suffixed with the video ID) — per-entry observability parity with
	// /query, whose responses always carry their trace.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// BatchResponse is the /query/batch response body: per-video results in
// repository order plus the fleet-level aggregate.
type BatchResponse struct {
	QueryID   string `json:"query_id,omitempty"`
	Source    string `json:"source"`
	Mode      string `json:"mode"`
	Workers   int    `json:"workers"`
	NumVideos int    `json:"num_videos"`

	OK          int `json:"ok"`
	Degraded    int `json:"degraded,omitempty"`
	Interrupted int `json:"interrupted,omitempty"`
	Skipped     int `json:"skipped,omitempty"`
	Failed      int `json:"failed,omitempty"`

	TotalSequences int `json:"total_sequences"`
	FlaggedClips   int `json:"flagged_clips,omitempty"`

	// Plan is the fleet-cumulative report of the shared predicate planner
	// every video's run warm-started from.
	Plan *plan.Report `json:"plan,omitempty"`

	Videos    []BatchVideo `json:"videos"`
	ElapsedMS int64        `json:"elapsed_ms"`
	// Error is set when the fleet as a whole was cut short (the per-video
	// entries still carry whatever completed).
	Error string `json:"error,omitempty"`
	// Trace is the fleet span tree: one span per video plus the fleet root.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

type errorResponse struct {
	Error   string `json:"error"`
	QueryID string `json:"query_id,omitempty"`
	// Processed/Total report partial progress for interrupted or degraded
	// queries (clips processed before the query stopped).
	Processed int `json:"processed,omitempty"`
	Total     int `json:"total,omitempty"`
}

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	Shard         string  `json:"shard,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Inflight      int64   `json:"inflight"`
	Waiting       int64   `json:"waiting"`
	Capacity      int     `json:"capacity"`
	QueueDepth    int     `json:"queue_depth"`
	Served        uint64  `json:"served"`
	Rejected      uint64  `json:"rejected"`
	Panics        uint64  `json:"panics"`
	// Repo describes the loaded repository when serving one (-repo).
	Repo *RepoHealth `json:"repo,omitempty"`
}

// Health reports the server's live admission counters. It reads the same
// registry-backed instruments /metrics scrapes, so the two views agree.
func (s *Server) Health() Health {
	return Health{
		Status:        "ok",
		Shard:         s.cfg.ShardName,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Inflight:      s.inflight.Value(),
		Waiting:       s.waiting.Value(),
		Capacity:      s.cfg.MaxConcurrent,
		QueueDepth:    s.cfg.QueueDepth,
		Served:        uint64(s.served.Value()),
		Rejected:      uint64(s.rejected.Value()),
		Panics:        uint64(s.panics.Value()),
		Repo:          s.repoHealth(),
	}
}

// Handler returns the HTTP handler. Every route runs under the
// panic-recovery middleware; /query additionally runs under admission
// control, the body size limit, and the per-query deadline.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("/sources", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
			return
		}
		writeJSON(w, http.StatusOK, map[string][]string{"sources": s.Sources()})
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/traces", s.traces.Handler())
	mux.Handle("/debug/traces/", s.traces.Handler())
	mux.HandleFunc("/repo/reload", s.handleRepoReload)
	mux.HandleFunc("/repo/status", s.handleRepoStatus)
	mux.Handle("/query", s.admit(http.HandlerFunc(s.handleQuery)))
	mux.Handle("/query/batch", s.admit(http.HandlerFunc(s.handleBatch)))
	var h http.Handler = mux
	if s.cfg.ShardName != "" {
		h = s.shardHeader(h)
	}
	return s.recover(h)
}

// shardHeader stamps every response with this process's shard identity.
func (s *Server) shardHeader(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-SVQ-Shard", s.cfg.ShardName)
		next.ServeHTTP(w, r)
	})
}

// recover converts handler panics into JSON 500s with a logged stack,
// keeping one poisoned request from crashing the process. Panics raised by
// the net/http machinery itself to abort a connection are re-raised.
func (s *Server) recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Inc()
			s.log.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Best-effort: if the handler already wrote, this is a no-op.
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
		}()
		next.ServeHTTP(w, r)
	})
}

// admit applies the admission controller: at most MaxConcurrent queries
// execute, at most QueueDepth more wait up to QueueWait for a slot, and
// everything beyond that is rejected with 429 + Retry-After.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
			s.waiting.Add(-1)
			s.reject(w, "queue full")
			return
		}
		timer := time.NewTimer(s.cfg.QueueWait)
		defer timer.Stop()
		select {
		case s.sem <- struct{}{}:
			s.waiting.Add(-1)
		case <-timer.C:
			s.waiting.Add(-1)
			s.reject(w, "saturated")
			return
		case <-r.Context().Done():
			s.waiting.Add(-1)
			return // client gone; nothing to write
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		// The query is admitted: mint its ID and trace here so queueing
		// time is excluded but everything the handler does is covered. A
		// well-formed inbound X-Query-ID (a coordinator fanning out to
		// this shard) is adopted so the whole scatter shares one ID
		// across coordinator and shard logs, traces and responses.
		qid := r.Header.Get("X-Query-ID")
		if !queryIDRe.MatchString(qid) {
			qid = obs.NewQueryID()
		}
		w.Header().Set("X-Query-ID", qid)
		trace := obs.NewTrace(qid)
		// A coordinator attempt names its own span in X-SVQ-Parent-Span;
		// recording it lets an operator correlate this shard-local trace
		// with the coordinator span that requested it.
		if ps := r.Header.Get("X-SVQ-Parent-Span"); obs.ValidSpanRef(ps) {
			trace.SetRemoteParent(ps)
		}
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		next.ServeHTTP(w, r)
		s.served.Inc()
	})
}

// queryIDRe is the shape of IDs minted by obs.NewQueryID; only inbound
// X-Query-ID headers matching it are adopted for cross-tier correlation.
var queryIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

func (s *Server) reject(w http.ResponseWriter, why string) {
	s.rejected.Inc()
	retry := s.cfg.QueueWait.Seconds()
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retry)))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server " + why + "; retry later"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	trace := obs.TraceFrom(r.Context())
	qid := trace.ID()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", QueryID: qid})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error(), QueryID: qid})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error(), QueryID: qid})
		return
	}
	st, err := sqlq.Parse(req.SQL)
	if err == nil {
		var plan sqlq.Plan
		if plan, err = st.Plan(); err == nil {
			s.runQuery(w, r, plan, req, qid, trace)
			return
		}
	}
	s.logQuery(qid, req.SQL, err, http.StatusBadRequest, 0)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), QueryID: qid})
}

// handleBatch executes one online statement over every video of the source
// as a bounded-concurrency fleet (core.RunAll): per-video results stream into
// the fleet aggregate, per-video outcomes feed the fleet metrics, and the
// response carries the fleet trace with one span per video.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	trace := obs.TraceFrom(r.Context())
	qid := trace.ID()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", QueryID: qid})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error(), QueryID: qid})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error(), QueryID: qid})
		return
	}
	badRequest := func(err error) {
		s.logQuery(qid, req.SQL, err, http.StatusBadRequest, 0)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), QueryID: qid})
	}
	st, err := sqlq.Parse(req.SQL)
	if err != nil {
		badRequest(err)
		return
	}
	plan, err := st.Plan()
	if err != nil {
		badRequest(err)
		return
	}
	if !plan.Online {
		badRequest(fmt.Errorf("batch evaluation requires an online (streaming) statement; offline top-k queries use /query"))
		return
	}
	if plan.Extended {
		badRequest(fmt.Errorf("batch evaluation supports the basic one-action conjunction only"))
		return
	}

	cfg := s.engineConfig()
	var eng *core.Engine
	switch req.Algo {
	case "", "svaqd":
		eng, err = core.NewSVAQD(s.models, cfg)
	case "svaq":
		eng, err = core.NewSVAQ(s.models, cfg)
	default:
		badRequest(fmt.Errorf("unknown algorithm %q", req.Algo))
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), QueryID: qid})
		return
	}

	stream, err := s.resolve(plan.Source)
	if err != nil {
		s.logQuery(qid, req.SQL, err, http.StatusNotFound, 0)
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), QueryID: qid})
		return
	}
	var vids []detect.TruthVideo
	if c, ok := stream.(*synth.Concat); ok {
		for _, v := range c.Components() {
			vids = append(vids, v)
		}
	} else {
		vids = []detect.TruthVideo{stream}
	}

	workers := s.cfg.Workers
	if req.Workers > 0 {
		workers = req.Workers
	}

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	fr, fleetErr := eng.RunAll(ctx, vids, plan.Query, core.FleetOptions{Workers: workers, PerVideoTrace: true})
	elapsed := time.Since(start)
	s.fleetLatency.ObserveDuration(elapsed)
	if fr == nil {
		// Validation failure before any dispatch (bad query shape).
		badRequest(fleetErr)
		return
	}
	s.fleetBatches.Inc()

	resp := &BatchResponse{
		QueryID: qid, Source: plan.Source, Mode: eng.Mode().String(),
		Workers: workers, NumVideos: len(fr.Videos),
		OK: fr.OK, Degraded: fr.Degraded, Interrupted: fr.Interrupted,
		Skipped: fr.Skipped, Failed: fr.Failed,
		TotalSequences: fr.TotalSequences, FlaggedClips: fr.FlaggedClips,
		Plan:      fr.Plan,
		ElapsedMS: elapsed.Milliseconds(),
	}
	s.observePlan(fr.Plan)
	for _, vr := range fr.Videos {
		outcome := vr.Outcome()
		if c := s.fleetVideos[outcome]; c != nil {
			c.Inc()
		}
		bv := BatchVideo{ID: vr.ID, Outcome: outcome, ElapsedMS: vr.Elapsed.Milliseconds(), Trace: vr.Trace.Snapshot()}
		if vr.Err != nil {
			bv.Error = vr.Err.Error()
		}
		if res := vr.Result; res != nil {
			bv.NumClips = res.NumClips
			bv.ProcessedClips = res.Processed
			bv.FlaggedClips = res.Flagged.TotalLen()
			for _, iv := range res.Sequences.Intervals() {
				fr := res.Geometry.FrameRangeOfClips(iv)
				bv.Sequences = append(bv.Sequences, Sequence{
					StartClip: iv.Start, EndClip: iv.End,
					StartFrame: fr.Start, EndFrame: fr.End,
				})
			}
		}
		resp.Videos = append(resp.Videos, bv)
	}
	resp.Trace = trace.Snapshot()

	status := http.StatusOK
	if fleetErr != nil {
		// The fleet was cut short (deadline or disconnect): report 504 with
		// the partial per-video results attached.
		resp.Error = fleetErr.Error()
		status = http.StatusGatewayTimeout
	}
	s.logQuery(qid, req.SQL, fleetErr, status, elapsed)
	s.offerTrace(resp.Trace, req.SQL, queryOutcome(fleetErr, status))
	writeJSON(w, status, resp)
}

// runQuery executes a planned statement, observing the latency histogram,
// emitting the per-query log line, and attaching the trace to the response.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, plan sqlq.Plan, req QueryRequest, qid string, trace *obs.Trace) {
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	resp, err := s.execute(ctx, plan, req.Algo, req.K, req.BudgetMS)
	elapsed := time.Since(start)
	s.latency.ObserveDuration(elapsed)
	if err != nil {
		status, body := errorStatus(err)
		body.QueryID = qid
		s.logQuery(qid, req.SQL, err, status, elapsed)
		s.offerTrace(trace.Snapshot(), req.SQL, queryOutcome(err, status))
		writeJSON(w, status, body)
		return
	}
	resp.QueryID = qid
	resp.Trace = trace.Snapshot()
	s.logQuery(qid, req.SQL, nil, http.StatusOK, elapsed)
	s.offerTrace(resp.Trace, req.SQL, "ok")
	writeJSON(w, http.StatusOK, resp)
}

// offerTrace hands a finished query's trace to the retained store and emits
// the one-line slow/degraded-query log record when it is kept for cause
// (anything but routine sampling).
func (s *Server) offerTrace(snap *obs.TraceSnapshot, sql, outcome string) {
	if snap == nil {
		return
	}
	reason, retained := s.traces.Offer(snap, obs.TraceMeta{SQL: sql, Outcome: outcome})
	if retained && reason != "sampled" {
		s.log.Warn("trace retained", "trace_id", snap.QueryID, "reason", reason,
			"outcome", outcome, "duration_ms", snap.DurationMS, "sql_digest", obs.SQLDigest(sql))
	}
}

// logQuery emits the structured per-query log line: query ID, statement,
// outcome class and degraded/interrupted status.
func (s *Server) logQuery(qid, stmt string, err error, status int, elapsed time.Duration) {
	var ie *core.InterruptedError
	var de *core.DegradedError
	interrupted := errors.As(err, &ie)
	degraded := errors.As(err, &de)
	outcome := queryOutcome(err, status)
	attrs := []any{
		"query_id", qid, "statement", stmt, "outcome", outcome,
		"degraded", degraded, "interrupted", interrupted,
		"status", status, "elapsed_ms", elapsed.Milliseconds(),
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		s.log.Warn("query", attrs...)
		return
	}
	s.log.Info("query", attrs...)
}

// queryOutcome classifies a finished query for the log line and the
// retained trace store: "ok", "interrupted", "degraded", "bad_request" or
// "error".
func queryOutcome(err error, status int) string {
	var ie *core.InterruptedError
	var de *core.DegradedError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &ie):
		return "interrupted"
	case errors.As(err, &de):
		return "degraded"
	case status == http.StatusBadRequest:
		return "bad_request"
	}
	return "error"
}

// errorStatus maps execution errors to HTTP statuses: unknown sources are
// 404, interrupted queries (deadline or disconnect) are 504 with partial
// progress, degraded queries (failure budget exceeded) are 502, and
// everything else is 500.
func errorStatus(err error) (int, errorResponse) {
	var nf notFoundError
	if errors.As(err, &nf) {
		return http.StatusNotFound, errorResponse{Error: err.Error()}
	}
	var ie *core.InterruptedError
	if errors.As(err, &ie) {
		return http.StatusGatewayTimeout, errorResponse{Error: err.Error(), Processed: ie.Processed, Total: ie.Total}
	}
	var de *core.DegradedError
	if errors.As(err, &de) {
		return http.StatusBadGateway, errorResponse{Error: err.Error(), Processed: de.Processed, Total: de.Total}
	}
	return http.StatusInternalServerError, errorResponse{Error: err.Error()}
}

type notFoundError struct{ error }

func (s *Server) execute(ctx context.Context, plan sqlq.Plan, algo string, kOverride int, budgetMS float64) (*QueryResponse, error) {
	start := time.Now()
	if kOverride > 0 && !plan.Online {
		plan.K = kOverride
	}
	resp := &QueryResponse{Source: plan.Source}
	var stream detect.TruthVideo
	var g video.Geometry
	var err error
	if plan.Online || s.cfg.RepoDir == "" {
		// Repository-backed offline statements never touch the synthetic
		// datasets, so their PROCESS source is not resolved against them.
		stream, err = s.resolve(plan.Source)
		if err != nil {
			return nil, notFoundError{err}
		}
		g = stream.Geometry()
	}

	if plan.Online {
		cfg := s.engineConfig()
		if budgetMS > 0 {
			cfg.InferenceBudget = time.Duration(budgetMS * float64(time.Millisecond))
		}
		var eng *core.Engine
		switch algo {
		case "", "svaqd":
			eng, err = core.NewSVAQD(s.models, cfg)
		case "svaq":
			eng, err = core.NewSVAQ(s.models, cfg)
		default:
			return nil, notFoundError{fmt.Errorf("unknown algorithm %q", algo)}
		}
		if err != nil {
			return nil, err
		}
		resp.Mode = eng.Mode().String()
		if plan.Extended {
			res, err := eng.RunCNF(ctx, stream, plan.CNF)
			if err != nil {
				return nil, err
			}
			resp.Extended = true
			resp.NumClips = res.NumClips
			resp.FlaggedClips = res.Flagged.TotalLen()
			for _, iv := range res.Sequences.Intervals() {
				fr := g.FrameRangeOfClips(iv)
				resp.Sequences = append(resp.Sequences, Sequence{
					StartClip: iv.Start, EndClip: iv.End,
					StartFrame: fr.Start, EndFrame: fr.End,
				})
			}
		} else {
			res, err := eng.Run(ctx, stream, plan.Query)
			if err != nil {
				return nil, err
			}
			resp.NumClips = res.NumClips
			resp.FlaggedClips = res.Flagged.TotalLen()
			resp.Plan = res.Plan
			s.observePlan(res.Plan)
			for _, iv := range res.Sequences.Intervals() {
				fr := g.FrameRangeOfClips(iv)
				resp.Sequences = append(resp.Sequences, Sequence{
					StartClip: iv.Start, EndClip: iv.End,
					StartFrame: fr.Start, EndFrame: fr.End,
				})
			}
		}
	} else if s.cfg.RepoDir != "" {
		// Repository-backed: rank over the whole saved repository (the
		// merged clip space spans every member; the PROCESS source names
		// the repository view, not one synthetic stream). A reference on
		// the handle keeps the generation's files open across a reload.
		h := s.acquireRepo()
		if h == nil {
			return nil, fmt.Errorf("repository %s is not loaded (last reload failed?)", s.cfg.RepoDir)
		}
		defer h.release()
		m, err := h.repo.Merged()
		if err != nil {
			return nil, err
		}
		var res *rank.Result
		if plan.Extended {
			res, err = rank.RVAQCNF(ctx, m, plan.CNF, plan.K, rank.Options{})
			resp.Extended = true
		} else {
			res, err = rank.RVAQ(ctx, m, plan.Query, plan.K, rank.Options{})
		}
		if err != nil {
			var miss *rank.NotIngestedError
			if s.cfg.ShardName != "" && errors.As(err, &miss) {
				// A shard holds only its own videos' vocabulary: a
				// predicate type this shard never ingested means "no
				// candidates here", not a client error — other shards
				// of the repository may hold it. Record the empty top-k
				// stage on the trace so the assembled cluster tree shows
				// why this shard contributed nothing.
				sp := obs.StartSpan(ctx, "rank.topk")
				sp.SetAttr("candidates", 0)
				sp.SetAttr("not_ingested", miss.Error())
				sp.End()
				resp.Mode = "RVAQ"
				resp.K = plan.K
				resp.NumClips = m.NumClips
				resp.Generation = m.Generation
				if resp.Generation == 0 {
					resp.Generation = h.repo.MaxGeneration()
				}
				resp.ElapsedMS = time.Since(start).Milliseconds()
				return resp, nil
			}
			return nil, err
		}
		s.rankSorted.Add(res.Stats.Sorted)
		s.rankRandom.Add(res.Stats.Random)
		resp.Plan = res.Plan
		s.observePlan(res.Plan)
		resp.Mode = res.Algorithm
		resp.K = plan.K
		resp.Candidates = res.Candidates
		resp.NumClips = m.NumClips
		resp.RandomAccesses = res.Stats.Random
		resp.Truncated = res.Truncated
		resp.ResidualUpper = res.ResidualUpper
		resp.Generation = m.Generation
		if resp.Generation == 0 {
			resp.Generation = h.repo.MaxGeneration()
		}
		for _, sr := range res.Sequences {
			vid, local := m.Resolve(sr.Seq.Start)
			resp.Sequences = append(resp.Sequences, Sequence{
				StartClip: local, EndClip: local + sr.Seq.Len() - 1,
				Video: vid, Score: sr.Score(),
				Lower: sr.Lower, Upper: sr.Upper, Exact: sr.Exact,
			})
		}
	} else {
		ix, err := s.index(ctx, plan.Source)
		if err != nil {
			return nil, err
		}
		var res *rank.Result
		if plan.Extended {
			res, err = rank.RVAQCNF(ctx, ix, plan.CNF, plan.K, rank.Options{})
			resp.Extended = true
		} else {
			res, err = rank.RVAQ(ctx, ix, plan.Query, plan.K, rank.Options{})
		}
		if err != nil {
			return nil, err
		}
		s.rankSorted.Add(res.Stats.Sorted)
		s.rankRandom.Add(res.Stats.Random)
		resp.Plan = res.Plan
		s.observePlan(res.Plan)
		resp.Mode = res.Algorithm
		resp.K = plan.K
		resp.Candidates = res.Candidates
		resp.NumClips = ix.NumClips
		resp.RandomAccesses = res.Stats.Random
		resp.Truncated = res.Truncated
		resp.ResidualUpper = res.ResidualUpper
		for _, sr := range res.Sequences {
			fr := g.FrameRangeOfClips(sr.Seq)
			resp.Sequences = append(resp.Sequences, Sequence{
				StartClip: sr.Seq.Start, EndClip: sr.Seq.End,
				StartFrame: fr.Start, EndFrame: fr.End,
				Score: sr.Score(),
				Lower: sr.Lower, Upper: sr.Upper, Exact: sr.Exact,
			})
		}
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	return resp, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
