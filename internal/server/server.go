// Package server exposes the query engine over HTTP: statements of the
// SQL-like dialect are POSTed to /query and executed against the benchmark
// datasets — streaming (SVAQ/SVAQD) or ranked offline (RVAQ with lazy
// ingestion) according to the statement's plan.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
	"svqact/internal/synth"
)

// Config parameterises a server instance.
type Config struct {
	// Scale and Seed control the benchmark datasets served.
	Scale float64
	Seed  int64
}

// Server resolves query sources against the benchmark datasets and caches
// offline indexes per source. It is safe for concurrent use.
type Server struct {
	cfg    Config
	models detect.Models

	once    sync.Once
	youtube *synth.Dataset
	movies  *synth.Dataset

	mu      sync.Mutex
	streams map[string]detect.TruthVideo
	indexes map[string]*rank.Index
}

// New creates a server.
func New(cfg Config) *Server {
	if cfg.Scale == 0 {
		cfg.Scale = 0.25
	}
	return &Server{
		cfg: cfg,
		models: detect.NewModels(
			detect.NewObjectDetector(detect.MaskRCNN, cfg.Seed),
			detect.NewActionRecognizer(detect.I3D, cfg.Seed),
		),
		streams: map[string]detect.TruthVideo{},
		indexes: map[string]*rank.Index{},
	}
}

func (s *Server) datasets() (*synth.Dataset, *synth.Dataset) {
	s.once.Do(func() {
		s.youtube = synth.YouTube(synth.Options{Scale: s.cfg.Scale, Seed: s.cfg.Seed})
		s.movies = synth.Movies(synth.Options{Scale: s.cfg.Scale, Seed: s.cfg.Seed})
	})
	return s.youtube, s.movies
}

// Sources lists the resolvable PROCESS sources.
func (s *Server) Sources() []string {
	yt, mv := s.datasets()
	var out []string
	for _, q := range yt.Queries {
		out = append(out, q.Name)
	}
	for _, v := range mv.Videos {
		out = append(out, v.ID())
	}
	sort.Strings(out)
	return out
}

// resolve maps a PROCESS source to a stream.
func (s *Server) resolve(name string) (detect.TruthVideo, error) {
	s.mu.Lock()
	if v, ok := s.streams[name]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	yt, mv := s.datasets()
	var stream detect.TruthVideo
	if v := mv.Video(name); v != nil {
		stream = v
	} else if spec := yt.Query(name); spec != nil {
		var vids []*synth.Video
		for _, v := range yt.Videos {
			if !v.ActionPresence(spec.Action).Empty() {
				vids = append(vids, v)
			}
		}
		c, err := synth.NewConcat(name, vids)
		if err != nil {
			return nil, err
		}
		stream = c
	} else {
		return nil, fmt.Errorf("unknown source %q", name)
	}
	s.mu.Lock()
	s.streams[name] = stream
	s.mu.Unlock()
	return stream, nil
}

// index lazily ingests a source for offline queries.
func (s *Server) index(name string) (*rank.Index, error) {
	s.mu.Lock()
	if ix, ok := s.indexes[name]; ok {
		s.mu.Unlock()
		return ix, nil
	}
	s.mu.Unlock()
	stream, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	var ix *rank.Index
	if c, ok := stream.(*synth.Concat); ok {
		var tvs []detect.TruthVideo
		for _, v := range c.Components() {
			tvs = append(tvs, v)
		}
		ix, err = rank.IngestAllParallel(name, tvs, s.models, rank.PaperScoring(), rank.DefaultIngestConfig(), 0)
	} else {
		ix, err = rank.Ingest(stream, s.models, rank.PaperScoring(), rank.DefaultIngestConfig())
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.indexes[name] = ix
	s.mu.Unlock()
	return ix, nil
}

// QueryRequest is the /query request body.
type QueryRequest struct {
	// SQL is a statement of the dialect.
	SQL string `json:"sql"`
	// Algo selects the online algorithm: "svaqd" (default) or "svaq".
	Algo string `json:"algo,omitempty"`
}

// Sequence is one result sequence.
type Sequence struct {
	StartClip  int     `json:"start_clip"`
	EndClip    int     `json:"end_clip"`
	StartFrame int     `json:"start_frame"`
	EndFrame   int     `json:"end_frame"`
	Score      float64 `json:"score,omitempty"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	Source     string     `json:"source"`
	Mode       string     `json:"mode"` // SVAQ, SVAQD or RVAQ
	Extended   bool       `json:"extended,omitempty"`
	K          int        `json:"k,omitempty"`
	Candidates int        `json:"candidates,omitempty"`
	NumClips   int        `json:"num_clips"`
	Sequences  []Sequence `json:"sequences"`
	ElapsedMS  int64      `json:"elapsed_ms"`
	// RandomAccesses counts offline table accesses (RVAQ only).
	RandomAccesses int64 `json:"random_accesses,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/sources", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
			return
		}
		writeJSON(w, http.StatusOK, map[string][]string{"sources": s.Sources()})
	})
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	st, err := sqlq.Parse(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	plan, err := st.Plan()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := s.execute(plan, req.Algo)
	if err != nil {
		status := http.StatusInternalServerError
		if _, ok := err.(notFoundError); ok {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type notFoundError struct{ error }

func (s *Server) execute(plan sqlq.Plan, algo string) (*QueryResponse, error) {
	start := time.Now()
	stream, err := s.resolve(plan.Source)
	if err != nil {
		return nil, notFoundError{err}
	}
	g := stream.Geometry()
	resp := &QueryResponse{Source: plan.Source}

	if plan.Online {
		cfg := core.DefaultConfig()
		var eng *core.Engine
		switch algo {
		case "", "svaqd":
			eng, err = core.NewSVAQD(s.models, cfg)
		case "svaq":
			eng, err = core.NewSVAQ(s.models, cfg)
		default:
			return nil, notFoundError{fmt.Errorf("unknown algorithm %q", algo)}
		}
		if err != nil {
			return nil, err
		}
		resp.Mode = eng.Mode().String()
		if plan.Extended {
			res, err := eng.RunCNF(stream, plan.CNF)
			if err != nil {
				return nil, err
			}
			resp.Extended = true
			resp.NumClips = res.NumClips
			for _, iv := range res.Sequences.Intervals() {
				fr := g.FrameRangeOfClips(iv)
				resp.Sequences = append(resp.Sequences, Sequence{
					StartClip: iv.Start, EndClip: iv.End,
					StartFrame: fr.Start, EndFrame: fr.End,
				})
			}
		} else {
			res, err := eng.Run(stream, plan.Query)
			if err != nil {
				return nil, err
			}
			resp.NumClips = res.NumClips
			for _, iv := range res.Sequences.Intervals() {
				fr := g.FrameRangeOfClips(iv)
				resp.Sequences = append(resp.Sequences, Sequence{
					StartClip: iv.Start, EndClip: iv.End,
					StartFrame: fr.Start, EndFrame: fr.End,
				})
			}
		}
	} else {
		ix, err := s.index(plan.Source)
		if err != nil {
			return nil, err
		}
		var res *rank.Result
		if plan.Extended {
			res, err = rank.RVAQCNF(ix, plan.CNF, plan.K, rank.Options{})
			resp.Extended = true
		} else {
			res, err = rank.RVAQ(ix, plan.Query, plan.K, rank.Options{})
		}
		if err != nil {
			return nil, err
		}
		resp.Mode = res.Algorithm
		resp.K = plan.K
		resp.Candidates = res.Candidates
		resp.NumClips = ix.NumClips
		resp.RandomAccesses = res.Stats.Random
		for _, sr := range res.Sequences {
			fr := g.FrameRangeOfClips(sr.Seq)
			resp.Sequences = append(resp.Sequences, Sequence{
				StartClip: sr.Seq.Start, EndClip: sr.Seq.End,
				StartFrame: fr.Start, EndFrame: fr.End,
				Score: sr.Score(),
			})
		}
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	return resp, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
