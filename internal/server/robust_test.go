package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"svqact/internal/detect"
)

const cheapQuery = `{"sql": "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID) WHERE act='blowing_leaves'"}`

var (
	// faultAll fails enough detector invocations to trip a tight budget;
	// faultSome flags a visible minority of clips but stays within the
	// default budget.
	faultAll  = detect.FaultConfig{PermanentRate: 0.5, Seed: 7}
	faultSome = detect.FaultConfig{PermanentRate: 0.05, Seed: 7}
)

func postQuery(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestSaturationRejectsWithRetryAfter: with the only execution slot taken
// and the queue wait elapsed, a request gets 429 + Retry-After within a
// bounded delay instead of hanging.
func TestSaturationRejectsWithRetryAfter(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42, MaxConcurrent: 1, QueueDepth: 1, QueueWait: 100 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only slot
	h := s.Handler()

	start := time.Now()
	rr := postQuery(h, cheapQuery)
	elapsed := time.Since(start)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", rr.Code, rr.Body)
	}
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("rejection took %v, want ~QueueWait", elapsed)
	}
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", rr.Header().Get("Retry-After"))
	}
	var body errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Errorf("429 body not a JSON error: %s", rr.Body)
	}
	if got := s.Health(); got.Rejected != 1 || got.Inflight != 0 || got.Waiting != 0 {
		t.Errorf("health after rejection = %+v", got)
	}
}

// TestQueueOverflowRejectsImmediately: once QueueDepth requests are already
// waiting, further requests are turned away without waiting at all.
func TestQueueOverflowRejectsImmediately(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42, MaxConcurrent: 1, QueueDepth: 1, QueueWait: 5 * time.Second})
	s.sem <- struct{}{} // occupy the only slot
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the one queue seat
		defer wg.Done()
		postQuery(h, `{`)
	}()
	for i := 0; s.waiting.Value() == 0; i++ {
		if i > 1000 {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	rr := postQuery(h, cheapQuery)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want instant 429", rr.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("overflow rejection took %v, want immediate", elapsed)
	}

	<-s.sem // free the slot; the queued request proceeds (bad JSON -> 400)
	wg.Wait()
	if got := s.Health(); got.Waiting != 0 || got.Inflight != 0 {
		t.Errorf("health after drain = %+v", got)
	}
}

// TestPanicRecoveryReturnsJSON500: a panicking handler produces a JSON 500,
// a log line with the stack, and a bumped panics counter — and the next
// request is served normally.
func TestPanicRecoveryReturnsJSON500(t *testing.T) {
	var logged strings.Builder
	s := New(Config{Scale: 0.05, Seed: 42,
		Logger: slog.New(slog.NewTextHandler(&logged, nil))})
	calls := 0
	h := s.recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "yes"})
	}))

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var body errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body not JSON: %s", rr.Body)
	}
	if !strings.Contains(body.Error, "boom") {
		t.Errorf("error = %q, want the panic value", body.Error)
	}
	if s.panics.Value() != 1 {
		t.Errorf("panics counter = %d", s.panics.Value())
	}
	if out := logged.String(); !strings.Contains(out, "boom") || !strings.Contains(out, "goroutine") {
		t.Errorf("panic not logged with stack: %q", out)
	}

	rr2 := httptest.NewRecorder()
	h.ServeHTTP(rr2, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rr2.Code != http.StatusOK {
		t.Errorf("request after panic: status = %d", rr2.Code)
	}
}

// TestPanicRecoveryReraisesAbortHandler: http.ErrAbortHandler keeps its
// net/http meaning and passes through the middleware.
func TestPanicRecoveryReraisesAbortHandler(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	h := s.recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler must be re-raised, not swallowed")
		}
		if s.panics.Value() != 0 {
			t.Error("ErrAbortHandler must not count as a handler panic")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/query", nil))
}

// TestQueryDeadlineReturns504: a tiny per-query deadline interrupts the run
// and surfaces partial progress in the 504 body.
func TestQueryDeadlineReturns504(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42, QueryTimeout: time.Nanosecond})
	rr := postQuery(s.Handler(), cheapQuery)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rr.Code, rr.Body)
	}
	var body errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("504 body not JSON: %s", rr.Body)
	}
	if body.Total == 0 {
		t.Errorf("504 body should report total clips: %+v", body)
	}
	if !strings.Contains(body.Error, "interrupted") {
		t.Errorf("error = %q, want an interruption message", body.Error)
	}
}

// TestBodyLimitReturns413: bodies over MaxBodyBytes are refused.
func TestBodyLimitReturns413(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42, MaxBodyBytes: 64})
	rr := postQuery(s.Handler(), `{"sql": "`+strings.Repeat("x", 200)+`"}`)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", rr.Code, rr.Body)
	}
}

// TestDegradedQueryReturns502: with aggressive permanent fault injection the
// failure budget trips and the query reports 502 with progress counters.
func TestDegradedQueryReturns502(t *testing.T) {
	s := New(Config{
		Scale: 0.05, Seed: 42,
		Fault:         &faultAll,
		FailureBudget: 0.01,
	})
	rr := postQuery(s.Handler(), cheapQuery)
	if rr.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502: %s", rr.Code, rr.Body)
	}
	var body errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("502 body not JSON: %s", rr.Body)
	}
	if body.Processed == 0 || body.Total == 0 {
		t.Errorf("502 body should report progress: %+v", body)
	}
}

// TestFaultTolerantQueryFlagsClips: moderate permanent faults stay within
// the budget; the query succeeds and reports its flagged clips.
func TestFaultTolerantQueryFlagsClips(t *testing.T) {
	s := New(Config{
		Scale: 0.05, Seed: 42,
		Fault:         &faultSome,
		FailureBudget: 0.5,
	})
	rr := postQuery(s.Handler(), cheapQuery)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", rr.Code, rr.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.FlaggedClips == 0 {
		t.Errorf("expected flagged clips under fault injection: %+v", qr)
	}
	if qr.FlaggedClips >= qr.NumClips {
		t.Errorf("flagged %d of %d clips; query should still make progress", qr.FlaggedClips, qr.NumClips)
	}
}

// TestHealthzCountersAndShape exercises the full handler stack and checks
// every /healthz field.
func TestHealthzCountersAndShape(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42, MaxConcurrent: 3, QueueDepth: 5})
	h := s.Handler()
	if rr := postQuery(h, cheapQuery); rr.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rr.Code, rr.Body)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rr.Code)
	}
	var hz Health
	if err := json.Unmarshal(rr.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Capacity != 3 || hz.QueueDepth != 5 {
		t.Errorf("healthz = %+v", hz)
	}
	if hz.Served != 1 || hz.Rejected != 0 || hz.Panics != 0 {
		t.Errorf("counters = served %d rejected %d panics %d", hz.Served, hz.Rejected, hz.Panics)
	}
	if hz.Inflight != 0 || hz.Waiting != 0 {
		t.Errorf("idle server reports inflight %d waiting %d", hz.Inflight, hz.Waiting)
	}
	if hz.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", hz.UptimeSeconds)
	}
}
