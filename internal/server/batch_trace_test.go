package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// Per-entry observability parity with /query: every video of a batch
// carries its own span tree, trace-ID-correlated to the batch query ID.
func TestBatchPerEntryTraces(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query/batch", BatchRequest{SQL: batchSQL, Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.QueryID == "" {
		t.Fatal("batch has no query id")
	}
	for _, v := range br.Videos {
		if v.Trace == nil {
			t.Fatalf("video %s has no per-entry trace", v.ID)
		}
		if want := br.QueryID + ":" + v.ID; v.Trace.QueryID != want {
			t.Errorf("video %s trace id = %q, want %q (batch id + video suffix)", v.ID, v.Trace.QueryID, want)
		}
		if len(v.Trace.Spans) == 0 {
			t.Errorf("video %s trace has no spans", v.ID)
		}
	}
	// The batch-level trace still carries its one summary span per video,
	// so the two views correlate rather than replace each other.
	if br.Trace == nil {
		t.Fatal("batch-level trace missing")
	}
	perVideo := 0
	for _, sp := range br.Trace.Spans {
		if len(sp.Name) > len("fleet.video:") && sp.Name[:len("fleet.video:")] == "fleet.video:" {
			perVideo++
		}
	}
	if perVideo != br.NumVideos {
		t.Errorf("batch trace has %d fleet.video spans for %d videos", perVideo, br.NumVideos)
	}
}
