package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var (
	tsOnce sync.Once
	ts     *httptest.Server
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tsOnce.Do(func() {
		ts = httptest.NewServer(New(Config{Scale: 0.05, Seed: 42}).Handler())
	})
	return ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSources(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/sources")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Sources []string `json:"sources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"q1": false, "titanic": false}
	for _, s := range body.Sources {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("source %s missing from %v", name, body.Sources)
		}
	}
	// Method check.
	resp2, _ := post(t, srv.URL+"/sources", map[string]string{})
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /sources status = %d", resp2.StatusCode)
	}
}

func TestOnlineQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s
FROM (PROCESS q2 PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='blowing_leaves' AND obj.include('car')`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Mode != "SVAQD" || qr.Source != "q2" || qr.NumClips == 0 {
		t.Errorf("response = %+v", qr)
	}
	for _, s := range qr.Sequences {
		if s.EndClip < s.StartClip || s.EndFrame < s.StartFrame {
			t.Errorf("malformed sequence %+v", s)
		}
	}
}

func TestOnlineQuerySVAQ(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
WHERE act='blowing_leaves'`, Algo: "svaq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Mode != "SVAQ" {
		t.Errorf("mode = %s", qr.Mode)
	}
}

func TestExtendedQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
WHERE (act='blowing_leaves' OR act='washing_dishes') AND obj.include('person')`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Extended {
		t.Errorf("extended flag not set: %+v", qr)
	}
}

func TestOfflineQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS titanic PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
WHERE act='kissing' AND obj.include('surfboard','boat')
ORDER BY RANK(act, obj) LIMIT 3`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Mode != "RVAQ" || qr.K != 3 {
		t.Errorf("response = %+v", qr)
	}
	if len(qr.Sequences) > 3 {
		t.Errorf("more than k sequences: %d", len(qr.Sequences))
	}
	for i := 1; i < len(qr.Sequences); i++ {
		if qr.Sequences[i].Score > qr.Sequences[i-1].Score {
			t.Errorf("scores not sorted: %+v", qr.Sequences)
		}
	}
	// The second identical query must hit the cached index and be fast.
	resp2, _ := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS titanic PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
WHERE act='kissing' AND obj.include('surfboard','boat')
ORDER BY RANK(act, obj) LIMIT 3`})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second query status = %d", resp2.StatusCode)
	}
}

func TestQueryErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"parse error", `{"sql": "SELECT nothing"}`, http.StatusBadRequest},
		{"plan error", `{"sql": "SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE obj.include('x')"}`, http.StatusBadRequest},
		{"unknown source", `{"sql": "SELECT MERGE(c) FROM (PROCESS nope PRODUCE c) WHERE act='a'"}`, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// GET /query is not allowed.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS q1 PRODUCE clipID)
WHERE act='washing_dishes' AND obj.include('faucet')`})
			if resp.StatusCode != http.StatusOK {
				errs <- string(body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent query failed: %s", e)
	}
}

func TestOfflineExtendedQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS titanic PRODUCE clipID)
WHERE (act='kissing' OR act='talking') AND obj.include('person')
ORDER BY RANK(act, obj) LIMIT 4`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Extended || qr.Mode != "RVAQ-CNF" {
		t.Errorf("response = %+v", qr)
	}
	if len(qr.Sequences) > 4 {
		t.Errorf("more than k sequences: %d", len(qr.Sequences))
	}
}

func TestQueryResponseCarriesPlan(t *testing.T) {
	srv := testServer(t)
	// Online: the streaming engine's adaptive predicate plan.
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s
FROM (PROCESS q2 PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='blowing_leaves' AND obj.include('car')`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan == nil {
		t.Fatal("online response carries no plan block")
	}
	if !qr.Plan.Adaptive || len(qr.Plan.Order) != 2 || len(qr.Plan.Nodes) != 2 {
		t.Errorf("plan = %+v", qr.Plan)
	}
	if len(qr.Plan.Order) != len(qr.Plan.Declared) {
		t.Errorf("order %v vs declared %v", qr.Plan.Order, qr.Plan.Declared)
	}

	// Offline: the rank layer's static table-ordering plan.
	resp2, body2 := post(t, srv.URL+"/query", QueryRequest{SQL: `
SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS titanic PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
WHERE act='kissing' AND obj.include('surfboard','boat')
ORDER BY RANK(act, obj) LIMIT 3`})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp2.StatusCode, body2)
	}
	var qr2 QueryResponse
	if err := json.Unmarshal(body2, &qr2); err != nil {
		t.Fatal(err)
	}
	if qr2.Plan == nil || len(qr2.Plan.Order) != 3 {
		t.Fatalf("offline plan = %+v", qr2.Plan)
	}

	// The planner instruments must be exposed on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"svqact_plan_queries_total",
		"svqact_plan_replans_total",
		"svqact_plan_skipped_evaluations_total",
		"svqact_plan_saved_cost_ms_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metric family %s missing from /metrics", family)
		}
	}
}
