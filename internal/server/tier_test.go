package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	ctsOnce sync.Once
	cts     *httptest.Server
)

// cascadeServer is a shared server running the tiered detector cascades
// with a small default inference budget left unset (requests opt in via
// budget_ms).
func cascadeServer(t *testing.T) *httptest.Server {
	t.Helper()
	ctsOnce.Do(func() {
		cts = httptest.NewServer(New(Config{Scale: 0.05, Seed: 42, Cascade: true}).Handler())
	})
	return cts
}

const tierQuerySQL = `
SELECT MERGE(clipID) AS s
FROM (PROCESS q2 PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='blowing_leaves' AND obj.include('car')`

// TestLegacyPlanBlockUnchangedWithoutCascade is the surface regression the
// satellite demands: a single-tier server's /query plan block must not grow
// any tier or budget keys — byte-level JSON compatibility for existing
// consumers.
func TestLegacyPlanBlockUnchangedWithoutCascade(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: tierQuerySQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	var planObj map[string]json.RawMessage
	if err := json.Unmarshal(raw["plan"], &planObj); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tiered", "budget"} {
		if _, ok := planObj[key]; ok {
			t.Errorf("single-tier plan block leaks %q key", key)
		}
	}
	var nodes []map[string]json.RawMessage
	if err := json.Unmarshal(planObj["nodes"], &nodes); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		for _, key := range []string{"tier", "tiers", "escalation_rate"} {
			if _, ok := n[key]; ok {
				t.Errorf("single-tier node leaks %q key: %s", key, n["name"])
			}
		}
	}
}

// TestCascadeQueryReportsTiers: a cascade-configured server reports the
// tier decision, per-tier escalation model, and the tier metric families.
func TestCascadeQueryReportsTiers(t *testing.T) {
	srv := cascadeServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: tierQuerySQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan == nil || !qr.Plan.Tiered {
		t.Fatalf("cascade plan not tiered: %+v", qr.Plan)
	}
	for _, n := range qr.Plan.Nodes {
		if n.Tier == "" || len(n.Tiers) != 2 {
			t.Fatalf("node %s missing tier model: %+v", n.Name, n)
		}
		if n.Tiers[0].Units == 0 {
			t.Errorf("node %s: entry tier observed no units", n.Name)
		}
		if n.Tiers[0].UnitCostMS >= n.Tiers[1].UnitCostMS {
			t.Errorf("node %s: tiers not cheapest-first", n.Name)
		}
	}
	if qr.Plan.Budget != nil {
		t.Error("unbudgeted query must omit the budget block")
	}

	text := metricsText(t, srv)
	for _, family := range []string{
		"svqact_plan_tier_queries_total",
		"svqact_plan_tier_escalations_total",
		"svqact_detect_tier_units_total",
		"svqact_detect_tier_decisions_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metric family %s missing from /metrics", family)
		}
	}
	// The per-tier detect counters must carry tier labels for both tiers.
	for _, label := range []string{`tier="distilled-rcnn"`, `tier="maskrcnn"`} {
		if !strings.Contains(text, label) {
			t.Errorf("detect tier label %s missing from /metrics", label)
		}
	}
}

// TestBudgetedQueryDegrades: budget_ms on the request caps the simulated
// inference spend; exhaustion degrades (clips skipped and flagged, budget
// block honest, HTTP 200) instead of erroring, and the budget metric
// families record it.
func TestBudgetedQueryDegrades(t *testing.T) {
	srv := cascadeServer(t)
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: tierQuerySQL, BudgetMS: 200})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget exhaustion must degrade, got status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	b := qr.Plan.Budget
	if b == nil {
		t.Fatalf("budgeted query reports no budget block: %+v", qr.Plan)
	}
	if b.LimitMS != 200 || !b.Exhausted || b.SkippedClips == 0 {
		t.Errorf("budget block %+v: want limit 200, exhausted, skipped clips", b)
	}
	if b.SpentMS < b.LimitMS {
		t.Errorf("spent %vms below limit %vms yet exhausted", b.SpentMS, b.LimitMS)
	}
	if qr.FlaggedClips == 0 {
		t.Error("budget-skipped clips must surface in flagged_clips")
	}

	text := metricsText(t, srv)
	for _, want := range []string{
		"svqact_plan_tier_budget_skipped_clips_total",
		"svqact_plan_tier_budget_exhausted_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("budget metric %s missing from /metrics", want)
		}
	}
}

// TestCascadeResultsMatchSingleTier: the recall-complete cascade server
// returns exactly the sequences the plain server does on the same source —
// the end-to-end identity the engine-level invariance tests promise.
func TestCascadeResultsMatchSingleTier(t *testing.T) {
	plain := testServer(t)
	casc := cascadeServer(t)
	_, pbody := post(t, plain.URL+"/query", QueryRequest{SQL: tierQuerySQL})
	_, cbody := post(t, casc.URL+"/query", QueryRequest{SQL: tierQuerySQL})
	var pr, cr QueryResponse
	if err := json.Unmarshal(pbody, &pr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cbody, &cr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Sequences) != len(cr.Sequences) {
		t.Fatalf("cascade returned %d sequences, single-tier %d", len(cr.Sequences), len(pr.Sequences))
	}
	for i := range pr.Sequences {
		if pr.Sequences[i] != cr.Sequences[i] {
			t.Errorf("sequence %d differs: %+v vs %+v", i, pr.Sequences[i], cr.Sequences[i])
		}
	}
}

// TestServerInferenceBudgetDefault: a server-level InferenceBudget applies
// to every query that does not override it.
func TestServerInferenceBudgetDefault(t *testing.T) {
	srv := httptest.NewServer(New(Config{
		Scale: 0.05, Seed: 42, Cascade: true, InferenceBudget: 200 * time.Millisecond,
	}).Handler())
	defer srv.Close()
	resp, body := post(t, srv.URL+"/query", QueryRequest{SQL: tierQuerySQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan.Budget == nil || !qr.Plan.Budget.Exhausted {
		t.Errorf("server default budget not applied: %+v", qr.Plan.Budget)
	}
}

func metricsText(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
