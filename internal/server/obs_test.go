package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"svqact/internal/detect"
)

const objectQuery = `{"sql": "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID) WHERE act='blowing_leaves' AND obj.include('car')"}`

func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	return rr.Body.String()
}

// metricValue extracts the value of an exactly matching series line.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in metrics output", series)
	return 0
}

// TestQueryTraceAndStableID: a completed query carries a trace whose spans
// cover the engine run and every evaluated predicate, under one query ID
// that matches the X-Query-ID header.
func TestQueryTraceAndStableID(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42})
	h := s.Handler()
	rr := postQuery(h, objectQuery)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	hdr := rr.Header().Get("X-Query-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(hdr) {
		t.Fatalf("X-Query-ID = %q, want 16 hex chars", hdr)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.QueryID != hdr {
		t.Errorf("body query_id %q != header %q", qr.QueryID, hdr)
	}
	if qr.Trace == nil {
		t.Fatal("response has no trace")
	}
	if qr.Trace.QueryID != hdr {
		t.Errorf("trace query_id %q != header %q", qr.Trace.QueryID, hdr)
	}
	names := map[string]bool{}
	for _, sp := range qr.Trace.Spans {
		names[sp.Name] = true
		if sp.DurationMS < 0 {
			t.Errorf("span %q has negative duration", sp.Name)
		}
	}
	for _, want := range []string{"engine.run", "predicate:car", "predicate:blowing_leaves"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, qr.Trace.Spans)
		}
	}
}

// TestMetricsEndpointFamilies: /metrics serves every advertised family and
// agrees with /healthz on the shared counters.
func TestMetricsEndpointFamilies(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42})
	h := s.Handler()
	if rr := postQuery(h, objectQuery); rr.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rr.Code, rr.Body)
	}
	body := scrape(t, h)
	for _, fam := range []string{
		"svqact_queries_inflight",
		"svqact_queries_waiting",
		"svqact_queries_served_total",
		"svqact_queries_rejected_total",
		"svqact_panics_total",
		"svqact_query_duration_seconds",
		"svqact_rank_sorted_accesses_total",
		"svqact_rank_random_accesses_total",
		"svqact_uptime_seconds",
		"svqact_detect_inferences_total",
		"svqact_detect_attempts_total",
		"svqact_detect_retries_total",
		"svqact_detect_faults_total",
		"svqact_detect_flagged_clips_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("metrics output missing family %s", fam)
		}
	}
	if v := metricValue(t, body, "svqact_query_duration_seconds_count"); v != 1 {
		t.Errorf("latency histogram count = %v, want 1", v)
	}
	if v := metricValue(t, body, `svqact_detect_inferences_total{kind="object"}`); v <= 0 {
		t.Errorf("object inferences = %v, want > 0", v)
	}
	hz := s.Health()
	if v := metricValue(t, body, "svqact_queries_served_total"); uint64(v) != hz.Served {
		t.Errorf("served: metrics %v != healthz %d", v, hz.Served)
	}
}

// TestFaultCountersOnMetrics: a fault-injected query drives the retry and
// flagged-clip counters, and the response still reports the flagged clips.
func TestFaultCountersOnMetrics(t *testing.T) {
	s := New(Config{
		Scale: 0.05, Seed: 42,
		Fault:         &detect.FaultConfig{TransientRate: 0.1, PermanentRate: 0.05, Seed: 7},
		FailureBudget: 0.5,
	})
	h := s.Handler()
	rr := postQuery(h, cheapQuery)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	body := scrape(t, h)
	if v := metricValue(t, body, `svqact_detect_retries_total{kind="action"}`); v <= 0 {
		t.Errorf("action retries = %v, want > 0 under transient faults", v)
	}
	if v := metricValue(t, body, `svqact_detect_faults_total{kind="action",outcome="transient"}`); v <= 0 {
		t.Errorf("transient action faults = %v, want > 0", v)
	}
	flagged := metricValue(t, body, `svqact_detect_flagged_clips_total{kind="action"}`) +
		metricValue(t, body, `svqact_detect_flagged_clips_total{kind="object"}`)
	if flagged <= 0 {
		t.Errorf("flagged clips = %v, want > 0 under permanent faults", flagged)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if float64(qr.FlaggedClips) != flagged {
		t.Errorf("response flagged %d != metric %v (one accounting path)", qr.FlaggedClips, flagged)
	}
}

// TestOfflineQueryTrace: RVAQ responses carry the ranking spans and charge
// the rank access counters.
func TestOfflineQueryTrace(t *testing.T) {
	s := New(Config{Scale: 0.05, Seed: 42})
	h := s.Handler()
	rr := postQuery(h, `{"sql": "SELECT MERGE(clipID) AS s, RANK(act, obj) FROM (PROCESS titanic PRODUCE clipID) WHERE act='kissing' AND obj.include('boat') ORDER BY RANK(act, obj) LIMIT 2"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("offline response has no trace")
	}
	var sawTopk, sawIngest bool
	for _, sp := range qr.Trace.Spans {
		if sp.Name == "rank.topk" {
			sawTopk = true
			if sp.Attrs["algorithm"] != "RVAQ" {
				t.Errorf("rank.topk attrs = %v", sp.Attrs)
			}
		}
		if sp.Name == "rank.ingest" {
			sawIngest = true
		}
	}
	if !sawTopk || !sawIngest {
		t.Errorf("offline trace spans missing (topk %v, ingest %v): %+v", sawTopk, sawIngest, qr.Trace.Spans)
	}
	body := scrape(t, h)
	if v := metricValue(t, body, "svqact_rank_random_accesses_total"); v <= 0 {
		t.Errorf("rank random accesses = %v, want > 0", v)
	}
}
