package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// q5 is the largest query set at the test server's 0.05 scale (2 component
// videos), so it exercises real fan-out.
const batchSQL = `
SELECT MERGE(clipID) AS s
FROM (PROCESS q5 PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='volleyball' AND obj.include('person')`

// TestBatchQuery runs one online statement as a fleet over the q5 query set:
// every component video gets its own result entry, the aggregate partitions
// the fleet, and the trace carries one span per video plus the fleet root.
func TestBatchQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query/batch", BatchRequest{SQL: batchSQL, Workers: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Mode != "SVAQD" || br.Source != "q5" {
		t.Errorf("mode/source = %s/%s", br.Mode, br.Source)
	}
	if br.NumVideos < 2 {
		t.Fatalf("q5 fleet has %d videos, want several", br.NumVideos)
	}
	if len(br.Videos) != br.NumVideos {
		t.Fatalf("%d video entries for %d videos", len(br.Videos), br.NumVideos)
	}
	if br.OK != br.NumVideos {
		t.Errorf("aggregate %+v: want all %d videos ok", br, br.NumVideos)
	}
	if br.QueryID == "" || resp.Header.Get("X-Query-ID") != br.QueryID {
		t.Errorf("query id %q vs header %q", br.QueryID, resp.Header.Get("X-Query-ID"))
	}
	for i, v := range br.Videos {
		if v.ID == "" || v.Outcome != "ok" || v.NumClips == 0 {
			t.Errorf("video %d malformed: %+v", i, v)
		}
		if v.ProcessedClips != v.NumClips {
			t.Errorf("video %d: processed %d of %d clips on a clean run", i, v.ProcessedClips, v.NumClips)
		}
		for _, s := range v.Sequences {
			if s.EndClip < s.StartClip || s.EndFrame < s.StartFrame {
				t.Errorf("video %d: malformed sequence %+v", i, s)
			}
		}
	}
	if br.Trace == nil {
		t.Fatal("batch response carries no trace")
	}
	var perVideo, root int
	for _, sp := range br.Trace.Spans {
		switch {
		case strings.HasPrefix(sp.Name, "fleet.video:"):
			perVideo++
		case sp.Name == "fleet.run_all":
			root++
		}
	}
	if perVideo != br.NumVideos || root != 1 {
		t.Errorf("trace has %d per-video spans (want %d) and %d roots (want 1)", perVideo, br.NumVideos, root)
	}
}

// TestBatchQuerySVAQ selects the static engine.
func TestBatchQuerySVAQ(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query/batch", BatchRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
WHERE act='blowing_leaves'`, Algo: "svaq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Mode != "SVAQ" {
		t.Errorf("mode = %s", br.Mode)
	}
}

// TestBatchQuerySingleVideoSource: a movie source is a fleet of one.
func TestBatchQuerySingleVideoSource(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv.URL+"/query/batch", BatchRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS coffee_and_cigarettes PRODUCE clipID)
WHERE act='drinking_coffee' AND obj.include('cup')`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.NumVideos != 1 || len(br.Videos) != 1 {
		t.Errorf("single-video source produced %d entries", br.NumVideos)
	}
}

// TestBatchQueryErrors covers the 4xx surface of /query/batch.
func TestBatchQueryErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name   string
		req    BatchRequest
		status int
	}{
		{"bad sql", BatchRequest{SQL: "SELECT nonsense"}, http.StatusBadRequest},
		{"offline statement", BatchRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS coffee_and_cigarettes PRODUCE clipID)
WHERE act='drinking_coffee' LIMIT 3`, Algo: ""}, http.StatusBadRequest},
		{"extended statement", BatchRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
WHERE (act='blowing_leaves' OR act='washing_dishes')`}, http.StatusBadRequest},
		{"unknown algo", BatchRequest{SQL: batchSQL, Algo: "rvaq"}, http.StatusBadRequest},
		{"unknown source", BatchRequest{SQL: `
SELECT MERGE(clipID) AS s FROM (PROCESS nope PRODUCE clipID)
WHERE act='blowing_leaves'`}, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, body := post(t, srv.URL+"/query/batch", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
		}
	}
	resp, _ := http.Get(srv.URL + "/query/batch")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBatchFleetMetrics checks /metrics carries the fleet instruments after
// a batch has run.
func TestBatchFleetMetrics(t *testing.T) {
	srv := testServer(t)
	if _, body := post(t, srv.URL+"/query/batch", BatchRequest{SQL: batchSQL}); len(body) == 0 {
		t.Fatal("empty batch response")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"svqact_fleet_batches_total",
		"svqact_fleet_batch_duration_seconds",
		`svqact_fleet_videos_total{outcome="ok"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
