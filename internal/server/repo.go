// Repository-backed serving: when Config.RepoDir is set, offline (RVAQ)
// statements are answered from the saved repository built by cmd/ingest
// instead of lazily re-ingesting the synthetic datasets, and the repository
// can be swapped for a newer generation without restarting — POST
// /repo/reload (or send the process SIGHUP, see cmd/serve). Reloads are
// all-or-nothing: the new generation is opened and fully verified first, the
// handle is swapped atomically, and queries already running on the old
// generation drain before its file handles close. A failed reload (missing
// directory, CorruptError) keeps the old repository serving.
package server

import (
	"errors"
	"net/http"
	"sync"
	"time"

	"svqact/internal/rank"
)

// repoHandle reference-counts one open repository so a reload can retire it
// while in-flight queries finish against it.
type repoHandle struct {
	repo *rank.Repository

	mu      sync.Mutex
	refs    int
	retired bool
}

func (h *repoHandle) acquire() {
	h.mu.Lock()
	h.refs++
	h.mu.Unlock()
}

func (h *repoHandle) release() {
	h.mu.Lock()
	h.refs--
	closeNow := h.retired && h.refs == 0
	h.mu.Unlock()
	if closeNow {
		_ = h.repo.Close()
	}
}

// retire marks the handle superseded; the underlying files close as soon as
// the last in-flight query releases its reference.
func (h *repoHandle) retire() {
	h.mu.Lock()
	h.retired = true
	closeNow := h.refs == 0
	h.mu.Unlock()
	if closeNow {
		_ = h.repo.Close()
	}
}

// Reload opens Config.RepoDir, verifies every member (checksums, manifest
// invariants), and atomically swaps it in as the serving repository. On
// failure the previous repository, if any, keeps serving.
func (s *Server) Reload() error {
	if s.cfg.RepoDir == "" {
		return errors.New("server: no repository configured")
	}
	repo, err := rank.OpenRepository(s.cfg.RepoDir)
	if err != nil {
		s.repoReloads["error"].Inc()
		if rank.IsCorrupt(err) {
			s.repoCorruption.Inc()
		}
		s.repoMu.Lock()
		s.repoFailed = true
		s.repoErr = err.Error()
		s.repoMu.Unlock()
		return err
	}
	h := &repoHandle{repo: repo}
	s.repoMu.Lock()
	old := s.repo
	s.repo = h
	recovered := s.repoFailed
	s.repoFailed = false
	s.repoErr = ""
	s.repoLoadedAt = time.Now()
	s.repoMu.Unlock()
	if old != nil {
		old.retire()
	}
	s.repoReloads["ok"].Inc()
	if recovered {
		s.repoRecoveries.Inc()
	}
	s.repoGeneration.Set(int64(repo.MaxGeneration()))
	s.repoMembers.Set(int64(len(repo.Videos())))
	s.log.Info("repository loaded",
		"dir", s.cfg.RepoDir, "videos", len(repo.Videos()),
		"generation", repo.MaxGeneration(), "recovered", recovered)
	return nil
}

// acquireRepo returns the live repository handle with a reference held (the
// caller must release it), or nil when none is loaded.
func (s *Server) acquireRepo() *repoHandle {
	s.repoMu.Lock()
	defer s.repoMu.Unlock()
	if s.repo == nil {
		return nil
	}
	s.repo.acquire()
	return s.repo
}

// RepoHealth is the repository section of the /healthz body.
type RepoHealth struct {
	Dir        string `json:"dir"`
	Generation int    `json:"generation"`
	Videos     int    `json:"videos"`
	// Failed is true when the most recent reload attempt was rejected
	// (the previously loaded repository, if any, keeps serving); Error
	// then carries the rejection's message so /repo/status explains what
	// went wrong, not just that something did.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	// LastReload is the RFC3339 time the serving repository was last
	// (re)loaded successfully — rollout tooling uses it to tell "swapped
	// just now" from "still on the boot-time load".
	LastReload string `json:"last_reload,omitempty"`
}

func (s *Server) repoHealth() *RepoHealth {
	if s.cfg.RepoDir == "" {
		return nil
	}
	s.repoMu.Lock()
	h, failed, lastErr, loadedAt := s.repo, s.repoFailed, s.repoErr, s.repoLoadedAt
	s.repoMu.Unlock()
	rh := &RepoHealth{Dir: s.cfg.RepoDir, Failed: failed, Error: lastErr}
	if !loadedAt.IsZero() {
		rh.LastReload = loadedAt.UTC().Format(time.RFC3339Nano)
	}
	if h != nil {
		rh.Generation = h.repo.MaxGeneration()
		rh.Videos = len(h.repo.Videos())
	}
	return rh
}

func (s *Server) handleRepoReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	if s.cfg.RepoDir == "" {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no repository configured (start with -repo)"})
		return
	}
	if err := s.Reload(); err != nil {
		s.log.Warn("repository reload failed", "dir", s.cfg.RepoDir, "error", err.Error())
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.repoHealth())
}

func (s *Server) handleRepoStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	rh := s.repoHealth()
	if rh == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no repository configured (start with -repo)"})
		return
	}
	writeJSON(w, http.StatusOK, rh)
}
