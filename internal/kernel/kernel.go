// Package kernel implements the dynamic background-probability estimator
// behind SVAQD (paper §3.3, Equation 6).
//
// The estimator maintains, per query predicate, a smoothed estimate of the
// probability that an occurrence unit (a frame for objects, a shot for
// actions) carries a positive detection. Events are smoothed over time with
// an exponential kernel K((t-t_n)/u) = exp(-(t-t_n)/u), and the estimate is
// normalised by the total kernel mass of all occurrence units seen so far —
// the Diggle edge correction — which makes it unbiased when the background
// probability is constant:
//
//	p_hat(t) = sum_n exp(-(t-t_n)/u) * (1 - exp(-1/u)) / (1 - exp(-t/u)).
//
// Both the numerator (event mass) and the denominator (unit mass) decay by
// exp(-dt/u) as time advances, so updates are O(1) per occurrence unit. A
// sudden change in the true rate is tracked with time constant u, while the
// normalisation keeps the estimate calibrated during gradual drift.
package kernel

import (
	"fmt"
	"math"
)

// Floor is the smallest probability the estimator reports. The scan
// statistics layer treats p = 0 as "any event is significant", which a noisy
// detector should never be granted, so estimates are clamped away from zero.
const Floor = 1e-9

// Estimator is the per-predicate background probability tracker. The zero
// value is not usable; construct with NewEstimator.
type Estimator struct {
	u float64 // kernel bandwidth in occurrence units

	eventMass float64 // sum of exp(-(t-t_n)/u) over past events
	unitMass  float64 // sum of exp(-(t-j)/u) over past occurrence units

	// prior blends the initial probability into the estimate as a pseudo
	// count of priorWeight occurrence units, removing the t -> 0 singularity
	// of the raw edge-corrected estimator; its influence decays at the same
	// exponential rate as real observations.
	prior       float64
	priorWeight float64

	decay float64 // exp(-1/u), cached
	lam   float64 // 1/u, cached for expm1-based batch mass sums
	units int64   // total occurrence units observed (diagnostics)
}

// NewEstimator creates an estimator with kernel bandwidth u (in occurrence
// units) seeded with the initial background probability p0. The seed acts as
// u/16 pseudo-units of evidence: enough to define the estimate before any
// observation arrives, small enough that a handful of genuine observations
// displaces a badly chosen prior (the paper's "eliminates the influence of
// p0 naturally").
func NewEstimator(u, p0 float64) (*Estimator, error) {
	if u <= 0 || math.IsInf(u, 1) || math.IsNaN(u) {
		return nil, fmt.Errorf("kernel: bandwidth u = %v must be positive and finite", u)
	}
	if p0 < 0 || p0 > 1 {
		return nil, fmt.Errorf("kernel: initial probability %v out of [0,1]", p0)
	}
	return &Estimator{
		u:           u,
		prior:       p0,
		priorWeight: u / 16,
		decay:       math.Exp(-1 / u),
		lam:         1 / u,
	}, nil
}

// Reset returns the estimator to the state NewEstimator(e.Bandwidth(), p0)
// would produce, discarding all observed evidence. Pooled engine runs reuse
// one estimator per predicate slot across videos instead of allocating a
// fresh one per run.
func (e *Estimator) Reset(p0 float64) error {
	if p0 < 0 || p0 > 1 {
		return fmt.Errorf("kernel: initial probability %v out of [0,1]", p0)
	}
	e.eventMass, e.unitMass = 0, 0
	e.prior, e.priorWeight = p0, e.u/16
	e.units = 0
	return nil
}

// Bandwidth returns the kernel bandwidth u.
func (e *Estimator) Bandwidth() float64 { return e.u }

// Units returns the number of occurrence units observed so far.
func (e *Estimator) Units() int64 { return e.units }

// Tick advances the estimator by one occurrence unit and records whether the
// unit carried an event (a positive detection).
func (e *Estimator) Tick(event bool) {
	e.eventMass *= e.decay
	e.unitMass *= e.decay
	e.priorWeight *= e.decay
	e.unitMass++
	if event {
		e.eventMass++
	}
	e.units++
}

// TickN advances the estimator by n occurrence units of which k carried
// events. The k events are treated as uniformly spread over the n units; for
// the clip-sized batches the engine uses (n << u) the difference from exact
// per-unit placement is far below the estimator's own variance.
func (e *Estimator) TickN(n, k int) {
	if n < 0 || k < 0 || k > n {
		panic(fmt.Sprintf("kernel: TickN(%d, %d) invalid", n, k))
	}
	if n == 0 {
		return
	}
	d := math.Exp(-float64(n) * e.lam)
	// Total kernel mass contributed by the n new units at the new now:
	// sum_{j=0}^{n-1} decay^j = (1 - decay^n) / (1 - decay). Both differences
	// are computed as -expm1(-x): for large bandwidths exp(-1/u) rounds to
	// exactly 1.0 and the naive 1-decay denominator underflows to 0, turning
	// every mass into NaN; expm1 keeps full precision down to lam ~ 1e-308.
	den := -math.Expm1(-e.lam)
	var newMass float64
	if den == 0 {
		// decay == 1 exactly (u = +Inf): no forgetting, each unit has mass 1.
		newMass = float64(n)
	} else {
		newMass = -math.Expm1(-float64(n)*e.lam) / den
	}
	e.eventMass = e.eventMass*d + newMass*float64(k)/float64(n)
	e.unitMass = e.unitMass*d + newMass
	e.priorWeight *= d
	e.units += int64(n)
}

// P returns the current background probability estimate, clamped to
// [Floor, 1].
func (e *Estimator) P() float64 {
	den := e.unitMass + e.priorWeight
	if den <= 0 {
		return clamp(e.prior)
	}
	return clamp((e.eventMass + e.prior*e.priorWeight) / den)
}

func clamp(p float64) float64 {
	if p < Floor {
		return Floor
	}
	if p > 1 {
		return 1
	}
	return p
}
