package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, u, p0 float64) *Estimator {
	t.Helper()
	e, err := NewEstimator(u, p0)
	if err != nil {
		t.Fatalf("NewEstimator(%v, %v): %v", u, p0, err)
	}
	return e
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, 0.1); err == nil {
		t.Error("u=0 should be rejected")
	}
	if _, err := NewEstimator(-5, 0.1); err == nil {
		t.Error("negative u should be rejected")
	}
	if _, err := NewEstimator(100, -0.1); err == nil {
		t.Error("negative p0 should be rejected")
	}
	if _, err := NewEstimator(100, 1.1); err == nil {
		t.Error("p0 > 1 should be rejected")
	}
	if _, err := NewEstimator(math.Inf(1), 0.1); err == nil {
		t.Error("infinite u should be rejected")
	}
	if _, err := NewEstimator(math.NaN(), 0.1); err == nil {
		t.Error("NaN u should be rejected")
	}
	if _, err := NewEstimator(100, 0.5); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestInitialEstimateIsPrior(t *testing.T) {
	for _, p0 := range []float64{0.001, 0.1, 0.9} {
		e := mustNew(t, 200, p0)
		if got := e.P(); math.Abs(got-p0) > 1e-12 {
			t.Errorf("fresh estimator P() = %v, want prior %v", got, p0)
		}
	}
}

func TestFloorAndCap(t *testing.T) {
	e := mustNew(t, 100, 0)
	if got := e.P(); got != Floor {
		t.Errorf("p0=0 estimate = %v, want Floor", got)
	}
	for i := 0; i < 1000; i++ {
		e.Tick(false)
	}
	if got := e.P(); got != Floor {
		t.Errorf("all-quiet estimate = %v, want Floor", got)
	}
	e2 := mustNew(t, 100, 1)
	for i := 0; i < 1000; i++ {
		e2.Tick(true)
	}
	if got := e2.P(); got > 1 || got < 0.99 {
		t.Errorf("all-events estimate = %v, want ~1", got)
	}
}

func TestConvergesToConstantRate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.02, 0.2, 0.6} {
		e := mustNew(t, 500, 0.5) // deliberately wrong prior
		for i := 0; i < 20000; i++ {
			e.Tick(r.Float64() < p)
		}
		got := e.P()
		// Effective sample size ~ u, so sd ~ sqrt(p(1-p)/u) ~ 0.02.
		if math.Abs(got-p) > 4*math.Sqrt(p*(1-p)/500)+0.005 {
			t.Errorf("p=%v: estimate %v did not converge", p, got)
		}
	}
}

func TestTracksSuddenChange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e := mustNew(t, 300, 0.01)
	for i := 0; i < 5000; i++ {
		e.Tick(r.Float64() < 0.01)
	}
	low := e.P()
	if low > 0.03 {
		t.Fatalf("pre-change estimate %v too high", low)
	}
	// Traffic peak: rate jumps 30x. Within ~4 bandwidths the estimate must
	// have moved most of the way.
	for i := 0; i < 1200; i++ {
		e.Tick(r.Float64() < 0.3)
	}
	high := e.P()
	if high < 0.2 {
		t.Errorf("post-change estimate %v did not adapt (was %v)", high, low)
	}
}

func TestPriorWashesOut(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Two estimators with very different priors must agree after seeing the
	// same long stream — the paper's "eliminates the influence of p0".
	e1 := mustNew(t, 200, 1e-6)
	e2 := mustNew(t, 200, 0.9)
	for i := 0; i < 10000; i++ {
		ev := r.Float64() < 0.05
		e1.Tick(ev)
		e2.Tick(ev)
	}
	if d := math.Abs(e1.P() - e2.P()); d > 1e-6 {
		t.Errorf("priors did not wash out: %v vs %v", e1.P(), e2.P())
	}
}

func TestTickNMatchesTicksWhenUniform(t *testing.T) {
	// TickN with all-or-nothing events must match per-unit Tick exactly.
	a := mustNew(t, 150, 0.1)
	b := mustNew(t, 150, 0.1)
	for i := 0; i < 50; i++ {
		a.TickN(10, 0)
		for j := 0; j < 10; j++ {
			b.Tick(false)
		}
		a.TickN(5, 5)
		for j := 0; j < 5; j++ {
			b.Tick(true)
		}
	}
	if d := math.Abs(a.P() - b.P()); d > 1e-9 {
		t.Errorf("TickN diverged from Tick: %v vs %v", a.P(), b.P())
	}
	if a.Units() != b.Units() || a.Units() != 750 {
		t.Errorf("unit counts: %d vs %d", a.Units(), b.Units())
	}
}

func TestTickNApproximatesScatteredEvents(t *testing.T) {
	// Batched updates with events spread inside the batch should stay close
	// to the exact per-unit update when the batch is much smaller than u.
	r := rand.New(rand.NewSource(4))
	exact := mustNew(t, 1000, 0.1)
	batched := mustNew(t, 1000, 0.1)
	for c := 0; c < 400; c++ {
		k := 0
		for j := 0; j < 50; j++ {
			ev := r.Float64() < 0.1
			exact.Tick(ev)
			if ev {
				k++
			}
		}
		batched.TickN(50, k)
	}
	if d := math.Abs(exact.P() - batched.P()); d > 0.01 {
		t.Errorf("batched estimate %v too far from exact %v", batched.P(), exact.P())
	}
}

func TestTickNValidation(t *testing.T) {
	e := mustNew(t, 100, 0.1)
	for _, c := range []struct{ n, k int }{{-1, 0}, {5, -1}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TickN(%d,%d) should panic", c.n, c.k)
				}
			}()
			e.TickN(c.n, c.k)
		}()
	}
	e.TickN(0, 0) // no-op must be fine
	if e.Units() != 0 {
		t.Errorf("TickN(0,0) advanced units: %d", e.Units())
	}
}

// TestTickNHugeBandwidth is the regression test for the 1-decay underflow:
// with u = 1e16 the cached decay exp(-1/u) rounds to exactly 1.0, and the
// naive geometric-mass formula (1 - decay^n)/(1 - decay) evaluated 0/0 = NaN,
// poisoning every subsequent P(). The expm1-based form must stay finite and
// keep the estimate calibrated.
func TestTickNHugeBandwidth(t *testing.T) {
	// At u = 1e16 the cached decay is the double just below 1.0 (1-decay
	// carries ~11% relative error under the naive formula); from roughly
	// 2e16 upward exp(-1/u) is exactly 1.0 and the naive formula is 0/0.
	// Both regimes must produce exact masses with the expm1 form.
	for _, u := range []float64{1e16, 1e17, 1e300} {
		e := mustNew(t, u, 0.5)
		if u >= 1e17 {
			if d := math.Exp(-1 / u); d != 1 {
				t.Fatalf("u=%v: exp(-1/u) = %v, expected exact 1.0 (test premise)", u, d)
			}
		}
		for i := 0; i < 50; i++ {
			e.TickN(20, 2) // steady 10% rate
		}
		got := e.P()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("u=%v: P() = %v after TickN batches", u, got)
		}
		if got < Floor || got > 1 {
			t.Fatalf("u=%v: P() = %v out of [Floor, 1]", u, got)
		}
		// With no forgetting the estimate should sit near the blended rate of
		// prior (0.5, weight u/16 — enormous) and data; what matters is that
		// masses accumulated sanely: 50 batches of 20 units.
		if e.Units() != 1000 {
			t.Fatalf("u=%v: Units() = %d, want 1000", u, e.Units())
		}
		if math.IsNaN(e.eventMass) || math.IsNaN(e.unitMass) {
			t.Fatalf("u=%v: masses NaN: event=%v unit=%v", u, e.eventMass, e.unitMass)
		}
		if math.Abs(e.unitMass-1000) > 1e-6 {
			t.Fatalf("u=%v: unitMass = %v, want ~1000 (no decay)", u, e.unitMass)
		}
		if math.Abs(e.eventMass-100) > 1e-6 {
			t.Fatalf("u=%v: eventMass = %v, want ~100", u, e.eventMass)
		}
	}
}

// TestTickNHugeBandwidthMatchesModerate checks continuity: at a large but
// not-yet-degenerate bandwidth the expm1 path must agree with the estimator's
// incremental Tick path, so the fix does not perturb the healthy regime.
func TestTickNHugeBandwidthMatchesModerate(t *testing.T) {
	u := 1e8
	a := mustNew(t, u, 0.1)
	b := mustNew(t, u, 0.1)
	for i := 0; i < 20; i++ {
		a.TickN(10, 1)
		for j := 0; j < 10; j++ {
			b.Tick(j == 0)
		}
	}
	if pa, pb := a.P(), b.P(); math.Abs(pa-pb) > 1e-9 {
		t.Fatalf("TickN path P() = %v, Tick path P() = %v", pa, pb)
	}
}

// TestEstimateAlwaysValidProbability is a property test: whatever the input
// stream, the estimate stays within [Floor, 1].
func TestEstimateAlwaysValidProbability(t *testing.T) {
	f := func(seed int64, p0 uint8, stream []bool) bool {
		e, err := NewEstimator(1+float64((seed%997+997)%997), float64(p0)/255)
		if err != nil {
			return true // skip invalid bandwidths (shouldn't happen)
		}
		for _, ev := range stream {
			e.Tick(ev)
			p := e.P()
			if p < Floor || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUnbiasedUnderConstantRate checks the edge-corrected estimator's mean
// over many independent short streams is close to the true rate even early
// on (the bias the correction removes).
func TestUnbiasedUnderConstantRate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const p = 0.3
	const streams = 3000
	sum := 0.0
	for s := 0; s < streams; s++ {
		e := mustNew(t, 100, p) // prior equals truth, isolating the kernel bias
		for i := 0; i < 60; i++ {
			e.Tick(r.Float64() < p)
		}
		sum += e.P()
	}
	mean := sum / streams
	if math.Abs(mean-p) > 0.01 {
		t.Errorf("mean early estimate %v, want ~%v", mean, p)
	}
}

func TestBandwidthAccessor(t *testing.T) {
	e := mustNew(t, 123, 0.1)
	if e.Bandwidth() != 123 {
		t.Errorf("Bandwidth = %v", e.Bandwidth())
	}
}
