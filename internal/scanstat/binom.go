// Package scanstat implements the scan statistics used by the engine to turn
// noisy per-frame / per-shot detector events into statistically significant
// per-clip decisions.
//
// The discrete scan statistic S_w(N) is the maximum number of successes
// observed in any window of w consecutive Bernoulli(p) trials among N trials.
// The engine needs the tail P(S_w(N) >= k) to compute the critical value
// k_crit: the smallest count of positive detections inside a clip that is
// significant at level alpha under the background probability p (paper
// Equation 5, following Naus's product-type approximation
// P(S_w(N) >= k) ~ 1 - Q2 (Q3/Q2)^(L-2), L = N/w).
//
// Q2 = P(S_w(2w) < k) is computed in closed form,
//
//	Q2 = F(k-1; w, p)^2 - b(k; w, p) * sum_{r=0}^{k-2} F(r; w, p),
//
// which is exact (derived by a reflection argument on the window-count walk
// and verified against enumeration in the tests). Q3 = P(S_w(3w) < k) is
// computed exactly by a dynamic program over the three w-blocks, which makes
// the L<=3 cases exact and the extrapolation to larger L the only
// approximation — at least as accurate as the closed-form approximations in
// the literature.
package scanstat

import "math"

// Binom bundles the binomial pmf and cdf for n trials with success
// probability p, computed in log space for numerical stability at the very
// small background probabilities (1e-6 .. 1e-1) the engine sweeps.
type Binom struct {
	n int
	p float64
	// cdf[j] = P(X <= j) for j in [0, n]; precomputed because callers
	// evaluate many tail probabilities for the same (n, p).
	cdf []float64
	pmf []float64
}

// NewBinom prepares pmf/cdf tables for Binomial(n, p). It panics on invalid
// arguments since they indicate programmer error, not data error.
func NewBinom(n int, p float64) *Binom {
	if n < 0 {
		panic("scanstat: negative trial count")
	}
	if p < 0 || p > 1 {
		panic("scanstat: probability out of [0,1]")
	}
	b := &Binom{n: n, p: p, pmf: make([]float64, n+1), cdf: make([]float64, n+1)}
	sum := 0.0
	for j := 0; j <= n; j++ {
		b.pmf[j] = binomPMF(j, n, p)
		sum += b.pmf[j]
		if sum > 1 {
			sum = 1
		}
		b.cdf[j] = sum
	}
	return b
}

// N returns the number of trials.
func (b *Binom) N() int { return b.n }

// P returns the success probability.
func (b *Binom) P() float64 { return b.p }

// PMF returns P(X = j); zero outside [0, n].
func (b *Binom) PMF(j int) float64 {
	if j < 0 || j > b.n {
		return 0
	}
	return b.pmf[j]
}

// CDF returns P(X <= j); zero below 0 and one above n.
func (b *Binom) CDF(j int) float64 {
	if j < 0 {
		return 0
	}
	if j >= b.n {
		return 1
	}
	return b.cdf[j]
}

// Tail returns P(X >= j).
func (b *Binom) Tail(j int) float64 {
	if j <= 0 {
		return 1
	}
	return 1 - b.CDF(j-1)
}

// binomPMF computes C(n,j) p^j (1-p)^(n-j) through log-gamma, handling the
// p=0 and p=1 degenerate cases explicitly (log(0) would poison the result).
func binomPMF(j, n int, p float64) float64 {
	if j < 0 || j > n {
		return 0
	}
	switch {
	case p == 0:
		if j == 0 {
			return 1
		}
		return 0
	case p == 1:
		if j == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, j) + float64(j)*math.Log(p) + float64(n-j)*math.Log1p(-p)
	return math.Exp(lg)
}

// lchoose returns log C(n, k).
func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
