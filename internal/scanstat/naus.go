package scanstat

import (
	"fmt"
	"math"
	"sync"
)

// Q2 returns the exact probability that no window of w consecutive trials
// among 2w Bernoulli(p) trials contains k or more successes:
//
//	Q2 = F(k-1)^2 - b(k) * sum_{r=0}^{k-2} F(r)
//
// where b and F are the Binomial(w, p) pmf and cdf. The identity follows
// from a reflection argument on the window-count walk: every length-w window
// inside 2w trials crosses the half boundary, so the maximum window count is
// N1 + max(0, max_y (V_y - U_y)) for the two half prefix-count processes,
// whose maximum obeys an exact reflection identity because the paired step
// distribution is symmetric.
func Q2(k, w int, p float64) float64 {
	if err := checkArgs(k, w, p); err != nil {
		panic(err)
	}
	if k > w {
		return 1 // a w-window cannot hold more than w successes
	}
	b := NewBinom(w, p)
	g := 0.0
	for r := 0; r <= k-2; r++ {
		g += b.CDF(r)
	}
	q := b.CDF(k-1)*b.CDF(k-1) - b.PMF(k)*g
	return clampProb(q)
}

// Q3 returns the exact probability that no window of w consecutive trials
// among 3w Bernoulli(p) trials contains k or more successes. It runs an
// O(w k^4) dynamic program over the three w-blocks.
//
// Derivation: split trials into blocks B1 B2 B3 of w each. Window counts are
// C_{y+1} = R1_y + V_y (windows crossing the B1/B2 boundary) and
// C_{w+1+y} = R2_y + T_y (crossing B2/B3), for y = 0..w, where R1_y and R2_y
// count block successes not yet passed by the window start, and V_y, T_y are
// prefix counts of B2 and B3. R1 and R2 are Markov when conditioned on their
// remaining counts (exchangeability of iid trials), and T has iid Bernoulli
// increments, so the joint survival probability is a small DP over the state
// (R1_y, V_y, R2_y, T_y) restricted to R1+V <= k-1 and R2+T <= k-1.
func Q3(k, w int, p float64) float64 {
	if err := checkArgs(k, w, p); err != nil {
		panic(err)
	}
	if k > w {
		return 1
	}
	prior := NewBinom(w, p)

	// pairIdx enumerates pairs (a, b) with a+b <= k-1, a,b >= 0.
	np := k * (k + 1) / 2
	pairIdx := func(a, b int) int {
		// Pairs ordered by a: for fixed a, b in [0, k-1-a].
		// offset(a) = sum_{i<a} (k-i) = a*k - a(a-1)/2
		return a*k - a*(a-1)/2 + b
	}

	// cur[i1*np+i2]: i1 indexes (r1, v), i2 indexes (r2, t).
	cur := make([]float64, np*np)
	next := make([]float64, np*np)

	// y = 0: v = t = 0, r1 = N1 <= k-1, r2 = N2 <= k-1.
	for r1 := 0; r1 <= k-1; r1++ {
		for r2 := 0; r2 <= k-1; r2++ {
			cur[pairIdx(r1, 0)*np+pairIdx(r2, 0)] = prior.PMF(r1) * prior.PMF(r2)
		}
	}

	for y := 0; y < w; y++ {
		m := float64(w - y) // trials remaining in each of B1, B2
		for i := range next {
			next[i] = 0
		}
		for r1 := 0; r1 <= k-1; r1++ {
			for v := 0; v+r1 <= k-1; v++ {
				i1 := pairIdx(r1, v)
				for r2 := 0; r2 <= k-1; r2++ {
					for t := 0; t+r2 <= k-1; t++ {
						pr := cur[i1*np+pairIdx(r2, t)]
						if pr == 0 {
							continue
						}
						// Probability the leaving B1 trial is a success, given
						// r1 successes remain among the m undecided trials.
						a1 := float64(r1) / m
						a2 := float64(r2) / m
						for d1 := 0; d1 <= 1; d1++ { // B1 leave success?
							p1 := a1
							nr1 := r1 - 1
							if d1 == 0 {
								p1, nr1 = 1-a1, r1
							}
							if p1 == 0 {
								continue
							}
							for d2 := 0; d2 <= 1; d2++ { // B2 leave success?
								p2 := a2
								nr2, nv := r2-1, v+1
								if d2 == 0 {
									p2, nr2, nv = 1-a2, r2, v
								}
								if p2 == 0 {
									continue
								}
								for d3 := 0; d3 <= 1; d3++ { // B3 arrival success?
									p3 := p
									nt := t + 1
									if d3 == 0 {
										p3, nt = 1-p, t
									}
									if p3 == 0 {
										continue
									}
									if nr1+nv > k-1 || nr2+nt > k-1 {
										continue // a window reached k: path dies
									}
									next[pairIdx(nr1, nv)*np+pairIdx(nr2, nt)] += pr * p1 * p2 * p3
								}
							}
						}
					}
				}
			}
		}
		cur, next = next, cur
	}

	total := 0.0
	for _, v := range cur {
		total += v
	}
	return clampProb(total)
}

// Tail returns P(S_w(N) >= k | p, w, L) with N = L*w, the probability that
// some window of w consecutive trials among N contains at least k successes.
// L may be fractional and must be >= 1.
//
// For L <= 2 it interpolates the exact single- and double-window survival
// probabilities; for L > 2 it uses the Naus product-type extrapolation
// 1 - Q2 (Q3/Q2)^(L-2) with the exact Q2 and Q3 above.
func Tail(k, w int, p, L float64) float64 {
	if err := checkArgs(k, w, p); err != nil {
		panic(err)
	}
	if L < 1 {
		panic(fmt.Sprintf("scanstat: L = %v < 1", L))
	}
	if k > w {
		return 0
	}
	if k <= 0 {
		return 1
	}
	q1 := NewBinom(w, p).CDF(k - 1) // P(S_w(w) < k)
	if L <= 2 {
		q2 := Q2(k, w, p)
		return clampProb(1 - extrapolate(q1, q2, L-1))
	}
	q2 := Q2(k, w, p)
	q3 := q3For(k, w, p, q1, q2)
	return clampProb(1 - extrapolate(q2, q3, L-2))
}

// q3ExactMaxK bounds the exact dynamic program: its state count grows as
// k^4, so beyond this point Q3 is replaced by the classical product-type
// estimate Q3 ~ Q2^2/Q1 (the same spacings-ratio argument the L>3
// extrapolation rests on). Queries operate at small critical values — the
// fallback only engages while an adaptive background estimate passes through
// a high-probability regime, where precision is irrelevant because nothing
// is significant anyway.
const q3ExactMaxK = 25

func q3For(k, w int, p, q1, q2 float64) float64 {
	if k <= q3ExactMaxK {
		return Q3(k, w, p)
	}
	if q1 <= 0 {
		return 0
	}
	return clampProb(q2 * q2 / q1)
}

// extrapolate computes qa * (qb/qa)^t in log space, treating a zero survival
// probability as zero (certain detection).
func extrapolate(qa, qb float64, t float64) float64 {
	if qa <= 0 || qb <= 0 {
		return 0
	}
	return math.Exp(math.Log(qa) + t*(math.Log(qb)-math.Log(qa)))
}

// critCache memoises CriticalValue process-wide: the function is pure and
// the adaptive engine queries the same (w, p-bucket, L, alpha) points over
// and over across runs.
var critCache sync.Map

type critKey struct {
	w        int
	p, l, al float64
}

// CriticalValue returns the smallest k such that
// P(S_w(N) >= k | p, w, L) <= alpha — the paper's k_crit (Equation 5). The
// tail is non-increasing in k, so a binary search over [1, w] suffices.
//
// If even k = w is not significant (the background probability is too high
// for any in-window count to be surprising) it returns w+1, a sentinel the
// indicator logic treats as "never positive".
func CriticalValue(w int, p, L, alpha float64) int {
	if w <= 0 {
		panic("scanstat: window must be positive")
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("scanstat: alpha = %v out of (0,1)", alpha))
	}
	if p <= 0 {
		return 1 // any success at all is significant against p = 0
	}
	if p >= 1 {
		return w + 1
	}
	key := critKey{w: w, p: p, l: L, al: alpha}
	if k, ok := critCache.Load(key); ok {
		return k.(int)
	}
	k := criticalValueSearch(w, p, L, alpha)
	critCache.Store(key, k)
	return k
}

func criticalValueSearch(w int, p, L, alpha float64) int {
	// Binary search over [1, w+1]; the virtual k = w+1 has tail 0 <= alpha,
	// so the invariant Tail(hi) <= alpha < Tail(lo-1) always holds.
	lo, hi := 1, w+1
	for lo < hi {
		mid := (lo + hi) / 2
		if Tail(mid, w, p, L) <= alpha {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CriticalValues is a memoizing wrapper around CriticalValue for callers that
// recompute k_crit as an estimated background probability drifts (SVAQD). The
// probability is quantized on a logarithmic grid before lookup, trading an at
// most quantum-sized relative perturbation of p for a high hit rate.
//
// Quantization rounds log10(p) up, never down: the bucket probability is
// always >= p, and the critical value is non-decreasing in p, so a cached
// value is never less conservative than a direct CriticalValue call — the
// property that makes one grid safe to share across concurrent runs whose
// estimates straddle bucket boundaries.
//
// A CriticalValues is safe for concurrent use; Shared returns a process-wide
// instance per (w, L, alpha, grid) so every run of a fleet, and every
// concurrent server query at the same configuration, reuses one memoized
// Naus search instead of owning a private cache.
type CriticalValues struct {
	w     int
	l     float64
	alpha float64
	grid  float64 // log10 quantum, e.g. 0.01 for 100 buckets per decade

	mu    sync.RWMutex
	cache map[int]int
}

// NewCriticalValues builds a private cache for window w, horizon ratio L and
// significance level alpha, quantizing log10(p) to multiples of grid. Most
// callers want Shared instead.
func NewCriticalValues(w int, L, alpha, grid float64) *CriticalValues {
	if grid <= 0 {
		panic("scanstat: grid must be positive")
	}
	return &CriticalValues{w: w, l: L, alpha: alpha, grid: grid, cache: make(map[int]int)}
}

// sharedGrids holds the process-wide CriticalValues instances, keyed by the
// full parameterization so differently configured engines never alias.
var sharedGrids sync.Map

type sharedKey struct {
	w              int
	l, alpha, grid float64
}

// Shared returns the process-wide CriticalValues for (w, L, alpha, grid),
// creating it on first use. All callers with equal parameters receive the
// same instance and therefore share its memoized grid.
func Shared(w int, L, alpha, grid float64) *CriticalValues {
	key := sharedKey{w: w, l: L, alpha: alpha, grid: grid}
	if c, ok := sharedGrids.Load(key); ok {
		return c.(*CriticalValues)
	}
	c, _ := sharedGrids.LoadOrStore(key, NewCriticalValues(w, L, alpha, grid))
	return c.(*CriticalValues)
}

// Sentinel buckets for the degenerate probabilities the grid does not
// cover: p <= 0 always yields k = 1, p >= 1 the never-positive w+1.
const (
	bucketZero = math.MinInt // p <= 0
	bucketOne  = math.MaxInt // p >= 1
)

// BucketOf returns the grid bucket p quantizes to. The critical value is a
// pure function of the bucket, so a caller that tracks the bucket of its
// last lookup can skip the shared cache entirely while its estimate stays
// inside one bucket — the per-clip refresh of a drifting background
// estimate touches the shared grid once per bucket crossing, not once per
// clip.
func (c *CriticalValues) BucketOf(p float64) int {
	if p <= 0 {
		return bucketZero
	}
	if p >= 1 {
		return bucketOne
	}
	// log10(p) < 0 here, so the ceil bucket is <= 0 and its probability
	// 10^(bucket*grid) is in [p, 1] (up to a 1e-9 log10 slop that keeps
	// floating-point representations of on-grid probabilities, e.g.
	// log10(1e-4)/grid = -399.99999999999994, in their own bucket).
	return int(math.Ceil(math.Log10(p)/c.grid - 1e-9))
}

// AtBucket returns the critical value for a bucket previously obtained from
// BucketOf.
func (c *CriticalValues) AtBucket(bucket int) int {
	switch bucket {
	case bucketZero:
		return 1
	case bucketOne:
		return c.w + 1
	}
	c.mu.RLock()
	k, ok := c.cache[bucket]
	c.mu.RUnlock()
	if ok {
		return k
	}
	// Compute outside the lock: CriticalValue is itself memoized process-wide,
	// so a racing duplicate costs one map lookup, not a second Naus search.
	k = CriticalValue(c.w, math.Pow(10, float64(bucket)*c.grid), c.l, c.alpha)
	c.mu.Lock()
	c.cache[bucket] = k
	c.mu.Unlock()
	return k
}

// At returns the (possibly cached) critical value for background
// probability p. It is safe to call from concurrent runs sharing the cache.
func (c *CriticalValues) At(p float64) int {
	return c.AtBucket(c.BucketOf(p))
}

// AtBatch fills ks[i] with the critical value for ps[i], acquiring the
// shared lock once for the whole batch instead of once per probability.
// Misses are computed outside the lock and inserted in a single write
// round. ks must have len(ps) space; the filled prefix is returned.
func (c *CriticalValues) AtBatch(ps []float64, ks []int) []int {
	ks = ks[:len(ps)]
	miss := false
	c.mu.RLock()
	for i, p := range ps {
		switch b := c.BucketOf(p); b {
		case bucketZero:
			ks[i] = 1
		case bucketOne:
			ks[i] = c.w + 1
		default:
			if k, ok := c.cache[b]; ok {
				ks[i] = k
			} else {
				ks[i] = -1
				miss = true
			}
		}
	}
	c.mu.RUnlock()
	if !miss {
		return ks
	}
	for i, p := range ps {
		if ks[i] < 0 {
			ks[i] = CriticalValue(c.w, math.Pow(10, float64(c.BucketOf(p))*c.grid), c.l, c.alpha)
		}
	}
	c.mu.Lock()
	for i, p := range ps {
		c.cache[c.BucketOf(p)] = ks[i]
	}
	c.mu.Unlock()
	return ks
}

// Size reports how many buckets the cache currently holds (diagnostics).
func (c *CriticalValues) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}

func checkArgs(k, w int, p float64) error {
	if w <= 0 {
		return fmt.Errorf("scanstat: window w = %d must be positive", w)
	}
	if k < 0 {
		return fmt.Errorf("scanstat: k = %d must be non-negative", k)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("scanstat: p = %v out of [0,1]", p)
	}
	return nil
}

func clampProb(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
