package scanstat

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// exactQ computes P(S_w(N) < k) by full enumeration of all 2^N Bernoulli
// sequences — the ground truth the closed form and the DP must match.
func exactQ(k, w, N int, p float64) float64 {
	total := 0.0
	for mask := 0; mask < (1 << N); mask++ {
		cnt := 0
		for i := 0; i < w; i++ {
			if mask&(1<<i) != 0 {
				cnt++
			}
		}
		mx := cnt
		for y := 1; y+w <= N; y++ {
			if mask&(1<<(y-1)) != 0 {
				cnt--
			}
			if mask&(1<<(y+w-1)) != 0 {
				cnt++
			}
			if cnt > mx {
				mx = cnt
			}
		}
		if mx < k {
			ones := 0
			for i := 0; i < N; i++ {
				if mask&(1<<i) != 0 {
					ones++
				}
			}
			total += math.Pow(p, float64(ones)) * math.Pow(1-p, float64(N-ones))
		}
	}
	return total
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 50, 200} {
		for _, p := range []float64{0, 1e-6, 1e-3, 0.5, 0.97, 1} {
			b := NewBinom(n, p)
			sum := 0.0
			for j := 0; j <= n; j++ {
				sum += b.PMF(j)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d p=%g: pmf sums to %v", n, p, sum)
			}
			if b.CDF(n) != 1 || b.CDF(-1) != 0 {
				t.Errorf("n=%d p=%g: cdf boundaries wrong", n, p)
			}
			if b.Tail(0) != 1 {
				t.Errorf("n=%d p=%g: Tail(0) = %v", n, p, b.Tail(0))
			}
		}
	}
}

func TestBinomKnownValues(t *testing.T) {
	b := NewBinom(4, 0.5)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for j, w := range want {
		if got := b.PMF(j); math.Abs(got-w) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want %v", j, got, w)
		}
	}
	if got := b.CDF(2); math.Abs(got-11.0/16) > 1e-12 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := b.Tail(3); math.Abs(got-5.0/16) > 1e-12 {
		t.Errorf("Tail(3) = %v", got)
	}
}

func TestBinomDegenerate(t *testing.T) {
	b0 := NewBinom(10, 0)
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("p=0 pmf should be a point mass at 0")
	}
	b1 := NewBinom(10, 1)
	if b1.PMF(10) != 1 || b1.PMF(9) != 0 {
		t.Error("p=1 pmf should be a point mass at n")
	}
}

func TestQ2MatchesEnumeration(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 7, 9} {
		for k := 1; k <= w+1; k++ {
			for _, p := range []float64{0.05, 0.2, 0.5, 0.8, 0.95} {
				got := Q2(k, w, p)
				want := exactQ(k, w, 2*w, p)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("Q2(k=%d,w=%d,p=%g) = %v, want %v", k, w, p, got, want)
				}
			}
		}
	}
}

func TestQ3MatchesEnumeration(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 6} {
		for k := 1; k <= w+1; k++ {
			for _, p := range []float64{0.1, 0.35, 0.5, 0.75} {
				got := Q3(k, w, p)
				want := exactQ(k, w, 3*w, p)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("Q3(k=%d,w=%d,p=%g) = %v, want %v", k, w, p, got, want)
				}
			}
		}
	}
}

func TestQ2Q3Degenerate(t *testing.T) {
	if got := Q2(0, 5, 0.3); got != 0 {
		t.Errorf("Q2(k=0) = %v, want 0 (S>=0 is certain)", got)
	}
	if got := Q3(0, 5, 0.3); got != 0 {
		t.Errorf("Q3(k=0) = %v, want 0", got)
	}
	if got := Q2(6, 5, 0.3); got != 1 {
		t.Errorf("Q2(k>w) = %v, want 1", got)
	}
	if got := Q3(6, 5, 0.3); got != 1 {
		t.Errorf("Q3(k>w) = %v, want 1", got)
	}
	if got := Q2(3, 5, 0); got != 1 {
		t.Errorf("Q2(p=0) = %v, want 1", got)
	}
	if got := Q3(3, 5, 1); got != 0 {
		t.Errorf("Q3(p=1,k<=w) = %v, want 0", got)
	}
}

func TestTailExactAtSmallL(t *testing.T) {
	// L = 1, 2, 3 are exact: single window binomial, Q2, Q3.
	for _, p := range []float64{0.1, 0.4} {
		w, k := 6, 3
		if got, want := Tail(k, w, p, 1), 1-NewBinom(w, p).CDF(k-1); math.Abs(got-want) > 1e-12 {
			t.Errorf("Tail L=1: %v want %v", got, want)
		}
		if got, want := Tail(k, w, p, 2), 1-Q2(k, w, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Tail L=2: %v want %v", got, want)
		}
		if got, want := Tail(k, w, p, 3), 1-Q3(k, w, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Tail L=3: %v want %v", got, want)
		}
	}
}

// mcTail estimates P(S_w(N) >= k) by simulation.
func mcTail(k, w, N int, p float64, trials int, r *rand.Rand) float64 {
	hits := 0
	buf := make([]bool, N)
	for t := 0; t < trials; t++ {
		for i := range buf {
			buf[i] = r.Float64() < p
		}
		cnt := 0
		for i := 0; i < w; i++ {
			if buf[i] {
				cnt++
			}
		}
		mx := cnt
		for y := w; y < N; y++ {
			if buf[y] {
				cnt++
			}
			if buf[y-w] {
				cnt--
			}
			if cnt > mx {
				mx = cnt
			}
		}
		if mx >= k {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// TestTailMonteCarlo validates the product-type extrapolation beyond L=3 on
// window sizes the engine actually uses (50-frame clips).
func TestTailMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo validation is slow")
	}
	r := rand.New(rand.NewSource(42))
	cases := []struct {
		k, w int
		p    float64
		L    float64
	}{
		{3, 50, 0.01, 10},
		{5, 50, 0.02, 20},
		{4, 20, 0.05, 8},
		{8, 50, 0.05, 40},
		{3, 10, 0.05, 12},
	}
	for _, c := range cases {
		approx := Tail(c.k, c.w, c.p, c.L)
		emp := mcTail(c.k, c.w, int(c.L)*c.w, c.p, 20000, r)
		// Approximation plus MC noise: accept 0.015 absolute + 15% relative.
		tol := 0.015 + 0.15*emp
		if math.Abs(approx-emp) > tol {
			t.Errorf("Tail(k=%d,w=%d,p=%g,L=%g) = %v, MC = %v (tol %v)",
				c.k, c.w, c.p, c.L, approx, emp, tol)
		}
	}
}

func TestTailMonotoneInK(t *testing.T) {
	for _, p := range []float64{0.001, 0.05, 0.3} {
		prev := 1.1
		for k := 1; k <= 20; k++ {
			got := Tail(k, 20, p, 15)
			if got > prev+1e-12 {
				t.Errorf("Tail not non-increasing at k=%d p=%g: %v > %v", k, p, got, prev)
			}
			prev = got
		}
	}
}

func TestTailMonotoneInPAndL(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.3} {
		got := Tail(4, 50, p, 10)
		if got < prev-1e-12 {
			t.Errorf("Tail not non-decreasing in p at %g: %v < %v", p, got, prev)
		}
		prev = got
	}
	prev = -1.0
	for _, L := range []float64{1, 2, 3, 5, 10, 50, 200} {
		got := Tail(4, 50, 0.01, L)
		if got < prev-1e-12 {
			t.Errorf("Tail not non-decreasing in L at %g: %v < %v", L, got, prev)
		}
		prev = got
	}
}

func TestCriticalValueDefinition(t *testing.T) {
	// k_crit must be the smallest significant k.
	for _, c := range []struct {
		w     int
		p, L  float64
		alpha float64
	}{
		{50, 1e-4, 100, 0.05},
		{50, 1e-2, 100, 0.05},
		{50, 0.1, 100, 0.05},
		{5, 0.05, 100, 0.05},
		{20, 0.3, 10, 0.01},
	} {
		k := CriticalValue(c.w, c.p, c.L, c.alpha)
		if k < 1 || k > c.w+1 {
			t.Fatalf("CriticalValue(%+v) = %d out of range", c, k)
		}
		if k <= c.w {
			if got := Tail(k, c.w, c.p, c.L); got > c.alpha {
				t.Errorf("%+v: Tail(k_crit=%d) = %v > alpha", c, k, got)
			}
		}
		if k > 1 {
			if got := Tail(k-1, c.w, c.p, c.L); got <= c.alpha {
				t.Errorf("%+v: Tail(k_crit-1=%d) = %v <= alpha, k_crit not minimal", c, k-1, got)
			}
		}
	}
}

func TestCriticalValueEdges(t *testing.T) {
	if got := CriticalValue(50, 0, 100, 0.05); got != 1 {
		t.Errorf("p=0: k_crit = %d, want 1", got)
	}
	if got := CriticalValue(50, 1, 100, 0.05); got != 51 {
		t.Errorf("p=1: k_crit = %d, want w+1", got)
	}
	// Very high background: even a full window is unsurprising.
	if got := CriticalValue(5, 0.99, 1000, 0.05); got != 6 {
		t.Errorf("p=0.99: k_crit = %d, want w+1 sentinel", got)
	}
}

func TestCriticalValueMonotoneInP(t *testing.T) {
	prev := 0
	for _, p := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3} {
		k := CriticalValue(50, p, 100, 0.05)
		if k < prev {
			t.Errorf("k_crit not non-decreasing in p: k(%g) = %d < %d", p, k, prev)
		}
		prev = k
	}
}

func TestCriticalValuesCache(t *testing.T) {
	c := NewCriticalValues(50, 100, 0.05, 0.01)
	exact := CriticalValue(50, 1e-4, 100, 0.05)
	got := c.At(1e-4)
	if got != exact {
		t.Errorf("cached At(1e-4) = %d, exact %d", got, exact)
	}
	// Same bucket should be served from the cache (same answer).
	if again := c.At(1.001e-4); again != got {
		t.Errorf("near-identical p got %d, want %d", again, got)
	}
	if c.At(0) != 1 {
		t.Error("At(0) should be 1")
	}
	if c.At(1) != 51 {
		t.Error("At(1) should be w+1")
	}
	if c.At(2) != 51 {
		t.Error("At(p>1) should be w+1")
	}
}

// TestCriticalValuesAtOffGrid pins the conservativeness contract that makes
// the grid safe to share: for probabilities below the grid floor, between
// grid points, and near 1, the cached value must never be less conservative
// (smaller) than a direct CriticalValue computation at the same p.
func TestCriticalValuesAtOffGrid(t *testing.T) {
	const (
		w     = 50
		L     = 100.0
		alpha = 0.05
		grid  = 0.02
	)
	c := NewCriticalValues(w, L, alpha, grid)
	ps := []float64{
		// Far below any plausible grid floor (the kernel estimator's own
		// floor is 1e-9; these probe deeper).
		1e-300, 1e-30, 1e-12, 1e-9,
		// Between grid points: 0.02 log10 steps put buckets at 10^-4.00,
		// 10^-3.98, ...; these land strictly inside buckets.
		1.05e-4, 1.3e-4, 3.33e-3, 0.0123,
		// On-grid representatives.
		1e-4, 1e-2,
		// Near 1, including values inside the top bucket.
		0.5, 0.9, 0.97, 0.999, 1 - 1e-12,
	}
	for _, p := range ps {
		got := c.At(p)
		direct := CriticalValue(w, p, L, alpha)
		if got < direct {
			t.Errorf("At(%g) = %d is less conservative than direct CriticalValue %d", p, got, direct)
		}
		// The quantization inflates p by at most one grid step, so the
		// cached value can exceed the direct one only by what a one-step
		// p-perturbation justifies.
		stepped := CriticalValue(w, math.Min(1, p*math.Pow(10, grid)), L, alpha)
		if got > stepped {
			t.Errorf("At(%g) = %d exceeds one-grid-step bound %d", p, got, stepped)
		}
	}
	// Repeat lookups hit the cache and must agree with the first answer.
	for _, p := range ps {
		if again := c.At(p); again != c.At(p) || again < CriticalValue(w, p, L, alpha) {
			t.Errorf("repeat At(%g) unstable or non-conservative: %d", p, again)
		}
	}
}

// TestSharedCriticalValues checks the process-wide registry: identical
// parameters alias to one instance, different parameters never do, and the
// shared grid serves concurrent readers racing on the same buckets (the
// fleet-evaluation access pattern; run under -race).
func TestSharedCriticalValues(t *testing.T) {
	a := Shared(40, 20, 0.05, 0.02)
	b := Shared(40, 20, 0.05, 0.02)
	if a != b {
		t.Fatal("identical parameters returned distinct shared grids")
	}
	if c := Shared(41, 20, 0.05, 0.02); c == a {
		t.Fatal("different window aliased to the same shared grid")
	}
	if c := Shared(40, 20, 0.01, 0.02); c == a {
		t.Fatal("different alpha aliased to the same shared grid")
	}

	ps := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}
	want := make([]int, len(ps))
	for i, p := range ps {
		want[i] = a.At(p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, p := range ps {
					if got := a.At(p); got != want[i] {
						t.Errorf("concurrent At(%g) = %d, want %d", p, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := a.Size(); n < len(ps) {
		t.Errorf("shared grid holds %d buckets, want >= %d", n, len(ps))
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	assertPanics(t, "negative k", func() { Q2(-1, 5, 0.5) })
	assertPanics(t, "zero w", func() { Q3(1, 0, 0.5) })
	assertPanics(t, "bad p", func() { Tail(1, 5, 1.5, 2) })
	assertPanics(t, "L<1", func() { Tail(1, 5, 0.5, 0.5) })
	assertPanics(t, "bad alpha", func() { CriticalValue(5, 0.5, 2, 0) })
	assertPanics(t, "bad grid", func() { NewCriticalValues(5, 2, 0.05, 0) })
	assertPanics(t, "negative n", func() { NewBinom(-1, 0.5) })
	assertPanics(t, "binom bad p", func() { NewBinom(5, -0.1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestAtBatchMatchesAt pins the batch API to the scalar one: for any mix of
// degenerate, on-grid, and off-grid probabilities — cold cache and warm —
// AtBatch must return exactly what element-wise At would.
func TestAtBatchMatchesAt(t *testing.T) {
	ps := []float64{0, -1, 1, 2, 1e-4, 1.001e-4, 3e-3, 0.7, 1e-9, 0.02}
	cold := NewCriticalValues(40, 60, 0.05, 0.02)
	ks := cold.AtBatch(ps, make([]int, len(ps)))
	ref := NewCriticalValues(40, 60, 0.05, 0.02)
	for i, p := range ps {
		if want := ref.At(p); ks[i] != want {
			t.Errorf("cold AtBatch[%d] (p=%g) = %d, want %d", i, p, ks[i], want)
		}
	}
	// Warm: every bucket is now cached; a second batch must agree and take
	// the all-hit path.
	again := cold.AtBatch(ps, make([]int, len(ps)))
	for i := range ps {
		if again[i] != ks[i] {
			t.Errorf("warm AtBatch[%d] = %d, want %d", i, again[i], ks[i])
		}
	}
}

// TestBucketOfContract checks the bucket quantization AtBucket relies on:
// degenerate sentinels, same-bucket equality for nearby probabilities, and
// that AtBucket(BucketOf(p)) == At(p).
func TestBucketOfContract(t *testing.T) {
	c := NewCriticalValues(50, 100, 0.05, 0.01)
	if b := c.BucketOf(0); b != c.BucketOf(-3) {
		t.Error("all p<=0 should share the zero sentinel bucket")
	}
	if b := c.BucketOf(1); b != c.BucketOf(7) {
		t.Error("all p>=1 should share the one sentinel bucket")
	}
	// 1.01e-4 and 1.02e-4 both sit strictly inside the (10^-4.00, 10^-3.99]
	// bucket; 1e-4 itself is the on-grid lower edge and gets its own.
	if c.BucketOf(1.01e-4) != c.BucketOf(1.02e-4) {
		t.Error("near-identical probabilities should quantize to one bucket")
	}
	for _, p := range []float64{0, 1, 1e-4, 0.37, 1e-8} {
		if got, want := c.AtBucket(c.BucketOf(p)), c.At(p); got != want {
			t.Errorf("AtBucket(BucketOf(%g)) = %d, want At = %d", p, got, want)
		}
	}
}
