package scanstat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// params draws a random engine-relevant parameter point.
type params struct {
	W     int
	P     float64
	L     float64
	Alpha float64
}

// Generate implements quick.Generator.
func (params) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(params{
		W:     1 + r.Intn(36),
		P:     r.Float64() * 0.5,
		L:     1 + r.Float64()*50,
		Alpha: 0.001 + r.Float64()*0.2,
	})
}

func TestQuickTailIsProbability(t *testing.T) {
	f := func(pp params, k uint8) bool {
		v := Tail(int(k)%(pp.W+2), pp.W, pp.P, pp.L)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTailMonotoneInK(t *testing.T) {
	f := func(pp params) bool {
		prev := 1.1
		for k := 1; k <= pp.W; k++ {
			v := Tail(k, pp.W, pp.P, pp.L)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickCriticalValueIsMinimal(t *testing.T) {
	f := func(pp params) bool {
		k := CriticalValue(pp.W, pp.P, pp.L, pp.Alpha)
		if k < 1 || k > pp.W+1 {
			return false
		}
		if k <= pp.W && Tail(k, pp.W, pp.P, pp.L) > pp.Alpha {
			return false
		}
		if k > 1 && Tail(k-1, pp.W, pp.P, pp.L) <= pp.Alpha {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickQ2Q3Consistency(t *testing.T) {
	// Survival probabilities must nest: Q3 <= Q2 <= Q1 (more trials, more
	// chances to exceed the quota). Restrict to the exact-Q3 regime.
	f := func(pp params, kk uint8) bool {
		k := 1 + int(kk)%min(pp.W, q3ExactMaxK)
		q1 := NewBinom(pp.W, pp.P).CDF(k - 1)
		q2 := Q2(k, pp.W, pp.P)
		q3 := Q3(k, pp.W, pp.P)
		return q3 <= q2+1e-9 && q2 <= q1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
