package rank

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/store"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func iv(a, b int) video.Interval { return video.Interval{Start: a, End: b} }

// buildIndex constructs a small in-memory index by hand with full control
// over scores and individual sequences.
func buildIndex(t *testing.T, numClips int, seed int64, seqLens []int) *Index {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ix := &Index{
		Name:     "hand",
		NumClips: numClips,
		Objects:  map[string]*TypeIndex{},
		Actions:  map[string]*TypeIndex{},
	}
	// Lay the candidate sequences down with single-clip gaps.
	var seqs []video.Interval
	pos := 1
	for _, l := range seqLens {
		seqs = append(seqs, iv(pos, pos+l-1))
		pos += l + 1
	}
	if pos > numClips {
		t.Fatalf("numClips %d too small for sequences ending at %d", numClips, pos)
	}
	mkType := func(name string) *TypeIndex {
		var entries []store.Entry
		for c := 0; c < numClips; c++ {
			// Clips inside candidate sequences always score; others score
			// sometimes (they exist in tables but never qualify).
			inSeq := false
			for _, s := range seqs {
				if s.Contains(c) {
					inSeq = true
					break
				}
			}
			if inSeq || r.Float64() < 0.4 {
				entries = append(entries, store.Entry{Clip: c, Score: 0.1 + 10*r.Float64()})
			}
		}
		tbl, err := store.NewMemTable(name, entries)
		if err != nil {
			t.Fatal(err)
		}
		return &TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(seqs...)}
	}
	ix.Objects["car"] = mkType("car")
	ix.Objects["human"] = mkType("human")
	ix.Actions["jumping"] = mkType("jumping")
	return ix
}

var testQuery = core.Query{Objects: []string{"car", "human"}, Action: "jumping"}

func TestScoringFunctions(t *testing.T) {
	g := ProductOfSums{}
	if got := g.OfPredicates([]float64{2, 3}, 4); got != 20 {
		t.Errorf("g = %v, want 20", got)
	}
	if got := g.OfPredicates(nil, 4); got != 4 {
		t.Errorf("objectless g = %v, want 4", got)
	}
	f := Additive{}
	if f.Zero() != 0 || f.Combine(2, 3) != 5 || f.OfClip(7) != 7 || f.Repeat(2.5, 4) != 10 {
		t.Error("Additive behaviour wrong")
	}
	if err := PaperScoring().Validate(); err != nil {
		t.Errorf("paper scoring invalid: %v", err)
	}
	if err := (Scoring{}).Validate(); err == nil {
		t.Error("empty scoring should be invalid")
	}
}

func TestPqIntersection(t *testing.T) {
	ix := &Index{
		Name: "x", NumClips: 100,
		Objects: map[string]*TypeIndex{
			"car": {Table: mustMem(t, "car", nil), Seqs: video.NewIntervalSet(iv(0, 50))},
		},
		Actions: map[string]*TypeIndex{
			"run": {Table: mustMem(t, "run", nil), Seqs: video.NewIntervalSet(iv(30, 80))},
		},
	}
	pq, err := ix.Pq(core.Query{Objects: []string{"car"}, Action: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if pq.String() != video.NewIntervalSet(iv(30, 50)).String() {
		t.Errorf("Pq = %v", pq)
	}
	if _, err := ix.Pq(core.Query{Objects: []string{"nope"}, Action: "run"}); err == nil {
		t.Error("unknown object should error")
	}
	if _, err := ix.Pq(core.Query{Action: "nope"}); err == nil {
		t.Error("unknown action should error")
	}
	if _, err := ix.Pq(core.Query{}); err == nil {
		t.Error("invalid query should error")
	}
}

func mustMem(t *testing.T, name string, entries []store.Entry) *store.MemTable {
	t.Helper()
	tbl, err := store.NewMemTable(name, entries)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func sameResults(t *testing.T, name string, got []SeqResult, want []SeqResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq {
			// Equal scores may legitimately swap order; accept permutations
			// within score ties.
			if math.Abs(got[i].Score()-want[i].Lower) < 1e-9 {
				continue
			}
			t.Fatalf("%s: result %d = %v (%.4f), want %v (%.4f)",
				name, i, got[i].Seq, got[i].Score(), want[i].Seq, want[i].Lower)
		}
		if !got[i].Exact {
			t.Fatalf("%s: result %d not exact", name, i)
		}
		if math.Abs(got[i].Lower-want[i].Lower) > 1e-9 {
			t.Fatalf("%s: result %d score %v, want %v", name, i, got[i].Lower, want[i].Lower)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ix := buildIndex(t, 220, seed, []int{4, 9, 2, 14, 6, 3, 8, 5, 11, 2})
		for _, k := range []int{1, 3, 5, 9, 10, 15} {
			want, err := TruthTopK(ix, testQuery, k, PaperScoring())
			if err != nil {
				t.Fatal(err)
			}
			for name, algo := range Algorithms {
				res, err := algo(context.Background(), ix, testQuery, k, Options{})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				sameResults(t, name, res.Sequences, want)
				if res.Candidates != 10 {
					t.Errorf("%s: candidates = %d, want 10", name, res.Candidates)
				}
			}
		}
	}
}

func TestRVAQFewerAccessesThanBaselines(t *testing.T) {
	ix := buildIndex(t, 500, 42, []int{6, 12, 3, 18, 9, 4, 11, 7, 15, 2, 8, 10, 5, 13, 4})
	k := 3
	run := func(name string) *Result {
		res, err := Algorithms[name](context.Background(), ix, testQuery, k, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res
	}
	rvaq := run("RVAQ")
	noskip := run("RVAQ-noSkip")
	fa := run("FA")
	trav := run("Pq-Traverse")

	if rvaq.Stats.Random > noskip.Stats.Random {
		t.Errorf("RVAQ random accesses %d should not exceed noSkip %d", rvaq.Stats.Random, noskip.Stats.Random)
	}
	if noskip.Stats.Random > fa.Stats.Random {
		t.Errorf("noSkip random accesses %d should not exceed FA %d", noskip.Stats.Random, fa.Stats.Random)
	}
	if rvaq.ClipsScored >= trav.ClipsScored {
		t.Errorf("RVAQ scored %d clips, traverse %d; skip should reduce work at small k",
			rvaq.ClipsScored, trav.ClipsScored)
	}
}

func TestRVAQApproachesTraverseAtMaxK(t *testing.T) {
	ix := buildIndex(t, 300, 7, []int{5, 8, 3, 12, 6, 9})
	kMax := 6
	rvaq, err := RVAQ(context.Background(), ix, testQuery, kMax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trav, err := PqTraverse(context.Background(), ix, testQuery, kMax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rvaq.ClipsScored != trav.ClipsScored {
		t.Errorf("at max k RVAQ must score all candidate clips: %d vs %d",
			rvaq.ClipsScored, trav.ClipsScored)
	}
	sameResults(t, "RVAQ@maxK", rvaq.Sequences, trav.Sequences)
}

func TestRVAQApproxScores(t *testing.T) {
	ix := buildIndex(t, 300, 9, []int{5, 8, 3, 12, 6, 9, 7, 4})
	exact, err := RVAQ(context.Background(), ix, testQuery, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RVAQ(context.Background(), ix, testQuery, 2, Options{ApproxScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if approx.ClipsScored > exact.ClipsScored {
		t.Errorf("approx mode scored more clips (%d) than exact (%d)", approx.ClipsScored, exact.ClipsScored)
	}
	// The approximate winner set must match the exact winner set, and the
	// bounds must bracket the exact scores.
	for _, a := range approx.Sequences {
		found := false
		for _, e := range exact.Sequences {
			if a.Seq == e.Seq {
				found = true
				if a.Lower > e.Lower+1e-9 || a.Upper < e.Lower-1e-9 {
					t.Errorf("bounds [%v,%v] do not bracket exact %v for %v", a.Lower, a.Upper, e.Lower, a.Seq)
				}
			}
		}
		if !found {
			t.Errorf("approx winner %v not in exact winners", a.Seq)
		}
	}
}

func TestTopKDegenerate(t *testing.T) {
	ix := buildIndex(t, 200, 3, []int{4, 6})
	// k exceeding the number of candidates returns all of them.
	res, err := RVAQ(context.Background(), ix, testQuery, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) != 2 {
		t.Errorf("got %d sequences, want 2", len(res.Sequences))
	}
	// k <= 0 is rejected.
	for name, algo := range Algorithms {
		if _, err := algo(context.Background(), ix, testQuery, 0, Options{}); err == nil {
			t.Errorf("%s: k=0 should error", name)
		}
	}
	// Queries with no candidates return empty results.
	empty := &Index{
		Name: "e", NumClips: 10,
		Objects: map[string]*TypeIndex{"car": {Table: mustMem(t, "car", nil)}, "human": {Table: mustMem(t, "human", nil)}},
		Actions: map[string]*TypeIndex{"jumping": {Table: mustMem(t, "jumping", nil)}},
	}
	for name, algo := range Algorithms {
		res, err := algo(context.Background(), empty, testQuery, 3, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Sequences) != 0 {
			t.Errorf("%s: empty index returned %d sequences", name, len(res.Sequences))
		}
	}
}

func ingestedTestIndex(t *testing.T, frames int, seed int64) (*Index, *synth.Video) {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID: "rank-test", Frames: frames, FPS: 10, Geometry: video.DefaultGeometry, Seed: seed,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30},
			{Name: "talking", MeanGapShots: 50, MeanDurShots: 12},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "car", MeanGapFrames: 3000, MeanDurFrames: 500, CorrelatedWith: "jumping", CorrelationProb: 0.7},
			{Name: "chair", MeanGapFrames: 2500, MeanDurFrames: 300},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	models := detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, seed), detect.NewActionRecognizer(detect.I3D, seed))
	ix, err := Ingest(context.Background(), v, models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ix, v
}

func TestIngestProducesCoherentIndex(t *testing.T) {
	ix, v := ingestedTestIndex(t, 60_000, 11)
	if ix.Name != "rank-test" || ix.NumClips != 1200 {
		t.Fatalf("index header wrong: %s %d", ix.Name, ix.NumClips)
	}
	for _, typ := range []string{"human", "car", "chair"} {
		ti := ix.Objects[typ]
		if ti == nil {
			t.Fatalf("object %s missing", typ)
		}
		if ti.Table.Len() == 0 {
			t.Errorf("object %s table empty", typ)
		}
	}
	for _, typ := range []string{"jumping", "talking"} {
		if ix.Actions[typ] == nil {
			t.Fatalf("action %s missing", typ)
		}
	}
	// Individual sequences should resemble ground-truth presence: their
	// clip-level overlap must dominate their disagreement.
	truthClips := v.TruthClips(synth.QuerySpec{Action: "jumping"}, 0)
	got := ix.Actions["jumping"].Seqs
	inter := got.IntersectSet(truthClips).TotalLen()
	if inter < truthClips.TotalLen()/2 {
		t.Errorf("jumping sequences cover only %d of %d truth clips", inter, truthClips.TotalLen())
	}
	// Query end-to-end over the ingested index.
	q := core.Query{Objects: []string{"car"}, Action: "jumping"}
	res, err := RVAQ(context.Background(), ix, q, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := TruthTopK(ix, q, 5, PaperScoring())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "ingested RVAQ", res.Sequences, want)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, _ := ingestedTestIndex(t, 30_000, 13)
	dir := t.TempDir()
	if err := Save(dir, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Name != ix.Name || loaded.NumClips != ix.NumClips {
		t.Fatalf("header mismatch after load")
	}
	q := core.Query{Objects: []string{"car", "human"}, Action: "jumping"}
	for name, algo := range Algorithms {
		a, err := algo(context.Background(), ix, q, 4, Options{})
		if err != nil {
			t.Fatalf("%s mem: %v", name, err)
		}
		b, err := algo(context.Background(), loaded, q, 4, Options{})
		if err != nil {
			t.Fatalf("%s disk: %v", name, err)
		}
		if len(a.Sequences) != len(b.Sequences) {
			t.Fatalf("%s: result count differs after reload", name)
		}
		for i := range a.Sequences {
			if a.Sequences[i].Seq != b.Sequences[i].Seq ||
				math.Abs(a.Sequences[i].Score()-b.Sequences[i].Score()) > 1e-9 {
				t.Fatalf("%s: result %d differs after reload", name, i)
			}
		}
		if a.Stats.Random != b.Stats.Random {
			t.Errorf("%s: access counts differ between mem and disk: %d vs %d",
				name, a.Stats.Random, b.Stats.Random)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir should fail to load")
	}
}

func TestMergeOffsetsAndResolve(t *testing.T) {
	a, _ := ingestedTestIndex(t, 20_000, 17)
	bSrc, err := synth.Generate(synth.Script{
		ID: "second", Frames: 15_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 18,
		Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 60, MeanDurShots: 20}},
		Objects: []synth.ObjectSpec{{Name: "car", MeanGapFrames: 2000, MeanDurFrames: 400}},
	})
	if err != nil {
		t.Fatal(err)
	}
	models := detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, 18), detect.NewActionRecognizer(detect.I3D, 18))
	b, err := Ingest(context.Background(), bSrc, models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge("both", []*Index{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumClips != a.NumClips+1+b.NumClips+1 {
		t.Errorf("merged clip space %d, want %d", merged.NumClips, a.NumClips+b.NumClips+2)
	}
	// Resolution maps global ids back.
	id, local := merged.Resolve(0)
	if id != "rank-test" || local != 0 {
		t.Errorf("Resolve(0) = %s,%d", id, local)
	}
	id, local = merged.Resolve(a.NumClips + 1)
	if id != "second" || local != 0 {
		t.Errorf("Resolve(first of b) = %s,%d", id, local)
	}
	// No sequence crosses the video boundary.
	for typ, ti := range merged.Actions {
		for _, s := range ti.Seqs.Intervals() {
			if s.Contains(a.NumClips) {
				t.Errorf("action %s sequence %v spans the gap clip", typ, s)
			}
		}
	}
	// Merged scores equal per-video scores at shifted positions.
	carA := a.Objects["car"].Table
	carM := merged.Objects["car"].Table
	for i := 0; i < carA.Len(); i += 7 {
		e, err := carA.SortedAt(i)
		if err != nil {
			t.Fatal(err)
		}
		s, ok, err := carM.ScoreOf(e.Clip)
		if err != nil || !ok || s != e.Score {
			t.Fatalf("merged score mismatch at clip %d", e.Clip)
		}
	}
	// Merging a merged index is rejected.
	if _, err := Merge("again", []*Index{merged}); err == nil {
		t.Error("re-merging should be rejected")
	}
}

func TestIngestValidation(t *testing.T) {
	v, err := synth.Generate(synth.Script{
		ID: "tiny", Frames: 5000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 1,
		Actions: []synth.ActionSpec{{Name: "a", MeanGapShots: 30, MeanDurShots: 10}},
		Objects: []synth.ObjectSpec{{Name: "o", MeanGapFrames: 1000, MeanDurFrames: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(context.Background(), v, detect.Models{}, PaperScoring(), DefaultIngestConfig()); err == nil {
		t.Error("ingest without models should fail")
	}
	models := detect.NewModels(detect.NewObjectDetector(detect.IdealObject, 0), detect.NewActionRecognizer(detect.IdealAction, 0))
	if _, err := Ingest(context.Background(), v, models, Scoring{}, DefaultIngestConfig()); err == nil {
		t.Error("ingest without scoring should fail")
	}
	cfg := DefaultIngestConfig()
	cfg.Tracker = nil // tracking optional
	if _, err := Ingest(context.Background(), v, models, PaperScoring(), cfg); err != nil {
		t.Errorf("ingest without tracker failed: %v", err)
	}
}

func TestTBClipOrdering(t *testing.T) {
	ix := buildIndex(t, 150, 21, []int{4, 7, 3, 9})
	var st store.Stats
	tables, scorer, _, err := ix.queryTables(testQuery, &st, PaperScoring().Clip)
	if err != nil {
		t.Fatal(err)
	}
	pq, _ := ix.Pq(testQuery)
	iter, err := newTBClip(tables, scorer, pq, false)
	if err != nil {
		t.Fatal(err)
	}
	var tops, btms []float64
	seen := map[int]bool{}
	for {
		top, btm, hasTop, hasBtm, ok, err := iter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if hasTop {
			if seen[top.Clip] {
				t.Fatalf("clip %d returned twice", top.Clip)
			}
			seen[top.Clip] = true
			if !pq.Contains(top.Clip) {
				t.Fatalf("top clip %d outside Pq", top.Clip)
			}
			tops = append(tops, top.Score)
		}
		if hasBtm {
			if seen[btm.Clip] {
				t.Fatalf("clip %d returned twice", btm.Clip)
			}
			seen[btm.Clip] = true
			btms = append(btms, btm.Score)
		}
	}
	if len(seen) != pq.TotalLen() {
		t.Fatalf("iterator returned %d clips, Pq has %d", len(seen), pq.TotalLen())
	}
	for i := 1; i < len(tops); i++ {
		if tops[i] > tops[i-1]+1e-9 {
			t.Fatalf("top scores not non-increasing at %d: %v > %v", i, tops[i], tops[i-1])
		}
	}
	for i := 1; i < len(btms); i++ {
		if btms[i] < btms[i-1]-1e-9 {
			t.Fatalf("bottom scores not non-decreasing at %d", i)
		}
	}
}

func TestTBClipSkip(t *testing.T) {
	ix := buildIndex(t, 150, 23, []int{4, 7, 3, 9})
	var st store.Stats
	tables, scorer, _, _ := ix.queryTables(testQuery, &st, PaperScoring().Clip)
	pq, _ := ix.Pq(testQuery)
	iter, err := newTBClip(tables, scorer, pq, false)
	if err != nil {
		t.Fatal(err)
	}
	skip := pq.Intervals()[1]
	iter.Skip(skip)
	count := 0
	for {
		top, btm, hasTop, hasBtm, ok, err := iter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if hasTop {
			count++
			if skip.Contains(top.Clip) {
				t.Fatalf("skipped clip %d returned", top.Clip)
			}
		}
		if hasBtm {
			count++
			if skip.Contains(btm.Clip) {
				t.Fatalf("skipped clip %d returned", btm.Clip)
			}
		}
	}
	if count != pq.TotalLen()-skip.Len() {
		t.Errorf("returned %d clips, want %d", count, pq.TotalLen()-skip.Len())
	}
}
