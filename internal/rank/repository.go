package rank

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"svqact/internal/core"
)

// Repository manages a directory of per-video indexes and answers queries
// over their union — the paper's multi-video setting (§4.2: videos are added
// or deleted "by manipulating the information in these tables", i.e. without
// re-ingesting anything else).
//
// Layout: one saved index per subdirectory (Save/Load format). The merged
// query view is built lazily and invalidated by Add/Remove.
type Repository struct {
	dir string

	mu      sync.Mutex
	names   []string // sorted member names
	members map[string]*Index
	merged  *Index // nil until built; reset on membership change
}

// OpenRepository opens (or initialises) a repository directory, loading
// every member index found in it.
func OpenRepository(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rank: %w", err)
	}
	r := &Repository{dir: dir, members: map[string]*Index{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rank: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if !isIndexDir(sub) {
			continue // not an index directory
		}
		ix, err := Load(sub)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("rank: loading member %s: %w", e.Name(), err)
		}
		r.members[e.Name()] = ix
		r.names = append(r.names, e.Name())
	}
	sort.Strings(r.names)
	return r, nil
}

// Dir returns the repository directory.
func (r *Repository) Dir() string { return r.dir }

// Videos lists the member names, sorted.
func (r *Repository) Videos() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Add persists the index as a member and invalidates the merged view. The
// member name is the index name; adding an existing name fails (Remove it
// first).
func (r *Repository) Add(ix *Index) error {
	if ix.Name == "" {
		return fmt.Errorf("rank: index needs a name")
	}
	if filepath.Base(ix.Name) != ix.Name || ix.Name == "." || ix.Name == ".." {
		return fmt.Errorf("rank: index name %q is not a valid member name", ix.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.members[ix.Name]; exists {
		return fmt.Errorf("rank: member %q already present", ix.Name)
	}
	sub := filepath.Join(r.dir, ix.Name)
	if err := Save(sub, ix); err != nil {
		return err
	}
	loaded, err := Load(sub)
	if err != nil {
		return err
	}
	r.members[ix.Name] = loaded
	r.names = append(r.names, ix.Name)
	sort.Strings(r.names)
	r.merged = nil
	return nil
}

// Remove deletes a member (its files included) and invalidates the merged
// view.
func (r *Repository) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ix, ok := r.members[name]
	if !ok {
		return fmt.Errorf("rank: no member %q", name)
	}
	_ = ix.Close()
	delete(r.members, name)
	for i, n := range r.names {
		if n == name {
			r.names = append(r.names[:i], r.names[i+1:]...)
			break
		}
	}
	r.merged = nil
	return os.RemoveAll(filepath.Join(r.dir, name))
}

// Has reports whether a member with that name is present.
func (r *Repository) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.members[name]
	return ok
}

// MaxGeneration returns the highest committed generation number across the
// members — a monotone indicator of repository freshness, exported as the
// svqact_repo_generation metric.
func (r *Repository) MaxGeneration() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := 0
	for _, ix := range r.members {
		if ix.Generation > max {
			max = ix.Generation
		}
	}
	return max
}

// Member returns one member's index, or nil.
func (r *Repository) Member(name string) *Index {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[name]
}

// Merged returns the union index over the current members, building it on
// first use after a membership change.
func (r *Repository) Merged() (*Index, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.merged != nil {
		return r.merged, nil
	}
	if len(r.names) == 0 {
		return nil, fmt.Errorf("rank: repository %s is empty", r.dir)
	}
	members := make([]*Index, 0, len(r.names))
	for _, n := range r.names {
		members = append(members, r.members[n])
	}
	m, err := Merge(filepath.Base(r.dir), members)
	if err != nil {
		return nil, err
	}
	r.merged = m
	return m, nil
}

// TopK answers a ranked query over the whole repository, honouring ctx.
func (r *Repository) TopK(ctx context.Context, q core.Query, k int, opts Options) (*Result, error) {
	m, err := r.Merged()
	if err != nil {
		return nil, err
	}
	return RVAQ(ctx, m, q, k, opts)
}

// Resolve maps a merged-view clip id back to (member video, local clip).
func (r *Repository) Resolve(clip int) (string, int, error) {
	m, err := r.Merged()
	if err != nil {
		return "", 0, err
	}
	v, local := m.Resolve(clip)
	return v, local, nil
}

// Close releases every member's file handles.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, ix := range r.members {
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
