package rank

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"svqact/internal/detect"
)

// IngestAllParallel ingests a collection of videos concurrently and merges
// the per-video indexes. Ingestion is embarrassingly parallel across videos
// (every simulated model draw is a pure function of the video), so this is
// the default path for large repositories; workers <= 0 uses GOMAXPROCS.
// The result is identical to IngestAll. Cancelling ctx stops every worker at
// its next clip boundary.
func IngestAllParallel(ctx context.Context, name string, videos []detect.TruthVideo, models detect.Models, scoring Scoring, cfg IngestConfig, workers int) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(videos) {
		workers = len(videos)
	}
	if workers <= 1 {
		return IngestAll(ctx, name, videos, models, scoring, cfg)
	}

	indexes := make([]*Index, len(videos))
	errs := make([]error, len(videos))
	var wg sync.WaitGroup
	jobs := make(chan int)
	// failed is closed by the first worker that hits an error, so the
	// dispatcher stops feeding the remaining videos instead of walking the
	// whole repository before surfacing it; ctx cancellation stops dispatch
	// the same way. In-flight ingests still drain (each stops at its own next
	// clip boundary when cancelled).
	failed := make(chan struct{})
	var failOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ix, err := Ingest(ctx, videos[i], models, scoring, cfg)
				indexes[i], errs[i] = ix, err
				if err != nil {
					failOnce.Do(func() { close(failed) })
				}
			}
		}()
	}
dispatch:
	for i := range videos {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		case <-failed:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank: ingesting %s: %w", videos[i].ID(), err)
		}
	}
	for i, ix := range indexes {
		if ix == nil {
			// Dispatch stopped on cancellation before this video was handed
			// to a worker (workers may have finished their own cleanly).
			return nil, fmt.Errorf("rank: ingest of %s abandoned: %w", videos[i].ID(), ctx.Err())
		}
	}
	return Merge(name, indexes)
}
