// Package rank implements the paper's offline engine: the ingestion phase
// that materialises per-type clip score tables and individual sequences
// (§4.2), and the RVAQ top-k query algorithm with its TBClip iterator
// (§4.3-4.4), together with the baselines it is evaluated against (FA,
// RVAQ-noSkip, Pq-Traverse).
package rank

import "fmt"

// ClipScorer is the paper's g: it combines the per-predicate clip scores
// (objects in query order, then the action) into the clip's overall score.
// Implementations must be monotone in every argument.
type ClipScorer interface {
	OfPredicates(objScores []float64, actScore float64) float64
}

// SequenceScorer is the paper's f together with its aggregation operator ⊙
// (Equation 11): sequence scores combine from disjoint sub-sequence scores,
// are monotone in each clip score, and never decrease as the sequence grows.
type SequenceScorer interface {
	// Zero is the score of an empty sub-sequence (the identity of Combine).
	Zero() float64
	// Combine implements ⊙.
	Combine(a, b float64) float64
	// OfClip lifts one clip score into a (singleton) sequence score.
	OfClip(score float64) float64
	// Repeat returns the sequence score of n clips all scoring s — used to
	// bound the contribution of unprocessed clips.
	Repeat(s float64, n int) float64
}

// Scoring bundles the two scorers a query runs with.
type Scoring struct {
	Clip ClipScorer
	Seq  SequenceScorer
}

// Validate reports whether both scorers are present.
func (s Scoring) Validate() error {
	if s.Clip == nil || s.Seq == nil {
		return fmt.Errorf("rank: scoring needs both a clip scorer and a sequence scorer")
	}
	return nil
}

// PaperScoring returns the instantiation used in the paper's experiments
// (§5): g multiplies the action score by the sum of object scores, f sums
// clip scores over the sequence, and ⊙ is addition.
func PaperScoring() Scoring {
	return Scoring{Clip: ProductOfSums{}, Seq: Additive{}}
}

// ProductOfSums is the paper's experimental g: S_q(c) = S_a(c) * Σ S_oi(c).
// For object-less queries the product degenerates to the action score.
type ProductOfSums struct{}

// OfPredicates implements ClipScorer.
func (ProductOfSums) OfPredicates(objScores []float64, actScore float64) float64 {
	if len(objScores) == 0 {
		return actScore
	}
	sum := 0.0
	for _, s := range objScores {
		sum += s
	}
	return actScore * sum
}

// Additive is the paper's experimental f: the sequence score is the sum of
// its clip scores, and ⊙ is addition.
type Additive struct{}

// Zero implements SequenceScorer.
func (Additive) Zero() float64 { return 0 }

// Combine implements SequenceScorer.
func (Additive) Combine(a, b float64) float64 { return a + b }

// OfClip implements SequenceScorer.
func (Additive) OfClip(s float64) float64 { return s }

// Repeat implements SequenceScorer.
func (Additive) Repeat(s float64, n int) float64 { return s * float64(n) }
