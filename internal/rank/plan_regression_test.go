package rank

import (
	"context"
	"math"
	"reflect"
	"testing"

	"svqact/internal/core"
	"svqact/internal/store"
	"svqact/internal/video"
)

// buildSkewedIndex hand-builds an index whose tables differ strongly in
// length and sequence coverage, so the planner provably deviates from the
// declared "objects in query order, action last" layout: the action table
// is tiny with sparse coverage (cheap, rejects nearly everything) while the
// first declared object is huge with near-total coverage (expensive,
// rejects almost nothing).
func buildSkewedIndex(t *testing.T, numClips int) *Index {
	t.Helper()
	ix := &Index{
		Name:     "skewed",
		NumClips: numClips,
		Objects:  map[string]*TypeIndex{},
		Actions:  map[string]*TypeIndex{},
	}
	mk := func(name string, every int, seqs video.IntervalSet) *TypeIndex {
		var entries []store.Entry
		for c := 0; c < numClips; c += every {
			// Deterministic, type-dependent scores.
			entries = append(entries, store.Entry{Clip: c, Score: 0.1 + float64((c*7+len(name)*13)%100)/10})
		}
		tbl, err := store.NewMemTable(name, entries)
		if err != nil {
			t.Fatal(err)
		}
		return &TypeIndex{Table: tbl, Seqs: seqs}
	}
	wide := video.NewIntervalSet(iv(0, numClips-1))
	narrow := video.NewIntervalSet(iv(10, 14), iv(40, 46), iv(90, 93))
	ix.Objects["car"] = mk("car", 1, wide)           // long table, rejects nothing
	ix.Objects["human"] = mk("human", 2, wide)       // medium table, rejects nothing
	ix.Actions["jumping"] = mk("jumping", 5, narrow) // short table, rejects nearly all
	return ix
}

// declaredTopK is the pre-planner reference implementation: tables strictly
// in declared order (objects in query order, then the action), scored
// positionally, every candidate clip accessed, exhaustively ranked.
func declaredTopK(t *testing.T, ix *Index, q core.Query, k int, scoring Scoring) []SeqResult {
	t.Helper()
	var st store.Stats
	var tables []store.Table
	for _, o := range q.Objects {
		tables = append(tables, store.WithStats(ix.Objects[o].Table, &st))
	}
	tables = append(tables, store.WithStats(ix.Actions[q.Action].Table, &st))
	pq, err := ix.Pq(q)
	if err != nil {
		t.Fatal(err)
	}
	f := scoring.Seq
	var out []SeqResult
	for _, sv := range pq.Intervals() {
		sum := f.Zero()
		for c := sv.Start; c <= sv.End; c++ {
			scores := make([]float64, len(tables))
			for i, tbl := range tables {
				s, _, err := tbl.ScoreOf(c)
				if err != nil {
					t.Fatal(err)
				}
				scores[i] = s
			}
			n := len(scores)
			sum = f.Combine(sum, f.OfClip(scoring.Clip.OfPredicates(scores[:n-1], scores[n-1])))
		}
		out = append(out, SeqResult{Seq: sv, Lower: sum, Upper: sum, Exact: true})
	}
	sortSeqResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestPlannedOrderPreservesTopK is the planner-rewiring regression: ranked
// top-k output through the plan-ordered tables must be exactly what the
// declared-layout implementation produced, even though the planner picks a
// different table order.
func TestPlannedOrderPreservesTopK(t *testing.T) {
	ix := buildSkewedIndex(t, 120)
	q := core.Query{Objects: []string{"car", "human"}, Action: "jumping"}
	const k = 2
	want := declaredTopK(t, ix, q, k, PaperScoring())

	res, err := RVAQ(context.Background(), ix, q, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("RVAQ result carries no plan")
	}
	// The skew must actually exercise a non-declared order, or this test
	// pins nothing: the sparse-coverage action table has to come first.
	if reflect.DeepEqual(res.Plan.Order, res.Plan.Declared) {
		t.Fatalf("planner kept declared order %v; index not skewed enough", res.Plan.Order)
	}
	if res.Plan.Order[0] != "jumping" {
		t.Errorf("cheapest-rejection-first should lead with the action, got %v", res.Plan.Order)
	}
	if len(res.Sequences) != len(want) {
		t.Fatalf("top-%d returned %d sequences, want %d", k, len(res.Sequences), len(want))
	}
	for i, sr := range res.Sequences {
		if sr.Seq != want[i].Seq {
			t.Errorf("rank %d: sequence %v, want %v", i, sr.Seq, want[i].Seq)
		}
		if math.Abs(sr.Score()-want[i].Score()) > 1e-9*math.Max(1, math.Abs(want[i].Score())) {
			t.Errorf("rank %d: score %v, want %v", i, sr.Score(), want[i].Score())
		}
	}

	// Exhaustive reference and baselines agree through the same plan layer.
	truth, err := TruthTopK(ix, q, k, PaperScoring())
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if truth[i].Seq != want[i].Seq || truth[i].Lower != want[i].Lower {
			t.Errorf("TruthTopK rank %d: %+v, want %+v", i, truth[i], want[i])
		}
	}
	for _, algo := range []string{"FA", "Pq-Traverse", "RVAQ-noSkip"} {
		r, err := Algorithms[algo](context.Background(), ix, q, k, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for i, sr := range r.Sequences {
			if sr.Seq != want[i].Seq {
				t.Errorf("%s rank %d: sequence %v, want %v", algo, i, sr.Seq, want[i].Seq)
			}
		}
	}
}

// TestPlannedOrderPreservesCNFTopK pins the same contract on the CNF path,
// whose clause references are remapped onto the plan-ordered tables.
func TestPlannedOrderPreservesCNFTopK(t *testing.T) {
	ix := buildSkewedIndex(t, 120)
	q := core.CNF{Clauses: []core.Clause{
		{Atoms: []core.Atom{{Kind: core.ObjectPredicate, Name: "car"}, {Kind: core.ObjectPredicate, Name: "human"}}},
		{Atoms: []core.Atom{{Kind: core.ActionPredicate, Name: "jumping"}}},
	}}
	const k = 2
	truth, err := TruthTopKCNF(ix, q, k, PaperScoring())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RVAQCNF(context.Background(), ix, q, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("RVAQCNF result carries no plan")
	}
	if reflect.DeepEqual(res.Plan.Order, res.Plan.Declared) {
		t.Fatalf("CNF planner kept declared order %v; index not skewed enough", res.Plan.Order)
	}
	if len(res.Sequences) != len(truth) {
		t.Fatalf("top-%d returned %d sequences, want %d", k, len(res.Sequences), len(truth))
	}
	for i, sr := range res.Sequences {
		if sr.Seq != truth[i].Seq {
			t.Errorf("rank %d: sequence %v, want %v", i, sr.Seq, truth[i].Seq)
		}
		if math.Abs(sr.Score()-truth[i].Score()) > 1e-9*math.Max(1, math.Abs(truth[i].Score())) {
			t.Errorf("rank %d: score %v, want %v", i, sr.Score(), truth[i].Score())
		}
	}
}
