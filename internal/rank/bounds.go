package rank

import (
	"cmp"
	"math"
	"slices"

	"svqact/internal/video"
)

// Bounds brackets one candidate sequence's score: Lo <= score <= Up, with
// Lo == Up when Exact. This is the unit of RVAQ's Equation 15 bookkeeping,
// exported so the per-process traversal, the cluster coordinator's
// distributed merge and the tests all share one definition instead of each
// keeping a closure-local copy.
type Bounds struct {
	Seq video.Interval `json:"seq"`
	Lo  float64        `json:"lo"`
	Up  float64        `json:"up"`
	// Exact marks a fully scored sequence (every clip processed).
	Exact bool `json:"exact,omitempty"`
}

// Mid returns the exact score when known, otherwise the midpoint of the
// bounds — the same convention SeqResult.Score uses.
func (b Bounds) Mid() float64 {
	if b.Exact {
		return b.Lo
	}
	return (b.Lo + b.Up) / 2
}

// Bounds converts a ranked result sequence back into its score bounds.
func (s SeqResult) Bounds() Bounds {
	return Bounds{Seq: s.Seq, Lo: s.Lower, Up: s.Upper, Exact: s.Exact}
}

// TopKLowerBound returns Blo_K — the k-th largest lower bound across bs,
// the pruning threshold of Equation 15: any sequence (or shard) whose best
// possible upper bound falls below it can never reach the top-k. With fewer
// than k bounds every candidate may still win, so the threshold is -Inf.
func TopKLowerBound(bs []Bounds, k int) float64 {
	return topKLowerBoundInto(bs, k, nil)
}

// topKLowerBoundInto is TopKLowerBound with a caller-owned sort column, so
// the per-round pruning check of a long traversal reuses one buffer.
func topKLowerBoundInto(bs []Bounds, k int, los []float64) float64 {
	if k <= 0 || len(bs) < k {
		return math.Inf(-1)
	}
	los = los[:0]
	for _, b := range bs {
		los = append(los, b.Lo)
	}
	slices.Sort(los)
	return los[len(los)-k]
}

// Separated reports whether the k best lower bounds dominate every other
// upper bound (the top-k set is determined), returning the winner indices
// ordered by descending lower bound. This is Equation 15 stated over plain
// bounds; RVAQ's traversal and the coordinator's merge both consult it.
func Separated(bs []Bounds, k int) (winners []int, ok bool) {
	return separatedInto(bs, k, nil)
}

// separatedInto is Separated with a caller-owned permutation buffer. The
// returned winner indices alias that buffer, so callers reusing it must copy
// them out before the next round.
func separatedInto(bs []Bounds, k int, order []int) (winners []int, ok bool) {
	order = order[:0]
	for i := range bs {
		order = append(order, i)
	}
	slices.SortStableFunc(order, func(i, j int) int { return cmp.Compare(bs[j].Lo, bs[i].Lo) })
	if len(bs) <= k {
		return order, true
	}
	bloK := bs[order[k-1]].Lo
	for _, i := range order[k:] {
		if bs[i].Up > bloK {
			return nil, false
		}
	}
	return order[:k], true
}
