package rank

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"svqact/internal/store"
)

// Checkpoint records which ingestion units (videos, dataset sets) a run has
// fully committed, so a killed `svq ingest` resumes instead of restarting.
//
// The checkpoint is an optimisation, never a source of truth: committed
// generations on disk are authoritative, and a checkpoint that is missing,
// unreadable, or was written by a run with different parameters (the
// fingerprint) is silently discarded — the worst case is redoing work. Each
// update rewrites the file atomically, so it is never torn.
type checkpointState struct {
	Fingerprint string   `json:"fingerprint"`
	Done        []string `json:"done"`
}

// Checkpoint tracks completed ingestion units across process restarts.
type Checkpoint struct {
	path        string
	fingerprint string
	done        map[string]bool
	resumed     bool
}

// OpenCheckpoint loads the checkpoint at path if it exists and matches
// fingerprint (an encoding of every parameter that shapes the run's output);
// otherwise it starts empty. Opening never fails on a bad file — stale or
// corrupt checkpoints are discarded.
func OpenCheckpoint(path, fingerprint string) *Checkpoint {
	c := &Checkpoint{path: path, fingerprint: fingerprint, done: map[string]bool{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var st checkpointState
	if json.Unmarshal(data, &st) != nil || st.Fingerprint != fingerprint {
		return c
	}
	for _, u := range st.Done {
		c.done[u] = true
	}
	c.resumed = len(c.done) > 0
	return c
}

// Resumed reports whether this run picked up prior progress.
func (c *Checkpoint) Resumed() bool { return c.resumed }

// Done reports whether a unit was already completed by a prior run.
func (c *Checkpoint) Done(unit string) bool { return c.done[unit] }

// Count returns how many units are recorded as complete.
func (c *Checkpoint) Count() int { return len(c.done) }

// MarkDone records a unit as complete and persists the checkpoint
// atomically. Call it only after the unit's generation has committed.
func (c *Checkpoint) MarkDone(unit string) error {
	c.done[unit] = true
	units := make([]string, 0, len(c.done))
	for u := range c.done {
		units = append(units, u)
	}
	sort.Strings(units)
	data, err := json.MarshalIndent(checkpointState{Fingerprint: c.fingerprint, Done: units}, "", "  ")
	if err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	return store.WriteFileAtomic(store.OS, c.path, data)
}

// Finish removes the checkpoint file — the run completed, so the next run
// starts fresh.
func (c *Checkpoint) Finish() error {
	if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("rank: %w", err)
	}
	return nil
}
