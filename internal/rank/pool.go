package rank

import "sync"

// Per-query round-state pooling. A top-k traversal re-derives the same
// scratch every sorted-access round — the Bounds vector over all candidate
// sequences, the lower-bound sort column, the winner-order permutation, the
// per-table score column of a random-access completion. topkScratch owns all
// of it; a traversal acquires one scratch up front and returns it when the
// query finishes, so steady-state rounds allocate nothing.
//
// The scratch holds no pointers into query results: winners are copied into
// fresh slices before the traversal returns, and Bounds/score columns are
// plain values recomputed every round.
type topkScratch struct {
	// bounds is the per-round Bounds vector over every candidate sequence.
	bounds []Bounds
	// los is the lower-bound column topKLowerBoundInto sorts.
	los []float64
	// order is the index permutation separatedInto sorts.
	order []int
	// scores is the per-table score column for random-access clip scoring.
	scores []float64
}

var topkPool = sync.Pool{New: func() any { return new(topkScratch) }}

func acquireTopk() *topkScratch { return topkPool.Get().(*topkScratch) }

// release returns the scratch to the pool, keeping grown capacities.
func (s *topkScratch) release() {
	s.bounds = s.bounds[:0]
	s.los = s.los[:0]
	s.order = s.order[:0]
	s.scores = s.scores[:0]
	topkPool.Put(s)
}

// boundsBuf returns the scratch Bounds vector resized to n.
func (s *topkScratch) boundsBuf(n int) []Bounds {
	if cap(s.bounds) < n {
		s.bounds = make([]Bounds, n)
	}
	s.bounds = s.bounds[:n]
	return s.bounds
}

// losBuf returns the scratch lower-bound column with capacity for n values
// and zero length; topKLowerBoundInto appends into it without reallocating.
func (s *topkScratch) losBuf(n int) []float64 {
	if cap(s.los) < n {
		s.los = make([]float64, 0, n)
	}
	return s.los[:0]
}

// orderBuf returns the scratch permutation with capacity for n values and
// zero length; separatedInto appends into it without reallocating.
func (s *topkScratch) orderBuf(n int) []int {
	if cap(s.order) < n {
		s.order = make([]int, 0, n)
	}
	return s.order[:0]
}

// scoreBuf returns the scratch per-table score column resized to n.
func (s *topkScratch) scoreBuf(n int) []float64 {
	if cap(s.scores) < n {
		s.scores = make([]float64, n)
	}
	s.scores = s.scores[:n]
	return s.scores
}
