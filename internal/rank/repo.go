package rank

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"svqact/internal/store"
	"svqact/internal/video"
)

// Disk layout of a saved repository index:
//
//	dir/manifest.json  — name, clip space, video spans, type catalogue
//	dir/obj_<i>.tbl    — clip score table of the i-th object type
//	dir/act_<i>.tbl    — clip score table of the i-th action type
//
// Tables are written in the store package's binary format; individual
// sequences are small and live in the manifest.

type manifest struct {
	Name     string         `json:"name"`
	NumClips int            `json:"num_clips"`
	Spans    []manifestSpan `json:"spans,omitempty"`
	Objects  []manifestType `json:"objects"`
	Actions  []manifestType `json:"actions"`
}

type manifestSpan struct {
	VideoID string `json:"video_id"`
	Start   int    `json:"start"`
	Clips   int    `json:"clips"`
}

type manifestType struct {
	Type string   `json:"type"`
	File string   `json:"file"`
	Seqs [][2]int `json:"seqs"`
}

// Save persists an index to dir, creating it if needed. Tables are written
// in the binary clip-score-table format; everything else goes into
// manifest.json.
func Save(dir string, ix *Index) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	m := manifest{Name: ix.Name, NumClips: ix.NumClips}
	for _, s := range ix.spans {
		m.Spans = append(m.Spans, manifestSpan{VideoID: s.videoID, Start: s.start, Clips: s.clips})
	}
	dump := func(prefix string, types []string, src map[string]*TypeIndex) ([]manifestType, error) {
		var out []manifestType
		for i, typ := range types {
			ti := src[typ]
			file := fmt.Sprintf("%s_%d.tbl", prefix, i)
			entries := make([]store.Entry, 0, ti.Table.Len())
			for j := 0; j < ti.Table.Len(); j++ {
				e, err := ti.Table.SortedAt(j)
				if err != nil {
					return nil, err
				}
				entries = append(entries, e)
			}
			if err := store.WriteTable(filepath.Join(dir, file), typ, entries); err != nil {
				return nil, err
			}
			mt := manifestType{Type: typ, File: file}
			for _, iv := range ti.Seqs.Intervals() {
				mt.Seqs = append(mt.Seqs, [2]int{iv.Start, iv.End})
			}
			out = append(out, mt)
		}
		return out, nil
	}
	var err error
	if m.Objects, err = dump("obj", ix.ObjectTypes(), ix.Objects); err != nil {
		return err
	}
	if m.Actions, err = dump("act", ix.ActionTypes(), ix.Actions); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	return nil
}

// Load opens a saved index. Tables are opened file-backed (reads hit disk on
// demand); call Close on the returned index when done.
func Load(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("rank: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("rank: corrupt manifest in %s: %w", dir, err)
	}
	ix := &Index{
		Name:     m.Name,
		NumClips: m.NumClips,
		Objects:  map[string]*TypeIndex{},
		Actions:  map[string]*TypeIndex{},
	}
	for _, s := range m.Spans {
		ix.spans = append(ix.spans, videoSpan{videoID: s.VideoID, start: s.Start, clips: s.Clips})
	}
	load := func(types []manifestType, dst map[string]*TypeIndex) error {
		for _, mt := range types {
			tbl, err := store.OpenDiskTable(filepath.Join(dir, mt.File))
			if err != nil {
				return err
			}
			ivs := make([]video.Interval, len(mt.Seqs))
			for i, p := range mt.Seqs {
				ivs[i] = video.Interval{Start: p[0], End: p[1]}
			}
			dst[mt.Type] = &TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(ivs...)}
		}
		return nil
	}
	if err := load(m.Objects, ix.Objects); err != nil {
		ix.Close()
		return nil, err
	}
	if err := load(m.Actions, ix.Actions); err != nil {
		ix.Close()
		return nil, err
	}
	return ix, nil
}

// Close releases any file-backed tables of the index. It is a no-op for
// purely in-memory indexes.
func (ix *Index) Close() error {
	var first error
	for _, m := range []map[string]*TypeIndex{ix.Objects, ix.Actions} {
		for _, ti := range m {
			if c, ok := ti.Table.(*store.DiskTable); ok {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}
