package rank

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"svqact/internal/store"
	"svqact/internal/video"
)

// Disk layout of a saved repository index (format 2, crash-safe):
//
//	dir/CURRENT              — commit pointer: "gen-NNNNNN crc32=XXXXXXXX\n"
//	dir/gen-NNNNNN/
//	    manifest.json        — name, clip space, video spans, type catalogue
//	    obj_<i>.tbl          — clip score table of the i-th object type
//	    act_<i>.tbl          — clip score table of the i-th action type
//
// Every save materialises a fresh numbered generation directory: tables are
// written (each one atomically, see store.WriteTableFS), the manifest is
// written, the generation directory is fsynced, and only then does an atomic
// rewrite of CURRENT commit the new generation. The CRC32-C of the manifest
// bytes is recorded inside CURRENT, so the commit pointer vouches for the
// manifest and the manifest (via table checksums) vouches for everything
// else. A crash at any step leaves CURRENT pointing at the previous complete
// generation; the half-built directory is an uncommitted orphan that the
// next successful save garbage-collects. Old generations are removed only
// after the new one commits — open readers on a removed generation keep
// working (the files stay alive until their descriptors close).
//
// Individual sequences are small and live in the manifest.

// CorruptError is re-exported from store: rank.Load and rank.Fsck report
// every integrity violation with this type.
type CorruptError = store.CorruptError

// IsCorrupt reports whether err is (or wraps) a *CorruptError.
func IsCorrupt(err error) bool { return store.IsCorrupt(err) }

const (
	currentFile  = "CURRENT"
	manifestFile = "manifest.json"
	// manifestFormat is the version stamped into every manifest; Load
	// rejects anything else.
	manifestFormat = 2
)

var genNameRe = regexp.MustCompile(`^gen-(\d{6})$`)

func genName(n int) string { return fmt.Sprintf("gen-%06d", n) }

type manifest struct {
	Format   int            `json:"format"`
	Name     string         `json:"name"`
	NumClips int            `json:"num_clips"`
	Spans    []manifestSpan `json:"spans,omitempty"`
	Objects  []manifestType `json:"objects"`
	Actions  []manifestType `json:"actions"`
}

type manifestSpan struct {
	VideoID string `json:"video_id"`
	Start   int    `json:"start"`
	Clips   int    `json:"clips"`
}

type manifestType struct {
	Type string   `json:"type"`
	File string   `json:"file"`
	Seqs [][2]int `json:"seqs"`
}

// Save persists an index to dir as a new generation and atomically commits
// it, creating the directory if needed. The previous generation stays
// readable until the commit point and is garbage-collected after it.
func Save(dir string, ix *Index) error {
	return SaveFS(store.OS, dir, ix)
}

// SaveFS is Save against an injectable filesystem (crash tests drive it
// through a store.FlakyFS).
func SaveFS(fsys store.FS, dir string, ix *Index) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	gen := maxGeneration(fsys, dir) + 1
	genDir := filepath.Join(dir, genName(gen))
	committed := false
	defer func() {
		// A failure before the commit point leaves a half-built
		// generation; discard it (best-effort — after a real crash the
		// next save's GC finishes the job). Once the CURRENT rewrite has
		// started the directory may already be live, so leave it alone.
		if !committed {
			_ = fsys.RemoveAll(genDir)
		}
	}()
	if err := fsys.MkdirAll(genDir, 0o755); err != nil {
		return fmt.Errorf("rank: %w", err)
	}

	m := manifest{Format: manifestFormat, Name: ix.Name, NumClips: ix.NumClips}
	for _, s := range ix.spans {
		m.Spans = append(m.Spans, manifestSpan{VideoID: s.videoID, Start: s.start, Clips: s.clips})
	}
	dump := func(prefix string, types []string, src map[string]*TypeIndex) ([]manifestType, error) {
		var out []manifestType
		for i, typ := range types {
			ti := src[typ]
			file := fmt.Sprintf("%s_%d.tbl", prefix, i)
			entries := make([]store.Entry, 0, ti.Table.Len())
			for j := 0; j < ti.Table.Len(); j++ {
				e, err := ti.Table.SortedAt(j)
				if err != nil {
					return nil, err
				}
				entries = append(entries, e)
			}
			if err := store.WriteTableFS(fsys, filepath.Join(genDir, file), typ, entries); err != nil {
				return nil, err
			}
			mt := manifestType{Type: typ, File: file}
			for _, iv := range ti.Seqs.Intervals() {
				mt.Seqs = append(mt.Seqs, [2]int{iv.Start, iv.End})
			}
			out = append(out, mt)
		}
		return out, nil
	}
	var err error
	if m.Objects, err = dump("obj", ix.ObjectTypes(), ix.Objects); err != nil {
		return err
	}
	if m.Actions, err = dump("act", ix.ActionTypes(), ix.Actions); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	if err := store.WriteFileAtomic(fsys, filepath.Join(genDir, manifestFile), data); err != nil {
		return err
	}
	if err := fsys.SyncDir(genDir); err != nil {
		return fmt.Errorf("rank: %w", err)
	}

	// Commit point: after this rename lands, Load sees the new generation.
	committed = true
	record := fmt.Sprintf("%s crc32=%08x\n", genName(gen), store.Checksum(data))
	if err := store.WriteFileAtomic(fsys, filepath.Join(dir, currentFile), []byte(record)); err != nil {
		return err
	}
	gcGenerations(fsys, dir, gen)
	return nil
}

// maxGeneration returns the highest generation number present in dir
// (committed or not), or 0.
func maxGeneration(fsys store.FS, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	max := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if m := genNameRe.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// gcGenerations removes every generation directory except the live one, plus
// stray temp files from interrupted writes. Best-effort: a failure here never
// fails the save that just committed.
func gcGenerations(fsys store.FS, dir string, live int) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			if genNameRe.MatchString(e.Name()) && e.Name() != genName(live) {
				_ = fsys.RemoveAll(filepath.Join(dir, e.Name()))
			}
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// parseCurrent decodes a CURRENT record into its generation name and the
// manifest checksum it vouches for.
func parseCurrent(dir string, raw []byte) (gen string, crc uint32, err error) {
	line := strings.TrimSuffix(string(raw), "\n")
	fields := strings.Split(line, " ")
	bad := func(detail string) (string, uint32, error) {
		return "", 0, &CorruptError{Path: filepath.Join(dir, currentFile), Detail: detail}
	}
	if len(fields) != 2 || strings.Contains(line, "\n") {
		return bad(fmt.Sprintf("malformed commit record %q", line))
	}
	if !genNameRe.MatchString(fields[0]) {
		return bad(fmt.Sprintf("malformed generation name %q", fields[0]))
	}
	hexCRC, ok := strings.CutPrefix(fields[1], "crc32=")
	if !ok || len(hexCRC) != 8 {
		return bad(fmt.Sprintf("malformed checksum field %q", fields[1]))
	}
	v, perr := strconv.ParseUint(hexCRC, 16, 32)
	if perr != nil {
		return bad(fmt.Sprintf("malformed checksum field %q", fields[1]))
	}
	return fields[0], uint32(v), nil
}

// Load opens the committed generation of a saved index. The whole generation
// is verified — commit-record checksum over the manifest, manifest
// invariants, and every table's checksums and sort order — and any violation
// surfaces as a *CorruptError. Tables are opened file-backed (row reads hit
// disk on demand); call Close on the returned index when done.
func Load(dir string) (*Index, error) {
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		if os.IsNotExist(err) {
			if _, serr := os.Stat(filepath.Join(dir, manifestFile)); serr == nil {
				return nil, &CorruptError{Path: dir, Detail: "legacy un-checksummed repository layout (manifest.json without CURRENT); re-ingest"}
			}
		}
		return nil, fmt.Errorf("rank: %w", err)
	}
	gen, wantCRC, err := parseCurrent(dir, raw)
	if err != nil {
		return nil, err
	}
	genDir := filepath.Join(dir, gen)
	data, err := os.ReadFile(filepath.Join(genDir, manifestFile))
	if err != nil {
		return nil, &CorruptError{Path: dir, Detail: fmt.Sprintf("CURRENT commits %s but its manifest is unreadable", gen), Err: err}
	}
	if got := store.Checksum(data); got != wantCRC {
		return nil, &CorruptError{Path: filepath.Join(genDir, manifestFile), Detail: fmt.Sprintf("manifest checksum mismatch (committed %08x, computed %08x)", wantCRC, got)}
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, &CorruptError{Path: filepath.Join(genDir, manifestFile), Detail: "undecodable manifest", Err: err}
	}
	if err := validateManifest(genDir, &m); err != nil {
		return nil, err
	}

	genNum, _ := strconv.Atoi(strings.TrimPrefix(gen, "gen-"))
	ix := &Index{
		Name:       m.Name,
		NumClips:   m.NumClips,
		Generation: genNum,
		Objects:    map[string]*TypeIndex{},
		Actions:    map[string]*TypeIndex{},
	}
	for _, s := range m.Spans {
		ix.spans = append(ix.spans, videoSpan{videoID: s.VideoID, start: s.Start, clips: s.Clips})
	}
	load := func(types []manifestType, dst map[string]*TypeIndex) error {
		for _, mt := range types {
			path := filepath.Join(genDir, mt.File)
			tbl, err := store.OpenDiskTable(path)
			if err != nil {
				return err
			}
			if tbl.Name() != mt.Type {
				tbl.Close()
				return &CorruptError{Path: path, Detail: fmt.Sprintf("table is for type %q, manifest expects %q", tbl.Name(), mt.Type)}
			}
			if lo, hi, ok := tbl.ClipBounds(); ok && (lo < 0 || hi >= m.NumClips) {
				tbl.Close()
				return &CorruptError{Path: path, Detail: fmt.Sprintf("table scores clips [%d,%d] outside the clip space [0,%d)", lo, hi, m.NumClips)}
			}
			ivs := make([]video.Interval, len(mt.Seqs))
			for i, p := range mt.Seqs {
				ivs[i] = video.Interval{Start: p[0], End: p[1]}
			}
			dst[mt.Type] = &TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(ivs...)}
		}
		return nil
	}
	if err := load(m.Objects, ix.Objects); err != nil {
		ix.Close()
		return nil, err
	}
	if err := load(m.Actions, ix.Actions); err != nil {
		ix.Close()
		return nil, err
	}
	return ix, nil
}

// validateManifest checks every invariant the query layer later relies on:
// a supported format, a sane clip space, video spans inside it, table file
// names that cannot escape the generation directory, no duplicate types or
// files, and individual sequences that are well-formed intervals within the
// clip space.
func validateManifest(genDir string, m *manifest) error {
	corrupt := func(format string, args ...any) error {
		return &CorruptError{Path: filepath.Join(genDir, manifestFile), Detail: fmt.Sprintf(format, args...)}
	}
	if m.Format != manifestFormat {
		return corrupt("unsupported manifest format %d (want %d)", m.Format, manifestFormat)
	}
	if m.NumClips < 0 {
		return corrupt("negative clip space (%d clips)", m.NumClips)
	}
	prevEnd := 0
	for i, s := range m.Spans {
		if s.VideoID == "" {
			return corrupt("span %d has no video id", i)
		}
		if s.Start < 0 || s.Clips < 0 || s.Start+s.Clips > m.NumClips {
			return corrupt("span %d (%q) covers clips [%d,%d) outside the clip space [0,%d)", i, s.VideoID, s.Start, s.Start+s.Clips, m.NumClips)
		}
		if s.Start < prevEnd {
			return corrupt("span %d (%q) overlaps the previous span", i, s.VideoID)
		}
		prevEnd = s.Start + s.Clips
	}
	seenType := map[string]bool{}
	seenFile := map[string]bool{}
	check := func(kind string, types []manifestType) error {
		for _, mt := range types {
			if mt.Type == "" {
				return corrupt("%s entry with empty type", kind)
			}
			key := kind + ":" + mt.Type
			if seenType[key] {
				return corrupt("duplicate %s type %q", kind, mt.Type)
			}
			seenType[key] = true
			// The file must be a plain name inside the generation
			// directory — no separators, no "..", nothing that resolves
			// elsewhere once joined.
			if mt.File == "" || mt.File != filepath.Base(mt.File) || mt.File == "." || mt.File == ".." {
				return corrupt("%s type %q references file %q outside the generation directory", kind, mt.Type, mt.File)
			}
			if seenFile[mt.File] {
				return corrupt("file %q referenced twice", mt.File)
			}
			seenFile[mt.File] = true
			for i, p := range mt.Seqs {
				if p[0] < 0 || p[1] < p[0] || p[1] >= m.NumClips {
					return corrupt("%s type %q sequence %d is [%d,%d], not a well-formed interval within the clip space [0,%d)", kind, mt.Type, i, p[0], p[1], m.NumClips)
				}
			}
		}
		return nil
	}
	if err := check("object", m.Objects); err != nil {
		return err
	}
	return check("action", m.Actions)
}

// Close releases any file-backed tables of the index. It is a no-op for
// purely in-memory indexes.
func (ix *Index) Close() error {
	var first error
	for _, m := range []map[string]*TypeIndex{ix.Objects, ix.Actions} {
		for _, ti := range m {
			if c, ok := ti.Table.(*store.DiskTable); ok {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}
