package rank

import (
	"context"
	"testing"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// TestOfflineIngestIdenticalUnderCascade: the offline planner's static tier
// choice keeps the recall-complete cascade (or unwraps to its accurate
// tier), and either way ingestion must materialise bit-identical score
// tables and individual sequences to ingesting with the accurate models
// alone — so every offline top-k answer is unchanged.
func TestOfflineIngestIdenticalUnderCascade(t *testing.T) {
	v, err := synth.Generate(synth.Script{
		ID: "rank-tier", Frames: 30_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 23,
		Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "car", MeanGapFrames: 3000, MeanDurFrames: 500, CorrelatedWith: "jumping", CorrelationProb: 0.7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 19
	obj := detect.NewObjectDetector(detect.MaskRCNN, seed)
	act := detect.NewActionRecognizer(detect.I3D, seed)
	accurate, err := Ingest(context.Background(), v, detect.NewModels(obj, act), PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cascaded, err := Ingest(context.Background(), v, detect.NewModels(
		detect.NewDistilledObjectCascade(obj, detect.DistilledRCNN, seed),
		detect.NewDistilledActionCascade(act, detect.DistilledI3D, seed),
	), PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}

	sameTypeIndex := func(kind, typ string, a, b *TypeIndex) {
		t.Helper()
		if a.Seqs.String() != b.Seqs.String() {
			t.Errorf("%s %s: individual sequences differ:\n accurate %v\n cascaded %v", kind, typ, a.Seqs, b.Seqs)
		}
		for c := 0; c < accurate.NumClips; c++ {
			sa, oka, err := a.Table.ScoreOf(c)
			if err != nil {
				t.Fatal(err)
			}
			sb, okb, err := b.Table.ScoreOf(c)
			if err != nil {
				t.Fatal(err)
			}
			if oka != okb || sa != sb {
				t.Fatalf("%s %s clip %d: accurate (%v,%v) vs cascaded (%v,%v)", kind, typ, c, sa, oka, sb, okb)
			}
		}
	}
	for typ, ti := range accurate.Objects {
		sameTypeIndex("object", typ, ti, cascaded.Objects[typ])
	}
	for typ, ti := range accurate.Actions {
		sameTypeIndex("action", typ, ti, cascaded.Actions[typ])
	}

	// Every offline algorithm returns the same top-k from either index.
	q := core.Query{Objects: []string{"car", "human"}, Action: "jumping"}
	for name, algo := range Algorithms {
		a, err := algo(context.Background(), accurate, q, 5, Options{})
		if err != nil {
			t.Fatalf("%s accurate: %v", name, err)
		}
		b, err := algo(context.Background(), cascaded, q, 5, Options{})
		if err != nil {
			t.Fatalf("%s cascaded: %v", name, err)
		}
		if len(a.Sequences) != len(b.Sequences) {
			t.Fatalf("%s: %d vs %d sequences", name, len(a.Sequences), len(b.Sequences))
		}
		for i := range a.Sequences {
			if a.Sequences[i].Seq != b.Sequences[i].Seq || a.Sequences[i].Score() != b.Sequences[i].Score() {
				t.Errorf("%s: top-k entry %d differs: %+v vs %+v", name, i, a.Sequences[i], b.Sequences[i])
			}
		}
	}
}
