package rank

import (
	"context"
	"math"
	"testing"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func cnfTestIndex(t *testing.T) *Index {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID: "cnf-test", Frames: 50_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 41,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 110, MeanDurShots: 28},
			{Name: "dancing", MeanGapShots: 140, MeanDurShots: 22},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 320, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "car", MeanGapFrames: 2600, MeanDurFrames: 350},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	models := detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, 41), detect.NewActionRecognizer(detect.I3D, 41))
	ix, err := Ingest(context.Background(), v, models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

var cnfQueries = []core.CNF{
	// Disjunction of actions with an object.
	{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("jumping"), core.ActionAtom("dancing")}},
		{Atoms: []core.Atom{core.ObjectAtom("human")}},
	}},
	// Multi-action conjunction.
	{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("jumping")}},
		{Atoms: []core.Atom{core.ActionAtom("dancing")}},
	}},
	// Object disjunction.
	{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("jumping")}},
		{Atoms: []core.Atom{core.ObjectAtom("human"), core.ObjectAtom("car")}},
	}},
}

func TestRVAQCNFAgreesWithExhaustive(t *testing.T) {
	ix := cnfTestIndex(t)
	for qi, q := range cnfQueries {
		for _, k := range []int{1, 3, 7} {
			want, err := TruthTopKCNF(ix, q, k, PaperScoring())
			if err != nil {
				t.Fatal(err)
			}
			for _, noSkip := range []bool{false, true} {
				got, err := RVAQCNF(context.Background(), ix, q, k, Options{NoSkip: noSkip})
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Sequences) != len(want) {
					t.Fatalf("query %d k=%d noSkip=%v: %d results, want %d",
						qi, k, noSkip, len(got.Sequences), len(want))
				}
				for i := range want {
					if !got.Sequences[i].Exact {
						t.Fatalf("query %d: result %d not exact", qi, i)
					}
					if math.Abs(got.Sequences[i].Lower-want[i].Lower) > 1e-9 {
						t.Fatalf("query %d k=%d: result %d score %v, want %v",
							qi, k, i, got.Sequences[i].Lower, want[i].Lower)
					}
				}
			}
		}
	}
}

func TestPqCNFSemantics(t *testing.T) {
	ix := cnfTestIndex(t)
	// The disjunctive clause's candidates contain each single-atom variant's.
	or := cnfQueries[0]
	pqOr, err := ix.PqCNF(or)
	if err != nil {
		t.Fatal(err)
	}
	single := core.CNF{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("jumping")}},
		{Atoms: []core.Atom{core.ObjectAtom("human")}},
	}}
	pqSingle, err := ix.PqCNF(single)
	if err != nil {
		t.Fatal(err)
	}
	if pqSingle.Subtract(pqOr).TotalLen() != 0 {
		t.Error("single-action candidates must be contained in the disjunction's")
	}
	// Basic queries agree between Pq and PqCNF.
	basic := core.Query{Objects: []string{"human"}, Action: "jumping"}
	a, err := ix.Pq(basic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.PqCNF(core.FromQuery(basic))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("Pq %v != PqCNF %v for a basic query", a, b)
	}
}

func TestRVAQCNFSkipSavesWork(t *testing.T) {
	ix := cnfTestIndex(t)
	q := cnfQueries[0]
	with, err := RVAQCNF(context.Background(), ix, q, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RVAQCNF(context.Background(), ix, q, 1, Options{NoSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.Random > without.Stats.Random {
		t.Errorf("skip did not reduce random accesses: %d vs %d",
			with.Stats.Random, without.Stats.Random)
	}
}

func TestRVAQCNFErrors(t *testing.T) {
	ix := cnfTestIndex(t)
	if _, err := RVAQCNF(context.Background(), ix, core.CNF{}, 3, Options{}); err == nil {
		t.Error("empty CNF should fail")
	}
	if _, err := RVAQCNF(context.Background(), ix, cnfQueries[0], 0, Options{}); err == nil {
		t.Error("k=0 should fail")
	}
	rel := core.CNF{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("jumping")}},
		{Atoms: []core.Atom{core.RelationAtom(detect.Near, "human", "car")}},
	}}
	if _, err := RVAQCNF(context.Background(), ix, rel, 3, Options{}); err == nil {
		t.Error("relation atoms should be rejected offline")
	}
	unknown := core.CNF{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("nope")}},
	}}
	if _, err := RVAQCNF(context.Background(), ix, unknown, 3, Options{}); err == nil {
		t.Error("unknown atom should fail")
	}
}

func TestCNFScorerMonotone(t *testing.T) {
	s := cnfTableScorer{clauses: [][]int{{0, 1}, {2}}}
	base := s.scoreTables([]float64{1, 2, 3})
	if base != 2*3 {
		t.Fatalf("base = %v, want 6", base)
	}
	// Raising any component never lowers the score.
	if s.scoreTables([]float64{5, 2, 3}) < base {
		t.Error("not monotone in component 0")
	}
	if s.scoreTables([]float64{1, 2, 9}) < base {
		t.Error("not monotone in component 2")
	}
	// A clause with no detected atom zeroes the product.
	if s.scoreTables([]float64{0, 0, 3}) != 0 {
		t.Error("empty clause should zero the score")
	}
}
