package rank

import (
	"context"
	"fmt"
	"sort"

	"svqact/internal/core"
	"svqact/internal/obs"
	"svqact/internal/store"
	"svqact/internal/video"
)

// PqTraverse is the exhaustive baseline (§5.1): it accesses every clip of
// every candidate sequence, computes all sequence scores exactly, and
// returns the k best. Its cost is constant in k and proportional to the
// total number of candidate clips. The context is checked once per
// candidate sequence.
func PqTraverse(ctx context.Context, ix *Index, q core.Query, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Scoring.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("rank: k = %d must be positive", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pq, err := ix.Pq(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: "Pq-Traverse", Query: q, K: k, Candidates: pq.NumIntervals()}
	defer finishTopkSpan(obs.StartSpan(ctx, "rank.topk"), res)
	tables, scorer, rep, err := ix.queryTables(q, &res.Stats, opts.Scoring.Clip)
	if err != nil {
		return nil, err
	}
	res.Plan = rep
	f := opts.Scoring.Seq
	scoreCol := make([]float64, len(tables))
	for _, iv := range pq.Intervals() {
		if cerr := ctx.Err(); cerr != nil {
			return nil, &core.InterruptedError{Processed: res.ClipsScored, Total: pq.TotalLen(), Err: cerr}
		}
		sum := f.Zero()
		for c := iv.Start; c <= iv.End; c++ {
			s, err := scoreClip(tables, scorer, c, scoreCol)
			if err != nil {
				return nil, err
			}
			sum = f.Combine(sum, f.OfClip(s))
			res.ClipsScored++
		}
		res.Sequences = append(res.Sequences, SeqResult{Seq: iv, Lower: sum, Upper: sum, Exact: true})
	}
	sort.Slice(res.Sequences, func(i, j int) bool { return res.Sequences[i].Lower > res.Sequences[j].Lower })
	if len(res.Sequences) > k {
		res.Sequences = res.Sequences[:k]
	}
	return res, nil
}

// FA is the paper's adaptation of Fagin's Algorithm: parallel sorted access
// over all query tables from the top; every newly seen clip belonging to a
// candidate sequence is completed by random accesses; sorted access
// continues until the score of every clip of every candidate sequence has
// been produced (FA has no per-sequence bounds and no skip mechanism, so it
// cannot stop earlier), after which sequence scores are computed and the k
// best returned. The context is checked once per sorted-access round.
func FA(ctx context.Context, ix *Index, q core.Query, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Scoring.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("rank: k = %d must be positive", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pq, err := ix.Pq(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: "FA", Query: q, K: k, Candidates: pq.NumIntervals()}
	defer finishTopkSpan(obs.StartSpan(ctx, "rank.topk"), res)
	if pq.Empty() {
		return res, nil
	}
	tables, scorer, rep, err := ix.queryTables(q, &res.Stats, opts.Scoring.Clip)
	if err != nil {
		return nil, err
	}
	res.Plan = rep

	// Fagin's phase 1: parallel sorted access until every candidate clip
	// has been seen in every list (the intersection criterion of [15]).
	// Every newly seen clip is completed by random access; only then is it
	// checked against the candidate ranges and possibly disregarded.
	remaining := pq.TotalLen()
	scores := map[int]float64{}
	seenIn := map[int]int{}
	cursors := make([]int, len(tables))
	scoreCol := make([]float64, len(tables))
	for remaining > 0 {
		if cerr := ctx.Err(); cerr != nil {
			return nil, &core.InterruptedError{Processed: res.ClipsScored, Total: pq.TotalLen(), Err: cerr}
		}
		progressed := false
		for i, tbl := range tables {
			if cursors[i] >= tbl.Len() {
				continue
			}
			e, err := tbl.SortedAt(cursors[i])
			if err != nil {
				return nil, err
			}
			cursors[i]++
			progressed = true
			seenIn[e.Clip]++
			if seenIn[e.Clip] == 1 {
				score, err := scoreClip(tables, scorer, e.Clip, scoreCol)
				if err != nil {
					return nil, err
				}
				res.ClipsScored++
				if pq.Contains(e.Clip) {
					scores[e.Clip] = score
				}
			}
			if seenIn[e.Clip] == len(tables) && pq.Contains(e.Clip) {
				remaining--
			}
		}
		if !progressed {
			break // tables drained; clips absent from some table remain
		}
		res.Rounds++
	}

	f := opts.Scoring.Seq
	for _, iv := range pq.Intervals() {
		sum := f.Zero()
		for c := iv.Start; c <= iv.End; c++ {
			sum = f.Combine(sum, f.OfClip(scores[c]))
		}
		res.Sequences = append(res.Sequences, SeqResult{Seq: iv, Lower: sum, Upper: sum, Exact: true})
	}
	sort.Slice(res.Sequences, func(i, j int) bool { return res.Sequences[i].Lower > res.Sequences[j].Lower })
	if len(res.Sequences) > k {
		res.Sequences = res.Sequences[:k]
	}
	return res, nil
}

// Algorithms enumerates the offline algorithms under evaluation, keyed by
// the names used in the paper's tables.
var Algorithms = map[string]func(context.Context, *Index, core.Query, int, Options) (*Result, error){
	"FA":          FA,
	"RVAQ-noSkip": rvaqNoSkip,
	"Pq-Traverse": PqTraverse,
	"RVAQ":        RVAQ,
}

func rvaqNoSkip(ctx context.Context, ix *Index, q core.Query, k int, opts Options) (*Result, error) {
	opts.NoSkip = true
	return RVAQ(ctx, ix, q, k, opts)
}

// TruthTopK computes the reference answer by exhaustively scoring every
// candidate sequence directly from the tables without access counting —
// used by tests to validate every algorithm against the same ground truth.
func TruthTopK(ix *Index, q core.Query, k int, scoring Scoring) ([]SeqResult, error) {
	var st store.Stats
	tables, scorer, _, err := ix.queryTables(q, &st, scoring.Clip)
	if err != nil {
		return nil, err
	}
	pq, err := ix.Pq(q)
	if err != nil {
		return nil, err
	}
	f := scoring.Seq
	scoreCol := make([]float64, len(tables))
	var out []SeqResult
	for _, iv := range pq.Intervals() {
		sum := f.Zero()
		for c := iv.Start; c <= iv.End; c++ {
			s, err := scoreClip(tables, scorer, c, scoreCol)
			if err != nil {
				return nil, err
			}
			sum = f.Combine(sum, f.OfClip(s))
		}
		out = append(out, SeqResult{Seq: iv, Lower: sum, Upper: sum, Exact: true})
	}
	sortSeqResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// SequencesOf extracts the clip intervals of a result.
func SequencesOf(rs []SeqResult) video.IntervalSet {
	ivs := make([]video.Interval, len(rs))
	for i, r := range rs {
		ivs[i] = r.Seq
	}
	return video.NewIntervalSet(ivs...)
}
