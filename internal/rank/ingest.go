package rank

import (
	"context"
	"fmt"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/plan"
	"svqact/internal/store"
	"svqact/internal/video"
)

// IngestConfig tunes the ingestion phase.
type IngestConfig struct {
	// Core configures the adaptive indicator machinery used to materialise
	// the per-type individual sequences.
	Core core.Config
	// Tracker optionally wraps the object detector with simulated tracking
	// before score aggregation (the paper ingests with an object tracker so
	// the h function can aggregate per tracked instance).
	Tracker func(detect.ObjectDetector) detect.ObjectDetector
}

// DefaultIngestConfig ingests with the engine's default configuration and
// CenterTrack-style tracking.
func DefaultIngestConfig() IngestConfig {
	return IngestConfig{
		Core:    core.DefaultConfig(),
		Tracker: func(d detect.ObjectDetector) detect.ObjectDetector { return detect.CenterTrack(d) },
	}
}

// Ingest processes one video with the detection models and materialises its
// query-independent metadata (paper §4.2): for every object and action type
// the models support on this video, the clip score table (h-aggregated
// detection scores per clip) and the individual sequences (positive clips
// per type, computed with the adaptive SVAQD machinery).
//
// The returned Index is in-memory; Save persists it for later Load.
//
// Ingestion honours ctx between clips, and retries transient failures of
// fallible detection models with the configured backoff; a unit that still
// fails after retries contributes no score (the engine-side individual
// sequences independently flag such clips and enforce the failure budget).
func Ingest(ctx context.Context, v detect.TruthVideo, models detect.Models, scoring Scoring, cfg IngestConfig) (*Index, error) {
	if err := scoring.Validate(); err != nil {
		return nil, err
	}
	if models.Objects == nil || models.Actions == nil {
		return nil, fmt.Errorf("rank: ingestion needs both detection models")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g := v.Geometry()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	objTypes, actTypes := v.ObjectTypes(), v.ActionTypes()

	span := obs.StartSpan(ctx, "rank.ingest").SetAttr("video", v.ID()).
		SetAttr("object_types", len(objTypes)).SetAttr("action_types", len(actTypes))
	defer span.End()

	eng, err := core.NewSVAQD(models, cfg.Core)
	if err != nil {
		return nil, err
	}
	objSeqs, actSeqs, err := eng.EvaluateTypes(ctx, v, objTypes, actTypes)
	if err != nil {
		return nil, err
	}

	// Offline tier choice: ingestion is a static plan, so cascaded models
	// run under the tier mode priced once from the calibrated escalation
	// priors. TierCascade keeps the cascade (its deciding-tier detections
	// and scores are identical to the accurate tier's under a
	// recall-complete cheap tier, so the score tables and top-k do not
	// move); TierAccurate unwraps to the accurate tier directly. The choice
	// happens before tracker wrapping so the tracker sees the chosen model.
	det := models.Objects
	objMode, actMode := plan.TierSingle, plan.TierSingle
	if casc, ok := det.(detect.CascadedObjectScorer); ok {
		objMode = plan.StaticTierChoice(core.TierCosts(casc.Tiers()))
		if objMode == plan.TierAccurate {
			det = casc.AccurateTier()
		}
	}
	rec := models.Actions
	if casc, ok := rec.(detect.CascadedActionScorer); ok {
		actMode = plan.StaticTierChoice(core.TierCosts(casc.Tiers()))
		if actMode == plan.TierAccurate {
			rec = casc.AccurateTier()
		}
	}
	if objMode != plan.TierSingle {
		span.SetAttr("tier:objects", objMode.String())
	}
	if actMode != plan.TierSingle {
		span.SetAttr("tier:actions", actMode.String())
	}
	if cfg.Tracker != nil {
		det = cfg.Tracker(det)
	}
	retry := cfg.Core.Retry
	if retry.Attempts == 0 {
		retry = detect.DefaultRetryConfig()
	}

	ix := &Index{
		Name:     v.ID(),
		NumClips: g.NumClips(v.NumFrames()),
		Objects:  make(map[string]*TypeIndex, len(objTypes)),
		Actions:  make(map[string]*TypeIndex, len(actTypes)),
	}

	// Clip score tables: h aggregates every detection score of the type
	// within the clip (per tracked instance and frame for objects, per shot
	// for actions) — the paper's §5 instantiation of h. Infallible models
	// take the columnar batch path — one reused Events buffer per clip, no
	// per-frame retry closure or []Detection heap slice; the scores land in
	// the same order, so the float accumulation is bit-identical. The
	// per-attempt retry contract applies only to fallible models, which keep
	// the scalar loop.
	_, objFallible := det.(detect.FallibleObjectDetector)
	_, actFallible := rec.(detect.FallibleActionRecognizer)
	var ev detect.Events
	var shotScores []float64
	for _, typ := range objTypes {
		var entries []store.Entry
		for c := 0; c < ix.NumClips; c++ {
			if cerr := ctx.Err(); cerr != nil {
				return nil, &core.InterruptedError{Processed: c, Total: ix.NumClips, Err: cerr}
			}
			fr := g.FrameRangeOfClip(c)
			sum := 0.0
			if !objFallible {
				ev.Reset()
				for f := fr.Start; f <= fr.End; f++ {
					detect.AppendFrameEvents(det, v, typ, f, &ev)
				}
				for _, s := range ev.Scores {
					sum += s
				}
			} else {
				for f := fr.Start; f <= fr.End; f++ {
					var dets []detect.Detection
					err := detect.Retry(ctx, retry, func(attempt int) error {
						var err error
						dets, err = detect.FrameDetectionsAttempt(det, v, typ, f, attempt)
						return err
					})
					if err != nil {
						if ctx.Err() != nil {
							return nil, &core.InterruptedError{Processed: c, Total: ix.NumClips, Err: ctx.Err()}
						}
						continue // flagged by EvaluateTypes; score the rest
					}
					for _, d := range dets {
						sum += d.Score
					}
				}
			}
			if sum > 0 {
				entries = append(entries, store.Entry{Clip: c, Score: sum})
			}
		}
		tbl, err := store.NewMemTable(typ, entries)
		if err != nil {
			return nil, err
		}
		ix.Objects[typ] = &TypeIndex{Table: tbl, Seqs: objSeqs[typ]}
	}
	for _, typ := range actTypes {
		var entries []store.Entry
		for c := 0; c < ix.NumClips; c++ {
			if cerr := ctx.Err(); cerr != nil {
				return nil, &core.InterruptedError{Processed: c, Total: ix.NumClips, Err: cerr}
			}
			sr := g.ShotRangeOfClip(c)
			sum := 0.0
			if !actFallible {
				n := sr.End - sr.Start + 1
				if cap(shotScores) < n {
					shotScores = make([]float64, n)
				}
				buf := shotScores[:n]
				detect.ShotScoreBatch(rec, v, typ, sr.Start, buf)
				for _, s := range buf {
					sum += s
				}
			} else {
				for s := sr.Start; s <= sr.End; s++ {
					var score float64
					err := detect.Retry(ctx, retry, func(attempt int) error {
						var err error
						score, err = models.ActionScoreAttempt(v, typ, s, attempt)
						return err
					})
					if err != nil {
						if ctx.Err() != nil {
							return nil, &core.InterruptedError{Processed: c, Total: ix.NumClips, Err: ctx.Err()}
						}
						continue
					}
					sum += score
				}
			}
			if sum > 0 {
				entries = append(entries, store.Entry{Clip: c, Score: sum})
			}
		}
		tbl, err := store.NewMemTable(typ, entries)
		if err != nil {
			return nil, err
		}
		ix.Actions[typ] = &TypeIndex{Table: tbl, Seqs: actSeqs[typ]}
	}
	span.SetAttr("clips", ix.NumClips)
	return ix, nil
}

// IngestAll ingests every video of a collection and merges the per-video
// indexes into one repository index.
func IngestAll(ctx context.Context, name string, videos []detect.TruthVideo, models detect.Models, scoring Scoring, cfg IngestConfig) (*Index, error) {
	indexes := make([]*Index, 0, len(videos))
	for _, v := range videos {
		ix, err := Ingest(ctx, v, models, scoring, cfg)
		if err != nil {
			return nil, fmt.Errorf("rank: ingesting %s: %w", v.ID(), err)
		}
		indexes = append(indexes, ix)
	}
	return Merge(name, indexes)
}

// Pq computes the candidate sequences of a query (paper Equation 12): the
// interval-sweep intersection of the action's individual sequences with
// every query object's individual sequences.
func (ix *Index) Pq(q core.Query) (video.IntervalSet, error) {
	if err := q.Validate(); err != nil {
		return video.IntervalSet{}, err
	}
	act, ok := ix.Actions[q.Action]
	if !ok {
		return video.IntervalSet{}, &NotIngestedError{Kind: "action", Name: q.Action}
	}
	sets := []video.IntervalSet{act.Seqs}
	for _, o := range q.Objects {
		ti, ok := ix.Objects[o]
		if !ok {
			return video.IntervalSet{}, &NotIngestedError{Kind: "object", Name: o}
		}
		sets = append(sets, ti.Seqs)
	}
	return video.IntersectAll(sets...), nil
}

// scoreClip computes a clip's overall score via random accesses on every
// query table, filling the caller-owned scores column (grown if too small —
// callers size it once per query, so the hot path never reallocates).
// Missing rows contribute zero; table read failures surface as errors.
func scoreClip(tables []store.Table, scorer tableScorer, clip int, scores []float64) (float64, error) {
	if cap(scores) < len(tables) {
		scores = make([]float64, len(tables))
	}
	scores = scores[:len(tables)]
	for i, t := range tables {
		s, _, err := t.ScoreOf(clip)
		if err != nil {
			return 0, err
		}
		scores[i] = s
	}
	return scorer.scoreTables(scores), nil
}
