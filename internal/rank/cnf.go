package rank

import (
	"context"
	"fmt"

	"svqact/internal/core"
	"svqact/internal/plan"
	"svqact/internal/store"
	"svqact/internal/video"
)

// Ranked extended queries: RVAQ generalises from the basic
// one-action-plus-objects conjunction to CNF queries over object and action
// atoms (the footnote 3-4 extensions). Candidate sequences intersect, per
// clause, the union of the atoms' individual sequences; clip scores take
// the maximum ingested score within each clause and multiply across
// clauses — monotone in every atom score, so all of §4.1's requirements
// (and therefore the bound machinery) carry over unchanged.
//
// Relation atoms are not supported offline: their per-frame indicators
// derive from instance geometry that the ingestion phase does not
// materialise per type pair (doing so would square the table space).

// tableScorer maps the full per-table score vector of a clip to its overall
// score. It generalises ClipScorer beyond the basic "objects then action"
// table layout.
type tableScorer interface {
	scoreTables(scores []float64) float64
}

// cnfTableScorer scores a clip under a CNF query: the maximum atom score
// within each clause, multiplied across clauses.
type cnfTableScorer struct {
	clauses [][]int // atom (table) indexes per clause
}

func (s cnfTableScorer) scoreTables(scores []float64) float64 {
	p := 1.0
	for _, cl := range s.clauses {
		m := 0.0
		for _, i := range cl {
			if scores[i] > m {
				m = scores[i]
			}
		}
		p *= m
	}
	return p
}

// cnfTables resolves one table per distinct atom and the clause structure
// over the table indexes. Tables come back in planner order (cheapest
// expected cost to reject first, from each atom table's length and
// sequence coverage) with the clause references remapped accordingly — no
// caller may assume any fixed atom layout.
func (ix *Index) cnfTables(q core.CNF, st *store.Stats) ([]store.Table, [][]int, []video.IntervalSet, *plan.Report, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	var tis []*TypeIndex
	var nodes []plan.Node
	index := map[string]int{}
	clauses := make([][]int, len(q.Clauses))
	for ci, c := range q.Clauses {
		for _, a := range c.Atoms {
			key := a.String()
			i, ok := index[key]
			if !ok {
				var ti *TypeIndex
				switch a.Kind {
				case core.ObjectPredicate:
					ti = ix.Objects[a.Name]
				case core.ActionPredicate:
					ti = ix.Actions[a.Name]
				default:
					return nil, nil, nil, nil, fmt.Errorf("rank: relation atom %s is not supported offline", a)
				}
				if ti == nil {
					return nil, nil, nil, nil, &NotIngestedError{Kind: "atom", Name: fmt.Sprint(a)}
				}
				i = len(tis)
				tis = append(tis, ti)
				nodes = append(nodes, plan.Node{
					Name:        key,
					PriorCost:   tableAccessCost(ti.Table),
					PriorReject: tableRejectPrior(ti.Seqs, ix.NumClips),
				})
				index[key] = i
			}
			clauses[ci] = append(clauses[ci], i)
		}
	}
	pl := plan.New(nodes, plan.Options{})
	order := pl.Order()
	// order[planPos] = declared atom index; invert it to remap the clause
	// references onto plan positions.
	toPlan := make([]int, len(order))
	tables := make([]store.Table, len(order))
	seqs := make([]video.IntervalSet, len(order))
	for planPos, d := range order {
		toPlan[d] = planPos
		tables[planPos] = store.WithStats(tis[d].Table, st)
		seqs[planPos] = tis[d].Seqs
	}
	for ci := range clauses {
		for j, d := range clauses[ci] {
			clauses[ci][j] = toPlan[d]
		}
	}
	return tables, clauses, seqs, pl.Report(), nil
}

// PqCNF computes the candidate sequences of a CNF query: per clause, the
// union of the atoms' individual sequences; across clauses, the interval
// intersection.
func (ix *Index) PqCNF(q core.CNF) (video.IntervalSet, error) {
	var st store.Stats
	_, clauses, seqs, _, err := ix.cnfTables(q, &st)
	if err != nil {
		return video.IntervalSet{}, err
	}
	sets := make([]video.IntervalSet, len(clauses))
	for ci, refs := range clauses {
		var u video.IntervalSet
		for _, i := range refs {
			u = u.Union(seqs[i])
		}
		sets[ci] = u
	}
	return video.IntersectAll(sets...), nil
}

// RVAQCNF answers a ranked CNF query with the RVAQ machinery over per-atom
// tables. Like RVAQ it honours ctx between iterator rounds.
func RVAQCNF(ctx context.Context, ix *Index, q core.CNF, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Scoring.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("rank: k = %d must be positive", k)
	}
	name := "RVAQ-CNF"
	if opts.NoSkip {
		name = "RVAQ-CNF-noSkip"
	}
	res := &Result{Algorithm: name, K: k}
	tables, clauses, seqs, rep, err := ix.cnfTables(q, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Plan = rep
	sets := make([]video.IntervalSet, len(clauses))
	for ci, refs := range clauses {
		var u video.IntervalSet
		for _, i := range refs {
			u = u.Union(seqs[i])
		}
		sets[ci] = u
	}
	pq := video.IntersectAll(sets...)
	res.Candidates = pq.NumIntervals()
	if pq.Empty() {
		return res, nil
	}
	scorer := cnfTableScorer{clauses: clauses}
	if err := topkRun(ctx, res, tables, scorer, opts, pq, k); err != nil {
		return nil, err
	}
	return res, nil
}

// TruthTopKCNF exhaustively scores every CNF candidate sequence — the test
// reference for RVAQCNF.
func TruthTopKCNF(ix *Index, q core.CNF, k int, scoring Scoring) ([]SeqResult, error) {
	var st store.Stats
	tables, clauses, _, _, err := ix.cnfTables(q, &st)
	if err != nil {
		return nil, err
	}
	pq, err := ix.PqCNF(q)
	if err != nil {
		return nil, err
	}
	scorer := cnfTableScorer{clauses: clauses}
	f := scoring.Seq
	scoreCol := make([]float64, len(tables))
	var out []SeqResult
	for _, iv := range pq.Intervals() {
		sum := f.Zero()
		for c := iv.Start; c <= iv.End; c++ {
			s, err := scoreClip(tables, scorer, c, scoreCol)
			if err != nil {
				return nil, err
			}
			sum = f.Combine(sum, f.OfClip(s))
		}
		out = append(out, SeqResult{Seq: iv, Lower: sum, Upper: sum, Exact: true})
	}
	sortSeqResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
