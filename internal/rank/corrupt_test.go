package rank

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"svqact/internal/store"
)

// savedDir materialises a small valid index and returns its directory.
func savedDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := Save(dir, buildIndex(t, 60, 7, []int{3, 4})); err != nil {
		t.Fatal(err)
	}
	return dir
}

// liveGen returns the committed generation directory of dir.
func liveGen(t *testing.T, dir string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := parseCurrent(dir, raw)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, gen)
}

// rewriteManifest applies mutate to the committed manifest and re-commits it
// (CURRENT's checksum updated to match), so Load's structural validation —
// not the checksum — is what must catch the damage.
func rewriteManifest(t *testing.T, dir string, mutate func(*manifest)) {
	t.Helper()
	gen := liveGen(t, dir)
	data, err := os.ReadFile(filepath.Join(gen, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(&m)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(gen, manifestFile), out, 0o644); err != nil {
		t.Fatal(err)
	}
	record := fmt.Sprintf("%s crc32=%08x\n", filepath.Base(gen), store.Checksum(out))
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}
}

func wantCorrupt(t *testing.T, dir, label string) {
	t.Helper()
	ix, err := Load(dir)
	if err == nil {
		ix.Close()
		t.Fatalf("%s: Load succeeded", label)
	}
	if !IsCorrupt(err) {
		t.Fatalf("%s: err = %v, want CorruptError", label, err)
	}
}

// TestLoadRejectsEscapingFiles (satellite): manifest File entries must not
// resolve outside the generation directory.
func TestLoadRejectsEscapingFiles(t *testing.T) {
	for _, evil := range []string{"../evil.tbl", "sub/evil.tbl", "..", ".", ""} {
		dir := savedDir(t)
		rewriteManifest(t, dir, func(m *manifest) { m.Objects[0].File = evil })
		wantCorrupt(t, dir, fmt.Sprintf("file %q", evil))
	}
}

// TestLoadRejectsBadSequences (satellite): negative, reversed, and
// clip-space-exceeding individual sequences must not reach query results.
func TestLoadRejectsBadSequences(t *testing.T) {
	cases := map[string][2]int{
		"negative start": {-1, 3},
		"reversed":       {5, 2},
		"past the end":   {10, 60},
	}
	for label, seq := range cases {
		dir := savedDir(t)
		rewriteManifest(t, dir, func(m *manifest) { m.Actions[0].Seqs[0] = seq })
		wantCorrupt(t, dir, label)
	}
}

// TestLoadRejectsStructuralDamage: format, clip-space, span, and duplicate
// violations all surface as CorruptError.
func TestLoadRejectsStructuralDamage(t *testing.T) {
	cases := map[string]func(*manifest){
		"wrong format":   func(m *manifest) { m.Format = 1 },
		"negative clips": func(m *manifest) { m.NumClips = -4 },
		"duplicate type": func(m *manifest) { m.Objects = append(m.Objects, m.Objects[0]) },
		"duplicate file": func(m *manifest) {
			m.Objects[1].File = m.Objects[0].File
		},
		"span out of range": func(m *manifest) {
			m.Spans = []manifestSpan{{VideoID: "v", Start: 50, Clips: 20}}
		},
		"overlapping spans": func(m *manifest) {
			m.Spans = []manifestSpan{{VideoID: "a", Start: 0, Clips: 10}, {VideoID: "b", Start: 5, Clips: 10}}
		},
		"type mismatch": func(m *manifest) {
			m.Objects[0].Type, m.Objects[1].Type = m.Objects[1].Type, m.Objects[0].Type
		},
	}
	for label, mutate := range cases {
		dir := savedDir(t)
		rewriteManifest(t, dir, mutate)
		wantCorrupt(t, dir, label)
	}
}

// TestLoadRejectsTamperedFiles: damage that the checksums (rather than the
// structural validation) must catch.
func TestLoadRejectsTamperedFiles(t *testing.T) {
	flip := func(t *testing.T, path string, off int) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[(off%len(data)+len(data))%len(data)] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("manifest bit flip", func(t *testing.T) {
		dir := savedDir(t)
		flip(t, filepath.Join(liveGen(t, dir), manifestFile), 40)
		wantCorrupt(t, dir, "manifest flip")
	})
	t.Run("table bit flip", func(t *testing.T) {
		dir := savedDir(t)
		flip(t, filepath.Join(liveGen(t, dir), "obj_0.tbl"), 100)
		wantCorrupt(t, dir, "table flip")
	})
	t.Run("table truncated", func(t *testing.T) {
		dir := savedDir(t)
		path := filepath.Join(liveGen(t, dir), "act_0.tbl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		wantCorrupt(t, dir, "table truncation")
	})
	t.Run("malformed CURRENT", func(t *testing.T) {
		dir := savedDir(t)
		if err := os.WriteFile(filepath.Join(dir, currentFile), []byte("gibberish\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		wantCorrupt(t, dir, "CURRENT")
	})
	t.Run("CURRENT points at missing generation", func(t *testing.T) {
		dir := savedDir(t)
		record := fmt.Sprintf("%s crc32=%08x\n", genName(99), uint32(0))
		if err := os.WriteFile(filepath.Join(dir, currentFile), []byte(record), 0o644); err != nil {
			t.Fatal(err)
		}
		wantCorrupt(t, dir, "dangling CURRENT")
	})
	t.Run("legacy layout", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(`{"name":"x"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		wantCorrupt(t, dir, "legacy")
	})
}

func TestFsck(t *testing.T) {
	root := t.TempDir()
	repo, err := OpenRepository(root)
	if err != nil {
		t.Fatal(err)
	}
	a := buildIndex(t, 40, 3, []int{2, 3})
	a.Name = "alpha"
	b := buildIndex(t, 50, 4, []int{4})
	b.Name = "beta"
	if err := repo.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(b); err != nil {
		t.Fatal(err)
	}
	repo.Close()

	reports, err := FsckRepository(root)
	if err != nil {
		t.Fatalf("clean repository failed fsck: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}

	// An uncommitted generation is a warning, not a failure.
	if err := os.MkdirAll(filepath.Join(root, "alpha", genName(99)), 0o755); err != nil {
		t.Fatal(err)
	}
	reports, err = FsckRepository(root)
	if err != nil {
		t.Fatalf("fsck failed on crash debris: %v", err)
	}
	warned := false
	for _, rep := range reports {
		warned = warned || len(rep.Warnings) > 0
	}
	if !warned {
		t.Error("uncommitted generation produced no warning")
	}

	// Corrupting one member fails the check but still reports the other.
	tblPath := filepath.Join(liveGen(t, filepath.Join(root, "beta")), "obj_0.tbl")
	data, err := os.ReadFile(tblPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(tblPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err = FsckRepository(root)
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("err = %v, want CorruptError", err)
	}
	if !strings.Contains(err.Error(), "beta") {
		t.Errorf("error does not name the corrupt member: %v", err)
	}
	if len(reports) != 1 || !strings.Contains(reports[0].Dir, "alpha") {
		t.Errorf("healthy member missing from reports: %v", reports)
	}
}

func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")

	cp := OpenCheckpoint(path, "movies|0.25|42")
	if cp.Resumed() || cp.Done("video:a") {
		t.Fatal("fresh checkpoint reports progress")
	}
	if err := cp.MarkDone("video:a"); err != nil {
		t.Fatal(err)
	}
	if err := cp.MarkDone("video:b"); err != nil {
		t.Fatal(err)
	}

	re := OpenCheckpoint(path, "movies|0.25|42")
	if !re.Resumed() || !re.Done("video:a") || !re.Done("video:b") || re.Count() != 2 {
		t.Fatal("reopen lost progress")
	}

	// A different fingerprint discards the checkpoint.
	other := OpenCheckpoint(path, "movies|0.5|42")
	if other.Resumed() || other.Count() != 0 {
		t.Fatal("fingerprint mismatch not discarded")
	}

	// A corrupt file is discarded, not fatal.
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if cp := OpenCheckpoint(path, "movies|0.25|42"); cp.Resumed() {
		t.Fatal("corrupt checkpoint resumed")
	}

	// Finish removes the file; finishing twice is fine.
	if err := re.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := re.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint file survived Finish")
	}
}
