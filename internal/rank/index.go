package rank

import (
	"fmt"
	"sort"

	"svqact/internal/store"
	"svqact/internal/video"
)

// TypeIndex is the ingested metadata for one object or action type: the clip
// score table (paper §4.2 "clip score tables") and the individual sequences
// (maximal runs of clips on which the type's indicator is positive).
type TypeIndex struct {
	Table store.Table
	Seqs  video.IntervalSet
}

// Index is the queryable result of ingesting one video — or, after Merge,
// a whole repository of videos sharing one global clip-id space.
type Index struct {
	// Name identifies the ingested video or dataset.
	Name string
	// NumClips is the size of the (global) clip-id space.
	NumClips int
	// Objects and Actions map each ingested type to its metadata.
	Objects map[string]*TypeIndex
	Actions map[string]*TypeIndex

	// Generation is the committed generation number this index was loaded
	// from (0 for in-memory indexes that never touched disk).
	Generation int

	// spans maps global clip ranges back to the originating videos (only
	// set on merged indexes; single-video indexes resolve to themselves).
	spans []videoSpan
}

type videoSpan struct {
	videoID string
	start   int // global clip id of the video's clip 0
	clips   int
}

// Resolve maps a global clip id back to (video, local clip). For a
// single-video index it returns the index name and the clip unchanged.
func (ix *Index) Resolve(clip int) (videoID string, localClip int) {
	for _, s := range ix.spans {
		if clip >= s.start && clip < s.start+s.clips {
			return s.videoID, clip - s.start
		}
	}
	return ix.Name, clip
}

// ObjectTypes returns the ingested object types, sorted.
func (ix *Index) ObjectTypes() []string { return sortedKeys(ix.Objects) }

// ActionTypes returns the ingested action types, sorted.
func (ix *Index) ActionTypes() []string { return sortedKeys(ix.Actions) }

func sortedKeys(m map[string]*TypeIndex) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge combines per-video indexes into one repository index with a global
// clip-id space, exactly as the paper prescribes ("we just associate a video
// identifier for each cid"). One empty clip id is left between consecutive
// videos so sequences can never merge across video boundaries.
func Merge(name string, indexes []*Index) (*Index, error) {
	out := &Index{
		Name:    name,
		Objects: map[string]*TypeIndex{},
		Actions: map[string]*TypeIndex{},
	}
	objEntries := map[string][]store.Entry{}
	actEntries := map[string][]store.Entry{}
	objSeqs := map[string][]video.Interval{}
	actSeqs := map[string][]video.Interval{}

	offset := 0
	for _, ix := range indexes {
		if len(ix.spans) > 0 {
			return nil, fmt.Errorf("rank: cannot merge already-merged index %q", ix.Name)
		}
		out.spans = append(out.spans, videoSpan{videoID: ix.Name, start: offset, clips: ix.NumClips})
		shift := func(ti *TypeIndex, entries map[string][]store.Entry, seqs map[string][]video.Interval, typ string) error {
			for i := 0; i < ti.Table.Len(); i++ {
				e, err := ti.Table.SortedAt(i)
				if err != nil {
					return err
				}
				entries[typ] = append(entries[typ], store.Entry{Clip: e.Clip + offset, Score: e.Score})
			}
			for _, iv := range ti.Seqs.Intervals() {
				seqs[typ] = append(seqs[typ], video.Interval{Start: iv.Start + offset, End: iv.End + offset})
			}
			return nil
		}
		for typ, ti := range ix.Objects {
			if err := shift(ti, objEntries, objSeqs, typ); err != nil {
				return nil, err
			}
		}
		for typ, ti := range ix.Actions {
			if err := shift(ti, actEntries, actSeqs, typ); err != nil {
				return nil, err
			}
		}
		offset += ix.NumClips + 1 // gap clip: sequences never span videos
	}
	out.NumClips = offset

	build := func(entries map[string][]store.Entry, seqs map[string][]video.Interval, dst map[string]*TypeIndex) error {
		for typ := range entries {
			tbl, err := store.NewMemTable(typ, entries[typ])
			if err != nil {
				return err
			}
			dst[typ] = &TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(seqs[typ]...)}
		}
		// Types that produced sequences but no scored clips (possible only
		// in pathological calibrations) still deserve an entry.
		for typ := range seqs {
			if _, ok := dst[typ]; !ok {
				tbl, err := store.NewMemTable(typ, nil)
				if err != nil {
					return err
				}
				dst[typ] = &TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(seqs[typ]...)}
			}
		}
		return nil
	}
	if err := build(objEntries, objSeqs, out.Objects); err != nil {
		return nil, err
	}
	if err := build(actEntries, actSeqs, out.Actions); err != nil {
		return nil, err
	}
	return out, nil
}
