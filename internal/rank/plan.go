package rank

import (
	"time"

	"svqact/internal/core"
	"svqact/internal/plan"
	"svqact/internal/store"
	"svqact/internal/video"
)

// The offline engine routes its per-predicate table layout through the same
// cost-based planner as the online engine, instead of hardwiring "objects
// in query order, then the action". The planner here is static — tables are
// fully materialised at ingest, so cost and selectivity are known up front:
// a table's access cost grows with its length, and its rejection power is
// the fraction of the clip space its individual sequences exclude.
//
// For the offline algorithms the chosen order cannot change results or
// access counts: the scorer re-maps plan positions back to the declared
// predicate layout before scoring, and every traversal round of
// TBClip/FA/Pq-Traverse touches every table. The plan is the query's
// EXPLAIN surface (and keeps the declared layout out of the hot path's
// assumptions); the regression tests pin output equality.

// tableAccessCost prices accesses against one table: logical cost grows
// with the rows the traversal may touch.
func tableAccessCost(tbl store.Table) time.Duration {
	return time.Duration(tbl.Len()) * time.Microsecond
}

// tableRejectPrior estimates how often a predicate's table rejects a clip:
// the fraction of the clip space outside its individual sequences, clamped
// inside (0,1) so the planner's smoothing stays well-defined.
func tableRejectPrior(seqs video.IntervalSet, numClips int) float64 {
	if numClips <= 0 {
		return 0.5
	}
	rej := 1 - float64(seqs.TotalLen())/float64(numClips)
	if rej < 0.01 {
		return 0.01
	}
	if rej > 0.99 {
		return 0.99
	}
	return rej
}

// planScorer evaluates a ClipScorer over the declared predicate layout
// (objects in query order, then the action) while the tables themselves are
// traversed in plan order: the plan-ordered score vector is mapped back to
// declared positions before scoring, so no scorer assumes any particular
// table order.
type planScorer struct {
	c          ClipScorer
	toDeclared []int // toDeclared[planPos] = declared position
	// decl is the reused declared-order column. A scorer belongs to exactly
	// one query and scoreTables runs on one goroutine, so the buffer never
	// races; the result is consumed before the next call overwrites it.
	decl []float64
}

func (p *planScorer) scoreTables(scores []float64) float64 {
	if cap(p.decl) < len(scores) {
		p.decl = make([]float64, len(scores))
	}
	decl := p.decl[:len(scores)]
	for planPos, d := range p.toDeclared {
		decl[d] = scores[planPos]
	}
	n := len(decl)
	return p.c.OfPredicates(decl[:n-1], decl[n-1])
}

// queryTables resolves the query's per-predicate tables in planner order —
// cheapest expected cost to reject first — wrapped with the given stats
// counter, together with the position-mapping scorer over clip and the plan
// report for EXPLAIN.
func (ix *Index) queryTables(q core.Query, st *store.Stats, clip ClipScorer) ([]store.Table, tableScorer, *plan.Report, error) {
	type decl struct {
		name string
		ti   *TypeIndex
	}
	decls := make([]decl, 0, len(q.Objects)+1)
	for _, o := range q.Objects {
		ti, ok := ix.Objects[o]
		if !ok {
			return nil, nil, nil, &NotIngestedError{Kind: "object", Name: o}
		}
		decls = append(decls, decl{o, ti})
	}
	ti, ok := ix.Actions[q.Action]
	if !ok {
		return nil, nil, nil, &NotIngestedError{Kind: "action", Name: q.Action}
	}
	decls = append(decls, decl{q.Action, ti})

	nodes := make([]plan.Node, len(decls))
	for i, d := range decls {
		nodes[i] = plan.Node{
			Name:        d.name,
			PriorCost:   tableAccessCost(d.ti.Table),
			PriorReject: tableRejectPrior(d.ti.Seqs, ix.NumClips),
		}
	}
	pl := plan.New(nodes, plan.Options{})
	order := pl.Order()
	tables := make([]store.Table, len(order))
	for planPos, d := range order {
		tables[planPos] = store.WithStats(decls[d].ti.Table, st)
	}
	return tables, &planScorer{c: clip, toDeclared: order}, pl.Report(), nil
}
