package rank

import (
	"svqact/internal/store"
	"svqact/internal/video"
)

// tbClip is the paper's TBClip iterator (Algorithm 5): it incrementally
// yields the highest-scoring and the lowest-scoring clip among the
// not-yet-processed clips of the candidate sequences, by running sorted
// access in parallel over every query table from both ends, with random
// accesses to complete the scores of newly seen clips.
//
// The implementation grounds Algorithm 5's bound semantics in the threshold
// algorithm: a seen candidate is returned as the top (resp. bottom) clip
// only once its full score reaches the threshold g(top frontiers) (resp.
// falls to g(bottom frontiers)), which makes the returned scores true
// upper/lower bounds for every clip still unprocessed. Clips in the skip set
// are observed during sorted access but never random-accessed or returned.
type tbClip struct {
	tables []store.Table
	scorer tableScorer
	pq     video.IntervalSet

	// scoreAll mimics running without any skip set (the paper's RVAQ-noSkip
	// ablation): every clip seen during sorted access has its full score
	// computed by random accesses, even clips outside the candidate
	// sequences whose score is then discarded.
	scoreAll bool

	// candidates holds seen, fully scored, unprocessed, unskipped clips.
	candidates map[int]float64
	processed  map[int]bool
	skipped    video.IntervalSet
	seen       map[int]bool

	// remaining counts candidate-sequence clips not yet processed or
	// skipped; the iterator is exhausted when it hits zero, even if table
	// rows remain unscanned.
	remaining int

	// rounds counts the parallel sorted-access rounds performed — the
	// traversal depth reported in Result.Rounds and the rank.topk span.
	rounds int

	topCur []int // next rank-region row from the top, per table
	btmCur []int // next rank-region row from the bottom, per table

	topFrontier []float64
	btmFrontier []float64

	// scoreCol is the per-table score column scoreClip fills on each random
	// access — one allocation per iterator, not one per completed clip.
	scoreCol []float64
}

func newTBClip(tables []store.Table, scorer tableScorer, pq video.IntervalSet, scoreAll bool) (*tbClip, error) {
	n := len(tables)
	// Pre-size the bookkeeping maps for the candidate clips the traversal
	// will see, so steady-state admission does not grow buckets.
	hint := pq.TotalLen()
	t := &tbClip{
		tables:      tables,
		scorer:      scorer,
		pq:          pq,
		scoreAll:    scoreAll,
		remaining:   hint,
		candidates:  make(map[int]float64, hint),
		processed:   make(map[int]bool, hint),
		seen:        make(map[int]bool, hint),
		topCur:      make([]int, n),
		btmCur:      make([]int, n),
		topFrontier: make([]float64, n),
		btmFrontier: make([]float64, n),
		scoreCol:    make([]float64, n),
	}
	for i, tbl := range tables {
		t.btmCur[i] = tbl.Len() - 1
		if tbl.Len() > 0 {
			// Until a row is read, the frontiers bound the table's score
			// range: the top row's score from above is unknown, so seed
			// with the extremes actually stored.
			e, err := tbl.SortedAt(0)
			if err != nil {
				return nil, err
			}
			t.topFrontier[i] = e.Score
			t.btmFrontier[i] = 0
		}
	}
	return t, nil
}

// Skip excludes a clip range from all further processing.
func (t *tbClip) Skip(iv video.Interval) {
	t.skipped = t.skipped.Union(video.NewIntervalSet(iv))
	for c := iv.Start; c <= iv.End; c++ {
		delete(t.candidates, c)
		if t.pq.Contains(c) && !t.processed[c] {
			t.processed[c] = true // nothing further will touch it
			t.remaining--
		}
	}
}

// exhausted reports whether every table row has been seen.
func (t *tbClip) exhausted() bool {
	for i, tbl := range t.tables {
		if t.topCur[i] <= t.btmCur[i] && tbl.Len() > 0 {
			return false
		}
	}
	return true
}

// mark records a candidate clip as processed.
func (t *tbClip) mark(clip int) {
	if !t.processed[clip] {
		t.processed[clip] = true
		t.remaining--
	}
	delete(t.candidates, clip)
}

// admitRow ingests one sorted-access row: unseen candidate clips get their
// full score computed by random access.
func (t *tbClip) admitRow(e store.Entry) error {
	if t.seen[e.Clip] {
		return nil
	}
	t.seen[e.Clip] = true
	if t.processed[e.Clip] || t.skipped.Contains(e.Clip) {
		return nil
	}
	if !t.pq.Contains(e.Clip) {
		if t.scoreAll {
			// Without a skip set the iterator cannot tell candidate clips
			// apart before scoring them; the accesses are paid and the
			// result thrown away.
			if _, err := scoreClip(t.tables, t.scorer, e.Clip, t.scoreCol); err != nil {
				return err
			}
		}
		return nil
	}
	s, err := scoreClip(t.tables, t.scorer, e.Clip, t.scoreCol)
	if err != nil {
		return err
	}
	t.candidates[e.Clip] = s
	return nil
}

// advance performs one parallel sorted-access round from both ends.
func (t *tbClip) advance() error {
	t.rounds++
	for i, tbl := range t.tables {
		if t.topCur[i] <= t.btmCur[i] {
			e, err := tbl.SortedAt(t.topCur[i])
			if err != nil {
				return err
			}
			t.topCur[i]++
			t.topFrontier[i] = e.Score
			if err := t.admitRow(e); err != nil {
				return err
			}
		}
		if t.btmCur[i] >= t.topCur[i] {
			e, err := tbl.SortedAt(t.btmCur[i])
			if err != nil {
				return err
			}
			t.btmCur[i]--
			t.btmFrontier[i] = e.Score
			if err := t.admitRow(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// thresholds returns the TA bounds for clips not yet seen: any unseen clip
// scores at most the scorer applied to the top frontiers and at least the
// scorer applied to the bottom frontiers (the scorer is monotone in every
// component).
func (t *tbClip) thresholds() (hi, lo float64) {
	return t.scorer.scoreTables(t.topFrontier), t.scorer.scoreTables(t.btmFrontier)
}

func (t *tbClip) best() (int, float64, bool) {
	found := false
	var c int
	var s float64
	for clip, sc := range t.candidates {
		if !found || sc > s || (sc == s && clip < c) {
			found, c, s = true, clip, sc
		}
	}
	return c, s, found
}

func (t *tbClip) worst() (int, float64, bool) {
	found := false
	var c int
	var s float64
	for clip, sc := range t.candidates {
		if !found || sc < s || (sc == s && clip < c) {
			found, c, s = true, clip, sc
		}
	}
	return c, s, found
}

// Next returns the next top clip and bottom clip with their scores. When a
// single candidate remains it is returned as the top clip only. ok is false
// when every candidate clip has been processed or skipped. A table read
// failure surfaces as err.
func (t *tbClip) Next() (top, btm store.Entry, hasTop, hasBtm, ok bool, err error) {
	// Grow the seen set until the best (and worst) candidates provably
	// dominate everything unseen.
	for {
		if t.remaining <= 0 {
			return top, btm, false, false, false, nil
		}
		done := t.exhausted()
		hi, lo := t.thresholds()
		c, s, found := t.best()
		if found && (done || s >= hi) {
			wc, ws, wfound := t.worst()
			top = store.Entry{Clip: c, Score: s}
			t.mark(c)
			if wfound && wc != c && (done || ws <= lo) {
				btm = store.Entry{Clip: wc, Score: ws}
				t.mark(wc)
				return top, btm, true, true, true, nil
			}
			if wfound && wc != c {
				// The bottom is not yet certain; keep it for later rather
				// than over-scanning — the caller treats the missing bottom
				// conservatively.
				return top, btm, true, false, true, nil
			}
			return top, btm, true, false, true, nil
		}
		if done {
			return top, btm, false, false, false, nil
		}
		if err := t.advance(); err != nil {
			return top, btm, false, false, false, err
		}
	}
}
