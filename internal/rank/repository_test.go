package rank

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func repoVideo(t *testing.T, id string, seed int64) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID: id, Frames: 20_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: seed,
		Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 100, MeanDurShots: 25}},
		Objects: []synth.ObjectSpec{
			{Name: "car", MeanGapFrames: 2500, MeanDurFrames: 350, CorrelatedWith: "jumping", CorrelationProb: 0.8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func repoModels(seed int64) detect.Models {
	return detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, seed), detect.NewActionRecognizer(detect.I3D, seed))
}

var repoQuery = core.Query{Objects: []string{"car"}, Action: "jumping"}

func TestRepositoryLifecycle(t *testing.T) {
	dir := t.TempDir()
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if len(repo.Videos()) != 0 {
		t.Fatal("fresh repository should be empty")
	}
	if _, err := repo.Merged(); err == nil {
		t.Error("empty repository should refuse to merge")
	}

	models := repoModels(1)
	a, err := Ingest(context.Background(), repoVideo(t, "vid-a", 1), models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ingest(context.Background(), repoVideo(t, "vid-b", 2), models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(b); err != nil {
		t.Fatal(err)
	}
	if got := repo.Videos(); len(got) != 2 || got[0] != "vid-a" || got[1] != "vid-b" {
		t.Fatalf("Videos = %v", got)
	}
	if err := repo.Add(a); err == nil {
		t.Error("duplicate member should be rejected")
	}

	res, err := repo.TopK(context.Background(), repoQuery, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 {
		t.Fatal("merged query found no candidates")
	}
	// Resolution maps merged clips back to member videos.
	vid, local, err := repo.Resolve(res.Sequences[0].Seq.Start)
	if err != nil {
		t.Fatal(err)
	}
	if (vid != "vid-a" && vid != "vid-b") || local < 0 {
		t.Errorf("Resolve = %s, %d", vid, local)
	}

	// Removing a member changes the result set.
	before := res.Candidates
	if err := repo.Remove("vid-b"); err != nil {
		t.Fatal(err)
	}
	if err := repo.Remove("vid-b"); err == nil {
		t.Error("double remove should fail")
	}
	res2, err := repo.TopK(context.Background(), repoQuery, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Candidates >= before {
		t.Errorf("candidates after removal %d, want < %d", res2.Candidates, before)
	}
	if _, err := os.Stat(filepath.Join(dir, "vid-b")); !os.IsNotExist(err) {
		t.Error("removed member's files should be gone")
	}

	// Reopening from disk reproduces the same answers.
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	repo2, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	if got := repo2.Videos(); len(got) != 1 || got[0] != "vid-a" {
		t.Fatalf("reopened Videos = %v", got)
	}
	res3, err := repo2.TopK(context.Background(), repoQuery, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Sequences) != len(res2.Sequences) {
		t.Fatalf("reopened result count differs")
	}
	for i := range res3.Sequences {
		if math.Abs(res3.Sequences[i].Score()-res2.Sequences[i].Score()) > 1e-9 {
			t.Errorf("reopened score %d differs", i)
		}
	}
}

func TestRepositoryAddValidation(t *testing.T) {
	repo, err := OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if err := repo.Add(&Index{}); err == nil {
		t.Error("unnamed index should be rejected")
	}
	if err := repo.Add(&Index{Name: "../evil"}); err == nil {
		t.Error("path-escaping name should be rejected")
	}
}

func TestRepositoryIgnoresForeignDirs(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "not-an-index"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if len(repo.Videos()) != 0 {
		t.Errorf("foreign content treated as members: %v", repo.Videos())
	}
}

func TestIngestAllParallelMatchesSerial(t *testing.T) {
	models := repoModels(5)
	var vids []detect.TruthVideo
	for i := 0; i < 4; i++ {
		vids = append(vids, repoVideo(t, "p-"+string(rune('a'+i)), int64(10+i)))
	}
	serial, err := IngestAll(context.Background(), "set", vids, models, PaperScoring(), DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := IngestAllParallel(context.Background(), "set", vids, models, PaperScoring(), DefaultIngestConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumClips != parallel.NumClips {
		t.Fatalf("clip spaces differ: %d vs %d", serial.NumClips, parallel.NumClips)
	}
	for typ, ti := range serial.Objects {
		pt := parallel.Objects[typ]
		if pt == nil || pt.Table.Len() != ti.Table.Len() || pt.Seqs.String() != ti.Seqs.String() {
			t.Fatalf("object %s differs between serial and parallel ingestion", typ)
		}
		for i := 0; i < ti.Table.Len(); i++ {
			se, serr := ti.Table.SortedAt(i)
			pe, perr := pt.Table.SortedAt(i)
			if serr != nil || perr != nil || se != pe {
				t.Fatalf("object %s row %d differs", typ, i)
			}
		}
	}
	for typ, ti := range serial.Actions {
		pt := parallel.Actions[typ]
		if pt == nil || pt.Seqs.String() != ti.Seqs.String() {
			t.Fatalf("action %s differs between serial and parallel ingestion", typ)
		}
	}
	// Degenerate worker counts fall back safely.
	one, err := IngestAllParallel(context.Background(), "set", vids, models, PaperScoring(), DefaultIngestConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.NumClips != serial.NumClips {
		t.Error("single-worker parallel ingestion diverged")
	}
}
