package rank

import (
	"context"
	"math"
	"testing"
)

func TestTopKLowerBound(t *testing.T) {
	bs := []Bounds{
		{Lo: 5, Up: 9},
		{Lo: 1, Up: 2},
		{Lo: 7, Up: 7, Exact: true},
		{Lo: 3, Up: 8},
	}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 7}, {2, 5}, {3, 3}, {4, 1},
	}
	for _, c := range cases {
		if got := TopKLowerBound(bs, c.k); got != c.want {
			t.Errorf("TopKLowerBound(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
	if got := TopKLowerBound(bs, 5); !math.IsInf(got, -1) {
		t.Errorf("k beyond len = %v, want -Inf", got)
	}
	if got := TopKLowerBound(nil, 1); !math.IsInf(got, -1) {
		t.Errorf("empty = %v, want -Inf", got)
	}
}

func TestSeparated(t *testing.T) {
	// Top-2 separated: third upper (4) below second lower (5).
	sep := []Bounds{{Lo: 8, Up: 9}, {Lo: 5, Up: 6}, {Lo: 1, Up: 4}}
	idx, ok := Separated(sep, 2)
	if !ok || len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("separated case: idx=%v ok=%v", idx, ok)
	}
	// Overlap: third upper (5.5) above second lower (5).
	overlap := []Bounds{{Lo: 8, Up: 9}, {Lo: 5, Up: 6}, {Lo: 1, Up: 5.5}}
	if _, ok := Separated(overlap, 2); ok {
		t.Error("overlapping bounds reported separated")
	}
	// Fewer candidates than k: trivially separated, all returned.
	idx, ok = Separated(sep, 7)
	if !ok || len(idx) != 3 {
		t.Errorf("k > len: idx=%v ok=%v", idx, ok)
	}
}

func TestSeqResultBoundsRoundTrip(t *testing.T) {
	sr := SeqResult{Seq: iv(3, 7), Lower: 2.5, Upper: 4.5}
	b := sr.Bounds()
	if b.Seq != sr.Seq || b.Lo != 2.5 || b.Up != 4.5 || b.Exact {
		t.Errorf("bounds = %+v", b)
	}
	if b.Mid() != 3.5 {
		t.Errorf("mid = %v, want 3.5", b.Mid())
	}
	b.Exact, b.Lo, b.Up = true, 4, 4
	if b.Mid() != 4 {
		t.Errorf("exact mid = %v, want 4", b.Mid())
	}
}

// TestResidualUpperCoversOmitted: the residual upper bound reported by a
// truncated top-k run must dominate the exact score of every omitted
// candidate — the guarantee the cluster coordinator's shard pruning relies
// on.
func TestResidualUpperCoversOmitted(t *testing.T) {
	ix := buildIndex(t, 120, 7, []int{4, 3, 5, 2, 6, 3, 4})
	full, err := RVAQ(context.Background(), ix, testQuery, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatalf("k = candidates run reports truncation (residual %v)", full.ResidualUpper)
	}
	exact := map[int]float64{} // sequence start -> exact score
	for _, sr := range full.Sequences {
		if !sr.Exact {
			t.Fatalf("full run produced inexact score for %v", sr.Seq)
		}
		exact[sr.Seq.Start] = sr.Lower
	}

	for k := 1; k < 7; k++ {
		res, err := RVAQ(context.Background(), ix, testQuery, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Fatalf("k=%d of 7 candidates not marked truncated", k)
		}
		returned := map[int]bool{}
		for _, sr := range res.Sequences {
			returned[sr.Seq.Start] = true
		}
		for start, score := range exact {
			if !returned[start] && score > res.ResidualUpper+1e-9 {
				t.Errorf("k=%d: omitted sequence @%d scores %v above residual upper %v",
					k, start, score, res.ResidualUpper)
			}
		}
	}
}
