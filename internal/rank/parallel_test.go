package rank

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"svqact/internal/detect"
	"svqact/internal/video"
)

// countingVideo wraps a TruthVideo and counts how many times ingestion
// touched it (via Geometry, which Ingest reads before any detector work).
type countingVideo struct {
	detect.TruthVideo
	touched *atomic.Int64
}

func (c countingVideo) Geometry() video.Geometry {
	c.touched.Add(1)
	return c.TruthVideo.Geometry()
}

// TestIngestAllParallelStopsDispatchOnCancel is the regression test for the
// runaway dispatcher: a cancelled parallel ingest over a large repository
// must stop handing videos to workers instead of walking every remaining
// video before surfacing the error.
func TestIngestAllParallelStopsDispatchOnCancel(t *testing.T) {
	const n = 100
	var touched atomic.Int64
	base := repoVideo(t, "vid-cancel", 7)
	vids := make([]detect.TruthVideo, n)
	for i := range vids {
		vids[i] = countingVideo{TruthVideo: base, touched: &touched}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch starts

	_, err := IngestAllParallel(ctx, "set", vids, repoModels(1), PaperScoring(), DefaultIngestConfig(), 4)
	if err == nil {
		t.Fatal("cancelled ingest returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Workers that had already pulled a job may each touch one video; the
	// dispatcher must not feed the remaining tail.
	if got := touched.Load(); got > n/2 {
		t.Fatalf("cancelled ingest touched %d of %d videos; dispatch did not stop", got, n)
	}
}

// TestIngestAllParallelStopsDispatchOnError checks the error path the same
// way: once a worker reports a failure, the dispatcher stops feeding videos.
func TestIngestAllParallelStopsDispatchOnError(t *testing.T) {
	const n = 100
	var touched atomic.Int64
	base := repoVideo(t, "vid-err", 8)
	vids := make([]detect.TruthVideo, n)
	for i := range vids {
		vids[i] = countingVideo{TruthVideo: base, touched: &touched}
	}
	// Permanent faults on every invocation: each ingest degrades past the
	// failure budget and errors out.
	models := repoModels(1)
	fc := detect.FaultConfig{PermanentRate: 1, Seed: 1}
	models.Objects = detect.InjectObjectFaults(models.Objects, fc)
	models.Actions = detect.InjectActionFaults(models.Actions, fc)

	_, err := IngestAllParallel(context.Background(), "set", vids, models, PaperScoring(), DefaultIngestConfig(), 2)
	if err == nil {
		t.Fatal("failing ingest returned no error")
	}
	if got := touched.Load(); got > n/2 {
		t.Fatalf("failing ingest touched %d of %d videos; dispatch did not stop on first error", got, n)
	}
}
