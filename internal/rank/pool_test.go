package rank

import (
	"context"
	"fmt"
	"testing"

	"svqact/internal/core"
	"svqact/internal/testenv"
	"svqact/internal/video"
)

// snapshotTopK renders everything a caller can observe about a top-k result.
func snapshotTopK(res *Result) string {
	flat := *res
	flat.Plan = nil // compare the report by value, not by pointer identity
	return fmt.Sprintf("%+v|plan=%+v", flat, res.Plan)
}

// TestTopKResultsUnaliased is the cross-query aliasing regression test for
// the rank-side scratch pool: mutating everything reachable from a returned
// Result must not change what the next identical query returns.
func TestTopKResultsUnaliased(t *testing.T) {
	ix, _ := ingestedTestIndex(t, 30_000, 23)
	q := core.Query{Objects: []string{"human"}, Action: "jumping"}

	first, err := RVAQ(context.Background(), ix, q, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotTopK(first)

	for i := range first.Sequences {
		first.Sequences[i] = SeqResult{Seq: video.Interval{Start: -99, End: -98}, Lower: -1, Upper: -1}
	}
	first.Stats.Sorted = -1
	first.Stats.Random = -1
	if first.Plan != nil {
		first.Plan.Order = append(first.Plan.Order[:0], "clobbered")
	}

	second, err := RVAQ(context.Background(), ix, q, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotTopK(second); got != want {
		t.Errorf("second query changed after mutating the first query's result:\n first: %s\nsecond: %s", want, got)
	}
}

// TestTopKAllocsSteadyState bounds the allocation count of a warm ranked
// top-k query. The pooled round state and per-query score columns keep the
// traversal's steady state out of the allocator; what remains is result
// materialisation, the stats-wrapped table handles and the plan report.
func TestTopKAllocsSteadyState(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ix, _ := ingestedTestIndex(t, 30_000, 29)
	q := core.Query{Objects: []string{"human"}, Action: "jumping"}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := RVAQ(ctx, ix, q, 3, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RVAQ(ctx, ix, q, 3, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// The traversal touches hundreds of clips across dozens of rounds; the
	// per-round and per-clip work must stay allocation-free, so the budget
	// covers only per-query setup (iterator maps, table handles, candidate
	// states) and result assembly. Before the pooled round state this query
	// allocated ~700 objects; per-round sorting regressions push it well
	// past this bound.
	const maxAllocs = 500
	if allocs > maxAllocs {
		t.Errorf("steady-state RVAQ allocates %.0f objects/query, want <= %d", allocs, maxAllocs)
	}
}
