package rank

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FsckReport summarises the verification of one saved index directory.
type FsckReport struct {
	// Dir is the index directory that was checked.
	Dir string
	// Generation is the committed generation number.
	Generation int
	// NumClips is the size of the index's clip space.
	NumClips int
	// Objects and Actions count the verified type tables.
	Objects int
	Actions int
	// Warnings lists non-fatal findings: uncommitted generation
	// directories, stray temp files, and files inside the live generation
	// that the manifest does not reference. None of these can affect query
	// results (Load only reads what CURRENT commits), so they do not fail
	// the check — the next successful save garbage-collects them.
	Warnings []string
}

// Fsck verifies one saved index directory end to end: the CURRENT commit
// record, the manifest checksum and invariants, and every table's magic,
// checksums, and sort order — exactly the checks Load performs — plus a scan
// for orphaned files that Load skips. Any integrity violation is returned as
// a *CorruptError.
func Fsck(dir string) (*FsckReport, error) {
	ix, err := Load(dir)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	rep := &FsckReport{
		Dir:        dir,
		Generation: ix.Generation,
		NumClips:   ix.NumClips,
		Objects:    len(ix.Objects),
		Actions:    len(ix.Actions),
	}

	// The committed generation is sound; now look for debris around it.
	live := genName(ix.Generation)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rank: %w", err)
	}
	for _, e := range entries {
		switch {
		case e.IsDir() && genNameRe.MatchString(e.Name()) && e.Name() != live:
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("uncommitted generation %s (crash debris; next save removes it)", e.Name()))
		case !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp"):
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("stray temp file %s", e.Name()))
		}
	}
	// Flag files inside the live generation that the manifest never
	// references. Load already guaranteed the manifest parses and its file
	// names are plain base names, so re-reading it here cannot fail in a
	// way Load would not have caught.
	referenced := map[string]bool{manifestFile: true}
	if data, rerr := os.ReadFile(filepath.Join(dir, live, manifestFile)); rerr == nil {
		var m manifest
		if json.Unmarshal(data, &m) == nil {
			for _, mt := range append(append([]manifestType(nil), m.Objects...), m.Actions...) {
				referenced[mt.File] = true
			}
		}
	}
	if genEntries, derr := os.ReadDir(filepath.Join(dir, live)); derr == nil {
		for _, e := range genEntries {
			if !referenced[e.Name()] {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("unreferenced file %s in live generation %s", e.Name(), live))
			}
		}
	}
	return rep, nil
}

// FsckRepository verifies every member of a repository directory (each
// subdirectory holding a saved index) and returns their reports. Failures
// across members are joined into one error so a single corrupt member does
// not mask the others.
func FsckRepository(root string) ([]*FsckReport, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("rank: %w", err)
	}
	var reports []*FsckReport
	var errs []error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(root, e.Name())
		if !isIndexDir(sub) {
			continue // foreign directory, not ours to judge
		}
		rep, err := Fsck(sub)
		if err != nil {
			errs = append(errs, fmt.Errorf("member %s: %w", e.Name(), err))
			continue
		}
		reports = append(reports, rep)
	}
	return reports, errors.Join(errs...)
}

// isIndexDir reports whether dir looks like a saved index: a CURRENT commit
// record, or a legacy top-level manifest.json (which Load then rejects with
// a descriptive CorruptError instead of being silently skipped).
func isIndexDir(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err == nil {
		return true
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		return true
	}
	return false
}
