package rank

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"svqact/internal/store"
)

// summarize renders an index's full queryable content as a canonical string,
// so two loads can be compared for exact equality.
func summarize(t *testing.T, ix *Index) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s clips=%d\n", ix.Name, ix.NumClips)
	dump := func(kind string, m map[string]*TypeIndex) {
		types := make([]string, 0, len(m))
		for k := range m {
			types = append(types, k)
		}
		sort.Strings(types)
		for _, typ := range types {
			ti := m[typ]
			fmt.Fprintf(&b, "%s %s seqs=%v rows=", kind, typ, ti.Seqs.Intervals())
			for i := 0; i < ti.Table.Len(); i++ {
				e, err := ti.Table.SortedAt(i)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&b, "%d:%g,", e.Clip, e.Score)
			}
			b.WriteString("\n")
		}
	}
	dump("obj", ix.Objects)
	dump("act", ix.Actions)
	return b.String()
}

// TestSaveCrashAtEveryStep is the crash-injection property test of the
// generation commit protocol: a crash at every mutating filesystem operation
// of a re-save must leave the directory loadable as either the complete
// previous index or the complete new one — never a mixture, never silently
// wrong data.
func TestSaveCrashAtEveryStep(t *testing.T) {
	ix1 := buildIndex(t, 60, 7, []int{3, 4})
	ix2 := buildIndex(t, 40, 9, []int{2, 5, 3}) // same member name, new content
	var want1, want2 string
	completed := false
	for step := 1; step < 500 && !completed; step++ {
		dir := t.TempDir()
		if err := Save(dir, ix1); err != nil {
			t.Fatal(err)
		}
		base, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if want1 == "" {
			want1 = summarize(t, base)
		}
		base.Close()

		ffs := store.NewFlakyFS(store.OS, store.FlakyOptions{FailAt: step, ShortWrite: step%2 == 0})
		serr := SaveFS(ffs, dir, ix2)
		if !ffs.Crashed() {
			if serr != nil {
				t.Fatalf("step %d: uncrashed save failed: %v", step, serr)
			}
			completed = true
		}
		// A crashed save may still report success when the crash hit only
		// the best-effort GC after the commit point — in that case the new
		// generation must be the one that loads.

		got, lerr := Load(dir)
		if lerr != nil {
			// The protocol is stronger than the contract requires: the old
			// generation stays committed until the CURRENT swap, so a load
			// should never fail here — but if it ever does, it must be a
			// typed CorruptError, not silently wrong data.
			if !IsCorrupt(lerr) {
				t.Fatalf("step %d: Load failed non-corrupt: %v", step, lerr)
			}
			continue
		}
		s := summarize(t, got)
		got.Close()
		if s != want1 && s != summarizeOnce(t, ix2, &want2) {
			t.Fatalf("step %d: loaded index is neither the old nor the new generation:\n%s", step, s)
		}
		if serr == nil && s != want2 {
			t.Fatalf("step %d: save reported success but the old generation loads", step)
		}
	}
	if !completed {
		t.Fatal("crash sweep never reached a completing save")
	}
}

// summarizeOnce lazily computes (and caches) the canonical summary of ix as
// it round-trips through a save and load.
func summarizeOnce(t *testing.T, ix *Index, cache *string) string {
	t.Helper()
	if *cache == "" {
		dir := t.TempDir()
		if err := Save(dir, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		*cache = summarize(t, loaded)
		loaded.Close()
	}
	return *cache
}

// TestFirstSaveCrashNeverYieldsPartialIndex: crashing the very first save of
// a directory must leave it unloadable (no committed generation), never a
// partial index.
func TestFirstSaveCrashNeverYieldsPartialIndex(t *testing.T) {
	ix := buildIndex(t, 40, 3, []int{2, 3})
	completed := false
	for step := 1; step < 500 && !completed; step++ {
		dir := t.TempDir()
		ffs := store.NewFlakyFS(store.OS, store.FlakyOptions{FailAt: step})
		serr := SaveFS(ffs, dir, ix)
		if !ffs.Crashed() {
			if serr != nil {
				t.Fatalf("step %d: uncrashed save failed: %v", step, serr)
			}
			completed = true
			continue
		}
		got, lerr := Load(dir)
		if lerr == nil {
			// Only acceptable if the commit actually landed before the
			// crash (crash hit the GC phase after the CURRENT swap).
			s := summarize(t, got)
			got.Close()
			want := summarizeOnce(t, ix, new(string))
			if s != want {
				t.Fatalf("step %d: loaded a partial index:\n%s", step, s)
			}
		}
	}
	if !completed {
		t.Fatal("crash sweep never reached a completing save")
	}
}

// TestSaveDiskFullKeepsOldGeneration: an ENOSPC mid-save fails the save and
// keeps the previous generation serving.
func TestSaveDiskFullKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	ix1 := buildIndex(t, 60, 7, []int{3, 4})
	if err := Save(dir, ix1); err != nil {
		t.Fatal(err)
	}
	before, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, before)
	before.Close()

	ffs := store.NewFlakyFS(store.OS, store.FlakyOptions{ByteBudget: 200})
	if err := SaveFS(ffs, dir, buildIndex(t, 80, 11, []int{4, 4})); err == nil {
		t.Fatal("save succeeded on a full disk")
	}
	after, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after ENOSPC: %v", err)
	}
	defer after.Close()
	if got := summarize(t, after); got != want {
		t.Fatalf("generation changed across a failed save:\n%s", got)
	}
}

// TestSaveCollectsSupersededGenerations (satellite): re-saving a smaller
// index into an existing directory leaves exactly one generation — no orphan
// obj_*/act_* tables from the bigger previous save.
func TestSaveCollectsSupersededGenerations(t *testing.T) {
	dir := t.TempDir()
	big := buildIndex(t, 80, 5, []int{3, 3, 3})
	if err := Save(dir, big); err != nil {
		t.Fatal(err)
	}
	small := buildIndex(t, 30, 6, []int{2})
	delete(small.Objects, "human") // fewer types than the first save
	if err := Save(dir, small); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "CURRENT" || names[1] != genName(2) {
		t.Fatalf("directory after re-save = %v, want [CURRENT %s]", names, genName(2))
	}
	genEntries, err := os.ReadDir(filepath.Join(dir, genName(2)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"manifest.json": true, "obj_0.tbl": true, "act_0.tbl": true}
	for _, e := range genEntries {
		if !want[e.Name()] {
			t.Errorf("orphan file %s in live generation", e.Name())
		}
		delete(want, e.Name())
	}
	for f := range want {
		t.Errorf("expected file %s missing", f)
	}
	ix, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Generation != 2 || ix.NumClips != 30 {
		t.Errorf("loaded generation %d with %d clips, want gen 2 with 30", ix.Generation, ix.NumClips)
	}
}
