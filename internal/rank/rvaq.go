package rank

import (
	"context"
	"fmt"
	"math"
	"sort"

	"svqact/internal/core"
	"svqact/internal/obs"
	"svqact/internal/plan"
	"svqact/internal/store"
	"svqact/internal/video"
)

// SeqResult is one ranked result sequence.
type SeqResult struct {
	Seq video.Interval
	// Lower and Upper bound the sequence score; they coincide when Exact.
	Lower, Upper float64
	Exact        bool
}

// Score returns the exact score when known, otherwise the midpoint of the
// bounds.
func (s SeqResult) Score() float64 {
	if s.Exact {
		return s.Lower
	}
	return (s.Lower + s.Upper) / 2
}

// Result is the outcome of a top-k query.
type Result struct {
	Algorithm string
	Query     core.Query
	K         int
	// Sequences holds the top-k results in non-increasing score order.
	Sequences []SeqResult
	// Stats counts the table accesses the query performed.
	Stats store.Stats
	// ClipsScored is the number of distinct clips whose full score was
	// computed.
	ClipsScored int
	// Candidates is |P_q|, the number of candidate sequences.
	Candidates int
	// Rounds is the number of parallel sorted-access rounds the traversal
	// performed (TBClip iterator rounds for RVAQ, Fagin phase-1 rounds for
	// FA; zero for Pq-Traverse, which scans by random access only).
	Rounds int
	// Plan reports the table-ordering plan the query ran with — the
	// offline EXPLAIN surface. Ordering never changes ranked output.
	Plan *plan.Report
	// Truncated reports that candidate sequences beyond the returned
	// top-k exist; ResidualUpper is then an upper bound on every omitted
	// sequence's score. A scatter-gather coordinator uses the pair as the
	// distributed-threshold signal: once a shard's ResidualUpper falls
	// below the global k-th lower bound (Blo_K) the shard holds nothing
	// further worth pulling.
	Truncated     bool
	ResidualUpper float64
}

// Options tune the RVAQ query phase.
type Options struct {
	// Scoring defaults to PaperScoring.
	Scoring Scoring
	// NoSkip disables the dynamic skip mechanism (the paper's RVAQ-noSkip
	// ablation): conclusively excluded sequences keep being refined.
	NoSkip bool
	// ApproxScores stops as soon as the top-k set is determined, reporting
	// score bounds instead of exact scores for the winners. The default
	// (false) matches the paper's evaluation, which reports exact scores.
	ApproxScores bool
}

func (o Options) withDefaults() Options {
	if o.Scoring.Clip == nil && o.Scoring.Seq == nil {
		o.Scoring = PaperScoring()
	}
	return o
}

// seqState tracks the bound bookkeeping of one candidate sequence.
type seqState struct {
	iv        video.Interval
	sum       float64 // f over processed clips
	processed int
	excluded  bool // conclusively outside the top-k
}

func (s *seqState) remaining() int { return s.iv.Len() - s.processed }

// RVAQ answers a top-k action query over an ingested index using the
// paper's Algorithm 4: candidate sequences come from intersecting the
// per-predicate individual sequences; the TBClip iterator then delivers
// extreme-scoring clips, progressively tightening per-sequence score bounds
// until the top-k set separates; sequences proven irrelevant have their
// remaining clips added to the skip set.
//
// The context is checked between iterator rounds, so a deadlined or
// abandoned query stops touching the tables promptly; table read failures
// surface as errors instead of panics.
func RVAQ(ctx context.Context, ix *Index, q core.Query, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Scoring.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("rank: k = %d must be positive", k)
	}
	pq, err := ix.Pq(q)
	if err != nil {
		return nil, err
	}
	name := "RVAQ"
	if opts.NoSkip {
		name = "RVAQ-noSkip"
	}
	res := &Result{Algorithm: name, Query: q, K: k, Candidates: pq.NumIntervals()}
	if pq.Empty() {
		return res, nil
	}
	tables, scorer, rep, err := ix.queryTables(q, &res.Stats, opts.Scoring.Clip)
	if err != nil {
		return nil, err
	}
	res.Plan = rep
	if err := topkRun(ctx, res, tables, scorer, opts, pq, k); err != nil {
		return nil, err
	}
	return res, nil
}

// topkRun is the shared engine of RVAQ and RVAQCNF (Algorithm 4): bound
// maintenance over the candidate sequences, the TBClip iterator, the skip
// set and the Equation 15 stopping condition. The result's Sequences and
// ClipsScored are filled in; access counts accumulate through the tables'
// stats wrappers.
func topkRun(ctx context.Context, res *Result, tables []store.Table, scorer tableScorer, opts Options, pq video.IntervalSet, k int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	iter, err := newTBClip(tables, scorer, pq, opts.NoSkip)
	if err != nil {
		return err
	}
	span := obs.StartSpan(ctx, "rank.topk")
	defer func() {
		res.Rounds = iter.rounds
		finishTopkSpan(span, res)
	}()
	scratch := acquireTopk()
	defer scratch.release()

	seqs := make([]*seqState, 0, pq.NumIntervals())
	for _, iv := range pq.Intervals() {
		seqs = append(seqs, &seqState{iv: iv})
	}
	locate := func(clip int) *seqState {
		i := sort.Search(len(seqs), func(i int) bool { return seqs[i].iv.End >= clip })
		if i < len(seqs) && seqs[i].iv.Contains(clip) {
			return seqs[i]
		}
		return nil
	}

	f := opts.Scoring.Seq
	sTop, sBtm := math.Inf(1), 0.0
	upper := func(s *seqState) float64 {
		if s.remaining() == 0 {
			return s.sum
		}
		return f.Combine(s.sum, f.Repeat(sTop, s.remaining()))
	}
	lower := func(s *seqState) float64 {
		if s.remaining() == 0 {
			return s.sum
		}
		return f.Combine(s.sum, f.Repeat(sBtm, s.remaining()))
	}

	boundsOf := func(s *seqState) Bounds {
		return Bounds{Seq: s.iv, Lo: lower(s), Up: upper(s), Exact: s.remaining() == 0}
	}

	// separated reports whether the k-th best lower bound dominates every
	// other sequence's upper bound (paper Equation 15), returning the
	// current winner set when it does. The bound comparison itself lives
	// in rank.Separated so the cluster coordinator's merge applies the
	// identical rule.
	separated := func() ([]*seqState, bool) {
		bs := scratch.boundsBuf(len(seqs))
		for i, s := range seqs {
			bs[i] = boundsOf(s)
		}
		idx, sep := separatedInto(bs, k, scratch.orderBuf(len(seqs)))
		if !sep {
			return nil, false
		}
		// idx aliases the scratch permutation; copy winners out before the
		// next round reuses it.
		winners := make([]*seqState, len(idx))
		for i, j := range idx {
			winners[i] = seqs[j]
		}
		return winners, true
	}

	processClip := func(e store.Entry) {
		if s := locate(e.Clip); s != nil {
			s.sum = f.Combine(s.sum, f.OfClip(e.Score))
			s.processed++
			res.ClipsScored++
		}
	}

	var winners []*seqState
	for {
		if cerr := ctx.Err(); cerr != nil {
			return &core.InterruptedError{Processed: res.ClipsScored, Total: pq.TotalLen(), Err: cerr}
		}
		top, btm, hasTop, hasBtm, ok, err := iter.Next()
		if err != nil {
			return err
		}
		if !ok {
			break // every candidate clip processed: all bounds exact
		}
		if hasTop {
			sTop = top.Score
			processClip(top)
		}
		if hasBtm {
			sBtm = btm.Score
			processClip(btm)
		}

		if winners == nil {
			ws, sep := separated()
			if !sep {
				// Even before separation, sequences whose upper bound falls
				// below the current k-th lower bound can never win: skip
				// their remaining clips (Algorithm 4 lines 13-14).
				if !opts.NoSkip {
					dropHopeless(seqs, k, upper, lower, iter, scratch)
				}
				continue
			}
			winners = ws
			if opts.ApproxScores {
				break
			}
			if !opts.NoSkip {
				// The top-k set is fixed; everything else is irrelevant
				// (Algorithm 4 lines 19-20).
				inWin := map[*seqState]bool{}
				for _, w := range winners {
					inWin[w] = true
				}
				for _, s := range seqs {
					if !inWin[s] && !s.excluded {
						s.excluded = true
						iter.Skip(s.iv)
					}
				}
			}
			// The winners' exact scores no longer need the iterator's
			// threshold machinery — fetch their remaining clips by direct
			// random access.
			for _, s := range winners {
				for c := s.iv.Start; c <= s.iv.End; c++ {
					if iter.processed[c] {
						continue
					}
					score, ok := iter.candidates[c]
					if !ok {
						var err error
						score, err = scoreClip(tables, scorer, c, scratch.scoreBuf(len(tables)))
						if err != nil {
							return err
						}
					}
					iter.mark(c)
					processClip(store.Entry{Clip: c, Score: score})
				}
			}
			break
		}
	}

	if winners == nil {
		// The iterator drained before separation: all scores are exact, so
		// rank directly.
		ws, _ := separated()
		if ws == nil {
			sort.Slice(seqs, func(i, j int) bool { return seqs[i].sum > seqs[j].sum })
			if len(seqs) > k {
				ws = seqs[:k]
			} else {
				ws = seqs
			}
		}
		winners = ws
	}

	inWinners := make(map[*seqState]bool, len(winners))
	for _, w := range winners {
		inWinners[w] = true
		sr := SeqResult{Seq: w.iv, Lower: lower(w), Upper: upper(w), Exact: w.remaining() == 0}
		res.Sequences = append(res.Sequences, sr)
	}
	sort.Slice(res.Sequences, func(i, j int) bool { return res.Sequences[i].Score() > res.Sequences[j].Score() })
	// The residual upper bound covers every candidate the top-k omits —
	// what a coordinator needs to decide whether this shard could still
	// contribute to a global top-k.
	for _, s := range seqs {
		if !inWinners[s] {
			res.Truncated = true
			if up := upper(s); up > res.ResidualUpper {
				res.ResidualUpper = up
			}
		}
	}
	return nil
}

// finishTopkSpan closes a rank.topk span with the query-phase attributes
// shared by every ranking algorithm.
func finishTopkSpan(span *obs.Span, res *Result) {
	span.SetAttr("algorithm", res.Algorithm).
		SetAttr("k", res.K).
		SetAttr("candidates", res.Candidates).
		SetAttr("rounds", res.Rounds).
		SetAttr("clips_scored", res.ClipsScored).
		SetAttr("sorted_accesses", res.Stats.Sorted).
		SetAttr("random_accesses", res.Stats.Random)
	span.End()
}

// sortSeqResults orders exhaustively scored results by score then position.
func sortSeqResults(rs []SeqResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Lower != rs[j].Lower {
			return rs[i].Lower > rs[j].Lower
		}
		return rs[i].Seq.Start < rs[j].Seq.Start
	})
}

// dropHopeless implements the early skip of Algorithm 4 (lines 13-14):
// sequences whose upper bound is below the current k-th highest lower bound
// cannot reach the top-k.
func dropHopeless(seqs []*seqState, k int, upper, lower func(*seqState) float64, iter *tbClip, scratch *topkScratch) {
	if len(seqs) <= k {
		return
	}
	bs := scratch.boundsBuf(len(seqs))
	for i, s := range seqs {
		bs[i] = Bounds{Seq: s.iv, Lo: lower(s), Up: upper(s)}
	}
	bloK := topKLowerBoundInto(bs, k, scratch.losBuf(len(seqs)))
	for _, s := range seqs {
		if !s.excluded && upper(s) < bloK {
			s.excluded = true
			iter.Skip(s.iv)
		}
	}
}
