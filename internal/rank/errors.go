package rank

import "fmt"

// NotIngestedError reports a query predicate type absent from the index's
// vocabulary. A monolithic index treats it as a client error (the predicate
// is a typo — nothing was ever ingested under that name); a shard holding a
// partial vocabulary treats it as "no candidates here" and answers empty,
// since other shards of the same repository may hold the type.
type NotIngestedError struct {
	Kind string // "action", "object" or "atom"
	Name string
}

func (e *NotIngestedError) Error() string {
	if e.Kind == "atom" {
		return fmt.Sprintf("rank: atom %s not ingested", e.Name)
	}
	return fmt.Sprintf("rank: %s %q not ingested", e.Kind, e.Name)
}
