package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInstruments hammers a counter, a gauge and a histogram from
// many goroutines; run under -race this doubles as the data-race check.
func TestConcurrentInstruments(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{0.5})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%10) / 10)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	// 0.0 .. 0.9 uniformly: 6 of 10 values are <= 0.5.
	cum, _, _ := h.snapshot()
	if want := uint64(workers * per * 6 / 10); cum[0] != want {
		t.Errorf("bucket le=0.5 = %d, want %d", cum[0], want)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative add = %d, want 5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(nil)
	for _, v := range []float64{0.002, 0.004, 0.008, 0.016, 0.2} {
		h.Observe(v)
	}
	if h.Min() != 0.002 || h.Max() != 0.2 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 0.045 || m > 0.047 {
		t.Errorf("mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 0.002 || q > 0.016 {
		t.Errorf("p50 = %v out of plausible range", q)
	}
	if q := h.Quantile(1); q != 0.2 {
		t.Errorf("p100 = %v, want the max", q)
	}
	s := h.Summary()
	if !strings.Contains(s, "n=5") || !strings.Contains(s, "p99=") {
		t.Errorf("summary = %q", s)
	}
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("count = %d after ObserveDuration", h.Count())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestWritePrometheusGolden pins the exact text exposition rendering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests.", L("kind", "object")).Add(5)
	r.Counter("test_requests_total", "", L("kind", "action")).Add(2)
	r.Gauge("test_queue_depth", "Queue depth.").Set(7)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
# HELP test_latency_seconds_p50 p50 of test_latency_seconds, interpolated from bucket counts.
# TYPE test_latency_seconds_p50 gauge
test_latency_seconds_p50 0.55
# HELP test_latency_seconds_p95 p95 of test_latency_seconds, interpolated from bucket counts.
# TYPE test_latency_seconds_p95 gauge
test_latency_seconds_p95 4.399999999999999
# HELP test_latency_seconds_p99 p99 of test_latency_seconds, interpolated from bucket counts.
# TYPE test_latency_seconds_p99 gauge
test_latency_seconds_p99 4.879999999999999
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 7
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{kind="action"} 2
test_requests_total{kind="object"} 5
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryDedupAndAttach(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "")
	b := r.Counter("test_total", "")
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	var ext Counter
	ext.Add(9)
	r.AttachCounter("test_ext_total", "External.", &ext)
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "test_ext_total 9") {
		t.Errorf("attached counter not rendered: %s", out.String())
	}
	names := r.MetricNames()
	if len(names) != 2 || names[0] != "test_ext_total" || names[1] != "test_total" {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("bad-name", "") },
		func() { r.Gauge("", "") },
		func() { r.Counter("ok_total", "", L("bad-label", "v")) },
		func() { r.Counter("ok_total", "", L("__reserved", "v")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid name must panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegistryPanicsOnTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type must panic")
		}
	}()
	r.Gauge("test_total", "")
}

func TestValidNames(t *testing.T) {
	for name, want := range map[string]bool{
		"svqact_queries_served_total": true,
		"a:b_c9":                      true,
		"9leading":                    false,
		"has space":                   false,
		"":                            false,
	} {
		if got := ValidMetricName(name); got != want {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, want)
		}
	}
	if ValidLabelName("le:") || ValidLabelName("__x") || !ValidLabelName("kind") {
		t.Error("label name validation wrong")
	}
}
