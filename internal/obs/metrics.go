// Package obs is the repo's observability layer: a stdlib-only metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms
// rendered in the Prometheus text exposition format), per-query trace spans
// propagated through context.Context, and query-ID generation.
//
// Instruments are plain types usable on their own — a zero-value Counter or
// Gauge works, and NewHistogram builds a histogram without any registry — so
// per-run accounting objects (detect.Meter, bench timers) and the globally
// scraped serving metrics share one implementation. A Registry attaches
// instruments to metric families for the /metrics endpoint; attaching is
// exposition only and never changes how an instrument is charged.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Only meaningful for unregistered per-run
// accounting (a scraped counter must stay monotone).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that can go up and down. The zero value is ready to use
// and safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bucket upper bounds for query
// latencies, in seconds: 1ms up to 30s, roughly exponential. Chosen to
// straddle both the sub-millisecond cached-index queries and full-stream
// online runs under the default 30s deadline.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket histogram of float64 observations (typically
// latencies in seconds). It is safe for concurrent use.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram with the given strictly increasing bucket
// upper bounds; nil or empty means DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	updateFloat(&h.min, v, func(cur, v float64) bool { return v < cur })
	updateFloat(&h.max, v, func(cur, v float64) bool { return v > cur })
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the mean observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, 0 when empty.
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation, 0 when empty.
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket, clamped to the observed min/max. It returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.Max()
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi > h.Max() {
				hi = h.Max()
			}
			if lo < h.Min() {
				lo = h.Min()
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / c
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.Max()
}

// Summary renders the distribution one-line, the shared latency format used
// by the bench tables and the examples:
//
//	n=12 mean=8.2ms p50=7.1ms p90=14.3ms p99=21.0ms max=22.5ms
func (h *Histogram) Summary() string {
	n := h.Count()
	if n == 0 {
		return "n=0"
	}
	f := func(s float64) string {
		return time.Duration(s * float64(time.Second)).Round(100 * time.Microsecond).String()
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		n, f(h.Mean()), f(h.Quantile(0.5)), f(h.Quantile(0.9)), f(h.Quantile(0.99)), f(h.Max()))
}

// snapshot returns the cumulative bucket counts (le semantics), total count
// and sum, coherent enough for exposition.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), h.Sum()
}

// addFloat atomically adds v to the float64 bits stored in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// updateFloat atomically replaces the stored float when better(cur, v).
func updateFloat(a *atomic.Uint64, v float64, better func(cur, v float64) bool) {
	for {
		old := a.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
