package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func mkSnap(id string, durMS float64) *TraceSnapshot {
	return &TraceSnapshot{
		QueryID:    id,
		DurationMS: durMS,
		Spans:      []SpanSnapshot{{Name: "engine", ID: "s1", DurationMS: durMS}},
	}
}

func TestTraceStoreRetention(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 8, SampleEvery: 4, MinTailCount: 4})

	// Non-ok outcomes are always kept, reason = outcome verbatim.
	reason, kept := st.Offer(mkSnap("e1", 1), TraceMeta{SQL: "SELECT 1", Outcome: "degraded"})
	if !kept || reason != "degraded" {
		t.Fatalf("degraded offer: reason=%q kept=%v", reason, kept)
	}
	if got := st.Get("e1"); got == nil || got.Outcome != "degraded" || got.SQL != "SELECT 1" {
		t.Fatalf("Get(e1) = %+v", got)
	}

	// Healthy fast queries are sampled 1-in-N; warm the latency histogram
	// with uniform fast queries at the same time.
	sampled := 0
	for i := 0; i < 12; i++ {
		if _, kept := st.Offer(mkSnap(fmt.Sprintf("q%02d", i), 1), TraceMeta{Outcome: "ok"}); kept {
			sampled++
		}
	}
	if sampled == 0 || sampled == 12 {
		t.Errorf("sampling kept %d of 12, want a strict subset", sampled)
	}

	// A tail-latency outlier is retained once the gate has engaged.
	reason, kept = st.Offer(mkSnap("slow1", 5000), TraceMeta{Outcome: "ok"})
	if !kept || reason != "tail" {
		t.Errorf("tail offer: reason=%q kept=%v", reason, kept)
	}

	// Sampling disabled: a healthy fast query inside the distribution is
	// dropped.
	st2 := NewTraceStore(TraceStoreConfig{SampleEvery: -1})
	if reason, kept := st2.Offer(mkSnap("x", 1), TraceMeta{Outcome: "ok"}); kept {
		t.Errorf("ok trace retained with sampling off: %q", reason)
	}
	// Nil-safety.
	var nilStore *TraceStore
	if _, kept := nilStore.Offer(mkSnap("y", 1), TraceMeta{}); kept {
		t.Error("nil store retained a trace")
	}
	if nilStore.Get("y") != nil || nilStore.Len() != 0 || nilStore.Index() != nil {
		t.Error("nil store accessors should return zero values")
	}
}

func TestTraceStoreEvictionAndIndexOrder(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 4, SampleEvery: -1})
	for i := 0; i < 10; i++ {
		st.Offer(mkSnap(fmt.Sprintf("t%d", i), 1), TraceMeta{Outcome: "error"})
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", st.Len())
	}
	idx := st.Index()
	want := []string{"t9", "t8", "t7", "t6"}
	for i, e := range idx {
		if e.ID != want[i] {
			t.Errorf("index[%d] = %s, want %s (newest first)", i, e.ID, want[i])
		}
	}
	if st.Get("t0") != nil {
		t.Error("evicted trace still reachable by id")
	}
	if st.Get("t9") == nil {
		t.Error("latest trace not reachable by id")
	}
}

// TestTraceStoreConcurrent hammers insert/read/evict from many goroutines
// with a tiny ring so eviction happens constantly; meaningful under -race.
func TestTraceStoreConcurrent(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 8, SampleEvery: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				outcome := "ok"
				if i%3 == 0 {
					outcome = "error"
				}
				st.Offer(mkSnap(id, float64(i%7)), TraceMeta{SQL: "SELECT x", Outcome: outcome})
				if i%5 == 0 {
					st.Index()
					st.Get(id)
					st.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Len() != 8 {
		t.Errorf("Len = %d, want full ring of 8", st.Len())
	}
	for _, e := range st.Index() {
		if st.Get(e.ID) == nil {
			t.Errorf("indexed trace %s not reachable by id", e.ID)
		}
	}
}

func TestTraceStoreHandler(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 4, SampleEvery: -1})
	st.Offer(mkSnap("deadbeefdeadbeef", 2), TraceMeta{SQL: "SELECT 1", Outcome: "error"})
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	var idx traceIndexResponse
	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Count != 1 || len(idx.Traces) != 1 || idx.Traces[0].ID != "deadbeefdeadbeef" {
		t.Fatalf("index = %+v", idx)
	}

	var st1 StoredTrace
	resp, err = srv.Client().Get(srv.URL + "/debug/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st1.Trace == nil || st1.Trace.QueryID != "deadbeefdeadbeef" || len(st1.Trace.Spans) != 1 {
		t.Fatalf("stored trace = %+v", st1)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 404 || !strings.Contains(string(body[:n]), "no retained trace") {
		t.Errorf("missing trace: status=%d body=%s", resp.StatusCode, body[:n])
	}

	req, _ := srv.Client().Post(srv.URL+"/debug/traces", "application/json", nil)
	if req.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", req.StatusCode)
	}
	req.Body.Close()
}

func TestSQLDigest(t *testing.T) {
	a := SQLDigest("SELECT  x\n FROM y")
	b := SQLDigest("SELECT x FROM y")
	if a != b {
		t.Errorf("digest not whitespace-normalized: %q vs %q", a, b)
	}
	if len(a) != 16 {
		t.Errorf("digest %q, want 16 hex chars", a)
	}
	if SQLDigest("") != "" {
		t.Error("empty SQL should have empty digest")
	}
}
