package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"
)

// NewQueryID returns a fresh 16-hex-char query identifier.
func NewQueryID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible on supported
		// platforms; a constant fallback keeps the serving path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidSpanRef reports whether s is acceptable as an X-SVQ-Parent-Span
// value: non-empty, at most 128 chars, limited to the span-id charset
// (alphanumerics plus ./:_-). Inbound headers failing this are ignored
// rather than recorded.
func ValidSpanRef(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		ok := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') ||
			r == '.' || r == '/' || r == ':' || r == '_' || r == '-'
		if !ok {
			return false
		}
	}
	return true
}

// Trace collects the spans of one query. It is safe for concurrent use:
// parallel ingestion workers append spans from their own goroutines.
//
// Spans form a tree: StartSpan derives the parent from the context (see
// WithSpan), AddSpanUnder parents explicitly, and Snapshot renders the
// tree depth-first. A trace that arrived from another process records the
// caller's span id (SetRemoteParent) so the coordinator side can correlate.
type Trace struct {
	mu           sync.Mutex
	id           string
	start        time.Time
	spans        []*Span
	nextID       int
	remoteParent string
}

// NewTrace starts a trace identified by id (typically a NewQueryID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's query ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetRemoteParent records the span id of the remote caller that initiated
// this trace (the X-SVQ-Parent-Span header). Informational: it is surfaced
// in the snapshot so an operator can correlate a shard-local trace with the
// coordinator span that requested it.
func (t *Trace) SetRemoteParent(spanID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.remoteParent = spanID
	t.mu.Unlock()
}

// Span is one timed stage of a query. Spans are created by StartSpan (live
// wall-clock spans, ended with End) or AddSpan/AddSpanUnder (pre-measured
// stages, e.g. a predicate's accumulated evaluation time reported at the
// end of a run). Each span may carry grafted subtrees: snapshots reported
// by a remote process (a shard's own trace) that Snapshot splices in as
// children, re-anchored to this span's start so clock skew between hosts
// cannot reorder the tree.
type Span struct {
	mu     sync.Mutex
	trace  *Trace
	id     int
	parent *Span
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  map[string]any
	grafts []*TraceSnapshot
}

func (t *Trace) newSpan(parent *Span, name string, start time.Time, dur time.Duration, ended bool) *Span {
	if parent != nil && parent.trace != t {
		// A context can carry a span from an outer, different trace (e.g.
		// a fleet span above a per-video trace); never stitch across
		// traces.
		parent = nil
	}
	s := &Span{trace: t, parent: parent, name: name, start: start, dur: dur, ended: ended}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartSpan opens a live span on the context's trace, parented under the
// context's current span (WithSpan), or at the root when there is none. It
// returns nil when the context carries no trace; every Span method is
// nil-safe, so instrumented code needs no conditionals.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil {
		return nil
	}
	return t.newSpan(SpanFrom(ctx), name, time.Now(), 0, false)
}

// AddSpan records a pre-measured root span: a stage that began at start and
// ran for dur of accumulated work. Nil-safe on the trace.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(nil, name, start, dur, true)
}

// AddSpanUnder records a pre-measured span as a child of parent; a nil
// parent (or a parent from another trace) yields a root span. Nil-safe on
// the trace.
func (t *Trace) AddSpanUnder(parent *Span, name string, start time.Time, dur time.Duration) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(parent, name, start, dur, true)
}

// StartChild opens a live child span under s. Nil-safe: a nil receiver
// returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(s, name, time.Now(), 0, false)
}

// End closes a live span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
	return s
}

// Graft attaches a remote trace snapshot (a shard's own span tree) as a
// subtree of s. Snapshot re-anchors the grafted spans' offsets to s's start,
// so the assembled tree is immune to clock skew between processes. Nil-safe
// on both receiver and snapshot.
func (s *Span) Graft(ts *TraceSnapshot) *Span {
	if s == nil || ts == nil {
		return s
	}
	s.mu.Lock()
	s.grafts = append(s.grafts, ts)
	s.mu.Unlock()
	return s
}

// ID returns the span's trace-local identifier ("s1", "s2", ... in creation
// order), or "" for a nil span. The same id appears in the snapshot, and is
// what X-SVQ-Parent-Span carries across processes.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return "s" + strconv.Itoa(s.id)
}

// SpanSnapshot is the JSON form of one span; StartMS is relative to the
// trace start. ID is the span's trace-local identifier and Parent the ID of
// its parent span ("" for roots); spans grafted from a remote process get
// composite ids ("s4/s2": remote span s2 under local span s4). Snapshot
// orders spans depth-first — every span appears immediately after its
// ancestors — so a reader can render the tree from the flat list alone.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	ID         string         `json:"id,omitempty"`
	Parent     string         `json:"parent,omitempty"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON form of a trace, surfaced in the /query response
// under "trace" and retained by the TraceStore.
type TraceSnapshot struct {
	QueryID    string         `json:"query_id"`
	ParentSpan string         `json:"parent_span,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Spans      []SpanSnapshot `json:"spans"`
}

// spanRec is one flattened span during snapshot assembly.
type spanRec struct {
	SpanSnapshot
	seq int // creation order tiebreak, preserves pre-tree snapshot ordering
}

// Snapshot renders the trace for the response body. Live spans still open
// report their duration so far. The span list is depth-first: siblings are
// ordered by start offset, then name, then creation order; grafted remote
// subtrees are spliced under their graft point with offsets re-anchored to
// the parent span's start.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	remoteParent := t.remoteParent
	t.mu.Unlock()

	snap := &TraceSnapshot{
		QueryID:    t.id,
		ParentSpan: remoteParent,
		DurationMS: float64(time.Since(t.start)) / float64(time.Millisecond),
	}

	recs := make([]spanRec, 0, len(spans))
	seq := 0
	for _, s := range spans {
		s.mu.Lock()
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		var attrs map[string]any
		if len(s.attrs) > 0 {
			attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		grafts := append([]*TraceSnapshot(nil), s.grafts...)
		parent := ""
		if s.parent != nil {
			parent = s.parent.ID()
		}
		rec := spanRec{
			SpanSnapshot: SpanSnapshot{
				Name:       s.name,
				ID:         s.ID(),
				Parent:     parent,
				StartMS:    float64(s.start.Sub(t.start)) / float64(time.Millisecond),
				DurationMS: float64(d) / float64(time.Millisecond),
				Attrs:      attrs,
			},
			seq: seq,
		}
		s.mu.Unlock()
		seq++
		recs = append(recs, rec)
		for _, g := range grafts {
			gen := 0
			for _, gs := range g.Spans {
				gid := gs.ID
				if gid == "" {
					// Remote process predates span ids; synthesize stable
					// ones so the subtree still splices.
					gen++
					gid = "g" + strconv.Itoa(gen)
				}
				child := spanRec{
					SpanSnapshot: SpanSnapshot{
						Name: gs.Name,
						ID:   rec.ID + "/" + gid,
						// Re-anchor: the remote offset is relative to the
						// remote trace start; treat it as relative to the
						// graft-point span instead. No wall clocks cross
						// the process boundary, so skew cannot reorder.
						StartMS:    rec.StartMS + gs.StartMS,
						DurationMS: gs.DurationMS,
						Attrs:      gs.Attrs,
					},
					seq: seq,
				}
				if gs.Parent != "" {
					child.Parent = rec.ID + "/" + gs.Parent
				} else {
					child.Parent = rec.ID
				}
				seq++
				recs = append(recs, child)
			}
		}
	}

	// Assemble the tree and emit depth-first.
	byID := make(map[string]int, len(recs))
	for i, r := range recs {
		byID[r.ID] = i
	}
	children := make(map[string][]int, len(recs))
	var roots []int
	for i, r := range recs {
		if r.Parent != "" {
			if pi, ok := byID[r.Parent]; ok && pi != i {
				children[r.Parent] = append(children[r.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	less := func(a, b int) bool {
		ra, rb := &recs[a], &recs[b]
		if ra.StartMS != rb.StartMS {
			return ra.StartMS < rb.StartMS
		}
		if ra.Name != rb.Name {
			return ra.Name < rb.Name
		}
		return ra.seq < rb.seq
	}
	sort.Slice(roots, func(i, j int) bool { return less(roots[i], roots[j]) })
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return less(c[i], c[j]) })
	}
	snap.Spans = make([]SpanSnapshot, 0, len(recs))
	var emit func(i int)
	emit = func(i int) {
		snap.Spans = append(snap.Spans, recs[i].SpanSnapshot)
		for _, c := range children[recs[i].ID] {
			emit(c)
		}
	}
	for _, r := range roots {
		emit(r)
	}
	return snap
}

// SpanNames returns the names of every span recorded so far, in insertion
// order (test helper and log enrichment).
func (t *Trace) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, len(t.spans))
	for i, s := range t.spans {
		names[i] = s.name
	}
	return names
}

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches a trace to the context. Any current span from an outer
// trace is cleared: spans never parent across traces.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	ctx = context.WithValue(ctx, traceKey{}, t)
	return context.WithValue(ctx, spanKey{}, (*Span)(nil))
}

// WithoutTrace returns a context that carries no trace, shadowing any trace
// an outer context holds. Fan-out layers use it to keep per-item span trees
// (e.g. one engine run per fleet video) from flooding the parent trace while
// still propagating the parent's cancellation.
func WithoutTrace(ctx context.Context) context.Context {
	ctx = context.WithValue(ctx, traceKey{}, (*Trace)(nil))
	return context.WithValue(ctx, spanKey{}, (*Span)(nil))
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithSpan marks s as the context's current span: StartSpan calls on the
// returned context create children of s. A nil s is fine (clears the
// current span).
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
