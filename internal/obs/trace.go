package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// NewQueryID returns a fresh 16-hex-char query identifier.
func NewQueryID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible on supported
		// platforms; a constant fallback keeps the serving path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Trace collects the spans of one query. It is safe for concurrent use:
// parallel ingestion workers append spans from their own goroutines.
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	spans []*Span
}

// NewTrace starts a trace identified by id (typically a NewQueryID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's query ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is one timed stage of a query. Spans are created by StartSpan (live
// wall-clock spans, ended with End) or AddSpan (pre-measured stages, e.g. a
// predicate's accumulated evaluation time reported at the end of a run).
type Span struct {
	mu    sync.Mutex
	trace *Trace
	name  string
	start time.Time
	dur   time.Duration
	ended bool
	attrs map[string]any
}

// StartSpan opens a live span on the context's trace. It returns nil when
// the context carries no trace; every Span method is nil-safe, so
// instrumented code needs no conditionals.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil {
		return nil
	}
	s := &Span{trace: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// AddSpan records a pre-measured span: a stage that began at start and ran
// for dur of accumulated work. Nil-safe on the trace.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) *Span {
	if t == nil {
		return nil
	}
	s := &Span{trace: t, name: name, start: start, dur: dur, ended: true}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes a live span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
	return s
}

// SpanSnapshot is the JSON form of one span; StartMS is relative to the
// trace start.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON form of a trace, surfaced in the /query response
// under "trace".
type TraceSnapshot struct {
	QueryID    string         `json:"query_id"`
	DurationMS float64        `json:"duration_ms"`
	Spans      []SpanSnapshot `json:"spans"`
}

// Snapshot renders the trace for the response body. Live spans still open
// report their duration so far. Spans are ordered by start time, then name.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()

	snap := &TraceSnapshot{
		QueryID:    t.id,
		DurationMS: float64(time.Since(t.start)) / float64(time.Millisecond),
	}
	for _, s := range spans {
		s.mu.Lock()
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		var attrs map[string]any
		if len(s.attrs) > 0 {
			attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		ss := SpanSnapshot{
			Name:       s.name,
			StartMS:    float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			DurationMS: float64(d) / float64(time.Millisecond),
			Attrs:      attrs,
		}
		s.mu.Unlock()
		snap.Spans = append(snap.Spans, ss)
	}
	sort.SliceStable(snap.Spans, func(i, j int) bool {
		if snap.Spans[i].StartMS != snap.Spans[j].StartMS {
			return snap.Spans[i].StartMS < snap.Spans[j].StartMS
		}
		return snap.Spans[i].Name < snap.Spans[j].Name
	})
	return snap
}

// SpanNames returns the names of every span recorded so far, in insertion
// order (test helper and log enrichment).
func (t *Trace) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, len(t.spans))
	for i, s := range t.spans {
		names[i] = s.name
	}
	return names
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// WithoutTrace returns a context that carries no trace, shadowing any trace
// an outer context holds. Fan-out layers use it to keep per-item span trees
// (e.g. one engine run per fleet video) from flooding the parent trace while
// still propagating the parent's cancellation.
func WithoutTrace(ctx context.Context) context.Context {
	return context.WithValue(ctx, traceKey{}, (*Trace)(nil))
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
