package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewQueryID(t *testing.T) {
	a, b := NewQueryID(), NewQueryID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("query IDs %q/%q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Errorf("consecutive query IDs collide: %q", a)
	}
	for _, r := range a {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("non-hex rune %q in %q", r, a)
		}
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not recoverable from context")
	}

	s := StartSpan(ctx, "stage.one")
	s.SetAttr("k", 3)
	s.End()
	s.End() // second End keeps the first duration
	tr.AddSpan("stage.pre", tr.start, 5*time.Millisecond).SetAttr("units", 7)

	snap := tr.Snapshot()
	if snap.QueryID != "abc123" {
		t.Errorf("snapshot query id = %q", snap.QueryID)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	// Ordered by start: the pre-measured span starts at the trace start.
	if snap.Spans[0].Name != "stage.pre" || snap.Spans[0].DurationMS != 5 {
		t.Errorf("first span = %+v", snap.Spans[0])
	}
	if snap.Spans[1].Name != "stage.one" || snap.Spans[1].Attrs["k"] != 3 {
		t.Errorf("second span = %+v", snap.Spans[1])
	}
	names := tr.SpanNames()
	if len(names) != 2 || names[0] != "stage.one" {
		t.Errorf("span names = %v (insertion order expected)", names)
	}
}

// TestNilSafety: instrumented code paths run without a trace on the context;
// every span operation must be a no-op, never a nil dereference.
func TestNilSafety(t *testing.T) {
	s := StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("StartSpan without a trace should return nil")
	}
	s.SetAttr("k", 1)
	s.End()
	var tr *Trace
	if tr.ID() != "" || tr.Snapshot() != nil || tr.SpanNames() != nil {
		t.Error("nil trace accessors should return zero values")
	}
	tr.AddSpan("y", time.Now(), time.Second).End()
	if TraceFrom(nil) != nil {
		t.Error("TraceFrom(nil) should be nil")
	}
}

// TestTraceConcurrent appends spans from many goroutines (parallel ingestion
// does this); meaningful under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(NewQueryID())
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := StartSpan(ctx, "w")
				sp.SetAttr("j", j)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot().Spans); got != 1600 {
		t.Errorf("spans = %d, want 1600", got)
	}
}
