package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value metric label.
type Label struct {
	Name, Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal Prometheus label name:
// [a-zA-Z_][a-zA-Z0-9_]* and not double-underscore-reserved.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// series is one labelled instrument within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is every series registered under one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered instruments and renders them in the Prometheus
// text exposition format. It is safe for concurrent use; registration is
// idempotent per (name, labels).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or returns the existing) counter under name with the
// given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, "gauge", labels)
	s.gf = fn
}

// Histogram registers (or returns the existing) histogram with the given
// bucket bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// AttachCounter exposes an externally owned counter under name — the path by
// which per-run accounting objects (e.g. detect.Meter) surface on /metrics
// without a second accounting site. Re-attaching the same (name, labels)
// replaces the exposed instrument.
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...Label) {
	s := r.register(name, help, "counter", labels)
	s.c = c
}

// AttachGauge exposes an externally owned gauge.
func (r *Registry) AttachGauge(name, help string, g *Gauge, labels ...Label) {
	s := r.register(name, help, "gauge", labels)
	s.g = g
}

// AttachHistogram exposes an externally owned histogram.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	s := r.register(name, help, "histogram", labels)
	s.h = h
}

// register finds or creates the series for (name, labels), enforcing the
// Prometheus naming rules and per-family type consistency. Violations panic:
// metric registration happens at construction time with literal names, so a
// bad name is a programming error the smoke test and CI must fail loudly on.
func (r *Registry) register(name, help, typ string, labels []Label) *series {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !ValidLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	sig := labelSignature(labels)
	for _, s := range f.series {
		if labelSignature(s.labels) == sig {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	return s
}

// labelSignature renders labels in exposition form, sorted by name — the
// dedup key and the rendered label set.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

// MetricNames returns every registered family name, sorted.
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool {
			return labelSignature(ss[i].labels) < labelSignature(ss[j].labels)
		})
		for _, s := range ss {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
		if f.typ == "histogram" {
			if err := writeQuantileGauges(w, f, ss); err != nil {
				return err
			}
		}
	}
	return nil
}

// quantileExports are the derived summary gauges emitted for every histogram
// family: <name>_p50/_p95/_p99, computed from the bucket counts at scrape
// time so dashboards need no Prometheus-side quantile math.
var quantileExports = []struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p95", 0.95},
	{"_p99", 0.99},
}

// writeQuantileGauges renders one derived gauge family per exported quantile
// of a histogram family, each with its own TYPE line so the exposition stays
// well-formed.
func writeQuantileGauges(w io.Writer, f *family, ss []*series) error {
	for _, qe := range quantileExports {
		name := f.name + qe.suffix
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name,
				escapeHelp(fmt.Sprintf("p%g of %s, interpolated from bucket counts.", qe.q*100, f.name))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, s := range ss {
			if s.h == nil {
				continue
			}
			sig := labelSignature(s.labels)
			if sig != "" {
				sig = "{" + sig + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, sig, formatFloat(s.h.Quantile(qe.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	sig := labelSignature(s.labels)
	wrap := func(extra string) string {
		switch {
		case sig == "" && extra == "":
			return ""
		case sig == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + sig + "}"
		}
		return "{" + sig + "," + extra + "}"
	}
	switch {
	case s.h != nil:
		cum, count, sum := s.h.snapshot()
		for i, c := range cum {
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, wrap(`le="`+le+`"`), c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, wrap(""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrap(""), count)
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, wrap(""), formatFloat(s.gf()))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(""), s.g.Value())
		return err
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(""), s.c.Value())
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the text exposition — the /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
