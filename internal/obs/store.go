package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SQLDigest returns a short stable digest of a statement (fnv-1a 64, hex):
// the grouping key the trace index exposes so an operator can spot "all the
// slow ones are the same query shape" without shipping full SQL everywhere.
func SQLDigest(sql string) string {
	if sql == "" {
		return ""
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(strings.Join(strings.Fields(sql), " ")))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TraceMeta is what the serving layer knows about a finished query when it
// offers the trace for retention.
type TraceMeta struct {
	SQL     string // original statement (may be empty, e.g. malformed input)
	Outcome string // "ok", "degraded", "error", "failed", ...
}

// TraceIndexEntry is one row of GET /debug/traces.
type TraceIndexEntry struct {
	ID         string    `json:"id"`
	SQLDigest  string    `json:"sql_digest,omitempty"`
	SQL        string    `json:"sql,omitempty"`
	DurationMS float64   `json:"duration_ms"`
	Outcome    string    `json:"outcome"`
	Reason     string    `json:"reason"`
	Spans      int       `json:"spans"`
	StoredAt   time.Time `json:"stored_at"`
}

// StoredTrace is one retained trace: the index row plus the full span tree,
// the body of GET /debug/traces/{id}.
type StoredTrace struct {
	TraceIndexEntry
	Trace *TraceSnapshot `json:"trace"`
}

// TraceStoreConfig sizes a TraceStore. Zero values pick the defaults.
type TraceStoreConfig struct {
	Capacity     int     // retained traces before the ring evicts; default 256
	SampleEvery  int     // keep 1 in N healthy fast queries; default 16, <0 disables
	TailQuantile float64 // retain queries at or above this latency quantile; default 0.99
	MinTailCount uint64  // observations before the tail gate engages; default 32
}

func (c TraceStoreConfig) withDefaults() TraceStoreConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.99
	}
	if c.MinTailCount == 0 {
		c.MinTailCount = 32
	}
	return c
}

// TraceStore is a bounded in-memory ring of retained query traces: every
// error/degraded trace, tail-latency traces (at or above an adaptive
// quantile of the store's own latency distribution), and a sampled 1-in-N
// of healthy fast queries. The decision path is lock-cheap — an atomic
// sample counter and a lock-free histogram — and only actual retention
// takes the mutex.
type TraceStore struct {
	cfg  TraceStoreConfig
	seen atomic.Int64
	lat  *Histogram // query latency in seconds, feeds the adaptive tail gate

	seenC *Counter
	reg   atomic.Pointer[Registry]

	mu   sync.Mutex
	ring []*StoredTrace // circular, len == cfg.Capacity once warm
	next int            // ring slot the next retained trace lands in
	byID map[string]*StoredTrace
}

// NewTraceStore builds a store with cfg (zero fields defaulted).
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	cfg = cfg.withDefaults()
	return &TraceStore{
		cfg:   cfg,
		lat:   NewHistogram(nil),
		seenC: &Counter{},
		byID:  map[string]*StoredTrace{},
	}
}

// Offer decides whether to retain snap and stores it if so. It returns the
// retention reason ("error", "degraded", "failed", ... — the non-ok outcome
// verbatim — or "tail" or "sampled") and whether the trace was kept.
// Nil-safe on both receiver and snapshot.
func (st *TraceStore) Offer(snap *TraceSnapshot, meta TraceMeta) (reason string, retained bool) {
	if st == nil || snap == nil {
		return "", false
	}
	n := st.seen.Add(1)
	st.seenC.Inc()
	durSec := snap.DurationMS / 1000

	switch {
	case meta.Outcome != "" && meta.Outcome != "ok":
		reason = meta.Outcome
	case st.lat.Count() >= st.cfg.MinTailCount && durSec >= st.lat.Quantile(st.cfg.TailQuantile):
		reason = "tail"
	case st.cfg.SampleEvery > 0 && n%int64(st.cfg.SampleEvery) == 1:
		reason = "sampled"
	}
	// The gate compares against the distribution *before* this observation,
	// so a latency regression is caught by its first slow query.
	st.lat.Observe(durSec)
	if reason == "" {
		return "", false
	}

	outcome := meta.Outcome
	if outcome == "" {
		outcome = "ok"
	}
	entry := &StoredTrace{
		TraceIndexEntry: TraceIndexEntry{
			ID:         snap.QueryID,
			SQLDigest:  SQLDigest(meta.SQL),
			SQL:        meta.SQL,
			DurationMS: snap.DurationMS,
			Outcome:    outcome,
			Reason:     reason,
			Spans:      len(snap.Spans),
			StoredAt:   time.Now().UTC(),
		},
		Trace: snap,
	}

	st.mu.Lock()
	if len(st.ring) < st.cfg.Capacity {
		st.ring = append(st.ring, entry)
	} else {
		old := st.ring[st.next]
		if cur, ok := st.byID[old.ID]; ok && cur == old {
			delete(st.byID, old.ID)
		}
		st.ring[st.next] = entry
	}
	st.next = (st.next + 1) % st.cfg.Capacity
	st.byID[entry.ID] = entry
	st.mu.Unlock()

	if r := st.reg.Load(); r != nil {
		r.Counter("svqact_traces_retained_total",
			"Traces kept by the retained trace store, by retention reason.",
			L("reason", reason)).Inc()
	}
	return reason, true
}

// Get returns the retained trace with the given id, or nil. When the same
// query id was retained twice (e.g. a re-used id), the most recent wins.
func (st *TraceStore) Get(id string) *StoredTrace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// Len returns the number of currently retained traces.
func (st *TraceStore) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.ring)
}

// Index returns the retained traces' index rows, newest first.
func (st *TraceStore) Index() []TraceIndexEntry {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceIndexEntry, 0, len(st.ring))
	for i := 1; i <= len(st.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (st.next - i + len(st.ring)) % len(st.ring)
		out = append(out, st.ring[idx].TraceIndexEntry)
	}
	return out
}

// Register exposes the store's health on a metrics registry:
// svqact_traces_seen_total, svqact_traces_retained_total{reason} and
// svqact_trace_store_size.
func (st *TraceStore) Register(r *Registry) {
	if st == nil || r == nil {
		return
	}
	st.reg.Store(r)
	r.AttachCounter("svqact_traces_seen_total",
		"Query traces offered to the retained trace store.", st.seenC)
	// Pre-register the common reasons so the family exists (with a TYPE
	// line) before the first retention.
	for _, reason := range []string{"error", "degraded", "tail", "sampled"} {
		r.Counter("svqact_traces_retained_total",
			"Traces kept by the retained trace store, by retention reason.",
			L("reason", reason))
	}
	r.GaugeFunc("svqact_trace_store_size",
		"Traces currently retained in the trace store ring.",
		func() float64 { return float64(st.Len()) })
}

// traceIndexResponse is the body of GET /debug/traces.
type traceIndexResponse struct {
	Count  int               `json:"count"`
	Traces []TraceIndexEntry `json:"traces"`
}

// Handler serves the store over HTTP: GET /debug/traces (index, newest
// first) and GET /debug/traces/{id} (full stored trace). Mount it at both
// "/debug/traces" and "/debug/traces/".
func (st *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "" {
			idx := st.Index()
			_ = json.NewEncoder(w).Encode(traceIndexResponse{Count: len(idx), Traces: idx})
			return
		}
		entry := st.Get(rest)
		if entry == nil {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "no retained trace " + rest})
			return
		}
		_ = json.NewEncoder(w).Encode(entry)
	})
}
