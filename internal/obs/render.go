package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpanNode is one span with its children resolved — the tree form of a
// TraceSnapshot's flat depth-first span list.
type SpanNode struct {
	SpanSnapshot
	Children []*SpanNode
}

// Tree resolves the snapshot's flat span list into a forest. The flat list
// is depth-first (parents precede children), so a single pass suffices;
// spans whose parent id is missing are treated as roots.
func (ts *TraceSnapshot) Tree() []*SpanNode {
	if ts == nil {
		return nil
	}
	byID := make(map[string]*SpanNode, len(ts.Spans))
	var roots []*SpanNode
	for _, ss := range ts.Spans {
		n := &SpanNode{SpanSnapshot: ss}
		if ss.ID != "" {
			byID[ss.ID] = n
		}
		if p, ok := byID[ss.Parent]; ok && ss.Parent != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Find returns the first span node (depth-first) whose name matches, or nil.
func (ts *TraceSnapshot) Find(name string) *SpanNode {
	var walk func(ns []*SpanNode) *SpanNode
	walk = func(ns []*SpanNode) *SpanNode {
		for _, n := range ns {
			if n.Name == name {
				return n
			}
			if m := walk(n.Children); m != nil {
				return m
			}
		}
		return nil
	}
	return walk(ts.Tree())
}

// WriteWaterfall renders the trace as an ASCII waterfall: one line per span
// with offset, duration, an indent-per-depth tree, and a bar showing where
// the span sits inside the trace's total duration. barWidth <= 0 picks a
// default of 32 columns.
//
//	  0.000ms  12.400ms  cluster.topk                [##########]  k=3
//	  0.210ms   6.100ms    cluster.shard:s0          [.#####....]  outcome=ok
func WriteWaterfall(w io.Writer, ts *TraceSnapshot, barWidth int) {
	if ts == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	if barWidth <= 0 {
		barWidth = 32
	}
	total := ts.DurationMS
	for _, ss := range ts.Spans {
		if end := ss.StartMS + ss.DurationMS; end > total {
			total = end
		}
	}
	fmt.Fprintf(w, "trace %s  total %.3fms  spans %d\n", ts.QueryID, ts.DurationMS, len(ts.Spans))
	if ts.ParentSpan != "" {
		fmt.Fprintf(w, "remote parent span %s\n", ts.ParentSpan)
	}

	// Column width for the name+indent cell, bounded for sanity.
	nameWidth := 0
	var measure func(ns []*SpanNode, depth int)
	measure = func(ns []*SpanNode, depth int) {
		for _, n := range ns {
			if w := 2*depth + len(n.Name); w > nameWidth {
				nameWidth = w
			}
			measure(n.Children, depth+1)
		}
	}
	roots := ts.Tree()
	measure(roots, 0)
	if nameWidth > 48 {
		nameWidth = 48
	}

	var render func(ns []*SpanNode, depth int)
	render = func(ns []*SpanNode, depth int) {
		for _, n := range ns {
			name := strings.Repeat("  ", depth) + n.Name
			fmt.Fprintf(w, "%10.3fms %10.3fms  %-*s  [%s]%s\n",
				n.StartMS, n.DurationMS, nameWidth, name,
				bar(n.StartMS, n.DurationMS, total, barWidth), attrSuffix(n.Attrs))
			render(n.Children, depth+1)
		}
	}
	render(roots, 0)
}

// bar draws the span's position within [0,total) as barWidth cells: '.'
// outside the span, '#' inside (at least one '#' for any finished span).
func bar(startMS, durMS, totalMS float64, width int) string {
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '.'
	}
	if totalMS > 0 {
		lo := int(startMS / totalMS * float64(width))
		hi := int((startMS + durMS) / totalMS * float64(width))
		if lo < 0 {
			lo = 0
		}
		if lo >= width {
			lo = width - 1
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for i := lo; i < hi; i++ {
			cells[i] = '#'
		}
	}
	return string(cells)
}

// attrSuffix renders span attributes as "  k=v k=v", keys sorted, truncated
// so one noisy attribute cannot wreck the layout.
func attrSuffix(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := fmt.Sprintf("%v", attrs[k])
		if len(v) > 60 {
			v = v[:57] + "..."
		}
		parts = append(parts, k+"="+v)
	}
	return "  " + strings.Join(parts, " ")
}
