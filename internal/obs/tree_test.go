package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// collectNames flattens a snapshot to "name parent" strings so tree-shape
// goldens stay readable.
func collectNames(snap *TraceSnapshot) []string {
	out := make([]string, len(snap.Spans))
	for i, s := range snap.Spans {
		out[i] = s.Name + " " + s.Parent
	}
	return out
}

func TestHierarchicalSnapshotOrdering(t *testing.T) {
	tr := NewTrace("tree1")
	ctx := WithTrace(context.Background(), tr)

	root := StartSpan(ctx, "cluster.topk")
	ctx = WithSpan(ctx, root)
	shard0 := StartSpan(ctx, "cluster.shard:s0")
	shard1 := StartSpan(ctx, "cluster.shard:s1")
	// Children created via explicit parenting and via StartChild both land
	// under their shard.
	tr.AddSpanUnder(shard1, "rank.topk", shard1.start, time.Millisecond)
	shard0.StartChild("rank.topk").End()
	shard1.End()
	shard0.End()
	root.End()

	snap := tr.Snapshot()
	want := []string{
		"cluster.topk ",
		"cluster.shard:s0 s1",
		"rank.topk s2",
		"cluster.shard:s1 s1",
		"rank.topk s3",
	}
	got := collectNames(snap)
	if len(got) != len(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	// DFS invariant: every span appears after its parent.
	seen := map[string]bool{"": true}
	for _, s := range snap.Spans {
		if !seen[s.Parent] {
			t.Errorf("span %s (%s) emitted before its parent %s", s.ID, s.Name, s.Parent)
		}
		seen[s.ID] = true
	}
}

func TestStartSpanParentsFromContext(t *testing.T) {
	tr := NewTrace("ctx1")
	ctx := WithTrace(context.Background(), tr)
	outer := StartSpan(ctx, "outer")
	inner := StartSpan(WithSpan(ctx, outer), "inner")
	inner.End()
	outer.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	if snap.Spans[1].Name != "inner" || snap.Spans[1].Parent != snap.Spans[0].ID {
		t.Errorf("inner span not parented under outer: %+v", snap.Spans)
	}
	// WithTrace clears any current span, so a fresh trace on the same
	// context chain starts at the root.
	tr2 := NewTrace("ctx2")
	s := StartSpan(WithTrace(WithSpan(ctx, outer), tr2), "root")
	s.End()
	if got := tr2.Snapshot().Spans[0].Parent; got != "" {
		t.Errorf("span under new trace has parent %q, want root", got)
	}
}

func TestCrossTraceParentGuard(t *testing.T) {
	trA, trB := NewTrace("a"), NewTrace("b")
	ctxA := WithTrace(context.Background(), trA)
	spanA := StartSpan(ctxA, "fleet.run_all")
	// A span from trace A must not become a parent inside trace B.
	got := trB.AddSpanUnder(spanA, "engine", time.Now(), time.Millisecond)
	if got == nil {
		t.Fatal("AddSpanUnder returned nil")
	}
	if p := trB.Snapshot().Spans[0].Parent; p != "" {
		t.Errorf("cross-trace parent leaked: parent = %q, want root", p)
	}
}

func TestGraftReanchorsRemoteSubtree(t *testing.T) {
	// Remote (shard) trace: its own offsets, its own span ids, and a wall
	// clock that may be arbitrarily skewed — only offsets cross the wire.
	remote := &TraceSnapshot{
		QueryID:    "feedc0defeedc0de",
		ParentSpan: "s2",
		DurationMS: 40,
		Spans: []SpanSnapshot{
			{Name: "rank.topk", ID: "s1", StartMS: 4, DurationMS: 30},
			{Name: "predicate:act", ID: "s2", Parent: "s1", StartMS: 6, DurationMS: 10},
		},
	}

	tr := NewTrace("coord1")
	ctx := WithTrace(context.Background(), tr)
	root := StartSpan(ctx, "cluster.topk")
	shard := root.StartChild("cluster.shard:s0")
	shard.Graft(remote)
	shard.End()
	root.End()

	snap := tr.Snapshot()
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	shardSnap, ok := byName["cluster.shard:s0"]
	if !ok {
		t.Fatalf("no shard span in %v", collectNames(snap))
	}
	rank, ok := byName["rank.topk"]
	if !ok {
		t.Fatalf("grafted rank.topk missing from %v", collectNames(snap))
	}
	if rank.Parent != shardSnap.ID {
		t.Errorf("grafted root parents to %q, want graft point %q", rank.Parent, shardSnap.ID)
	}
	if want := shardSnap.ID + "/s1"; rank.ID != want {
		t.Errorf("grafted span id = %q, want composite %q", rank.ID, want)
	}
	if got, want := rank.StartMS, shardSnap.StartMS+4; got != want {
		t.Errorf("grafted StartMS = %v, want re-anchored %v", got, want)
	}
	pred := byName["predicate:act"]
	if pred.Parent != rank.ID {
		t.Errorf("grafted child parents to %q, want %q", pred.Parent, rank.ID)
	}
	if got, want := pred.StartMS, shardSnap.StartMS+6; got != want {
		t.Errorf("grafted child StartMS = %v, want %v", got, want)
	}
	// The grafted subtree preserves the shard's own spans verbatim apart
	// from id/parent/start rebasing.
	if rank.DurationMS != 30 || pred.DurationMS != 10 {
		t.Errorf("grafted durations changed: %v / %v", rank.DurationMS, pred.DurationMS)
	}
}

func TestGraftSynthesizesIDs(t *testing.T) {
	// Remote snapshots from processes predating span ids still splice.
	remote := &TraceSnapshot{
		QueryID: "old",
		Spans: []SpanSnapshot{
			{Name: "engine", StartMS: 0, DurationMS: 5},
			{Name: "plan.order", StartMS: 1, DurationMS: 1},
		},
	}
	tr := NewTrace("coord2")
	sp := tr.AddSpan("cluster.shard:s0", tr.start, 10*time.Millisecond)
	sp.Graft(remote)
	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("spans = %v", collectNames(snap))
	}
	for _, s := range snap.Spans[1:] {
		if s.Parent != snap.Spans[0].ID {
			t.Errorf("id-less grafted span %q parents to %q, want graft point", s.Name, s.Parent)
		}
		if !strings.Contains(s.ID, "/g") {
			t.Errorf("synthesized id = %q, want composite g-id", s.ID)
		}
	}
}

func TestValidSpanRef(t *testing.T) {
	for ref, want := range map[string]bool{
		"s4":              true,
		"s4/s2":           true,
		"cluster.shard:a": true,
		"a_b-c":           true,
		"":                false,
		"s4 s5":           false,
		"s4\n":            false,
		strings.Repeat("a", 129): false,
	} {
		if got := ValidSpanRef(ref); got != want {
			t.Errorf("ValidSpanRef(%q) = %v, want %v", ref, got, want)
		}
	}
}

func TestWaterfallRender(t *testing.T) {
	snap := &TraceSnapshot{
		QueryID:    "wf1",
		DurationMS: 10,
		Spans: []SpanSnapshot{
			{Name: "cluster.topk", ID: "s1", StartMS: 0, DurationMS: 10},
			{Name: "cluster.shard:s0", ID: "s2", Parent: "s1", StartMS: 1, DurationMS: 8,
				Attrs: map[string]any{"replica": "s0-r0"}},
		},
	}
	var b strings.Builder
	WriteWaterfall(&b, snap, 20)
	out := b.String()
	for _, want := range []string{"trace wf1", "cluster.topk", "  cluster.shard:s0", "replica=s0-r0", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WriteWaterfall(&b, nil, 20)
	if !strings.Contains(b.String(), "no trace") {
		t.Errorf("nil snapshot render = %q", b.String())
	}
}
