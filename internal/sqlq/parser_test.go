package sqlq

import (
	"strings"
	"testing"
)

const onlineQuery = `
SELECT MERGE(clipID) AS Sequence
FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car', 'human')`

const offlineQuery = `
SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
FROM (PROCESS movies PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
WHERE act='kissing' AND obj.include('surfboard', 'boat')
ORDER BY RANK(act, obj) LIMIT 5`

func TestParseOnline(t *testing.T) {
	st, err := Parse(onlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != "inputVideo" {
		t.Errorf("source = %q", st.Source)
	}
	if st.Action != "jumping" {
		t.Errorf("action = %q", st.Action)
	}
	if len(st.Objects) != 2 || st.Objects[0] != "car" || st.Objects[1] != "human" {
		t.Errorf("objects = %v", st.Objects)
	}
	if st.Offline() {
		t.Error("online query classified as offline")
	}
	if len(st.Produces) != 3 {
		t.Fatalf("produces = %v", st.Produces)
	}
	if st.Produces[1].Field != "obj" || st.Produces[1].Model != "ObjectDetector" {
		t.Errorf("produce[1] = %+v", st.Produces[1])
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Online || plan.Query.Action != "jumping" || plan.Source != "inputVideo" {
		t.Errorf("plan = %+v", plan)
	}
}

func TestParseOffline(t *testing.T) {
	st, err := Parse(offlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SelectRank || !st.OrderByRank || st.Limit != 5 {
		t.Errorf("rank flags: %+v", st)
	}
	if !st.Offline() {
		t.Error("offline query classified as online")
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Online || plan.K != 5 || plan.Source != "movies" {
		t.Errorf("plan = %+v", plan)
	}
	q := plan.Query
	if q.Action != "kissing" || len(q.Objects) != 2 {
		t.Errorf("query = %v", q)
	}
}

func TestParseActionCallSyntax(t *testing.T) {
	// The paper's first-page form: det = Action('robot_dancing','car','human').
	st, err := Parse(`SELECT MERGE(frameSequence) FROM (PROCESS inputVideo PRODUCE frameSequence, det USING VisionModel)
WHERE det = Action('robot_dancing', 'car', 'human')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != "robot_dancing" {
		t.Errorf("action = %q", st.Action)
	}
	if len(st.Objects) != 2 {
		t.Errorf("objects = %v", st.Objects)
	}
}

func TestParseIncAlias(t *testing.T) {
	st, err := Parse(`SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act='a' AND obj.inc('x')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Objects) != 1 || st.Objects[0] != "x" {
		t.Errorf("objects = %v", st.Objects)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse(`select merge(clipID) as s from (process v produce clipID) where act='a' limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Limit != 3 || st.Action != "a" {
		t.Errorf("%+v", st)
	}
	if !st.Offline() {
		t.Error("LIMIT should imply offline")
	}
}

func TestParseObjectlessQuery(t *testing.T) {
	st, err := Parse(`SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act USING I3D) WHERE act='blowing_leaves'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Objects) != 0 || st.Action != "blowing_leaves" {
		t.Errorf("%+v", st)
	}
	if _, err := st.Plan(); err != nil {
		t.Errorf("plan: %v", err)
	}
}

func TestParseMultipleIncludeClauses(t *testing.T) {
	st, err := Parse(`SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID)
WHERE obj.include('a') AND act='x' AND obj.include('b','c')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Objects) != 3 {
		t.Errorf("objects = %v", st.Objects)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a';`); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":              ``,
		"no select":          `FROM x`,
		"no merge":           `SELECT x FROM (PROCESS v PRODUCE c) WHERE act='a'`,
		"unterminated":       `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a`,
		"no action":          `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE obj.include('x')`,
		"bad method":         `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND obj.near('x')`,
		"bad limit":          `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' LIMIT 0`,
		"trailing garbage":   `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' nonsense`,
		"missing paren":      `SELECT MERGE(c FROM (PROCESS v PRODUCE c) WHERE act='a'`,
		"bad char":           `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND @`,
		"no produce":         `SELECT MERGE(c) FROM (PROCESS v) WHERE act='a'`,
		"order without rank": `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' ORDER BY score`,
		"empty include":      `SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND obj.include()`,
	}
	for name, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%s: expected parse error for %q", name, q)
		}
	}
}

func TestParseDuplicateObjectRejectedAtPlan(t *testing.T) {
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND obj.include('x','x')`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Plan(); err == nil {
		t.Error("duplicate objects should fail planning")
	}
}

func TestParseTwoActionConjunction(t *testing.T) {
	// Footnote 3: multiple action predicates form a conjunction and plan
	// onto the extended (CNF) path.
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND act='b'`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Basic() {
		t.Error("two-action statement should not be basic")
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Extended || len(plan.CNF.Clauses) != 2 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestParseOrGroup(t *testing.T) {
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
WHERE (act='jumping' OR act='dancing') AND obj.include('car')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Basic() {
		t.Error("OR group should not be basic")
	}
	cnf := st.CNF()
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %v", cnf.Clauses)
	}
	if len(cnf.Clauses[0].Atoms) != 2 {
		t.Errorf("OR clause atoms = %v", cnf.Clauses[0].Atoms)
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Extended || !plan.Online {
		t.Errorf("plan = %+v", plan)
	}
}

func TestParseRelationPredicate(t *testing.T) {
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
WHERE act='jumping' AND rel.leftOf('human', 'car') AND rel.near('dog', 'car')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Basic() {
		t.Error("relation statement should not be basic")
	}
	cnf := st.CNF()
	if len(cnf.Clauses) != 3 {
		t.Fatalf("clauses = %v", cnf.Clauses)
	}
	if got := cnf.Clauses[1].Atoms[0].String(); got != "left_of(human,car)" {
		t.Errorf("relation atom = %q", got)
	}
	if _, err := st.Plan(); err != nil {
		t.Errorf("plan: %v", err)
	}
}

func TestParseRelationErrors(t *testing.T) {
	bad := []string{
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND rel.leftOf('x')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND rel.leftOf('x','y','z')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND rel.hoversOver('x','y')`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
	// Identical operands parse but fail planning (atom validation).
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND rel.near('x','x')`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Plan(); err == nil {
		t.Error("identical relation operands should fail planning")
	}
}

func TestParseExtendedOfflinePlans(t *testing.T) {
	// OR groups and multi-action statements may be ranked (RVAQCNF)...
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
WHERE (act='a' OR act='b') LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatalf("ranked OR group should plan: %v", err)
	}
	if plan.Online || !plan.Extended || plan.K != 5 {
		t.Errorf("plan = %+v", plan)
	}
	// ...but ranked relation predicates are rejected (no per-pair geometry
	// in the ingested metadata).
	st2, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
WHERE act='a' AND rel.near('x','y') LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Plan(); err == nil {
		t.Error("ranked relation query should be rejected at planning")
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex(`a 'hello world' "double" 42 ( ) , = .`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokString, tokString, tokNumber,
		tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v (%+v)", i, toks[i].kind, k, toks[i])
		}
	}
	if toks[1].text != "hello world" {
		t.Errorf("string text = %q", toks[1].text)
	}
}

func TestErrorsMentionOffset(t *testing.T) {
	_, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act=42`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should carry an offset: %v", err)
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse(`EXPLAIN ` + onlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain {
		t.Error("EXPLAIN prefix not recorded")
	}
	plan, err := st.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Explain || !plan.Online {
		t.Errorf("plan = %+v", plan)
	}
	// Case-insensitive, and composes with the offline form.
	st2, err := Parse(`explain ` + offlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := st2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Explain || plan2.Online || plan2.K != 5 {
		t.Errorf("plan = %+v", plan2)
	}
	// Without the prefix the flag stays off.
	st3, err := Parse(onlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Explain {
		t.Error("Explain set without EXPLAIN prefix")
	}
	// EXPLAIN alone is not a statement.
	if _, err := Parse(`EXPLAIN`); err == nil {
		t.Error("bare EXPLAIN should fail")
	}
	if _, err := Parse(`EXPLAIN EXPLAIN ` + onlineQuery); err == nil {
		t.Error("doubled EXPLAIN should fail")
	}
}
