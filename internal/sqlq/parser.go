package sqlq

import (
	"fmt"
	"strconv"
	"strings"

	"svqact/internal/core"
	"svqact/internal/detect"
)

// Produce is one PRODUCE item of the PROCESS clause: a field name optionally
// bound to a model (clipID has no model; obj and act do).
type Produce struct {
	Field string
	Model string
}

// Statement is a parsed query.
type Statement struct {
	// Explain is true when the statement is prefixed with EXPLAIN: the
	// engine plans and executes the query as usual but the caller is asked
	// to surface the predicate-ordering plan instead of (or alongside) the
	// result sequences.
	Explain bool
	// Source is the identifier in the PROCESS clause (a video or dataset).
	Source string
	// Produces lists the PRODUCE items in order.
	Produces []Produce
	// Action is the queried action (from the act = '...' predicate), when
	// the statement is expressible in the basic one-action form.
	Action string
	// Objects are the queried object types (from obj.include/inc).
	Objects []string
	// Clauses is the full conjunctive-normal-form view of the WHERE clause
	// (paper footnotes 2-4): OR groups become multi-atom clauses, relation
	// predicates become relation atoms.
	Clauses []core.Clause
	// SelectRank is true when the SELECT list includes RANK(...).
	SelectRank bool
	// OrderByRank is true when an ORDER BY RANK(...) clause is present.
	OrderByRank bool
	// Limit is the LIMIT K value; 0 means absent.
	Limit int
}

// Offline reports whether the statement requests ranked top-k processing
// (the offline engine) rather than streaming evaluation.
func (s *Statement) Offline() bool { return s.OrderByRank || s.Limit > 0 || s.SelectRank }

// Query maps the statement onto the engine's basic query model. Valid only
// when Basic reports true.
func (s *Statement) Query() core.Query {
	return core.Query{Objects: append([]string(nil), s.Objects...), Action: s.Action}
}

// CNF returns the statement's full extended-query form.
func (s *Statement) CNF() core.CNF {
	return core.CNF{Clauses: append([]core.Clause(nil), s.Clauses...)}
}

// hasRelations reports whether any clause contains a relation atom.
func (s *Statement) hasRelations() bool {
	for _, c := range s.Clauses {
		for _, a := range c.Atoms {
			if a.Kind == core.RelationPredicate {
				return true
			}
		}
	}
	return false
}

// Basic reports whether the WHERE clause is expressible as the basic model
// (a conjunction of object atoms plus exactly one action atom): every
// clause is a single atom, no relations, one action.
func (s *Statement) Basic() bool {
	actions := 0
	for _, c := range s.Clauses {
		if len(c.Atoms) != 1 {
			return false
		}
		switch c.Atoms[0].Kind {
		case core.ActionPredicate:
			actions++
		case core.ObjectPredicate:
		default:
			return false
		}
	}
	return actions == 1
}

// Plan is the execution decision for a statement.
type Plan struct {
	// Online selects SVAQ/SVAQD streaming execution; otherwise the offline
	// RVAQ path runs against an ingested index.
	Online bool
	// Extended marks statements beyond the basic one-action conjunction
	// (OR groups, multiple actions, relations); they run through the
	// engine's CNF path.
	Extended bool
	// Explain asks the caller to surface the predicate-ordering plan the
	// execution ran with (EXPLAIN prefix).
	Explain bool
	Query   core.Query
	CNF     core.CNF
	Source  string
	// K is the top-k bound for offline plans (defaulted to 10 when the
	// statement ranks but gives no LIMIT).
	K int
}

// Plan validates the statement and produces its execution plan.
func (s *Statement) Plan() (Plan, error) {
	if s.Source == "" {
		return Plan{}, fmt.Errorf("sqlq: statement has no PROCESS source")
	}
	p := Plan{Online: !s.Offline(), Explain: s.Explain, Source: s.Source, K: s.Limit, CNF: s.CNF()}
	if s.Basic() {
		p.Query = s.Query()
		if err := p.Query.Validate(); err != nil {
			return Plan{}, err
		}
	} else {
		p.Extended = true
		if err := p.CNF.Validate(); err != nil {
			return Plan{}, err
		}
		if !p.Online && s.hasRelations() {
			return Plan{}, fmt.Errorf("sqlq: ranked (ORDER BY/LIMIT) queries do not support relation predicates (ingestion does not materialise per-pair geometry)")
		}
	}
	if !p.Online && p.K == 0 {
		p.K = 10
	}
	return p, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement of the dialect.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.cur().isPunct(";") && p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("sqlq: %s at offset %d (got %s)", msg, p.cur().pos, p.cur().describe())
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.cur().isPunct(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{}
	if p.cur().isKeyword("EXPLAIN") {
		p.next()
		st.Explain = true
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.selectList(st); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.fromClause(st); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.whereClause(st); err != nil {
		return nil, err
	}
	if p.cur().isKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if err := p.rankCall(); err != nil {
			return nil, err
		}
		st.OrderByRank = true
	}
	if p.cur().isKeyword("LIMIT") {
		p.next()
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sqlq: LIMIT must be a positive integer")
		}
		st.Limit = n
	}
	return st, nil
}

// selectList parses: MERGE(clipID) AS Sequence [, RANK(act, obj)]
func (p *parser) selectList(st *Statement) error {
	if err := p.expectKeyword("MERGE"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if _, err := p.ident(); err != nil { // clipID
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if p.cur().isKeyword("AS") {
		p.next()
		if _, err := p.ident(); err != nil {
			return err
		}
	}
	if p.cur().isPunct(",") {
		p.next()
		if err := p.rankCall(); err != nil {
			return err
		}
		st.SelectRank = true
	}
	return nil
}

// rankCall parses: RANK(ident [, ident]*)
func (p *parser) rankCall() error {
	if err := p.expectKeyword("RANK"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		if _, err := p.ident(); err != nil {
			return err
		}
		if p.cur().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	return p.expectPunct(")")
}

// fromClause parses:
// ( PROCESS source PRODUCE field [USING Model] [, field [USING Model]]* )
func (p *parser) fromClause(st *Statement) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if err := p.expectKeyword("PROCESS"); err != nil {
		return err
	}
	src, err := p.ident()
	if err != nil {
		return err
	}
	st.Source = src
	if err := p.expectKeyword("PRODUCE"); err != nil {
		return err
	}
	for {
		field, err := p.ident()
		if err != nil {
			return err
		}
		pr := Produce{Field: field}
		if p.cur().isKeyword("USING") {
			p.next()
			model, err := p.ident()
			if err != nil {
				return err
			}
			pr.Model = model
		}
		st.Produces = append(st.Produces, pr)
		if p.cur().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	return p.expectPunct(")")
}

// whereClause parses a conjunction of predicate terms:
//
//	term       := predicate | '(' predicate (OR predicate)* ')'
//	predicate  := act = 'name' | obj.include('a', 'b') | obj.inc('a')
//	            | rel.leftOf('a','b') | rel.rightOf('a','b') | rel.near('a','b')
//	            | field = Action('act', 'obj'...)
//
// An OR group becomes one CNF clause; a bare obj.include with several types
// expands into one clause per type (a conjunction, per the basic model).
func (p *parser) whereClause(st *Statement) error {
	for {
		if err := p.term(st); err != nil {
			return err
		}
		if p.cur().isKeyword("AND") {
			p.next()
			continue
		}
		break
	}
	actions := 0
	for _, c := range st.Clauses {
		for _, a := range c.Atoms {
			if a.Kind == core.ActionPredicate {
				actions++
			}
		}
	}
	if actions == 0 {
		return fmt.Errorf("sqlq: WHERE clause specifies no action predicate")
	}
	if st.Basic() {
		for _, c := range st.Clauses {
			a := c.Atoms[0]
			if a.Kind == core.ActionPredicate {
				st.Action = a.Name
			} else {
				st.Objects = append(st.Objects, a.Name)
			}
		}
	}
	return nil
}

// term parses one conjunct: a single predicate or a parenthesised OR group.
func (p *parser) term(st *Statement) error {
	if p.cur().isPunct("(") {
		p.next()
		var clause core.Clause
		for {
			atoms, err := p.atoms()
			if err != nil {
				return err
			}
			clause.Atoms = append(clause.Atoms, atoms...)
			if p.cur().isKeyword("OR") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		st.Clauses = append(st.Clauses, clause)
		return nil
	}
	atoms, err := p.atoms()
	if err != nil {
		return err
	}
	for _, a := range atoms {
		st.Clauses = append(st.Clauses, core.Clause{Atoms: []core.Atom{a}})
	}
	return nil
}

// atoms parses one predicate into its atom expansion.
func (p *parser) atoms() ([]core.Atom, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.cur().isPunct("="):
		p.next()
		// Either act = 'name' or det = Action('a', 'o1', ...).
		if p.cur().kind == tokString {
			return []core.Atom{core.ActionAtom(p.next().text)}, nil
		}
		if p.cur().isKeyword("Action") {
			p.next()
			return p.actionCall()
		}
		return nil, p.errf("expected action name or Action(...)")
	case p.cur().isPunct("."):
		p.next()
		method, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.EqualFold(method, "include") || strings.EqualFold(method, "inc"):
			var out []core.Atom
			err := p.stringArgs(func(s string) { out = append(out, core.ObjectAtom(s)) })
			return out, err
		case strings.EqualFold(method, "leftOf"):
			return p.relationCall(detect.LeftOf)
		case strings.EqualFold(method, "rightOf"):
			return p.relationCall(detect.RightOf)
		case strings.EqualFold(method, "near"):
			return p.relationCall(detect.Near)
		default:
			return nil, fmt.Errorf("sqlq: unknown predicate method %s.%s", name, method)
		}
	default:
		return nil, p.errf("expected '=' or '.' after %q", name)
	}
}

// relationCall parses rel.X('a', 'b').
func (p *parser) relationCall(rel detect.Relation) ([]core.Atom, error) {
	var args []string
	if err := p.stringArgs(func(s string) { args = append(args, s) }); err != nil {
		return nil, err
	}
	if len(args) != 2 {
		return nil, fmt.Errorf("sqlq: relation %s needs exactly two object arguments", rel)
	}
	return []core.Atom{core.RelationAtom(rel, args[0], args[1])}, nil
}

// actionCall parses Action('act' [, 'obj']*): the first argument is the
// action, the rest are object predicates (the paper's first-page syntax).
func (p *parser) actionCall() ([]core.Atom, error) {
	var out []core.Atom
	first := true
	err := p.stringArgs(func(s string) {
		if first {
			out = append(out, core.ActionAtom(s))
			first = false
			return
		}
		out = append(out, core.ObjectAtom(s))
	})
	return out, err
}

func (p *parser) stringArgs(add func(string)) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		if p.cur().kind != tokString {
			return p.errf("expected string literal")
		}
		add(p.next().text)
		if p.cur().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	return p.expectPunct(")")
}
