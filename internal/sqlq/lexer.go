// Package sqlq implements the paper's SQL-like query dialect:
//
//	SELECT MERGE(clipID) AS Sequence
//	FROM (PROCESS inputVideo PRODUCE clipID,
//	      obj USING ObjectDetector, act USING ActionRecognizer)
//	WHERE act = 'jumping' AND obj.include('car', 'human')
//
// with the offline extension
//
//	SELECT MERGE(clipID) AS Sequence, RANK(act, obj) ...
//	ORDER BY RANK(act, obj) LIMIT 5
//
// An EXPLAIN prefix on either form asks the executor to surface the
// predicate-ordering plan the query ran with:
//
//	EXPLAIN SELECT MERGE(clipID) AS Sequence ...
//
// Parse produces a Statement; Statement.Plan maps it onto the engine's
// query model and chooses the online or offline execution path.
package sqlq

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // ( ) , = .
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lex tokenises the input. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '.' || c == ';':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlq: unterminated string starting at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sqlq: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) isPunct(p string) bool { return t.kind == tokPunct && t.text == p }

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}
