package sqlq

import (
	"strings"
	"testing"

	"svqact/internal/core"
)

// FuzzParse drives the lexer and parser with arbitrary byte strings. The
// property is robustness, not acceptance: Parse must either return an error
// or a Statement whose Plan derivation also terminates without panicking.
// Accepted statements must additionally satisfy the parser's own structural
// contracts.
func FuzzParse(f *testing.F) {
	seeds := []string{
		onlineQuery,
		offlineQuery,
		"EXPLAIN " + onlineQuery,
		"explain " + offlineQuery,
		`EXPLAIN SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' LIMIT 3`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE (act='a' OR act='b') AND obj.include('x','y')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act='a' AND rel.leftOf('x','y')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE det = Action('a','x')`,
		`select merge(c) as s from (process v produce c, act using I3D) where act='a';`,
		`SELECT MERGE(c FROM`,
		`EXPLAIN`,
		`'unterminated`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act=42`,
		"\x00\xff(=.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			if st != nil {
				t.Errorf("Parse returned both a statement and an error: %v", err)
			}
			return
		}
		// Accepted statements must carry at least one action atom (the
		// whereClause contract) and plan deterministically.
		actions := 0
		for _, c := range st.Clauses {
			for _, a := range c.Atoms {
				if a.Kind == core.ActionPredicate {
					actions++
				}
			}
		}
		if actions == 0 {
			t.Errorf("accepted statement has no action atom: %q", input)
		}
		plan, perr := st.Plan()
		if perr != nil {
			return // statements may parse yet fail semantic planning
		}
		if plan.Explain != st.Explain {
			t.Errorf("plan dropped the EXPLAIN flag for %q", input)
		}
		if !plan.Online && plan.K <= 0 {
			t.Errorf("offline plan without positive K for %q", input)
		}
	})
}

// FuzzLex targets the tokeniser alone: it must terminate and either error
// or produce a token stream ending in EOF with in-bounds offsets.
func FuzzLex(f *testing.F) {
	for _, s := range []string{onlineQuery, "EXPLAIN " + offlineQuery, `a 'b' "c" 42 (),=.;`, `'open`, "\xf0\x28\x8c\x28"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Errorf("token stream does not end in EOF for %q", input)
		}
		for _, tok := range toks {
			if tok.pos < 0 || tok.pos > len(input) {
				t.Errorf("token offset %d out of bounds for %q", tok.pos, input)
			}
			if tok.kind != tokEOF && tok.kind != tokString && !strings.Contains(input, tok.text) {
				t.Errorf("token text %q not present in input %q", tok.text, input)
			}
		}
	})
}
