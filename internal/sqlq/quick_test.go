package sqlq

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds the parser arbitrary byte soup; it must
// return an error or a statement, never panic.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on input %q", input)
				ok = false
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserKeywordSoup throws random sequences of dialect tokens at
// the parser — closer to real near-miss inputs than raw bytes.
func TestQuickParserKeywordSoup(t *testing.T) {
	words := []string{
		"SELECT", "MERGE", "FROM", "PROCESS", "PRODUCE", "USING", "WHERE",
		"AND", "OR", "ORDER", "BY", "RANK", "LIMIT", "AS", "act", "obj",
		"rel", "include", "leftOf", "near", "(", ")", ",", "=", ".", "'x'",
		"'car'", "42", "clipID", "inputVideo",
	}
	f := func(picks []uint8) (ok bool) {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(words[int(p)%len(words)])
			sb.WriteByte(' ')
		}
		defer func() {
			if recover() != nil {
				t.Logf("panic on input %q", sb.String())
				ok = false
			}
		}()
		if st, err := Parse(sb.String()); err == nil {
			// Whatever parses must also survive planning (or fail cleanly).
			_, _ = st.Plan()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripBasicQueries generates well-formed basic statements and
// checks that parsing recovers exactly the query that was rendered.
func TestQuickRoundTripBasicQueries(t *testing.T) {
	names := []string{"a", "bb", "c_c", "dog", "jumping", "wine_glass"}
	f := func(actIdx uint8, objIdx []uint8, limit uint8) bool {
		act := names[int(actIdx)%len(names)]
		seen := map[string]bool{}
		var objs []string
		for _, oi := range objIdx {
			n := names[int(oi)%len(names)]
			if !seen[n] {
				seen[n] = true
				objs = append(objs, n)
			}
		}
		var sb strings.Builder
		sb.WriteString("SELECT MERGE(clipID) AS s FROM (PROCESS src PRODUCE clipID) WHERE act='")
		sb.WriteString(act)
		sb.WriteString("'")
		for _, o := range objs {
			sb.WriteString(" AND obj.include('")
			sb.WriteString(o)
			sb.WriteString("')")
		}
		k := int(limit)%20 + 1
		if limit%2 == 0 {
			sb.WriteString(" LIMIT ")
			sb.WriteString(strings.Repeat("", 0))
			sb.WriteString(itoa(k))
		}
		st, err := Parse(sb.String())
		if err != nil {
			t.Logf("parse failed for %q: %v", sb.String(), err)
			return false
		}
		if st.Action != act {
			return false
		}
		if len(st.Objects) != len(objs) {
			return false
		}
		for i := range objs {
			if st.Objects[i] != objs[i] {
				return false
			}
		}
		if limit%2 == 0 && st.Limit != k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
