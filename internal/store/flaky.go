package store

import (
	"errors"
	"os"
	"sync"
)

// ErrCrashed is returned by a FlakyFS once its injected crash point has been
// reached: the op at the crash point fails and every later mutating op fails
// too, modelling a process that died mid-save. State already on disk stays
// exactly as the crashed process left it.
var ErrCrashed = errors.New("store: injected crash")

// ErrNoSpace is returned by a FlakyFS whose byte budget is exhausted,
// modelling ENOSPC. Unlike a crash, later non-write operations (removes,
// renames of already-written files) still succeed, as they do on a full disk.
var ErrNoSpace = errors.New("store: injected disk full")

// FlakyOptions configure a FlakyFS.
type FlakyOptions struct {
	// FailAt injects a crash at the n-th mutating operation (1-based):
	// that op fails with ErrCrashed and so does everything after it.
	// 0 disables crash injection (the FS then only counts ops).
	FailAt int
	// ShortWrite makes the crashing operation, if it is a Write, persist
	// the first half of its buffer before failing — a torn write.
	ShortWrite bool
	// ByteBudget, when positive, bounds the total bytes written; the write
	// that would exceed it persists what fits and fails with ErrNoSpace,
	// as do all subsequent writes.
	ByteBudget int
}

// FlakyFS wraps an FS with deterministic fault injection for crash-safety
// tests: run once with FailAt 0 to count the mutating ops a save performs,
// then re-run with FailAt = 1..n to simulate dying at every step.
type FlakyFS struct {
	inner FS
	opt   FlakyOptions

	mu      sync.Mutex
	ops     int
	written int
	crashed bool
}

// NewFlakyFS builds a fault-injecting wrapper around inner.
func NewFlakyFS(inner FS, opt FlakyOptions) *FlakyFS {
	return &FlakyFS{inner: inner, opt: opt}
}

// Ops returns the number of mutating operations attempted so far.
func (f *FlakyFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injected crash point was reached.
func (f *FlakyFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating op and reports whether it must fail. The second
// result is true when this op is the crash point itself (for ShortWrite).
func (f *FlakyFS) step() (fail, atCrashPoint bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, false
	}
	f.ops++
	if f.opt.FailAt > 0 && f.ops >= f.opt.FailAt {
		f.crashed = true
		return true, true
	}
	return false, false
}

func (f *FlakyFS) Create(path string) (File, error) {
	if fail, _ := f.step(); fail {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{fs: f, inner: inner}, nil
}

func (f *FlakyFS) Rename(oldpath, newpath string) error {
	if fail, _ := f.step(); fail {
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FlakyFS) Remove(path string) error {
	if fail, _ := f.step(); fail {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

func (f *FlakyFS) RemoveAll(path string) error {
	if fail, _ := f.step(); fail {
		return ErrCrashed
	}
	return f.inner.RemoveAll(path)
}

func (f *FlakyFS) MkdirAll(path string, perm os.FileMode) error {
	if fail, _ := f.step(); fail {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FlakyFS) SyncDir(path string) error {
	if fail, _ := f.step(); fail {
		return ErrCrashed
	}
	return f.inner.SyncDir(path)
}

// Reads pass through untouched: crash safety is about the write path, and
// verification after a simulated crash reads whatever landed on disk.

func (f *FlakyFS) ReadFile(path string) ([]byte, error)       { return f.inner.ReadFile(path) }
func (f *FlakyFS) ReadDir(path string) ([]os.DirEntry, error) { return f.inner.ReadDir(path) }
func (f *FlakyFS) Stat(path string) (os.FileInfo, error)      { return f.inner.Stat(path) }

// flakyFile injects faults on writes and syncs of one open file.
type flakyFile struct {
	fs    *FlakyFS
	inner File
}

func (f *flakyFile) Write(p []byte) (int, error) {
	fail, atCrash := f.fs.step()
	if fail {
		if atCrash && f.fs.opt.ShortWrite && len(p) > 1 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, ErrCrashed
		}
		return 0, ErrCrashed
	}
	if b := f.fs.opt.ByteBudget; b > 0 {
		f.fs.mu.Lock()
		room := b - f.fs.written
		f.fs.written += len(p)
		f.fs.mu.Unlock()
		if room < len(p) {
			if room > 0 {
				n, _ := f.inner.Write(p[:room])
				return n, ErrNoSpace
			}
			return 0, ErrNoSpace
		}
	}
	return f.inner.Write(p)
}

func (f *flakyFile) Sync() error {
	if fail, _ := f.fs.step(); fail {
		return ErrCrashed
	}
	return f.inner.Sync()
}

// Close always reaches the inner file so tests never leak descriptors; a
// crashed filesystem reports the crash but still releases the handle.
func (f *flakyFile) Close() error {
	err := f.inner.Close()
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return err
}
