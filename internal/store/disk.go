package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Disk layout of a clip score table:
//
//	offset 0:  magic "SVQTBL1\n" (8 bytes)
//	offset 8:  row count, uint64 little-endian
//	offset 16: name length, uint16; name bytes
//	then:      count rows ordered by non-increasing score (rank region)
//	then:      count rows ordered by ascending clip id   (clip region)
//
// Each row is 12 bytes: clip uint32, score float64. The rank region serves
// sorted scans from either end; the clip region serves random access via
// binary search. Rows are written twice to trade disk (24 bytes per clip and
// type, negligible) for strictly sequential reads on both access paths.

var diskMagic = [8]byte{'S', 'V', 'Q', 'T', 'B', 'L', '1', '\n'}

const rowSize = 12

// WriteTable writes a clip score table to path in the binary format above.
func WriteTable(path, name string, entries []Entry) error {
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("store: table name too long (%d bytes)", len(name))
	}
	byRank := append([]Entry(nil), entries...)
	seen := make(map[int]bool, len(byRank))
	for _, e := range byRank {
		if e.Clip < 0 || e.Clip > math.MaxUint32 {
			return fmt.Errorf("store: clip id %d out of range", e.Clip)
		}
		if seen[e.Clip] {
			return fmt.Errorf("store: duplicate clip %d in table %q", e.Clip, name)
		}
		seen[e.Clip] = true
	}
	sort.Slice(byRank, func(i, j int) bool {
		if byRank[i].Score != byRank[j].Score {
			return byRank[i].Score > byRank[j].Score
		}
		return byRank[i].Clip < byRank[j].Clip
	})
	byClip := append([]Entry(nil), byRank...)
	sort.Slice(byClip, func(i, j int) bool { return byClip[i].Clip < byClip[j].Clip })

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(f)
	write := func(data any) {
		if err == nil {
			err = binary.Write(w, binary.LittleEndian, data)
		}
	}
	write(diskMagic)
	write(uint64(len(byRank)))
	write(uint16(len(name)))
	if err == nil {
		_, err = w.WriteString(name)
	}
	writeRows := func(rows []Entry) {
		for _, e := range rows {
			write(uint32(e.Clip))
			write(e.Score)
		}
	}
	writeRows(byRank)
	writeRows(byClip)
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	return nil
}

// DiskTable is a file-backed clip score table. It reads rows on demand with
// ReadAt, so opening is O(1) in table size.
type DiskTable struct {
	f       *os.File
	name    string
	count   int
	rankOff int64
	clipOff int64
}

// OpenDiskTable opens a table written by WriteTable.
func OpenDiskTable(path string) (*DiskTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	t := &DiskTable{f: f}
	if err := t.readHeader(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	return t, nil
}

func (t *DiskTable) readHeader() error {
	var magic [8]byte
	if _, err := io.ReadFull(t.f, magic[:]); err != nil {
		return err
	}
	if magic != diskMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	var count uint64
	if err := binary.Read(t.f, binary.LittleEndian, &count); err != nil {
		return err
	}
	var nameLen uint16
	if err := binary.Read(t.f, binary.LittleEndian, &nameLen); err != nil {
		return err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(t.f, name); err != nil {
		return err
	}
	t.name = string(name)
	t.count = int(count)
	t.rankOff = int64(8 + 8 + 2 + int(nameLen))
	t.clipOff = t.rankOff + int64(t.count)*rowSize
	return nil
}

// Close releases the underlying file.
func (t *DiskTable) Close() error { return t.f.Close() }

// Name implements Table.
func (t *DiskTable) Name() string { return t.name }

// Len implements Table.
func (t *DiskTable) Len() int { return t.count }

func (t *DiskTable) rowAt(off int64) (Entry, error) {
	var buf [rowSize]byte
	if _, err := t.f.ReadAt(buf[:], off); err != nil {
		return Entry{}, fmt.Errorf("store: reading row of %s: %w", t.name, err)
	}
	clip := binary.LittleEndian.Uint32(buf[0:4])
	score := math.Float64frombits(binary.LittleEndian.Uint64(buf[4:12]))
	return Entry{Clip: int(clip), Score: score}, nil
}

// SortedAt implements Table.
func (t *DiskTable) SortedAt(i int) (Entry, error) {
	if i < 0 || i >= t.count {
		return Entry{}, fmt.Errorf("store: SortedAt(%d) out of range [0,%d) in table %q", i, t.count, t.name)
	}
	return t.rowAt(t.rankOff + int64(i)*rowSize)
}

// ScoreOf implements Table by binary search over the clip-ordered region.
func (t *DiskTable) ScoreOf(clip int) (float64, bool, error) {
	lo, hi := 0, t.count
	for lo < hi {
		mid := (lo + hi) / 2
		e, err := t.rowAt(t.clipOff + int64(mid)*rowSize)
		if err != nil {
			return 0, false, err
		}
		switch {
		case e.Clip == clip:
			return e.Score, true, nil
		case e.Clip < clip:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false, nil
}
