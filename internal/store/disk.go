package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Disk layout of a clip score table (format 2, checksummed):
//
//	offset 0:  magic "SVQTBL2\n" (8 bytes)
//	offset 8:  row count, uint64 little-endian
//	offset 16: name length, uint16; name bytes
//	then:      header CRC32-C, uint32 (over everything above)
//	then:      count rows ordered by non-increasing score (rank region)
//	then:      rank region CRC32-C, uint32
//	then:      count rows ordered by ascending clip id   (clip region)
//	then:      clip region CRC32-C, uint32
//
// Each row is 12 bytes: clip uint32, score float64. The rank region serves
// sorted scans from either end; the clip region serves random access via
// binary search. Rows are written twice to trade disk (24 bytes per clip and
// type, negligible) for strictly sequential reads on both access paths.
//
// Durability: WriteTable writes to path+".tmp", fsyncs, and renames into
// place, so the file at path is always complete. OpenDiskTable verifies the
// whole file — magic, header checksum, exact size, both region checksums,
// the sort invariant of each region, and that the regions hold the same
// rows — and returns a *CorruptError on any violation.
//
// Access: the open table holds a read-only view of the verified bytes
// (mmap on unix, one heap buffer elsewhere — see mapFile) and decodes rows
// in place, so SortedAt and ScoreOf are zero-copy, zero-syscall, and
// allocation-free: rank's offline algorithms walk the sorted region without
// ever materialising []Entry. The view is taken before verification, so
// what was checksummed is exactly what is served, and it survives closing
// and even unlinking the file; tables are immutable once renamed into
// place, so the mapped bytes never change underneath a reader.

var (
	diskMagicV1 = [8]byte{'S', 'V', 'Q', 'T', 'B', 'L', '1', '\n'}
	diskMagic   = [8]byte{'S', 'V', 'Q', 'T', 'B', 'L', '2', '\n'}
)

const (
	rowSize      = 12
	fixedHdrSize = 8 + 8 + 2 // magic, count, name length
	crcSize      = 4
)

// WriteTable writes a clip score table to path in the binary format above,
// atomically (temp file + fsync + rename).
func WriteTable(path, name string, entries []Entry) error {
	return WriteTableFS(OS, path, name, entries)
}

// WriteTableFS is WriteTable against an injectable filesystem.
func WriteTableFS(fsys FS, path, name string, entries []Entry) (err error) {
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("store: table name too long (%d bytes)", len(name))
	}
	byRank := append([]Entry(nil), entries...)
	seen := make(map[int]bool, len(byRank))
	for _, e := range byRank {
		if e.Clip < 0 || e.Clip > math.MaxUint32 {
			return fmt.Errorf("store: clip id %d out of range", e.Clip)
		}
		if math.IsNaN(e.Score) {
			return fmt.Errorf("store: NaN score for clip %d in table %q", e.Clip, name)
		}
		if seen[e.Clip] {
			return fmt.Errorf("store: duplicate clip %d in table %q", e.Clip, name)
		}
		seen[e.Clip] = true
	}
	sort.Slice(byRank, func(i, j int) bool {
		if byRank[i].Score != byRank[j].Score {
			return byRank[i].Score > byRank[j].Score
		}
		return byRank[i].Clip < byRank[j].Clip
	})
	byClip := append([]Entry(nil), byRank...)
	sort.Slice(byClip, func(i, j int) bool { return byClip[i].Clip < byClip[j].Clip })

	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer func() {
		if err != nil {
			if f != nil {
				_ = f.Close()
			}
			_ = fsys.Remove(tmp)
			err = fmt.Errorf("store: writing %s: %w", path, err)
		}
	}()

	w := bufio.NewWriter(f)
	hdr := make([]byte, 0, fixedHdrSize+len(name))
	hdr = append(hdr, diskMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(byRank)))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	if _, err = w.Write(hdr); err != nil {
		return err
	}
	if err = binary.Write(w, binary.LittleEndian, Checksum(hdr)); err != nil {
		return err
	}
	writeRegion := func(rows []Entry) error {
		crc := uint32(0)
		var buf [rowSize]byte
		for _, e := range rows {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(e.Clip))
			binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(e.Score))
			crc = crc32.Update(crc, crcTable, buf[:])
			if _, werr := w.Write(buf[:]); werr != nil {
				return werr
			}
		}
		return binary.Write(w, binary.LittleEndian, crc)
	}
	if err = writeRegion(byRank); err != nil {
		return err
	}
	if err = writeRegion(byClip); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		f = nil
		return err
	}
	f = nil
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// DiskTable is a file-backed clip score table served from a read-only
// zero-copy view of the verified file bytes. The whole file is verified
// once at open; after that, row access decodes in place with no syscalls
// and no allocation.
type DiskTable struct {
	view      []byte
	closeView func() error
	name      string
	count     int
	rankOff   int
	clipOff   int
	minClip   int
	maxClip   int
}

// OpenDiskTable opens and fully verifies a table written by WriteTable.
// Integrity violations — bad magic, checksum mismatches, truncation, broken
// sort order, disagreeing regions — return a *CorruptError.
func OpenDiskTable(path string) (*DiskTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The view outlives the descriptor on every platform, so the file can be
	// closed as soon as the mapping (or heap read) is established.
	defer f.Close()
	return openVerify(f, path)
}

func openVerify(f *os.File, path string) (*DiskTable, error) {
	corrupt := func(format string, args ...any) (*DiskTable, error) {
		return nil, &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	view, closeView, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	verified := false
	defer func() {
		if !verified {
			_ = closeView()
		}
	}()

	if len(view) < fixedHdrSize {
		return corrupt("truncated header (%d bytes)", len(view))
	}
	var magic [8]byte
	copy(magic[:], view)
	if magic == diskMagicV1 {
		return corrupt("legacy un-checksummed table (format 1); re-ingest the repository")
	}
	if magic != diskMagic {
		return corrupt("bad magic %q", view[:8])
	}
	count64 := binary.LittleEndian.Uint64(view[8:16])
	nameLen := int(binary.LittleEndian.Uint16(view[16:18]))
	if count64 > math.MaxInt64/(2*rowSize) {
		return corrupt("implausible row count %d", count64)
	}
	count := int(count64)
	headerLen := fixedHdrSize + nameLen + crcSize
	if len(view) < headerLen {
		return corrupt("truncated table name or header checksum")
	}
	hdrCRC := crc32.Update(0, crcTable, view[:fixedHdrSize+nameLen])
	if got := binary.LittleEndian.Uint32(view[fixedHdrSize+nameLen : headerLen]); got != hdrCRC {
		return corrupt("header checksum mismatch (stored %08x, computed %08x)", got, hdrCRC)
	}
	wantSize := int64(headerLen) + 2*(int64(count)*rowSize+crcSize)
	if fi.Size() != wantSize {
		return corrupt("file is %d bytes, want %d for %d rows", fi.Size(), wantSize, count)
	}

	t := &DiskTable{
		view:      view,
		closeView: closeView,
		name:      string(view[fixedHdrSize : fixedHdrSize+nameLen]),
		count:     count,
		rankOff:   headerLen,
		clipOff:   headerLen + count*rowSize + crcSize,
	}

	// checkRegion verifies one region's CRC (a single pass over its bytes)
	// and per-row invariant, and folds the per-row checksums
	// order-independently so the two regions can be proven to hold identical
	// row sets.
	checkRegion := func(region string, off int, check func(i, clip int, score float64) error) (uint32, error) {
		rows := view[off : off+count*rowSize]
		crc := crc32.Update(0, crcTable, rows)
		if got := binary.LittleEndian.Uint32(view[off+count*rowSize : off+count*rowSize+crcSize]); got != crc {
			return 0, &CorruptError{Path: path, Detail: fmt.Sprintf("%s region checksum mismatch (stored %08x, computed %08x)", region, got, crc)}
		}
		fold := uint32(0)
		for i := 0; i < count; i++ {
			row := rows[i*rowSize : (i+1)*rowSize]
			fold ^= Checksum(row)
			clip := int(binary.LittleEndian.Uint32(row[0:4]))
			score := math.Float64frombits(binary.LittleEndian.Uint64(row[4:12]))
			if math.IsNaN(score) {
				return 0, &CorruptError{Path: path, Detail: fmt.Sprintf("NaN score at %s row %d", region, i)}
			}
			if err := check(i, clip, score); err != nil {
				return 0, err
			}
		}
		return fold, nil
	}

	prevScore, prevClip := math.Inf(1), -1
	rankFold, err := checkRegion("rank", t.rankOff, func(i, clip int, score float64) error {
		if i > 0 && (score > prevScore || (score == prevScore && clip <= prevClip)) {
			return &CorruptError{Path: path, Detail: fmt.Sprintf("rank region order violated at row %d", i)}
		}
		prevScore, prevClip = score, clip
		return nil
	})
	if err != nil {
		return nil, err
	}
	prevClip = -1
	clipFold, err := checkRegion("clip", t.clipOff, func(i, clip int, score float64) error {
		if clip <= prevClip {
			return &CorruptError{Path: path, Detail: fmt.Sprintf("clip region order violated at row %d", i)}
		}
		prevClip = clip
		if i == 0 {
			t.minClip = clip
		}
		t.maxClip = clip
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rankFold != clipFold {
		return corrupt("rank and clip regions hold different rows")
	}
	verified = true
	return t, nil
}

// Close releases the view. The table must not be used afterwards.
func (t *DiskTable) Close() error {
	if t.closeView == nil {
		return nil
	}
	cv := t.closeView
	t.closeView, t.view = nil, nil
	return cv()
}

// Name implements Table.
func (t *DiskTable) Name() string { return t.name }

// Len implements Table.
func (t *DiskTable) Len() int { return t.count }

// ClipBounds returns the smallest and largest clip id stored; ok is false
// for an empty table.
func (t *DiskTable) ClipBounds() (lo, hi int, ok bool) {
	if t.count == 0 {
		return 0, 0, false
	}
	return t.minClip, t.maxClip, true
}

// rowAt decodes the row at a byte offset straight out of the view.
func (t *DiskTable) rowAt(off int) Entry {
	row := t.view[off : off+rowSize]
	return Entry{
		Clip:  int(binary.LittleEndian.Uint32(row[0:4])),
		Score: math.Float64frombits(binary.LittleEndian.Uint64(row[4:12])),
	}
}

// SortedAt implements Table. The error return exists only for the Table
// contract (bounds violations and use after Close); in-range access over an
// open table cannot fail.
func (t *DiskTable) SortedAt(i int) (Entry, error) {
	if i < 0 || i >= t.count {
		return Entry{}, fmt.Errorf("store: SortedAt(%d) out of range [0,%d) in table %q", i, t.count, t.name)
	}
	if t.view == nil {
		return Entry{}, fmt.Errorf("store: SortedAt on closed table %q", t.name)
	}
	return t.rowAt(t.rankOff + i*rowSize), nil
}

// ScoreOf implements Table by binary search over the clip-ordered region,
// decoding only the clip ids until the probe hits.
func (t *DiskTable) ScoreOf(clip int) (float64, bool, error) {
	if clip < 0 || t.count == 0 || clip < t.minClip || clip > t.maxClip {
		return 0, false, nil
	}
	if t.view == nil {
		return 0, false, fmt.Errorf("store: ScoreOf on closed table %q", t.name)
	}
	lo, hi := 0, t.count
	for lo < hi {
		mid := (lo + hi) / 2
		off := t.clipOff + mid*rowSize
		switch c := int(binary.LittleEndian.Uint32(t.view[off : off+4])); {
		case c == clip:
			return math.Float64frombits(binary.LittleEndian.Uint64(t.view[off+4 : off+12])), true, nil
		case c < clip:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false, nil
}
