package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// at reads a sorted row, failing the test on error.
func at(tb testing.TB, t Table, i int) Entry {
	tb.Helper()
	e, err := t.SortedAt(i)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// score random-accesses a clip, failing the test on error.
func score(tb testing.TB, t Table, clip int) (float64, bool) {
	tb.Helper()
	s, ok, err := t.ScoreOf(clip)
	if err != nil {
		tb.Fatal(err)
	}
	return s, ok
}

func sampleEntries(n int, seed int64) []Entry {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(n * 3)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Clip: perm[i], Score: r.Float64() * 100}
	}
	return entries
}

func TestMemTableOrdering(t *testing.T) {
	entries := sampleEntries(500, 1)
	tbl, err := NewMemTable("car", entries)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "car" || tbl.Len() != 500 {
		t.Fatalf("name/len wrong: %s %d", tbl.Name(), tbl.Len())
	}
	for i := 1; i < tbl.Len(); i++ {
		if at(t, tbl, i).Score > at(t, tbl, i-1).Score {
			t.Fatalf("rank order violated at %d", i)
		}
	}
	for _, e := range entries {
		s, ok := score(t, tbl, e.Clip)
		if !ok || s != e.Score {
			t.Fatalf("ScoreOf(%d) = %v,%v want %v", e.Clip, s, ok, e.Score)
		}
	}
	if _, ok := score(t, tbl, -1); ok {
		t.Error("absent clip should not be found")
	}
}

func TestMemTableRejectsDuplicates(t *testing.T) {
	_, err := NewMemTable("x", []Entry{{Clip: 1, Score: 2}, {Clip: 1, Score: 3}})
	if err == nil {
		t.Fatal("duplicate clip should be rejected")
	}
}

func TestMemTableTieBreakDeterministic(t *testing.T) {
	a, _ := NewMemTable("x", []Entry{{Clip: 5, Score: 1}, {Clip: 2, Score: 1}, {Clip: 9, Score: 1}})
	if at(t, a, 0).Clip != 2 || at(t, a, 1).Clip != 5 || at(t, a, 2).Clip != 9 {
		t.Errorf("equal scores must order by clip id: %v %v %v", at(t, a, 0), at(t, a, 1), at(t, a, 2))
	}
}

func TestDiskTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "car.tbl")
	entries := sampleEntries(1000, 2)
	if err := WriteTable(path, "car", entries); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDiskTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	mem, _ := NewMemTable("car", entries)
	if dt.Name() != "car" || dt.Len() != mem.Len() {
		t.Fatalf("header mismatch: %s %d", dt.Name(), dt.Len())
	}
	for i := 0; i < mem.Len(); i++ {
		if at(t, dt, i) != at(t, mem, i) {
			t.Fatalf("row %d: disk %v mem %v", i, at(t, dt, i), at(t, mem, i))
		}
	}
	for _, e := range entries {
		s, ok := score(t, dt, e.Clip)
		if !ok || s != e.Score {
			t.Fatalf("disk ScoreOf(%d) = %v,%v", e.Clip, s, ok)
		}
	}
	if _, ok := score(t, dt, 999_999); ok {
		t.Error("absent clip found on disk")
	}
}

func TestDiskTableEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.tbl")
	if err := WriteTable(path, "nothing", nil); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDiskTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	if dt.Len() != 0 {
		t.Errorf("Len = %d", dt.Len())
	}
	if _, ok := score(t, dt, 0); ok {
		t.Error("empty table should find nothing")
	}
}

func TestWriteTableValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteTable(filepath.Join(dir, "d.tbl"), "d", []Entry{{Clip: 1, Score: 1}, {Clip: 1, Score: 2}}); err == nil {
		t.Error("duplicate clips should be rejected")
	}
	if err := WriteTable(filepath.Join(dir, "n.tbl"), "n", []Entry{{Clip: -1, Score: 1}}); err == nil {
		t.Error("negative clip should be rejected")
	}
	if err := WriteTable(filepath.Join(dir, "missing", "x.tbl"), "x", nil); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestOpenDiskTableBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.tbl")
	if err := os.WriteFile(bad, []byte("not a table at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskTable(bad); err == nil {
		t.Error("garbage file should fail to open")
	}
	if _, err := OpenDiskTable(filepath.Join(dir, "absent.tbl")); err == nil {
		t.Error("absent file should fail to open")
	}
}

func TestSortedAtOutOfRangeErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.tbl")
	if err := WriteTable(path, "p", []Entry{{Clip: 0, Score: 1}}); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDiskTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	if _, err := dt.SortedAt(5); err == nil {
		t.Error("out-of-range row should return an error, not panic")
	}
	if _, err := dt.SortedAt(-1); err == nil {
		t.Error("negative row should return an error")
	}
	mem, _ := NewMemTable("p", []Entry{{Clip: 0, Score: 1}})
	if _, err := mem.SortedAt(7); err == nil {
		t.Error("mem out-of-range row should return an error")
	}
}

// TestDiskTableViewOutlivesFile pins the zero-copy view's lifetime
// contract: an open table serves verified bytes even after the file is
// unlinked (compaction removes superseded generations while readers may
// still hold them), and a closed table errors cleanly instead of touching
// freed memory.
func TestDiskTableViewOutlivesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unlink.tbl")
	entries := sampleEntries(64, 9)
	if err := WriteTable(path, "unlink", entries); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDiskTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dt.Len(); i++ {
		if _, err := dt.SortedAt(i); err != nil {
			t.Fatalf("SortedAt(%d) after unlink: %v", i, err)
		}
	}
	for _, e := range entries {
		got, ok, err := dt.ScoreOf(e.Clip)
		if err != nil || !ok || got != e.Score {
			t.Fatalf("ScoreOf(%d) after unlink = (%v, %v, %v), want (%v, true, nil)", e.Clip, got, ok, err, e.Score)
		}
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dt.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := dt.SortedAt(0); err == nil {
		t.Error("SortedAt on a closed table should error")
	}
	if _, _, err := dt.ScoreOf(entries[0].Clip); err == nil {
		t.Error("ScoreOf on a closed table should error")
	}
}

func TestStatsCounting(t *testing.T) {
	tbl, _ := NewMemTable("x", sampleEntries(100, 3))
	var st Stats
	c := WithStats(tbl, &st)
	if c.Name() != "x" || c.Len() != 100 {
		t.Fatal("wrapper must delegate metadata without counting")
	}
	if st.Sorted != 0 || st.Random != 0 {
		t.Fatal("metadata should not count as accesses")
	}
	for i := 0; i < 10; i++ {
		c.SortedAt(i)
	}
	c.ScoreOf(1)
	c.ScoreOf(2)
	c.ScoreOf(-5)
	if st.Sorted != 10 || st.Random != 3 {
		t.Errorf("stats = %+v, want 10 sorted, 3 random", st)
	}
	var total Stats
	total.Add(st)
	total.Add(Stats{Sorted: 1, Random: 2})
	if total.Sorted != 11 || total.Random != 5 {
		t.Errorf("Add = %+v", total)
	}
}

// TestDiskMatchesMemProperty exercises both implementations with identical
// random workloads.
func TestDiskMatchesMemProperty(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		entries := sampleEntries(257, seed)
		path := filepath.Join(t.TempDir(), "t.tbl")
		if err := WriteTable(path, "t", entries); err != nil {
			t.Fatal(err)
		}
		dt, err := OpenDiskTable(path)
		if err != nil {
			t.Fatal(err)
		}
		mem, _ := NewMemTable("t", entries)
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 500; trial++ {
			if r.Intn(2) == 0 {
				i := r.Intn(mem.Len())
				if at(t, dt, i) != at(t, mem, i) {
					t.Fatalf("SortedAt(%d) differs", i)
				}
			} else {
				clip := r.Intn(800)
				ds, dok := score(t, dt, clip)
				ms, mok := score(t, mem, clip)
				if ds != ms || dok != mok {
					t.Fatalf("ScoreOf(%d): disk %v,%v mem %v,%v", clip, ds, dok, ms, mok)
				}
			}
		}
		dt.Close()
	}
}

// TestScoresSortedByClipRegion validates the on-disk clip region is usable
// for range scans by clip id (ingestion invariant).
func TestScoresSortedByClipRegion(t *testing.T) {
	entries := sampleEntries(300, 5)
	path := filepath.Join(t.TempDir(), "t.tbl")
	if err := WriteTable(path, "t", entries); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDiskTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	clips := make([]int, len(entries))
	for i, e := range entries {
		clips[i] = e.Clip
	}
	sort.Ints(clips)
	// Every clip must be findable, which exercises the full binary-search
	// region in clip order.
	for _, c := range clips {
		if _, ok := score(t, dt, c); !ok {
			t.Fatalf("clip %d not found", c)
		}
	}
}
