package store

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// CorruptError reports that persisted state failed an integrity check: a bad
// magic number, a checksum mismatch, a violated sort invariant, a truncated
// region, or a manifest whose contents cannot be trusted. It is the typed
// contract of the durable layer — corruption always surfaces as this error,
// loudly, instead of flowing into query results as silently wrong data.
type CorruptError struct {
	// Path is the file or directory that failed verification.
	Path string
	// Detail describes the violated invariant.
	Detail string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	s := fmt.Sprintf("corrupt %s: %s", e.Path, e.Detail)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err is (or wraps) a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// crcTable is the polynomial every on-disk checksum in this repository uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32-C over b — the checksum function shared by the table
// format, the manifest commit record, and fsck.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }
