package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// entriesValue draws a random set of unique-clip entries.
type entriesValue struct{ E []Entry }

// Generate implements quick.Generator.
func (entriesValue) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(60)
	perm := r.Perm(200)
	e := make([]Entry, n)
	for i := range e {
		e[i] = Entry{Clip: perm[i], Score: r.Float64() * 50}
	}
	return reflect.ValueOf(entriesValue{E: e})
}

func TestQuickMemTableInvariants(t *testing.T) {
	f := func(v entriesValue) bool {
		tbl, err := NewMemTable("q", v.E)
		if err != nil {
			return false
		}
		if tbl.Len() != len(v.E) {
			return false
		}
		// Rank order is non-increasing and every entry is findable.
		for i := 1; i < tbl.Len(); i++ {
			cur, err := tbl.SortedAt(i)
			if err != nil {
				return false
			}
			prev, err := tbl.SortedAt(i - 1)
			if err != nil {
				return false
			}
			if cur.Score > prev.Score {
				return false
			}
		}
		for _, e := range v.E {
			s, ok, err := tbl.ScoreOf(e.Clip)
			if err != nil || !ok || s != e.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(v entriesValue) bool {
		i++
		path := filepath.Join(dir, "t.tbl")
		if err := WriteTable(path, "t", v.E); err != nil {
			return false
		}
		dt, err := OpenDiskTable(path)
		if err != nil {
			return false
		}
		defer dt.Close()
		mem, err := NewMemTable("t", v.E)
		if err != nil {
			return false
		}
		if dt.Len() != mem.Len() {
			return false
		}
		for j := 0; j < mem.Len(); j++ {
			de, derr := dt.SortedAt(j)
			me, merr := mem.SortedAt(j)
			if derr != nil || merr != nil || de != me {
				return false
			}
		}
		for _, e := range v.E {
			ds, dok, derr := dt.ScoreOf(e.Clip)
			if derr != nil || !dok || ds != e.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
