// Package store provides the storage layer of the offline engine: per-type
// clip score tables materialised during ingestion and consulted by the top-k
// query phase.
//
// A clip score table holds (clip, score) rows for one object or action type,
// ordered by score. The top-k algorithms consume tables through exactly the
// access patterns of the threshold-algorithm family: sorted access from the
// top, sorted access from the bottom, and random access by clip id — so the
// Table interface exposes precisely those, and the Stats wrapper counts them
// (the unit the paper's Tables 6 and 7 report).
//
// Two implementations are provided: an in-memory table and a file-backed
// table with a fixed-record binary layout (one region ordered by score for
// sorted scans, one ordered by clip id for random lookups by binary search).
package store

import (
	"fmt"
	"sort"
)

// Entry is one row of a clip score table.
type Entry struct {
	Clip  int
	Score float64
}

// Table is the read interface of a clip score table. Rows are unique per
// clip. Implementations must be safe for concurrent readers.
//
// Accessors return errors instead of panicking: a file-backed table can hit
// I/O failures (truncated file, yanked disk) on any read, and a query must
// degrade into a structured error rather than take the process down.
type Table interface {
	// Name identifies the table (typically the object or action type).
	Name() string
	// Len returns the number of rows.
	Len() int
	// SortedAt returns the i-th row in non-increasing score order; i counts
	// from the top (0 is the highest score). This serves both forward
	// sorted access (i ascending) and reverse sorted access from the bottom
	// (i descending from Len()-1). Out-of-range indexes and read failures
	// return an error.
	SortedAt(i int) (Entry, error)
	// ScoreOf returns the score stored for the clip, or false if the table
	// has no row for it. Read failures return an error.
	ScoreOf(clip int) (float64, bool, error)
}

// Stats counts table accesses during a query. The paper's offline evaluation
// compares algorithms by the number of random accesses; sorted accesses are
// counted as well for completeness.
type Stats struct {
	Sorted int64
	Random int64
}

// Add accumulates another stats value.
func (s *Stats) Add(o Stats) {
	s.Sorted += o.Sorted
	s.Random += o.Random
}

// counted decorates a Table with access counting.
type counted struct {
	t  Table
	st *Stats
}

// WithStats returns a view of t that increments st on every access.
func WithStats(t Table, st *Stats) Table { return &counted{t: t, st: st} }

func (c *counted) Name() string { return c.t.Name() }
func (c *counted) Len() int     { return c.t.Len() }
func (c *counted) SortedAt(i int) (Entry, error) {
	c.st.Sorted++
	return c.t.SortedAt(i)
}
func (c *counted) ScoreOf(clip int) (float64, bool, error) {
	c.st.Random++
	return c.t.ScoreOf(clip)
}

// MemTable is an in-memory clip score table.
type MemTable struct {
	name   string
	byRank []Entry // non-increasing score
	byClip map[int]float64
}

// NewMemTable builds an in-memory table from arbitrary-order entries. Clips
// must be unique.
func NewMemTable(name string, entries []Entry) (*MemTable, error) {
	t := &MemTable{
		name:   name,
		byRank: append([]Entry(nil), entries...),
		byClip: make(map[int]float64, len(entries)),
	}
	for _, e := range entries {
		if _, dup := t.byClip[e.Clip]; dup {
			return nil, fmt.Errorf("store: duplicate clip %d in table %q", e.Clip, name)
		}
		t.byClip[e.Clip] = e.Score
	}
	sort.Slice(t.byRank, func(i, j int) bool {
		if t.byRank[i].Score != t.byRank[j].Score {
			return t.byRank[i].Score > t.byRank[j].Score
		}
		return t.byRank[i].Clip < t.byRank[j].Clip // deterministic tie-break
	})
	return t, nil
}

// Name implements Table.
func (t *MemTable) Name() string { return t.name }

// Len implements Table.
func (t *MemTable) Len() int { return len(t.byRank) }

// SortedAt implements Table.
func (t *MemTable) SortedAt(i int) (Entry, error) {
	if i < 0 || i >= len(t.byRank) {
		return Entry{}, fmt.Errorf("store: SortedAt(%d) out of range [0,%d) in table %q", i, len(t.byRank), t.name)
	}
	return t.byRank[i], nil
}

// ScoreOf implements Table.
func (t *MemTable) ScoreOf(clip int) (float64, bool, error) {
	s, ok := t.byClip[clip]
	return s, ok, nil
}
