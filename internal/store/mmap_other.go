//go:build !unix

package store

import (
	"fmt"
	"math"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the first size bytes of f
// into one heap buffer. Row access is identical to the mapped path — decode
// in place, no per-access syscalls — the view just lives on the Go heap
// instead of the page cache.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("file size %d not mappable", size)
	}
	view := make([]byte, size)
	if n, err := f.ReadAt(view, 0); n != len(view) {
		return nil, nil, err
	}
	return view, func() error { return nil }, nil
}
