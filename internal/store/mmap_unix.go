//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile returns a read-only view of the first size bytes of f, backed by
// the page cache rather than the Go heap, plus the function that releases
// it. The mapping survives closing f and even unlinking the file. The view
// must not be written through, and the file must not be truncated in place
// while mapped; tables are immutable once renamed into place, so neither
// happens in normal operation.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		// Zero-length mappings are invalid; an empty view needs no cleanup.
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("file size %d not mappable", size)
	}
	view, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return view, func() error { return syscall.Munmap(view) }, nil
}
