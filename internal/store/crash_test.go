package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tblEntries(n int, seed float64) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Clip: i * 2, Score: seed + float64(n-i)}
	}
	return out
}

// readBack opens a table and returns its rank-ordered rows.
func readBack(t *testing.T, path string) (string, []Entry) {
	t.Helper()
	tbl, err := OpenDiskTable(path)
	if err != nil {
		t.Fatalf("OpenDiskTable: %v", err)
	}
	defer tbl.Close()
	out := make([]Entry, tbl.Len())
	for i := range out {
		e, err := tbl.SortedAt(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return tbl.Name(), out
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWriteTableCrashAtEveryStep simulates a crash at every mutating
// filesystem operation of a table overwrite. After each crash the file at
// the final path must open cleanly and hold either the complete old rows or
// the complete new rows — never a mixture or a truncation.
func TestWriteTableCrashAtEveryStep(t *testing.T) {
	for _, short := range []bool{false, true} {
		old := tblEntries(40, 1000)
		new_ := tblEntries(25, 2000)
		completed := false
		for step := 1; step < 200 && !completed; step++ {
			dir := t.TempDir()
			path := filepath.Join(dir, "x.tbl")
			if err := WriteTable(path, "typ", old); err != nil {
				t.Fatal(err)
			}
			ffs := NewFlakyFS(OS, FlakyOptions{FailAt: step, ShortWrite: short})
			err := WriteTableFS(ffs, path, "typ", new_)
			if !ffs.Crashed() {
				if err != nil {
					t.Fatalf("step %d (short=%v): uncrashed save failed: %v", step, short, err)
				}
				completed = true
			} else if err == nil {
				t.Fatalf("step %d (short=%v): crashed save reported success", step, short)
			}
			name, got := readBack(t, path)
			if name != "typ" || (!sameEntries(got, rankOrder(old)) && !sameEntries(got, rankOrder(new_))) {
				t.Fatalf("step %d (short=%v): table is neither old nor new (%d rows)", step, short, len(got))
			}
		}
		if !completed {
			t.Fatal("crash sweep never reached a completing save")
		}
	}
}

// rankOrder returns entries in the on-disk rank order (score descending,
// clip ascending on ties).
func rankOrder(entries []Entry) []Entry {
	tbl, err := NewMemTable("x", entries)
	if err != nil {
		panic(err)
	}
	out := make([]Entry, tbl.Len())
	for i := range out {
		out[i], _ = tbl.SortedAt(i)
	}
	return out
}

// TestWriteTableDiskFull exhausts an injected byte budget: the write must
// fail with ErrNoSpace and leave the previous table intact.
func TestWriteTableDiskFull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tbl")
	old := tblEntries(10, 1)
	if err := WriteTable(path, "typ", old); err != nil {
		t.Fatal(err)
	}
	ffs := NewFlakyFS(OS, FlakyOptions{ByteBudget: 64})
	err := WriteTableFS(ffs, path, "typ", tblEntries(50, 2))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if _, got := readBack(t, path); !sameEntries(got, rankOrder(old)) {
		t.Fatal("old table damaged by failed write")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}

// TestOpenDiskTableBitFlips flips every byte of a valid table file in turn;
// each flip must surface as a *CorruptError.
func TestOpenDiskTableBitFlips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tbl")
	if err := WriteTable(path, "car", tblEntries(12, 5)); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		tbl, err := OpenDiskTable(path)
		if err == nil {
			tbl.Close()
			t.Fatalf("flip at byte %d: open succeeded", i)
		}
		if !IsCorrupt(err) {
			t.Fatalf("flip at byte %d: err = %v, want CorruptError", i, err)
		}
	}
}

// TestOpenDiskTableTruncations truncates a valid table at every prefix
// length; each must surface as a *CorruptError.
func TestOpenDiskTableTruncations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tbl")
	if err := WriteTable(path, "car", tblEntries(6, 3)); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(orig); n++ {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		tbl, err := OpenDiskTable(path)
		if err == nil {
			tbl.Close()
			t.Fatalf("truncation to %d bytes: open succeeded", n)
		}
		if !IsCorrupt(err) {
			t.Fatalf("truncation to %d bytes: err = %v, want CorruptError", n, err)
		}
	}
}

// TestOpenDiskTableLegacyFormat: a format-1 file is detected, not misread.
func TestOpenDiskTableLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tbl")
	data := append(append([]byte(nil), diskMagicV1[:]...), make([]byte, 32)...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDiskTable(path)
	if !IsCorrupt(err) {
		t.Fatalf("err = %v, want CorruptError", err)
	}
}

// TestWriteTableRejectsBadEntries: NaN scores, duplicate and negative clips
// never reach disk.
func TestWriteTableRejectsBadEntries(t *testing.T) {
	dir := t.TempDir()
	nan := 0.0
	nan /= nan
	cases := map[string][]Entry{
		"nan":      {{Clip: 1, Score: nan}},
		"dup":      {{Clip: 1, Score: 2}, {Clip: 1, Score: 3}},
		"negative": {{Clip: -1, Score: 2}},
	}
	for name, entries := range cases {
		path := filepath.Join(dir, name+".tbl")
		if err := WriteTable(path, name, entries); err == nil {
			t.Errorf("%s: write succeeded", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: file materialised despite rejection", name)
		}
	}
}

// TestWriteFileAtomicCrash: crash at every step of an atomic file replace
// leaves either the old or the new content.
func TestWriteFileAtomicCrash(t *testing.T) {
	completed := false
	for step := 1; step < 50 && !completed; step++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		if err := WriteFileAtomic(OS, path, []byte("old")); err != nil {
			t.Fatal(err)
		}
		ffs := NewFlakyFS(OS, FlakyOptions{FailAt: step, ShortWrite: true})
		err := WriteFileAtomic(ffs, path, []byte("newer"))
		if !ffs.Crashed() {
			if err != nil {
				t.Fatalf("step %d: uncrashed write failed: %v", step, err)
			}
			completed = true
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("step %d: %v", step, rerr)
		}
		if s := string(got); s != "old" && s != "newer" {
			t.Fatalf("step %d: content %q is neither old nor new", step, s)
		}
	}
	if !completed {
		t.Fatal("crash sweep never reached a completing write")
	}
}
