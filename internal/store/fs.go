package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the mutating filesystem operations the durable layer performs,
// so crash and disk-full behaviour can be injected in tests (see FlakyFS).
// Reads that only serve queries (DiskTable row access) stay on the real
// filesystem: crash safety is a property of the write path.
//
// The contract every writer in this repository follows is write-to-temp →
// Sync → Close → Rename → SyncDir: a file is either absent, the complete old
// version, or the complete new version — never a partial write at its final
// path.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// RemoveAll deletes a tree; absent paths are not an error.
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]os.DirEntry, error)
	// Stat describes a path.
	Stat(path string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(path string) error
}

// File is the writable handle an FS hands out.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error)             { return os.Create(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes data to path with full crash safety: the bytes go to
// path+".tmp", are fsynced, and only then renamed over path, with the parent
// directory fsynced to make the rename durable. A crash at any step leaves
// either the old file or the new one at path, never a mixture.
func WriteFileAtomic(fsys FS, path string, data []byte) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer func() {
		if err != nil {
			if f != nil {
				_ = f.Close()
			}
			_ = fsys.Remove(tmp)
			err = fmt.Errorf("store: writing %s: %w", path, err)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		f = nil
		return err
	}
	f = nil
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
