package plan

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestInitialOrderFromPriors(t *testing.T) {
	// Cheapest expected cost to reject first: node b costs a tenth of node
	// a at the same prior rejection rate, so it goes first; node c is cheap
	// but almost never rejects, so its cost-to-reject is the worst.
	p := New([]Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: 100 * time.Millisecond},
		{Name: "c", PriorCost: 100 * time.Millisecond, PriorReject: 0.001},
	}, Options{})
	if got, want := p.Order(), []int{1, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestTiesKeepDeclaredOrder(t *testing.T) {
	nodes := []Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: time.Second},
		{Name: "c", PriorCost: time.Second},
	}
	p := New(nodes, Options{})
	if got, want := p.Order(), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestPinnedNeverReorders(t *testing.T) {
	p := New([]Node{
		{Name: "slow", PriorCost: time.Second},
		{Name: "fast", PriorCost: time.Millisecond},
	}, Options{Pinned: true, ReplanEvery: 1})
	for c := 0; c < 10; c++ {
		p.Observe(0, false, time.Second)
		p.Observe(1, true, time.Millisecond)
		p.EndClip()
	}
	if got, want := p.Order(), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned order = %v, want %v", got, want)
	}
	if p.Replans() != 0 {
		t.Fatalf("pinned planner replanned %d times", p.Replans())
	}
	if rep := p.Report(); rep.Adaptive {
		t.Fatal("pinned planner reported adaptive")
	}
}

func TestObservationsDriveReplan(t *testing.T) {
	// Equal priors, so the initial order is declared. Observations reveal
	// that the second node rejects everything cheaply — after ReplanEvery
	// observed clips it must move first, and the flip counts as one replan.
	p := New([]Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: time.Second},
	}, Options{ReplanEvery: 4})
	for c := 0; c < 4; c++ {
		p.Observe(0, false, time.Second)
		p.Observe(1, true, 10*time.Millisecond)
		p.EndClip()
	}
	if got, want := p.Order(), []int{1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order after observations = %v, want %v", got, want)
	}
	if p.Replans() != 1 {
		t.Fatalf("replans = %d, want 1", p.Replans())
	}
	// Further identical rounds keep the order and must not count as
	// replans.
	for c := 0; c < 8; c++ {
		p.Observe(0, false, time.Second)
		p.Observe(1, true, 10*time.Millisecond)
		p.EndClip()
	}
	if p.Replans() != 1 {
		t.Fatalf("replans after stable rounds = %d, want 1", p.Replans())
	}
}

func TestReplanCadence(t *testing.T) {
	p := New([]Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: time.Second},
	}, Options{ReplanEvery: 8})
	// Observations that would flip the order must not take effect before
	// the cadence boundary.
	for c := 0; c < 7; c++ {
		p.Observe(0, false, time.Second)
		p.Observe(1, true, time.Millisecond)
		p.EndClip()
	}
	if got, want := p.Order(), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order before cadence = %v, want %v", got, want)
	}
	p.Observe(0, false, time.Second)
	p.Observe(1, true, time.Millisecond)
	p.EndClip()
	if got, want := p.Order(), []int{1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order at cadence = %v, want %v", got, want)
	}
}

func TestSkipAccounting(t *testing.T) {
	p := New([]Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: 2 * time.Second},
	}, Options{})
	p.Skip(1)
	p.Skip(1)
	p.Skip(0)
	rep := p.Report()
	if rep.SkippedEvaluations != 3 {
		t.Fatalf("skipped = %d, want 3", rep.SkippedEvaluations)
	}
	if want := 5000.0; rep.SavedCostMS != want {
		t.Fatalf("saved cost = %v ms, want %v", rep.SavedCostMS, want)
	}
	if rep.Nodes[1].SkippedEvaluations != 2 || rep.Nodes[0].SkippedEvaluations != 1 {
		t.Fatalf("per-node skips = %d/%d, want 1/2",
			rep.Nodes[0].SkippedEvaluations, rep.Nodes[1].SkippedEvaluations)
	}
}

func TestReportShape(t *testing.T) {
	p := New([]Node{
		{Name: "car", PriorCost: 2250 * time.Millisecond},
		{Name: "act", PriorCost: 450 * time.Millisecond},
	}, Options{ReplanEvery: 2})
	for c := 0; c < 2; c++ {
		p.Observe(0, c == 0, 2250*time.Millisecond)
		p.Observe(1, true, 450*time.Millisecond)
		p.EndClip()
	}
	rep := p.Report()
	if !rep.Adaptive {
		t.Fatal("adaptive planner reported pinned")
	}
	if !reflect.DeepEqual(rep.Declared, []string{"car", "act"}) {
		t.Fatalf("declared = %v", rep.Declared)
	}
	if !reflect.DeepEqual(rep.Order, []string{"act", "car"}) {
		t.Fatalf("order = %v", rep.Order)
	}
	if rep.ObservedClips != 2 {
		t.Fatalf("observed clips = %d, want 2", rep.ObservedClips)
	}
	// Nodes stay in declared order with Position pointing into Order.
	if rep.Nodes[0].Name != "car" || rep.Nodes[0].Position != 1 {
		t.Fatalf("node 0 = %+v", rep.Nodes[0])
	}
	if rep.Nodes[1].Name != "act" || rep.Nodes[1].Position != 0 {
		t.Fatalf("node 1 = %+v", rep.Nodes[1])
	}
	if rep.Nodes[1].RejectRate <= rep.Nodes[0].RejectRate {
		t.Fatalf("reject rates %v <= %v", rep.Nodes[1].RejectRate, rep.Nodes[0].RejectRate)
	}
	if rep.Nodes[0].ObservedCostMS != 2250 {
		t.Fatalf("observed cost = %v", rep.Nodes[0].ObservedCostMS)
	}
}

func TestUnobservedNodeFallsBackToPriors(t *testing.T) {
	p := New([]Node{{Name: "a", PriorCost: time.Second, PriorReject: 0.25}}, Options{})
	rep := p.Report()
	n := rep.Nodes[0]
	if n.ObservedCostMS != 1000 || n.EstimatedCostMS != 1000 {
		t.Fatalf("costs = %v/%v, want 1000/1000", n.EstimatedCostMS, n.ObservedCostMS)
	}
	if n.RejectRate != 0.25 {
		t.Fatalf("reject rate = %v, want prior 0.25", n.RejectRate)
	}
}

// TestConcurrentUse exercises the fleet-sharing path under the race
// detector: many goroutines observing, skipping and re-planning at once.
func TestConcurrentUse(t *testing.T) {
	p := New([]Node{
		{Name: "a", PriorCost: time.Second},
		{Name: "b", PriorCost: time.Millisecond},
	}, Options{ReplanEvery: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < 100; c++ {
				for _, i := range p.Order() {
					p.Observe(i, (c+w+i)%3 == 0, time.Duration(i+1)*time.Millisecond)
				}
				p.Skip((c + w) % 2)
				p.EndClip()
			}
		}(w)
	}
	wg.Wait()
	rep := p.Report()
	if rep.ObservedClips != 800 {
		t.Fatalf("observed clips = %d, want 800", rep.ObservedClips)
	}
	var evals int64
	for _, n := range rep.Nodes {
		evals += n.ObservedEvaluations
	}
	if evals != 1600 {
		t.Fatalf("observed evaluations = %d, want 1600", evals)
	}
	if rep.SkippedEvaluations != 800 {
		t.Fatalf("skips = %d, want 800", rep.SkippedEvaluations)
	}
}
