// Package plan implements the cost-based predicate planner used by the
// online engine (core) and the offline ranker (rank).
//
// The paper evaluates a query's predicates sequentially with
// short-circuiting (Algorithm 2), so the total detector cost of a
// conjunction is dominated by whichever predicates run early: the first
// predicate is evaluated on every clip, and each later one only on the
// clips every earlier predicate accepted. Because clip truth is a pure
// conjunction, any evaluation order produces the same result sequences —
// ordering is a cost lever, never a correctness one.
//
// A Planner holds one node per predicate with a live cost model: the
// expected cost of one evaluation (seeded from the detector's priced unit
// cost, refined from observed evaluations) and a rejection-rate estimate
// (seeded from a prior, refined from the unbiased clip indicators the
// engine already tracks). It orders nodes cheapest-expected-cost-to-reject
// first — ascending cost/P(reject), the classic selectivity×cost ordering —
// and re-plans every ReplanEvery observed clips as the estimates drift,
// mirroring how SVAQD re-estimates its background probabilities.
//
// Statistics must be fed only from unbiased evaluations (clips on which
// every predicate ran): under short-circuiting, the clips a late predicate
// sees are pre-filtered by the earlier ones, which would bias its observed
// rejection rate downwards for correlated predicates. The engine already
// maintains such a sampling schedule for SVAQD's estimators and reuses it
// for the planner.
//
// A Planner is safe for concurrent use, so a fleet evaluation can share one
// warm-started cost model per query across all its per-video runs.
package plan

import (
	"sort"
	"sync"
	"time"
)

// DefaultReplanEvery is the re-planning cadence (in observed unbiased
// clips) when Options.ReplanEvery is zero.
const DefaultReplanEvery = 32

// defaultPriorReject seeds the rejection-rate estimate when a Node declares
// none: with no information, assume a coin flip.
const defaultPriorReject = 0.5

// Node describes one predicate to the planner.
type Node struct {
	// Name identifies the predicate in reports and spans.
	Name string
	// PriorCost is the expected cost of evaluating the predicate once on
	// one clip before anything has been observed — for the engine, the
	// clip's occurrence-unit window times the detector's priced unit cost.
	PriorCost time.Duration
	// PriorReject seeds the rejection-rate estimate in (0,1]; zero means
	// 0.5 (no prior selectivity information).
	PriorReject float64
	// Tiers describes the predicate's detector cascade, cheapest tier
	// first; empty (or a single entry) for single-model predicates. With
	// two or more tiers the planner prices the predicate per tier and
	// decides between entering the cascade and jumping straight to the
	// accurate tier (see TierMode).
	Tiers []TierCost
	// Window is the number of occurrence units one evaluation of this
	// predicate scores — the multiplier between per-unit tier costs and
	// per-evaluation node costs. Only consulted for tiered nodes.
	Window int
}

// TierCost describes one tier of a cascaded detector to the planner.
type TierCost struct {
	// Name is the tier model's name.
	Name string
	// UnitCost is the tier's inference cost per occurrence unit.
	UnitCost time.Duration
	// PriorEscalate seeds the tier's escalation-rate estimate: the prior
	// probability a unit scored here escalates to the next tier. Zero for
	// the last tier.
	PriorEscalate float64
}

// TierMode is the planner's tier decision for one predicate.
type TierMode int

const (
	// TierSingle marks a predicate without a cascade: run its model as-is.
	TierSingle TierMode = iota
	// TierCascade enters the cascade at the cheapest tier, escalating as
	// the bands dictate.
	TierCascade
	// TierAccurate jumps straight to the most accurate tier — the right
	// call when escalations are so common the cheap tier is pure overhead.
	TierAccurate
)

// String names the mode as it appears in EXPLAIN output and span
// attributes.
func (m TierMode) String() string {
	switch m {
	case TierCascade:
		return "cascade"
	case TierAccurate:
		return "accurate"
	default:
		return "single"
	}
}

// Options tunes a Planner.
type Options struct {
	// Pinned keeps the declared order: the planner still gathers
	// statistics and reports them, but Order never deviates — the
	// compatibility/ablation mode (the engine pins the order under
	// NoShortCircuit, ActionFirst and DeclaredOrder).
	Pinned bool
	// ReplanEvery is the number of observed unbiased clips between
	// re-planning rounds; zero or negative means DefaultReplanEvery.
	ReplanEvery int
}

// nodeState is the live cost model of one predicate.
type nodeState struct {
	name        string
	priorCost   float64 // seconds per evaluation, before observation
	priorReject float64

	evals   int64   // unbiased evaluations observed
	rejects int64   // of which rejected the clip
	costSum float64 // seconds across observed evaluations
	skips   int64   // evaluations skipped by short-circuit

	// Tiered nodes carry per-tier escalation estimators and the planner's
	// current tier decision; single-model nodes leave tiers empty and mode
	// at TierSingle.
	tiers  []tierState
	window float64
	mode   TierMode
}

// tierState is the live escalation model of one cascade tier.
type tierState struct {
	name          string
	unitCost      float64 // seconds per unit
	priorEscalate float64

	units     int64 // units observed scored at this tier
	escalated int64 // of which escalated past it
}

// escalateRate is the Laplace-smoothed escalation-rate estimate, strictly
// inside (0,1) so expected-cost products stay finite and the prior carries
// early decisions.
func (t *tierState) escalateRate() float64 {
	const pseudo = 2.0
	return (float64(t.escalated) + pseudo*t.priorEscalate) / (float64(t.units) + pseudo)
}

// tiered reports whether the node has a real cascade to decide over.
func (n *nodeState) tiered() bool { return len(n.tiers) >= 2 }

// expectedUnitCost is the expected seconds per occurrence unit when
// evaluation enters the cascade at tier from: the entry tier is always
// paid, and each deeper tier is paid with the product of the escalation
// rates above it.
func (n *nodeState) expectedUnitCost(from int) float64 {
	p := 1.0
	total := 0.0
	for i := from; i < len(n.tiers); i++ {
		total += p * n.tiers[i].unitCost
		if i < len(n.tiers)-1 {
			p *= n.tiers[i].escalateRate()
		}
	}
	return total
}

// entryTier is the cascade entry the current mode dictates.
func (n *nodeState) entryTier() int {
	if n.mode == TierAccurate {
		return len(n.tiers) - 1
	}
	return 0
}

// cost is the current per-evaluation cost estimate in seconds. Tiered
// nodes are priced from the per-tier escalation model under the current
// tier decision — the expected cost to *decide* a unit, not merely the
// cost of one model pass — so the ordering key and the savings ledger both
// see through the cascade.
func (n *nodeState) cost() float64 {
	if n.tiered() {
		return n.window * n.expectedUnitCost(n.entryTier())
	}
	if n.evals == 0 {
		return n.priorCost
	}
	return n.costSum / float64(n.evals)
}

// rejectRate is the Laplace-smoothed rejection-rate estimate: two
// pseudo-observations at the prior rate keep early estimates near the prior
// and the rate strictly inside (0,1) so cost/rate is always finite.
func (n *nodeState) rejectRate() float64 {
	const pseudo = 2.0
	return (float64(n.rejects) + pseudo*n.priorReject) / (float64(n.evals) + pseudo)
}

// costToReject is the ordering key: expected cost paid per rejection
// obtained. Evaluating ascending in this key minimises the expected cost of
// deciding a conjunctive clip under short-circuiting.
func (n *nodeState) costToReject() float64 {
	return n.cost() / n.rejectRate()
}

// Planner orders predicate nodes cheapest-expected-cost-to-reject first and
// re-plans as its statistics drift. Safe for concurrent use.
type Planner struct {
	mu    sync.Mutex
	opts  Options
	nodes []nodeState
	order []int

	replans          int
	clipsSinceReplan int
	observedClips    int64
	savedCost        float64 // seconds of evaluation avoided by short-circuit
	skipped          int64   // evaluations avoided by short-circuit
}

// New builds a planner over the declared node list. The initial order is
// computed from the priors alone (and equals the declared order when the
// priors do not discriminate, since ties preserve declared positions).
func New(nodes []Node, opts Options) *Planner {
	if opts.ReplanEvery <= 0 {
		opts.ReplanEvery = DefaultReplanEvery
	}
	p := &Planner{opts: opts, nodes: make([]nodeState, len(nodes)), order: make([]int, len(nodes))}
	for i, n := range nodes {
		pr := n.PriorReject
		if pr <= 0 || pr > 1 {
			pr = defaultPriorReject
		}
		ns := nodeState{name: n.Name, priorCost: n.PriorCost.Seconds(), priorReject: pr}
		if len(n.Tiers) >= 2 {
			ns.tiers = make([]tierState, len(n.Tiers))
			for t, tc := range n.Tiers {
				ns.tiers[t] = tierState{name: tc.Name, unitCost: tc.UnitCost.Seconds(), priorEscalate: clampRate(tc.PriorEscalate)}
			}
			ns.window = float64(max(n.Window, 1))
		}
		p.nodes[i] = ns
		p.order[i] = i
	}
	p.reorder()
	return p
}

// clampRate clamps a prior probability into [0, 1].
func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Len returns the number of nodes.
func (p *Planner) Len() int { return len(p.nodes) }

// Order returns a copy of the current evaluation order: positions into the
// declared node list, cheapest expected cost to reject first.
func (p *Planner) Order() []int {
	return p.AppendOrder(nil)
}

// AppendOrder appends the current evaluation order to dst — Order without
// the per-call allocation, for callers that consult the planner every clip
// and hold their own buffer.
func (p *Planner) AppendOrder(dst []int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append(dst, p.order...)
}

// Observe folds one unbiased evaluation of node i into the cost model:
// whether it rejected its clip, and what the evaluation cost. Callers must
// only report evaluations from clips on which every node was evaluated (see
// the package comment on sampling bias).
func (p *Planner) Observe(i int, rejected bool, cost time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &p.nodes[i]
	n.evals++
	if rejected {
		n.rejects++
	}
	n.costSum += cost.Seconds()
}

// ObserveTiers folds one clip's cascade accounting for node i into the
// tier escalation estimators: units[t] units were scored at tier t, of
// which escalated[t] escalated past it (band escalations and failure
// fallthroughs alike — both cost the next tier an inference). Like
// Observe, callers must only report unbiased clips: short-circuit-filtered
// clips would bias the escalation rates of late predicates.
func (p *Planner) ObserveTiers(i int, units, escalated []int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &p.nodes[i]
	for t := range n.tiers {
		if t < len(units) {
			n.tiers[t].units += units[t]
		}
		if t < len(escalated) {
			n.tiers[t].escalated += escalated[t]
		}
	}
}

// Skip records that short-circuiting spared one evaluation of node i — the
// savings ledger behind the svqact_plan_shortcircuit_savings metric.
func (p *Planner) Skip(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &p.nodes[i]
	n.skips++
	p.skipped++
	p.savedCost += n.cost()
}

// EndClip marks the end of one fully observed (unbiased) clip and re-plans
// when the cadence is due.
func (p *Planner) EndClip() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observedClips++
	p.clipsSinceReplan++
	if p.clipsSinceReplan < p.opts.ReplanEvery {
		return
	}
	p.clipsSinceReplan = 0
	prev := append([]int(nil), p.order...)
	p.reorder()
	for i := range prev {
		if prev[i] != p.order[i] {
			p.replans++
			break
		}
	}
}

// reorder recomputes the tier decisions and the order from the current
// estimates (callers hold the lock). Pinned planners keep the declared
// order but still decide tiers — tier choice changes cost, never results,
// so even the ablation modes benefit. Ties keep declared relative
// positions (sort.SliceStable over an identity-initialised order would not
// survive repeated reorders, so the slice is reset first).
func (p *Planner) reorder() {
	p.decideTiers()
	for i := range p.order {
		p.order[i] = i
	}
	if p.opts.Pinned {
		return
	}
	keys := make([]float64, len(p.nodes))
	for i := range p.nodes {
		keys[i] = p.nodes[i].costToReject()
	}
	sort.SliceStable(p.order, func(a, b int) bool { return keys[p.order[a]] < keys[p.order[b]] })
}

// decideTiers recomputes each tiered node's escalation policy: enter the
// cascade when its expected cost to decide a unit undercuts jumping
// straight to the accurate tier, under the live escalation estimates
// (callers hold the lock).
func (p *Planner) decideTiers() {
	for i := range p.nodes {
		n := &p.nodes[i]
		if !n.tiered() {
			n.mode = TierSingle
			continue
		}
		if n.expectedUnitCost(0) <= n.expectedUnitCost(len(n.tiers)-1) {
			n.mode = TierCascade
		} else {
			n.mode = TierAccurate
		}
	}
}

// AppendDecisions appends the current evaluation order to order and copies
// the current tier decisions into modes (indexed by declared node
// position), under one lock — the engine's per-clip consultation.
func (p *Planner) AppendDecisions(order []int, modes []TierMode) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.nodes {
		if i < len(modes) {
			modes[i] = p.nodes[i].mode
		}
	}
	return append(order, p.order...)
}

// StaticTierChoice is the one-shot tier decision for offline consumers
// (rank's static planner): decide from the priors alone, with no live
// estimates to refine them.
func StaticTierChoice(tiers []TierCost) TierMode {
	if len(tiers) < 2 {
		return TierSingle
	}
	p := 1.0
	cascade := 0.0
	for i, t := range tiers {
		cascade += p * t.UnitCost.Seconds()
		if i < len(tiers)-1 {
			p *= clampRate(t.PriorEscalate)
		}
	}
	if cascade <= tiers[len(tiers)-1].UnitCost.Seconds() {
		return TierCascade
	}
	return TierAccurate
}

// Replans returns how many re-planning rounds actually changed the order.
func (p *Planner) Replans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replans
}

// Report is the EXPLAIN-able snapshot of a planner: the chosen order, the
// per-node cost model, and the savings ledger. It serialises directly into
// the /query JSON response.
type Report struct {
	// Adaptive is false when the order was pinned to the declared one.
	Adaptive bool `json:"adaptive"`
	// Order lists node names in evaluation order; Declared in declared
	// order.
	Order    []string `json:"order"`
	Declared []string `json:"declared"`
	// Replans counts re-planning rounds that changed the order.
	Replans int `json:"replans"`
	// ObservedClips counts the unbiased clips folded into the cost model.
	ObservedClips int64 `json:"observed_clips"`
	// SkippedEvaluations counts predicate evaluations avoided by
	// short-circuiting; SavedCostMS prices them with the current model.
	SkippedEvaluations int64   `json:"skipped_evaluations"`
	SavedCostMS        float64 `json:"saved_cost_ms"`
	// Tiered is true when any node carries a detector cascade; every
	// tier-level field below it is omitted otherwise, so single-tier plans
	// serialise exactly as they did before cascades existed.
	Tiered bool `json:"tiered,omitempty"`
	// Budget reports the per-query inference budget when one was set; the
	// engine fills it in at snapshot time.
	Budget *BudgetReport `json:"budget,omitempty"`
	// Nodes holds the per-node cost model in declared order.
	Nodes []NodeReport `json:"nodes"`
}

// BudgetReport is the inference-budget block of a tiered Report.
type BudgetReport struct {
	// LimitMS is the per-query inference budget; SpentMS what the run
	// actually consumed.
	LimitMS float64 `json:"limit_ms"`
	SpentMS float64 `json:"spent_ms"`
	// SkippedClips counts clips skipped-and-flagged after exhaustion.
	SkippedClips int64 `json:"skipped_clips"`
	// Exhausted is true when the budget ran out before the video did.
	Exhausted bool `json:"exhausted"`
}

// TierReport is one cascade tier's escalation model in a NodeReport.
type TierReport struct {
	Name       string  `json:"name"`
	UnitCostMS float64 `json:"unit_cost_ms"`
	// Units counts units observed scored at this tier; Escalated how many
	// of them escalated past it (including failure fallthroughs).
	Units     int64 `json:"units"`
	Escalated int64 `json:"escalated"`
	// EscalationRate is the smoothed escalation-rate estimate; SpentMS the
	// inference spend observed at this tier.
	EscalationRate float64 `json:"escalation_rate"`
	SpentMS        float64 `json:"spent_ms"`
}

// NodeReport is one node's cost model in a Report.
type NodeReport struct {
	Name string `json:"name"`
	// Position is the node's slot in the chosen evaluation order.
	Position int `json:"position"`
	// EstimatedCostMS is the prior per-evaluation cost; ObservedCostMS the
	// live estimate (equal to the prior until something was observed).
	EstimatedCostMS float64 `json:"estimated_cost_ms"`
	ObservedCostMS  float64 `json:"observed_cost_ms"`
	// RejectRate is the smoothed rejection-rate estimate and
	// CostToRejectMS the ordering key derived from it.
	RejectRate     float64 `json:"reject_rate"`
	CostToRejectMS float64 `json:"cost_to_reject_ms"`
	// ObservedEvaluations counts unbiased evaluations folded in;
	// SkippedEvaluations the evaluations short-circuiting spared this node.
	ObservedEvaluations int64 `json:"observed_evaluations"`
	SkippedEvaluations  int64 `json:"skipped_evaluations"`
	// Tier is the planner's tier decision ("cascade" or "accurate") for
	// cascaded predicates; empty — and omitted — for single-model ones,
	// along with every other tier field.
	Tier string `json:"tier,omitempty"`
	// EscalationRate is the cheap tier's smoothed escalation-rate estimate.
	EscalationRate float64 `json:"escalation_rate,omitempty"`
	// Tiers holds the per-tier escalation model, cheapest tier first.
	Tiers []TierReport `json:"tiers,omitempty"`
}

// Report snapshots the planner. A nil planner reports nil, so execution
// paths that never built a plan (the streaming CNF evaluator) stay valid.
func (p *Planner) Report() *Report {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{
		Adaptive:           !p.opts.Pinned,
		Replans:            p.replans,
		ObservedClips:      p.observedClips,
		SkippedEvaluations: p.skipped,
		SavedCostMS:        p.savedCost * 1e3,
	}
	pos := make([]int, len(p.nodes))
	for slot, i := range p.order {
		pos[i] = slot
		rep.Order = append(rep.Order, p.nodes[i].name)
	}
	for i := range p.nodes {
		n := &p.nodes[i]
		rep.Declared = append(rep.Declared, n.name)
		nr := NodeReport{
			Name:                n.name,
			Position:            pos[i],
			EstimatedCostMS:     n.priorCost * 1e3,
			ObservedCostMS:      n.cost() * 1e3,
			RejectRate:          n.rejectRate(),
			CostToRejectMS:      n.costToReject() * 1e3,
			ObservedEvaluations: n.evals,
			SkippedEvaluations:  n.skips,
		}
		if n.tiered() {
			rep.Tiered = true
			nr.Tier = n.mode.String()
			nr.EscalationRate = n.tiers[0].escalateRate()
			nr.Tiers = make([]TierReport, len(n.tiers))
			for t := range n.tiers {
				ts := &n.tiers[t]
				nr.Tiers[t] = TierReport{
					Name:           ts.name,
					UnitCostMS:     ts.unitCost * 1e3,
					Units:          ts.units,
					Escalated:      ts.escalated,
					EscalationRate: ts.escalateRate(),
					SpentMS:        float64(ts.units) * ts.unitCost * 1e3,
				}
			}
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	return rep
}
