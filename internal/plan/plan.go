// Package plan implements the cost-based predicate planner used by the
// online engine (core) and the offline ranker (rank).
//
// The paper evaluates a query's predicates sequentially with
// short-circuiting (Algorithm 2), so the total detector cost of a
// conjunction is dominated by whichever predicates run early: the first
// predicate is evaluated on every clip, and each later one only on the
// clips every earlier predicate accepted. Because clip truth is a pure
// conjunction, any evaluation order produces the same result sequences —
// ordering is a cost lever, never a correctness one.
//
// A Planner holds one node per predicate with a live cost model: the
// expected cost of one evaluation (seeded from the detector's priced unit
// cost, refined from observed evaluations) and a rejection-rate estimate
// (seeded from a prior, refined from the unbiased clip indicators the
// engine already tracks). It orders nodes cheapest-expected-cost-to-reject
// first — ascending cost/P(reject), the classic selectivity×cost ordering —
// and re-plans every ReplanEvery observed clips as the estimates drift,
// mirroring how SVAQD re-estimates its background probabilities.
//
// Statistics must be fed only from unbiased evaluations (clips on which
// every predicate ran): under short-circuiting, the clips a late predicate
// sees are pre-filtered by the earlier ones, which would bias its observed
// rejection rate downwards for correlated predicates. The engine already
// maintains such a sampling schedule for SVAQD's estimators and reuses it
// for the planner.
//
// A Planner is safe for concurrent use, so a fleet evaluation can share one
// warm-started cost model per query across all its per-video runs.
package plan

import (
	"sort"
	"sync"
	"time"
)

// DefaultReplanEvery is the re-planning cadence (in observed unbiased
// clips) when Options.ReplanEvery is zero.
const DefaultReplanEvery = 32

// defaultPriorReject seeds the rejection-rate estimate when a Node declares
// none: with no information, assume a coin flip.
const defaultPriorReject = 0.5

// Node describes one predicate to the planner.
type Node struct {
	// Name identifies the predicate in reports and spans.
	Name string
	// PriorCost is the expected cost of evaluating the predicate once on
	// one clip before anything has been observed — for the engine, the
	// clip's occurrence-unit window times the detector's priced unit cost.
	PriorCost time.Duration
	// PriorReject seeds the rejection-rate estimate in (0,1]; zero means
	// 0.5 (no prior selectivity information).
	PriorReject float64
}

// Options tunes a Planner.
type Options struct {
	// Pinned keeps the declared order: the planner still gathers
	// statistics and reports them, but Order never deviates — the
	// compatibility/ablation mode (the engine pins the order under
	// NoShortCircuit, ActionFirst and DeclaredOrder).
	Pinned bool
	// ReplanEvery is the number of observed unbiased clips between
	// re-planning rounds; zero or negative means DefaultReplanEvery.
	ReplanEvery int
}

// nodeState is the live cost model of one predicate.
type nodeState struct {
	name        string
	priorCost   float64 // seconds per evaluation, before observation
	priorReject float64

	evals   int64   // unbiased evaluations observed
	rejects int64   // of which rejected the clip
	costSum float64 // seconds across observed evaluations
	skips   int64   // evaluations skipped by short-circuit
}

// cost is the current per-evaluation cost estimate in seconds.
func (n *nodeState) cost() float64 {
	if n.evals == 0 {
		return n.priorCost
	}
	return n.costSum / float64(n.evals)
}

// rejectRate is the Laplace-smoothed rejection-rate estimate: two
// pseudo-observations at the prior rate keep early estimates near the prior
// and the rate strictly inside (0,1) so cost/rate is always finite.
func (n *nodeState) rejectRate() float64 {
	const pseudo = 2.0
	return (float64(n.rejects) + pseudo*n.priorReject) / (float64(n.evals) + pseudo)
}

// costToReject is the ordering key: expected cost paid per rejection
// obtained. Evaluating ascending in this key minimises the expected cost of
// deciding a conjunctive clip under short-circuiting.
func (n *nodeState) costToReject() float64 {
	return n.cost() / n.rejectRate()
}

// Planner orders predicate nodes cheapest-expected-cost-to-reject first and
// re-plans as its statistics drift. Safe for concurrent use.
type Planner struct {
	mu    sync.Mutex
	opts  Options
	nodes []nodeState
	order []int

	replans          int
	clipsSinceReplan int
	observedClips    int64
	savedCost        float64 // seconds of evaluation avoided by short-circuit
	skipped          int64   // evaluations avoided by short-circuit
}

// New builds a planner over the declared node list. The initial order is
// computed from the priors alone (and equals the declared order when the
// priors do not discriminate, since ties preserve declared positions).
func New(nodes []Node, opts Options) *Planner {
	if opts.ReplanEvery <= 0 {
		opts.ReplanEvery = DefaultReplanEvery
	}
	p := &Planner{opts: opts, nodes: make([]nodeState, len(nodes)), order: make([]int, len(nodes))}
	for i, n := range nodes {
		pr := n.PriorReject
		if pr <= 0 || pr > 1 {
			pr = defaultPriorReject
		}
		p.nodes[i] = nodeState{name: n.Name, priorCost: n.PriorCost.Seconds(), priorReject: pr}
		p.order[i] = i
	}
	p.reorder()
	return p
}

// Len returns the number of nodes.
func (p *Planner) Len() int { return len(p.nodes) }

// Order returns a copy of the current evaluation order: positions into the
// declared node list, cheapest expected cost to reject first.
func (p *Planner) Order() []int {
	return p.AppendOrder(nil)
}

// AppendOrder appends the current evaluation order to dst — Order without
// the per-call allocation, for callers that consult the planner every clip
// and hold their own buffer.
func (p *Planner) AppendOrder(dst []int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append(dst, p.order...)
}

// Observe folds one unbiased evaluation of node i into the cost model:
// whether it rejected its clip, and what the evaluation cost. Callers must
// only report evaluations from clips on which every node was evaluated (see
// the package comment on sampling bias).
func (p *Planner) Observe(i int, rejected bool, cost time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &p.nodes[i]
	n.evals++
	if rejected {
		n.rejects++
	}
	n.costSum += cost.Seconds()
}

// Skip records that short-circuiting spared one evaluation of node i — the
// savings ledger behind the svqact_plan_shortcircuit_savings metric.
func (p *Planner) Skip(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &p.nodes[i]
	n.skips++
	p.skipped++
	p.savedCost += n.cost()
}

// EndClip marks the end of one fully observed (unbiased) clip and re-plans
// when the cadence is due.
func (p *Planner) EndClip() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observedClips++
	p.clipsSinceReplan++
	if p.clipsSinceReplan < p.opts.ReplanEvery {
		return
	}
	p.clipsSinceReplan = 0
	prev := append([]int(nil), p.order...)
	p.reorder()
	for i := range prev {
		if prev[i] != p.order[i] {
			p.replans++
			break
		}
	}
}

// reorder recomputes the order from the current estimates (callers hold the
// lock). Pinned planners keep the declared order. Ties keep declared
// relative positions (sort.SliceStable over an identity-initialised order
// would not survive repeated reorders, so the slice is reset first).
func (p *Planner) reorder() {
	for i := range p.order {
		p.order[i] = i
	}
	if p.opts.Pinned {
		return
	}
	keys := make([]float64, len(p.nodes))
	for i := range p.nodes {
		keys[i] = p.nodes[i].costToReject()
	}
	sort.SliceStable(p.order, func(a, b int) bool { return keys[p.order[a]] < keys[p.order[b]] })
}

// Replans returns how many re-planning rounds actually changed the order.
func (p *Planner) Replans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replans
}

// Report is the EXPLAIN-able snapshot of a planner: the chosen order, the
// per-node cost model, and the savings ledger. It serialises directly into
// the /query JSON response.
type Report struct {
	// Adaptive is false when the order was pinned to the declared one.
	Adaptive bool `json:"adaptive"`
	// Order lists node names in evaluation order; Declared in declared
	// order.
	Order    []string `json:"order"`
	Declared []string `json:"declared"`
	// Replans counts re-planning rounds that changed the order.
	Replans int `json:"replans"`
	// ObservedClips counts the unbiased clips folded into the cost model.
	ObservedClips int64 `json:"observed_clips"`
	// SkippedEvaluations counts predicate evaluations avoided by
	// short-circuiting; SavedCostMS prices them with the current model.
	SkippedEvaluations int64   `json:"skipped_evaluations"`
	SavedCostMS        float64 `json:"saved_cost_ms"`
	// Nodes holds the per-node cost model in declared order.
	Nodes []NodeReport `json:"nodes"`
}

// NodeReport is one node's cost model in a Report.
type NodeReport struct {
	Name string `json:"name"`
	// Position is the node's slot in the chosen evaluation order.
	Position int `json:"position"`
	// EstimatedCostMS is the prior per-evaluation cost; ObservedCostMS the
	// live estimate (equal to the prior until something was observed).
	EstimatedCostMS float64 `json:"estimated_cost_ms"`
	ObservedCostMS  float64 `json:"observed_cost_ms"`
	// RejectRate is the smoothed rejection-rate estimate and
	// CostToRejectMS the ordering key derived from it.
	RejectRate     float64 `json:"reject_rate"`
	CostToRejectMS float64 `json:"cost_to_reject_ms"`
	// ObservedEvaluations counts unbiased evaluations folded in;
	// SkippedEvaluations the evaluations short-circuiting spared this node.
	ObservedEvaluations int64 `json:"observed_evaluations"`
	SkippedEvaluations  int64 `json:"skipped_evaluations"`
}

// Report snapshots the planner. A nil planner reports nil, so execution
// paths that never built a plan (the streaming CNF evaluator) stay valid.
func (p *Planner) Report() *Report {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{
		Adaptive:           !p.opts.Pinned,
		Replans:            p.replans,
		ObservedClips:      p.observedClips,
		SkippedEvaluations: p.skipped,
		SavedCostMS:        p.savedCost * 1e3,
	}
	pos := make([]int, len(p.nodes))
	for slot, i := range p.order {
		pos[i] = slot
		rep.Order = append(rep.Order, p.nodes[i].name)
	}
	for i := range p.nodes {
		n := &p.nodes[i]
		rep.Declared = append(rep.Declared, n.name)
		rep.Nodes = append(rep.Nodes, NodeReport{
			Name:                n.name,
			Position:            pos[i],
			EstimatedCostMS:     n.priorCost * 1e3,
			ObservedCostMS:      n.cost() * 1e3,
			RejectRate:          n.rejectRate(),
			CostToRejectMS:      n.costToReject() * 1e3,
			ObservedEvaluations: n.evals,
			SkippedEvaluations:  n.skips,
		})
	}
	return rep
}
