package plan

import (
	"sync"
	"testing"
	"time"
)

func tieredNodes() []Node {
	return []Node{
		{Name: "obj:car", PriorCost: 100 * time.Millisecond, Window: 25, Tiers: []TierCost{
			{Name: "distilled-rcnn", UnitCost: 3 * time.Millisecond, PriorEscalate: 0.2},
			{Name: "maskrcnn", UnitCost: 45 * time.Millisecond},
		}},
		{Name: "act:jumping", PriorCost: 90 * time.Millisecond, Window: 1, Tiers: []TierCost{
			{Name: "distilled-i3d", UnitCost: 9 * time.Millisecond, PriorEscalate: 0.15},
			{Name: "i3d", UnitCost: 90 * time.Millisecond},
		}},
		{Name: "obj:human", PriorCost: 100 * time.Millisecond},
	}
}

func TestStaticTierChoice(t *testing.T) {
	cheapEsc := []TierCost{
		{Name: "proxy", UnitCost: 3 * time.Millisecond, PriorEscalate: 0.2},
		{Name: "teacher", UnitCost: 45 * time.Millisecond},
	}
	// 3 + 0.2*45 = 12ms < 45ms → cascade pays.
	if got := StaticTierChoice(cheapEsc); got != TierCascade {
		t.Errorf("cheap proxy with 0.2 escalation: got %v, want cascade", got)
	}
	hotEsc := []TierCost{
		{Name: "proxy", UnitCost: 40 * time.Millisecond, PriorEscalate: 0.95},
		{Name: "teacher", UnitCost: 45 * time.Millisecond},
	}
	// 40 + 0.95*45 = 82.75ms > 45ms → skip straight to accurate.
	if got := StaticTierChoice(hotEsc); got != TierAccurate {
		t.Errorf("expensive proxy with 0.95 escalation: got %v, want accurate", got)
	}
	if got := StaticTierChoice(nil); got != TierSingle {
		t.Errorf("no tiers: got %v, want single", got)
	}
	if got := StaticTierChoice(cheapEsc[:1]); got != TierSingle {
		t.Errorf("one tier: got %v, want single", got)
	}
}

// TestTierDecisionFlipsOnObservedEscalations: the planner starts from the
// prior (cascade pays), then live escalation observations push the expected
// cascade cost past the accurate tier's and the decision flips — and flips
// back when escalations subside.
func TestTierDecisionFlipsOnObservedEscalations(t *testing.T) {
	p := New(tieredNodes(), Options{ReplanEvery: 1})
	order := make([]int, 0, 3)
	modes := make([]TierMode, 3)
	p.AppendDecisions(order, modes)
	if modes[0] != TierCascade || modes[1] != TierCascade {
		t.Fatalf("prior decision: got %v/%v, want cascade for both tiered nodes", modes[0], modes[1])
	}
	if modes[2] != TierSingle {
		t.Fatalf("single-model node: got %v, want single", modes[2])
	}

	// Feed clips where every unit of obj:car escalates: expected unit cost
	// climbs to 3 + 1*45 > 45 and the planner must jump to the accurate
	// tier at the next re-plan.
	for c := 0; c < 50; c++ {
		p.ObserveTiers(0, []int64{25, 25}, []int64{25, 0})
		p.EndClip()
	}
	p.AppendDecisions(order, modes)
	if modes[0] != TierAccurate {
		t.Errorf("all-escalate traffic: got %v, want accurate", modes[0])
	}
	if modes[1] != TierCascade {
		t.Errorf("unobserved node must keep its prior decision, got %v", modes[1])
	}

	// Long benign traffic drags the smoothed rate back down; the decision
	// returns to cascade.
	for c := 0; c < 2000; c++ {
		p.ObserveTiers(0, []int64{25, 0}, []int64{0, 0})
		p.EndClip()
	}
	p.AppendDecisions(order, modes)
	if modes[0] != TierCascade {
		t.Errorf("benign traffic: got %v, want cascade again", modes[0])
	}
}

// TestTieredNodePricedByExpectedCostToDecide: a tiered node's ordering cost
// is window × expected unit cost under the current decision, so a cascade
// whose escalations are rare is ordered far cheaper than its accurate
// tier's sticker price.
func TestTieredNodePricedByExpectedCostToDecide(t *testing.T) {
	p := New(tieredNodes(), Options{})
	rep := p.Report()
	if !rep.Tiered {
		t.Fatal("report of a tiered plan must set Tiered")
	}
	car := rep.Nodes[0]
	if car.Tier != "cascade" {
		t.Fatalf("obj:car tier %q, want cascade", car.Tier)
	}
	// Smoothed prior escalation 0.2 → 25 × (3 + 0.2×45) = 300ms, far below
	// the accurate sticker 25 × 45 = 1125ms.
	sticker := 25 * 45.0
	if car.ObservedCostMS >= sticker {
		t.Errorf("cascade priced at %vms, not below accurate sticker %vms", car.ObservedCostMS, sticker)
	}
	if len(car.Tiers) != 2 || car.Tiers[0].Name != "distilled-rcnn" {
		t.Fatalf("tier report malformed: %+v", car.Tiers)
	}
	human := rep.Nodes[2]
	if human.Tier != "" || human.Tiers != nil {
		t.Errorf("single-model node must omit tier fields, got %+v", human)
	}
}

// TestReportUnderConcurrentTierObservation hammers Report against Observe,
// ObserveTiers, EndClip (re-planning), Skip and AppendDecisions from many
// goroutines — the race detector turns any unsynchronised access into a
// failure, and the invariant checks catch torn snapshots.
func TestReportUnderConcurrentTierObservation(t *testing.T) {
	p := New(tieredNodes(), Options{ReplanEvery: 4})
	const writers = 4
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			order := make([]int, 0, 3)
			modes := make([]TierMode, 3)
			for r := 0; r < rounds; r++ {
				order = p.AppendDecisions(order[:0], modes)
				for _, i := range order {
					p.Observe(i, (r+i)%3 == 0, 10*time.Millisecond)
					if i != 2 {
						p.ObserveTiers(i, []int64{25, 5}, []int64{5, 0})
					}
				}
				p.Skip(2)
				p.EndClip()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		rep := p.Report()
		if !rep.Tiered {
			t.Error("tiered flag lost mid-run")
		}
		for _, n := range rep.Nodes[:2] {
			if len(n.Tiers) != 2 {
				t.Fatalf("torn tier report: %+v", n)
			}
			if n.Tiers[0].Escalated > n.Tiers[0].Units {
				t.Fatalf("torn counters: escalated %d > units %d", n.Tiers[0].Escalated, n.Tiers[0].Units)
			}
			// Every escalated unit is scored at the next tier; writers update
			// both counters under one lock per call, so a snapshot can never
			// show more tier-1 units than tier-0 escalations.
			if n.Tiers[1].Units > n.Tiers[0].Escalated {
				t.Fatalf("torn snapshot: tier-1 units %d > tier-0 escalated %d", n.Tiers[1].Units, n.Tiers[0].Escalated)
			}
		}
		select {
		case <-done:
			rep := p.Report()
			wantUnits := int64(writers * rounds * 25)
			if got := rep.Nodes[0].Tiers[0].Units; got != wantUnits {
				t.Errorf("tier-0 units %d, want %d (no lost updates)", got, wantUnits)
			}
			return
		default:
		}
	}
}
