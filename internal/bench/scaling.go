package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// scalingFleetSize is the number of synthetic videos in the scaling fleet —
// large enough that the worker pool stays saturated across every measured
// worker count.
const scalingFleetSize = 64

// scalingWorkers are the measured pool sizes.
var scalingWorkers = []int{1, 2, 4, 8}

// ScalingPoint is one worker-count measurement of the fleet-scaling
// experiment.
type ScalingPoint struct {
	Workers         int     `json:"workers"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	VideosPerSecond float64 `json:"videos_per_second"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Per-video run latency percentiles, in seconds.
	VideoLatencyP50 float64 `json:"video_latency_p50_seconds"`
	VideoLatencyP90 float64 `json:"video_latency_p90_seconds"`
	VideoLatencyP99 float64 `json:"video_latency_p99_seconds"`
}

// ScalingReport is the machine-readable output of the scaling experiment
// (written to BENCH_scaling.json by cmd/experiments -bench-json).
type ScalingReport struct {
	FleetSize      int            `json:"fleet_size"`
	FramesPerVideo int            `json:"frames_per_video"`
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Scale          float64        `json:"scale"`
	Seed           int64          `json:"seed"`
	Points         []ScalingPoint `json:"points"`
}

// scalingFleet generates the fleet: distinct scripts (one per seed) so the
// videos are not trivially identical, small enough that the whole sweep stays
// in the experiment suite's time budget.
func (w *Workspace) scalingFleet() ([]detect.TruthVideo, core.Query, error) {
	frames := int(8000 * w.opts.Scale)
	if frames < 500 {
		frames = 500
	}
	vids := make([]detect.TruthVideo, scalingFleetSize)
	for i := range vids {
		v, err := synth.Generate(synth.Script{
			ID:       fmt.Sprintf("scale-%02d", i),
			Frames:   frames,
			FPS:      10,
			Geometry: video.DefaultGeometry,
			Seed:     w.opts.Seed + int64(1000+i),
			Actions:  []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
			Objects: []synth.ObjectSpec{
				{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			},
		})
		if err != nil {
			return nil, core.Query{}, err
		}
		vids[i] = v
	}
	return vids, core.Query{Objects: []string{"human"}, Action: "jumping"}, nil
}

// Scaling runs the fleet through core.RunAll once per worker count and
// measures end-to-end throughput plus per-video latency percentiles. All runs
// share the process-wide critical-value grid (scanstat.Shared), so only the
// first run pays for the Naus searches.
func (w *Workspace) Scaling() (*ScalingReport, error) {
	vids, q, err := w.scalingFleet()
	if err != nil {
		return nil, err
	}
	rep := &ScalingReport{
		FleetSize:      len(vids),
		FramesPerVideo: vids[0].NumFrames(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Scale:          w.opts.Scale,
		Seed:           w.opts.Seed,
	}
	// Warm the process-wide critical-value grid so the first measured point
	// does not pay for the Naus searches the later points get for free.
	warm, err := core.NewSVAQD(w.Models(), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, err := warm.Run(context.Background(), vids[0], q); err != nil {
		return nil, err
	}
	var serial float64
	for _, workers := range scalingWorkers {
		eng, err := core.NewSVAQD(w.Models(), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		h := obs.NewHistogram(nil)
		start := time.Now()
		fr, err := eng.RunAll(context.Background(), vids, q, core.FleetOptions{
			Workers:  workers,
			OnResult: func(vr core.VideoResult) { h.ObserveDuration(vr.Elapsed) },
		})
		if err != nil {
			return nil, fmt.Errorf("bench: scaling fleet (workers=%d): %w", workers, err)
		}
		if fr.OK != len(vids) {
			return nil, fmt.Errorf("bench: scaling fleet (workers=%d): %d of %d videos not ok", workers, len(vids)-fr.OK, len(vids))
		}
		elapsed := time.Since(start).Seconds()
		p := ScalingPoint{
			Workers:         workers,
			ElapsedSeconds:  elapsed,
			VideosPerSecond: float64(len(vids)) / elapsed,
			VideoLatencyP50: h.Quantile(0.50),
			VideoLatencyP90: h.Quantile(0.90),
			VideoLatencyP99: h.Quantile(0.99),
		}
		if workers == 1 {
			serial = elapsed
		}
		if serial > 0 {
			p.SpeedupVsSerial = serial / elapsed
		}
		w.logf("scaling: workers=%d elapsed=%.2fs throughput=%.1f videos/s", workers, elapsed, p.VideosPerSecond)
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// ScalingExperiment renders the scaling sweep as a table; the same data is
// available machine-readably via Workspace.Scaling / WriteScalingJSON.
func ScalingExperiment(w *Workspace) ([]Table, error) {
	rep, err := w.Scaling()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: fmt.Sprintf("Fleet scaling: throughput vs workers (%d videos × %d frames, SVAQD, GOMAXPROCS=%d)",
			rep.FleetSize, rep.FramesPerVideo, rep.GOMAXPROCS),
		Header: []string{"workers", "elapsed (s)", "videos/s", "speedup", "video p50/p90/p99 (ms)"},
	}
	for _, p := range rep.Points {
		t.AddRow(
			fmt.Sprint(p.Workers),
			f2(p.ElapsedSeconds),
			f1(p.VideosPerSecond),
			f2(p.SpeedupVsSerial)+"x",
			fmt.Sprintf("%.0f/%.0f/%.0f", p.VideoLatencyP50*1e3, p.VideoLatencyP90*1e3, p.VideoLatencyP99*1e3),
		)
	}
	return []Table{t}, nil
}

// WriteScalingJSON writes the report as indented JSON (BENCH_scaling.json).
func WriteScalingJSON(path string, rep *ScalingReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
