package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// scalingFleetSize is the number of synthetic videos in the scaling fleet —
// large enough that the worker pool stays saturated across every measured
// worker count.
const scalingFleetSize = 64

// scalingWorkers are the candidate pool sizes; Scaling caps the sweep at
// runtime.NumCPU() — running more workers than cores measures scheduler
// oversubscription, not scaling, and earlier revisions of this experiment
// recorded exactly that as if it were speedup.
var scalingWorkers = []int{1, 2, 4, 8}

// ScalingPoint is one worker-count measurement of the fleet-scaling
// experiment.
type ScalingPoint struct {
	Workers         int     `json:"workers"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	VideosPerSecond float64 `json:"videos_per_second"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Per-video run latency percentiles, in seconds.
	VideoLatencyP50 float64 `json:"video_latency_p50_seconds"`
	VideoLatencyP90 float64 `json:"video_latency_p90_seconds"`
	VideoLatencyP99 float64 `json:"video_latency_p99_seconds"`
	// Heap allocation per evaluated video (runtime.MemStats deltas over the
	// whole point, divided by fleet size) — the -benchmem analogue for the
	// fleet sweep.
	AllocsPerVideo float64 `json:"allocs_per_video,omitempty"`
	BytesPerVideo  float64 `json:"bytes_per_video,omitempty"`
}

// ScalingReport is the machine-readable output of the scaling experiment
// (written to BENCH_scaling.json by cmd/experiments -bench-json).
type ScalingReport struct {
	FleetSize      int     `json:"fleet_size"`
	FramesPerVideo int     `json:"frames_per_video"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	// NumCPU records the cores the host actually exposes; together with
	// GOMAXPROCS it makes a recorded sweep interpretable after the fact.
	NumCPU int            `json:"num_cpu,omitempty"`
	Scale  float64        `json:"scale"`
	Seed   int64          `json:"seed"`
	Points []ScalingPoint `json:"points"`
}

// scalingFleet generates the fleet: distinct scripts (one per seed) so the
// videos are not trivially identical, small enough that the whole sweep stays
// in the experiment suite's time budget.
func (w *Workspace) scalingFleet() ([]detect.TruthVideo, core.Query, error) {
	frames := int(8000 * w.opts.Scale)
	if frames < 500 {
		frames = 500
	}
	vids := make([]detect.TruthVideo, scalingFleetSize)
	for i := range vids {
		v, err := synth.Generate(synth.Script{
			ID:       fmt.Sprintf("scale-%02d", i),
			Frames:   frames,
			FPS:      10,
			Geometry: video.DefaultGeometry,
			Seed:     w.opts.Seed + int64(1000+i),
			Actions:  []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
			Objects: []synth.ObjectSpec{
				{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			},
		})
		if err != nil {
			return nil, core.Query{}, err
		}
		vids[i] = v
	}
	return vids, core.Query{Objects: []string{"human"}, Action: "jumping"}, nil
}

// Scaling runs the fleet through core.RunAll once per worker count and
// measures end-to-end throughput plus per-video latency percentiles. All runs
// share the process-wide critical-value grid (scanstat.Shared), so only the
// first run pays for the Naus searches.
func (w *Workspace) Scaling() (*ScalingReport, error) {
	vids, q, err := w.scalingFleet()
	if err != nil {
		return nil, err
	}
	// Pin the scheduler to the hardware for the duration of the sweep: an
	// inherited GOMAXPROCS below NumCPU silently serialises every worker
	// count, and one above it measures contention. Restored on return.
	numCPU := runtime.NumCPU()
	prevProcs := runtime.GOMAXPROCS(numCPU)
	defer runtime.GOMAXPROCS(prevProcs)

	rep := &ScalingReport{
		FleetSize:      len(vids),
		FramesPerVideo: vids[0].NumFrames(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         numCPU,
		Scale:          w.opts.Scale,
		Seed:           w.opts.Seed,
	}
	// Warm the process-wide critical-value grid so the first measured point
	// does not pay for the Naus searches the later points get for free.
	warm, err := core.NewSVAQD(w.Models(), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, err := warm.Run(context.Background(), vids[0], q); err != nil {
		return nil, err
	}
	var serial float64
	for _, workers := range scalingWorkers {
		if workers > numCPU && workers != 1 {
			// More workers than cores would only measure oversubscription;
			// the sweep stops at the hardware.
			w.logf("scaling: skipping workers=%d (only %d CPUs)", workers, numCPU)
			continue
		}
		eng, err := core.NewSVAQD(w.Models(), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		h := obs.NewHistogram(nil)
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		fr, err := eng.RunAll(context.Background(), vids, q, core.FleetOptions{
			Workers:  workers,
			OnResult: func(vr core.VideoResult) { h.ObserveDuration(vr.Elapsed) },
		})
		if err != nil {
			return nil, fmt.Errorf("bench: scaling fleet (workers=%d): %w", workers, err)
		}
		if fr.OK != len(vids) {
			return nil, fmt.Errorf("bench: scaling fleet (workers=%d): %d of %d videos not ok", workers, len(vids)-fr.OK, len(vids))
		}
		elapsed := time.Since(start).Seconds()
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		p := ScalingPoint{
			Workers:         workers,
			ElapsedSeconds:  elapsed,
			VideosPerSecond: float64(len(vids)) / elapsed,
			VideoLatencyP50: h.Quantile(0.50),
			VideoLatencyP90: h.Quantile(0.90),
			VideoLatencyP99: h.Quantile(0.99),
			AllocsPerVideo:  float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(vids)),
			BytesPerVideo:   float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(len(vids)),
		}
		if workers == 1 {
			serial = elapsed
		}
		if serial > 0 {
			p.SpeedupVsSerial = serial / elapsed
		}
		w.logf("scaling: workers=%d elapsed=%.2fs throughput=%.1f videos/s allocs/video=%.0f", workers, elapsed, p.VideosPerSecond, p.AllocsPerVideo)
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// ScalingExperiment renders the scaling sweep as a table; the same data is
// available machine-readably via Workspace.Scaling / WriteScalingJSON.
func ScalingExperiment(w *Workspace) ([]Table, error) {
	rep, err := w.Scaling()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: fmt.Sprintf("Fleet scaling: throughput vs workers (%d videos × %d frames, SVAQD, GOMAXPROCS=%d, %d CPUs)",
			rep.FleetSize, rep.FramesPerVideo, rep.GOMAXPROCS, rep.NumCPU),
		Header: []string{"workers", "elapsed (s)", "videos/s", "speedup", "video p50/p90/p99 (ms)", "allocs/video", "KB/video"},
	}
	for _, p := range rep.Points {
		t.AddRow(
			fmt.Sprint(p.Workers),
			f2(p.ElapsedSeconds),
			f1(p.VideosPerSecond),
			f2(p.SpeedupVsSerial)+"x",
			fmt.Sprintf("%.0f/%.0f/%.0f", p.VideoLatencyP50*1e3, p.VideoLatencyP90*1e3, p.VideoLatencyP99*1e3),
			fmt.Sprintf("%.0f", p.AllocsPerVideo),
			f1(p.BytesPerVideo/1024),
		)
	}
	return []Table{t}, nil
}

// WriteScalingJSON writes the report as indented JSON (BENCH_scaling.json).
func WriteScalingJSON(path string, rep *ScalingReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ScalingEntry is one run of the scaling experiment in the append-only
// BENCH series: the report plus when and against which revision it ran.
type ScalingEntry struct {
	Timestamp string         `json:"timestamp"`
	GitRev    string         `json:"git_rev,omitempty"`
	Report    *ScalingReport `json:"report"`
}

// ReadScalingSeries decodes a BENCH series file. A legacy file holding a
// single bare ScalingReport object (the pre-series format) is adopted as a
// one-entry series with no timestamp, so old BENCH_scaling.json files keep
// working as the baseline. A missing file is an empty series.
func ReadScalingSeries(path string) ([]ScalingEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var series []ScalingEntry
	if err := json.Unmarshal(raw, &series); err == nil {
		return series, nil
	}
	var legacy ScalingReport
	if err := json.Unmarshal(raw, &legacy); err != nil {
		return nil, fmt.Errorf("bench: %s is neither a scaling series nor a legacy report: %w", path, err)
	}
	return []ScalingEntry{{Report: &legacy}}, nil
}

// AppendScalingJSON appends the report to the series at path and rewrites
// the file, returning the full series including the new entry. The series
// is append-only: prior entries are preserved byte-for-byte in meaning, so
// the file doubles as a throughput history across revisions.
func AppendScalingJSON(path string, rep *ScalingReport, gitRev string) ([]ScalingEntry, error) {
	series, err := ReadScalingSeries(path)
	if err != nil {
		return nil, err
	}
	series = append(series, ScalingEntry{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GitRev:    gitRev,
		Report:    rep,
	})
	b, err := json.MarshalIndent(series, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return series, nil
}

// bestThroughput is an entry's peak videos/s across its worker sweep — the
// quantity the regression gate protects.
func bestThroughput(e ScalingEntry) float64 {
	var best float64
	if e.Report == nil {
		return 0
	}
	for _, p := range e.Report.Points {
		if p.VideosPerSecond > best {
			best = p.VideosPerSecond
		}
	}
	return best
}

// comparableConfig reports whether two reports measured the same workload on
// the same effective hardware — only then is a throughput comparison between
// them meaningful. An entry recorded at a different GOMAXPROCS, fleet size,
// video length, scale or seed is a different experiment, not a baseline.
func comparableConfig(a, b *ScalingReport) bool {
	return a != nil && b != nil &&
		a.GOMAXPROCS == b.GOMAXPROCS &&
		a.FleetSize == b.FleetSize &&
		a.FramesPerVideo == b.FramesPerVideo &&
		a.Scale == b.Scale &&
		a.Seed == b.Seed
}

// CheckScalingRegression compares the newest series entry against the most
// recent earlier entry with a comparable configuration and fails when peak
// throughput dropped by more than maxDropPct percent. The returned message
// says what was (or was not) compared; earlier revisions of this gate
// compared the last two entries unconditionally, which turned every config
// change — a different machine, scale or GOMAXPROCS — into a phantom
// regression or a phantom speedup.
func CheckScalingRegression(series []ScalingEntry, maxDropPct float64) (string, error) {
	if len(series) < 2 {
		return "first recorded run, no baseline to compare", nil
	}
	cur := series[len(series)-1]
	var base *ScalingEntry
	for i := len(series) - 2; i >= 0; i-- {
		if comparableConfig(series[i].Report, cur.Report) {
			base = &series[i]
			break
		}
	}
	if base == nil {
		return "baseline skipped: config changed", nil
	}
	prev, curT := bestThroughput(*base), bestThroughput(cur)
	if prev <= 0 {
		return "baseline skipped: previous comparable run recorded no throughput", nil
	}
	drop := (prev - curT) / prev * 100
	if drop > maxDropPct {
		return "", fmt.Errorf("bench: scaling regression: peak throughput %.1f videos/s is %.1f%% below the comparable baseline's %.1f videos/s (limit %.0f%%)",
			curT, drop, prev, maxDropPct)
	}
	return fmt.Sprintf("peak %.1f videos/s within %.0f%% of the comparable baseline's %.1f videos/s", curT, maxDropPct, prev), nil
}
