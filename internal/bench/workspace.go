package bench

import (
	"context"
	"fmt"
	"io"
	"sync"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/rank"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// Options configure a benchmark workspace.
type Options struct {
	// Scale shrinks the benchmark datasets relative to the paper's video
	// volumes (1.0 = paper scale). The experiment shapes are stable from
	// roughly 0.05 upward.
	Scale float64
	// Seed drives dataset generation and detector noise.
	Seed int64
	// Workers bounds the videos ingested concurrently when building offline
	// indexes; <= 0 means GOMAXPROCS.
	Workers int
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	return o
}

// Workspace lazily builds and caches the datasets and ingested indexes the
// experiments share.
type Workspace struct {
	opts Options

	mu      sync.Mutex
	youtube map[video.Geometry]*synth.Dataset
	movies  *synth.Dataset
	indexes map[string]*rank.Index
}

// NewWorkspace creates a workspace.
func NewWorkspace(opts Options) *Workspace {
	return &Workspace{
		opts:    opts.withDefaults(),
		youtube: map[video.Geometry]*synth.Dataset{},
		indexes: map[string]*rank.Index{},
	}
}

func (w *Workspace) logf(format string, args ...any) {
	if w.opts.Log != nil {
		fmt.Fprintf(w.opts.Log, format+"\n", args...)
	}
}

// YouTube returns the Table 1 benchmark at the workspace scale, for the
// given geometry (the clip-size studies vary it).
func (w *Workspace) YouTube(g video.Geometry) *synth.Dataset {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.youtube[g]; ok {
		return d
	}
	w.logf("generating youtube benchmark (scale %.2f, geometry %+v)", w.opts.Scale, g)
	d := synth.YouTube(synth.Options{Scale: w.opts.Scale, Seed: w.opts.Seed, Geometry: g})
	w.youtube[g] = d
	return d
}

// Movies returns the Table 2 benchmark at the workspace scale.
func (w *Workspace) Movies() *synth.Dataset {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.movies == nil {
		w.logf("generating movies benchmark (scale %.2f)", w.opts.Scale)
		w.movies = synth.Movies(synth.Options{Scale: w.opts.Scale, Seed: w.opts.Seed})
	}
	return w.movies
}

// Models returns the default detection model pair (Mask R-CNN + I3D).
func (w *Workspace) Models() detect.Models {
	return detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, w.opts.Seed),
		detect.NewActionRecognizer(detect.I3D, w.opts.Seed),
	)
}

// ModelsFor builds a model pair from explicit profiles.
func (w *Workspace) ModelsFor(obj, act detect.Profile) detect.Models {
	return detect.NewModels(
		detect.NewObjectDetector(obj, w.opts.Seed),
		detect.NewActionRecognizer(act, w.opts.Seed),
	)
}

// QueryStream returns the concatenated video stream of one YouTube query
// set (all videos whose script contains the query's action).
func (w *Workspace) QueryStream(g video.Geometry, queryName string) (*synth.Concat, synth.QuerySpec, error) {
	d := w.YouTube(g)
	spec := d.Query(queryName)
	if spec == nil {
		return nil, synth.QuerySpec{}, fmt.Errorf("bench: unknown query %q", queryName)
	}
	var vids []*synth.Video
	for _, v := range d.Videos {
		if !v.ActionPresence(spec.Action).Empty() || contains(v.ActionTypes(), spec.Action) {
			vids = append(vids, v)
		}
	}
	if len(vids) == 0 {
		return nil, synth.QuerySpec{}, fmt.Errorf("bench: no videos for query %q", queryName)
	}
	c, err := synth.NewConcat("yt-"+queryName, vids)
	return c, *spec, err
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// MovieIndex ingests (and caches) one movie's offline index.
func (w *Workspace) MovieIndex(title string) (*rank.Index, error) {
	w.mu.Lock()
	if ix, ok := w.indexes["movie/"+title]; ok {
		w.mu.Unlock()
		return ix, nil
	}
	w.mu.Unlock()
	d := w.Movies()
	v := d.Video(title)
	if v == nil {
		return nil, fmt.Errorf("bench: unknown movie %q", title)
	}
	w.logf("ingesting %s", title)
	ix, err := rank.Ingest(context.Background(), v, w.Models(), rank.PaperScoring(), rank.DefaultIngestConfig())
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.indexes["movie/"+title] = ix
	w.mu.Unlock()
	return ix, nil
}

// YouTubeIndex ingests (and caches) the merged offline index of one YouTube
// query set.
func (w *Workspace) YouTubeIndex(queryName string) (*rank.Index, error) {
	key := "yt/" + queryName
	w.mu.Lock()
	if ix, ok := w.indexes[key]; ok {
		w.mu.Unlock()
		return ix, nil
	}
	w.mu.Unlock()
	c, _, err := w.QueryStream(video.DefaultGeometry, queryName)
	if err != nil {
		return nil, err
	}
	w.logf("ingesting youtube set %s (%d videos)", queryName, len(c.Components()))
	var tvs []detect.TruthVideo
	for _, v := range c.Components() {
		tvs = append(tvs, v)
	}
	ix, err := rank.IngestAllParallel(context.Background(), "yt-"+queryName, tvs, w.Models(), rank.PaperScoring(), rank.DefaultIngestConfig(), w.opts.Workers)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.indexes[key] = ix
	w.mu.Unlock()
	return ix, nil
}

// OnlineEval runs an online engine over a concatenated query stream and
// scores it against ground truth at the clip-sequence level.
func OnlineEval(eng *core.Engine, c *synth.Concat, spec synth.QuerySpec) (metrics.Counts, *core.Result, error) {
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	res, err := eng.Run(context.Background(), c, q)
	if err != nil {
		return metrics.Counts{}, nil, err
	}
	truth := c.TruthClips(spec, 0)
	return metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU), res, nil
}

// FrameLevelF1 scores a result at the frame level against ground truth.
func FrameLevelF1(res *core.Result, c *synth.Concat, spec synth.QuerySpec) float64 {
	return metrics.UnitCounts(res.FrameSequences(), c.TruthFrames(spec)).F1()
}
