// Package bench regenerates every table and figure of the paper's
// evaluation (§5) against the synthetic benchmark workloads: the online
// accuracy studies (Figures 2-5, Tables 3-5, the runtime decomposition of
// §5.2) and the offline top-k performance studies (Tables 6-8). Each
// experiment is a function returning formatted result tables; cmd/experiments
// runs them all and EXPERIMENTS.md records paper-versus-measured values.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned monospaced text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
