package bench

import (
	"context"
	"fmt"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// DriftExperiment exercises the scenario that motivates SVAQD (§3.3): a
// surveillance camera whose background detection rate is non-stationary —
// vehicle traffic multiplies during recurring peaks. A fixed background
// probability is mis-calibrated either during the peaks or between them;
// the adaptive estimator tracks the rate. The experiment reports each
// algorithm's F1 overall and separately inside/outside the peak windows.
func DriftExperiment(w *Workspace) ([]Table, error) {
	const frames = 72_000 // two hours at 10 fps
	const period, peakLen = 12_000, 3_600
	v, err := synth.Generate(synth.Script{
		ID: "drift-cam", Frames: frames, FPS: 10, Geometry: video.DefaultGeometry,
		Seed: w.opts.Seed,
		Actions: []synth.ActionSpec{
			{Name: "running", MeanGapShots: 200, MeanDurShots: 25},
		},
		Objects: []synth.ObjectSpec{
			{
				Name:          "car",
				MeanGapFrames: 2000,
				MeanDurFrames: 120,
				Rate:          synth.PeakRate(period, peakLen, 6),
			},
			{Name: "person", MeanDurFrames: 300, CorrelatedWith: "running", CorrelationProb: 0.95},
		},
	})
	if err != nil {
		return nil, err
	}
	spec := synth.QuerySpec{Action: "running", Objects: []string{"person", "car"}}
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	truth := v.TruthClips(spec, 0)

	// Clip sets inside and outside the traffic peaks.
	g := v.Geometry()
	peakInd := make([]bool, v.Meta.NumClips())
	for c := range peakInd {
		mid := g.FrameRangeOfClip(c).Start + g.FramesPerClip()/2
		peakInd[c] = mid%period < peakLen
	}
	peaks := video.FromIndicator(peakInd)
	calm := video.NewIntervalSet(video.Interval{Start: 0, End: v.Meta.NumClips() - 1}).Subtract(peaks)

	t := Table{
		Title:  "Drift (surveillance camera with 6x traffic peaks): SVAQ vs SVAQD",
		Header: []string{"algorithm", "F1 overall", "F1 in peaks", "F1 off peaks", "final car p"},
	}
	models := detect.NewModels(
		detect.NewObjectDetector(detect.YOLOv3, w.opts.Seed),
		detect.NewActionRecognizer(detect.I3D, w.opts.Seed),
	)
	for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
		eng, err := mk(models, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := eng.Run(context.Background(), v, q)
		if err != nil {
			return nil, err
		}
		overall := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
		inPeak := metrics.UnitCounts(res.Sequences.IntersectSet(peaks), truth.IntersectSet(peaks))
		offPeak := metrics.UnitCounts(res.Sequences.IntersectSet(calm), truth.IntersectSet(calm))
		t.AddRow(eng.Mode().String(), f2(overall.F1()), f2(inPeak.F1()), f2(offPeak.F1()),
			fmt.Sprintf("%.4f", res.Predicate("car").Background))
	}
	return []Table{t}, nil
}
