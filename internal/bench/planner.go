package bench

import (
	"context"
	"fmt"
	"strings"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// plannerArm is one pinned-or-adaptive configuration of the planner
// ablation.
type plannerArm struct {
	label string
	q     core.Query
	mut   func(*core.Config)
}

// AblationPlanner quantifies the cost-based predicate planner on an
// adversarial declared order: q2 declares its two common objects first and
// the rare (most selective) — and, per unit, far cheaper — action predicate
// last, so pinned declared-order evaluation pays the expensive object
// detectors on clips the action alone would have rejected. Three arms run
// the identical query:
//
//   - declared: pinned to the adversarial declared order,
//   - planned: the adaptive cheapest-expected-cost-to-reject order,
//   - worst-case: pinned to the reverse of the order the planner converged
//     to (the statically worst realisable order).
//
// Ordering is provably result-invariant (see internal/core's
// order-invariance property tests), so every arm reports the same F1 and
// sequences; only the inference cost moves.
func AblationPlanner(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	models := w.Models()
	truth := stream.TruthClips(spec, 0)

	run := func(a plannerArm) (*core.Result, *detect.Meter, error) {
		cfg := core.DefaultConfig()
		a.mut(&cfg)
		eng, err := core.NewSVAQD(models, cfg)
		if err != nil {
			return nil, nil, err
		}
		meter := new(detect.Meter)
		eng.SetMeter(meter)
		res, err := eng.Run(context.Background(), stream, a.q)
		if err != nil {
			return nil, nil, err
		}
		return res, meter, nil
	}

	declared := plannerArm{
		label: "declared (adversarial: selective action last)",
		q:     core.Query{Objects: spec.Objects, Action: spec.Action},
		mut:   func(c *core.Config) { c.DeclaredOrder = true },
	}
	planned := plannerArm{
		label: "planned (cheapest rejection first)",
		q:     core.Query{Objects: spec.Objects, Action: spec.Action},
		mut:   func(c *core.Config) {},
	}

	// The worst-case arm pins the reverse of whatever order the planner
	// converged to, so run the planned arm first to learn that order.
	planRes, planMeter, err := run(planned)
	if err != nil {
		return nil, err
	}
	worst, err := reversedArm(planRes, spec)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title: "Ablation: cost-based predicate planner (q2, SVAQD)",
		Header: []string{"variant", "evaluation order", "inference cost",
			"object frames", "action shots", "F1", "sequences"},
	}
	var declaredCost, plannedCost, worstCost float64
	for _, a := range []plannerArm{declared, planned, worst} {
		res, meter := planRes, planMeter // the planned arm already ran
		if a.label != planned.label {
			if res, meter, err = run(a); err != nil {
				return nil, err
			}
		}
		cost := meter.Cost(models)
		switch a.label {
		case declared.label:
			declaredCost = cost.Seconds()
		case planned.label:
			plannedCost = cost.Seconds()
		default:
			worstCost = cost.Seconds()
		}
		c := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
		order := "-"
		if res.Plan != nil {
			order = strings.Join(res.Plan.Order, " -> ")
		}
		t.AddRow(a.label, order, cost.String(),
			fmt.Sprint(meter.ObjectFrames()), fmt.Sprint(meter.ActionShots()),
			f2(c.F1()), fmt.Sprint(res.Sequences.NumIntervals()))
	}

	s := Table{
		Title:  "Planner speedup (simulated inference cost ratios)",
		Header: []string{"comparison", "speedup"},
	}
	s.AddRow("planned vs declared (adversarial)", f2(declaredCost/plannedCost))
	s.AddRow("planned vs worst-case", f2(worstCost/plannedCost))
	return []Table{t, s}, nil
}

// reversedArm realises the reverse of a converged plan order as a pinned
// configuration: action first (ActionFirst) when the reversed order leads
// with the action, declared order (DeclaredOrder) with the objects laid out
// to match otherwise.
func reversedArm(res *core.Result, spec synth.QuerySpec) (plannerArm, error) {
	out := plannerArm{label: "worst-case (reverse of planned)"}
	if res.Plan == nil {
		return out, fmt.Errorf("bench: planned run carries no plan report")
	}
	order := res.Plan.Order
	rev := make([]string, len(order))
	for i, name := range order {
		rev[len(order)-1-i] = name
	}
	isAction := func(name string) bool { return name == spec.Action }
	switch {
	case isAction(rev[len(rev)-1]):
		out.q = core.Query{Objects: rev[:len(rev)-1], Action: spec.Action}
		out.mut = func(c *core.Config) { c.DeclaredOrder = true }
	case isAction(rev[0]):
		out.q = core.Query{Objects: rev[1:], Action: spec.Action}
		out.mut = func(c *core.Config) { c.ActionFirst = true }
	default:
		return out, fmt.Errorf("bench: reversed order %v puts the action mid-sequence; not realisable as a pinned configuration", rev)
	}
	return out, nil
}
