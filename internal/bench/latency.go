package bench

import (
	"context"
	"fmt"
	"time"

	"svqact/internal/core"
	"svqact/internal/obs"
	"svqact/internal/video"
)

// latencyRuns is how many times each engine is run; enough for stable
// percentiles without dominating the experiment suite's runtime.
const latencyRuns = 5

// LatencyProfile characterises end-to-end query latency per engine with the
// shared obs.Histogram percentile machinery — the same instrument the
// serving path exposes as svqact_query_duration_seconds, so bench numbers
// and /metrics scrapes are directly comparable. Each engine runs the q2
// query repeatedly over a fresh engine (online ingestion is the cost being
// measured; nothing is cached between runs).
func LatencyProfile(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	t := Table{
		Title:  fmt.Sprintf("Online query latency percentiles (q2, %d runs)", latencyRuns),
		Header: []string{"engine", "latency profile"},
	}
	for _, mode := range []core.Mode{core.Static, core.Dynamic} {
		h := obs.NewHistogram(nil)
		for i := 0; i < latencyRuns; i++ {
			var eng *core.Engine
			if mode == core.Static {
				eng, err = core.NewSVAQ(w.Models(), core.DefaultConfig())
			} else {
				eng, err = core.NewSVAQD(w.Models(), core.DefaultConfig())
			}
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := eng.Run(context.Background(), stream, q); err != nil {
				return nil, err
			}
			h.ObserveDuration(time.Since(start))
		}
		t.AddRow(mode.String(), h.Summary())
	}
	return []Table{t}, nil
}
