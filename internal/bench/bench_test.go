package bench

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The tests share one small-scale workspace; experiments cache datasets and
// indexes inside it.
var (
	wsOnce sync.Once
	ws     *Workspace
)

func workspace(t *testing.T) *Workspace {
	t.Helper()
	wsOnce.Do(func() {
		ws = NewWorkspace(Options{Scale: 0.25, Seed: 42})
	})
	return ws
}

// cell parses a float out of a table cell like "0.83", "3.20x" or "1.2s; 34".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "x")
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSuffix(s, "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", s, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("longer", "x")
	out := tb.Format()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") {
		t.Errorf("format output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) < 12 {
		t.Fatalf("only %d experiments registered", len(Experiments))
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig2", "fig3", "table3", "table4", "table5", "fig4", "fig5", "table6", "table7", "table8"} {
		if Find(id) == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
	if Find("nope") != nil {
		t.Error("unknown id should return nil")
	}
}

func TestFig2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	// Figure 2 needs paper-length streams: the adaptive estimator's fixed
	// warm-up must be a small fraction of the stream for its flatness to
	// show, so this test runs at a larger scale than the shared workspace.
	tables, err := Fig2(NewWorkspace(Options{Scale: 0.6, Seed: 42}))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 panels, got %d", len(tables))
	}
	for _, tb := range tables {
		var svaq, svaqd []float64
		for _, row := range tb.Rows {
			svaq = append(svaq, cell(t, row[1]))
			svaqd = append(svaqd, cell(t, row[2]))
		}
		// SVAQD must be nearly flat across six orders of magnitude of p0.
		lo, hi := minmax(svaqd)
		if hi-lo > 0.30 {
			t.Errorf("%s: SVAQD spread %.2f too high (%v)", tb.Title, hi-lo, svaqd)
		}
		if hi < 0.5 {
			t.Errorf("%s: SVAQD never reaches a usable F1 (%v)", tb.Title, svaqd)
		}
		// SVAQ must depend on p0 substantially more than SVAQD.
		qlo, qhi := minmax(svaq)
		if (qhi - qlo) < (hi-lo)+0.15 {
			t.Errorf("%s: SVAQ spread %.2f not clearly above SVAQD spread %.2f",
				tb.Title, qhi-qlo, hi-lo)
		}
	}
}

func minmax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func TestFig3SVAQDDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Fig3(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 12 {
		t.Fatalf("want 12 queries, got %d", len(rows))
	}
	var sumQ, sumD float64
	for _, row := range rows {
		q, d := cell(t, row[3]), cell(t, row[4])
		sumQ += q
		sumD += d
		if d < 0.45 {
			t.Errorf("%s: SVAQD F1 %.2f too low", row[0], d)
		}
	}
	if sumD < sumQ-0.05 {
		t.Errorf("SVAQD mean F1 %.3f below SVAQ %.3f", sumD/12, sumQ/12)
	}
}

func TestTable4ModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Table4(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 model rows")
	}
	// Ideal models must reach (near-)perfect F1 for both algorithms.
	for col := 1; col <= 2; col++ {
		if v := cell(t, rows[2][col]); v < 0.95 {
			t.Errorf("ideal models col %d F1 = %.2f, want ~1.0", col, v)
		}
		mask, yolo := cell(t, rows[0][col]), cell(t, rows[1][col])
		if mask < yolo-0.05 {
			t.Errorf("col %d: MaskRCNN F1 %.2f below YOLOv3 %.2f", col, mask, yolo)
		}
	}
}

func TestTable5NoiseReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Table5(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		actRaw, actF := cell(t, row[1]), cell(t, row[2])
		objRaw, objF := cell(t, row[3]), cell(t, row[4])
		if actRaw <= 0 || objRaw <= 0 {
			t.Errorf("%s: raw FPRs should be positive (%v, %v)", row[0], actRaw, objRaw)
		}
		if actF > actRaw {
			t.Errorf("%s: SVAQD increased action FPR: %.3f -> %.3f", row[0], actRaw, actF)
		}
		if objF > objRaw*0.8 {
			t.Errorf("%s: SVAQD object FPR reduction too weak: %.3f -> %.3f", row[0], objRaw, objF)
		}
	}
}

func TestFig4MoreSequencesWithSmallerClips(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Fig4(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		// SVAQ shows the raw fragmentation effect: strictly non-increasing
		// sequence counts as clips grow. SVAQD's adaptive thresholds damp
		// the effect at this scale, so it only gets a loose bound.
		firstQ, lastQ := cell(t, tb.Rows[0][1]), cell(t, tb.Rows[len(tb.Rows)-1][1])
		if lastQ > firstQ {
			t.Errorf("%s: SVAQ sequences grew with clip size: %v -> %v", tb.Title, firstQ, lastQ)
		}
		firstD, lastD := cell(t, tb.Rows[0][2]), cell(t, tb.Rows[len(tb.Rows)-1][2])
		if lastD > firstD+3 {
			t.Errorf("%s: SVAQD sequences grew sharply with clip size: %v -> %v", tb.Title, firstD, lastD)
		}
	}
}

func TestFig5FrameF1Stable(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Fig5(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		var vals []float64
		for _, row := range tb.Rows {
			vals = append(vals, cell(t, row[2]))
		}
		lo, hi := minmax(vals)
		if hi-lo > 0.3 {
			t.Errorf("%s: frame-level F1 varies too much with clip size: %v", tb.Title, vals)
		}
	}
}

func TestRuntimeDecompositionInferenceDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := RuntimeDecomposition(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	share := tables[0].Rows[0][2]
	v, err := strconv.ParseFloat(strings.TrimSuffix(share, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 90 {
		t.Errorf("inference share %.1f%%, expected to dominate (>90%%)", v)
	}
}

func TestTable6AlgorithmOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Table6(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows // FA, RVAQ-noSkip, Pq-Traverse, RVAQ
	for col := 1; col < len(rows[0]); col++ {
		fa := cell(t, rows[0][col])
		noskip := cell(t, rows[1][col])
		trav := cell(t, rows[2][col])
		rvaq := cell(t, rows[3][col])
		if rvaq > noskip+1e-9 {
			t.Errorf("col %d: RVAQ runtime %.2f above noSkip %.2f", col, rvaq, noskip)
		}
		if rvaq > fa+1e-9 {
			t.Errorf("col %d: RVAQ runtime %.2f above FA %.2f", col, rvaq, fa)
		}
		if rvaq > trav+1e-9 {
			t.Errorf("col %d: RVAQ runtime %.2f above Pq-Traverse %.2f", col, rvaq, trav)
		}
		// At small K, FA and noSkip must both pay clearly more than RVAQ —
		// the skip set is the point of the comparison. At K near the
		// candidate count every algorithm converges to Pq-Traverse. (FA vs
		// noSkip order is a documented deviation: with certified TBClip
		// bounds, noSkip can land above FA; see EXPERIMENTS.md Table 6.)
		if col == 1 {
			if fa < 2*rvaq {
				t.Errorf("col %d: FA runtime %.2f not clearly above RVAQ %.2f", col, fa, rvaq)
			}
			if noskip < 2*rvaq {
				t.Errorf("col %d: noSkip runtime %.2f not clearly above RVAQ %.2f", col, noskip, rvaq)
			}
		}
	}
}

func TestTable8SpeedupDecaysWithK(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := Table8(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		first := cell(t, row[1])
		last := cell(t, row[len(row)-1])
		if first < 1.0 {
			t.Errorf("%s: K=1 speedup %.2f < 1", row[0], first)
		}
		if last > first+0.25 {
			t.Errorf("%s: speedup at max K (%.2f) should not exceed K=1 (%.2f)", row[0], last, first)
		}
	}
}

func TestRemainingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	w := workspace(t)
	for _, id := range []string{"table3", "table7", "accuracy", "ablation-order", "ablation-shortcircuit", "ablation-horizon", "latency"} {
		e := Find(id)
		if e == nil {
			t.Fatalf("experiment %s missing", id)
		}
		tables, err := e.Run(w)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Errorf("%s: empty output", id)
		}
	}
}

func TestDriftSVAQDAdapts(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := DriftExperiment(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows // SVAQ, SVAQD
	svaq, svaqd := cell(t, rows[0][1]), cell(t, rows[1][1])
	if svaqd < svaq+0.15 {
		t.Errorf("SVAQD overall F1 %.2f should clearly beat SVAQ %.2f under drift", svaqd, svaq)
	}
	// The adaptive estimate must have moved from the 1e-4 prior towards the
	// real clutter rate.
	pD := cell(t, rows[1][4])
	if pD < 0.003 {
		t.Errorf("SVAQD background estimate %.4f did not adapt", pD)
	}
}

func TestExtendedQueriesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	tables, err := ExtendedQueries(workspace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("want 4 query rows, got %d", len(rows))
	}
	for _, row := range rows {
		noisy, ideal := cell(t, row[2]), cell(t, row[3])
		if ideal < 0.5 {
			t.Errorf("%s: ideal-model F1 %.2f too low", row[0], ideal)
		}
		if noisy > ideal+0.1 {
			t.Errorf("%s: noisy models (%v) should not beat ideal (%v)", row[0], noisy, ideal)
		}
	}
}
