package bench

import (
	"context"
	"fmt"
	"time"

	"svqact/internal/core"
	"svqact/internal/metrics"
	"svqact/internal/rank"
	"svqact/internal/video"
)

// CostModel prices table accesses so offline query runtimes reflect storage
// behaviour rather than in-process CPU noise: the paper's offline engine is
// I/O-bound (its Tables 6-7 report runtime alongside random-access counts).
// Random accesses pay a seek, sorted accesses stream sequentially.
type CostModel struct {
	RandomAccess time.Duration
	SortedAccess time.Duration
}

// DefaultCost models a magnetic-disk-class store, matching the regime in
// which the paper's runtime/access-count proportions hold: a random access
// pays a seek, while sorted rows stream at hundreds of thousands per second.
var DefaultCost = CostModel{
	RandomAccess: 5 * time.Millisecond,
	SortedAccess: 2 * time.Microsecond,
}

// Runtime prices a query result: measured CPU plus modelled access costs.
func (cm CostModel) Runtime(res *rank.Result, cpu time.Duration) time.Duration {
	return cpu +
		time.Duration(res.Stats.Random)*cm.RandomAccess +
		time.Duration(res.Stats.Sorted)*cm.SortedAccess
}

// offlineRun executes one algorithm and returns its result, its modelled
// runtime, and the random-access count.
func offlineRun(ix *rank.Index, algo string, q core.Query, k int) (*rank.Result, time.Duration, error) {
	fn, ok := rank.Algorithms[algo]
	if !ok {
		return nil, 0, fmt.Errorf("bench: unknown algorithm %q", algo)
	}
	start := time.Now()
	res, err := fn(context.Background(), ix, q, k, rank.Options{})
	if err != nil {
		return nil, 0, err
	}
	return res, DefaultCost.Runtime(res, time.Since(start)), nil
}

// offlineAlgos is the comparison order of the paper's Table 6.
var offlineAlgos = []string{"FA", "RVAQ-noSkip", "Pq-Traverse", "RVAQ"}

// Table6Ks is the K sweep of Table 6.
var Table6Ks = []int{1, 5, 9, 11, 13, 15}

// Table6 reproduces the paper's Table 6: runtime and random-access counts of
// the four offline algorithms on the movie Coffee and Cigarettes
// (q: {a=smoking; wine_glass, cup}) as K varies. Shape: FA worst,
// RVAQ-noSkip in between, RVAQ best and approaching Pq-Traverse as K grows.
func Table6(w *Workspace) ([]Table, error) {
	ix, err := w.MovieIndex("coffee_and_cigarettes")
	if err != nil {
		return nil, err
	}
	spec := w.Movies().Query("coffee_and_cigarettes")
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	t := Table{
		Title:  "Table 6: performance on movie Coffee and Cigarettes (runtime s; random accesses)",
		Header: append([]string{"method"}, ksHeader(Table6Ks)...),
	}
	for _, algo := range offlineAlgos {
		row := []string{algo}
		for _, k := range Table6Ks {
			res, rt, err := offlineRun(ix, algo, q, k)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fs; %d", rt.Seconds(), res.Stats.Random))
		}
		t.AddRow(row...)
		w.logf("table6 %s done", algo)
	}
	return []Table{t}, nil
}

func ksHeader(ks []int) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("K=%d", k)
	}
	return out
}

// Table7 reproduces the paper's Table 7: the four algorithms on the YouTube
// repositories of queries q1 and q2 with K=5.
func Table7(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "Table 7: performance on YouTube dataset (K=5; runtime s; random accesses)",
		Header: append([]string{"query"}, offlineAlgos...),
	}
	for _, name := range []string{"q1", "q2"} {
		ix, err := w.YouTubeIndex(name)
		if err != nil {
			return nil, err
		}
		spec := w.YouTube(video.DefaultGeometry).Query(name)
		q := core.Query{Objects: spec.Objects, Action: spec.Action}
		row := []string{name}
		for _, algo := range offlineAlgos {
			res, rt, err := offlineRun(ix, algo, q, 5)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fs; %d", rt.Seconds(), res.Stats.Random))
		}
		t.AddRow(row...)
		w.logf("table7 %s done", name)
	}
	return []Table{t}, nil
}

// Table8Ks is the K sweep of Table 8 (the final column is "max K", the
// number of candidate sequences of the query).
var Table8Ks = []int{1, 3, 5, 7, 9, 11}

// Table8 reproduces the paper's Table 8: the runtime speedup of RVAQ over
// Pq-Traverse on three movies as K varies. Shape: ~3x at K=1, decaying to
// ~1x when all candidate sequences are requested.
func Table8(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "Table 8: speedup of RVAQ against Pq-Traverse on 3 movies",
		Header: append(append([]string{"movie"}, ksHeader(Table8Ks)...), "max K"),
	}
	for _, title := range []string{"iron_man", "star_wars_3", "titanic"} {
		ix, err := w.MovieIndex(title)
		if err != nil {
			return nil, err
		}
		spec := w.Movies().Query(title)
		q := core.Query{Objects: spec.Objects, Action: spec.Action}
		pq, err := ix.Pq(q)
		if err != nil {
			return nil, err
		}
		maxK := pq.NumIntervals()
		if maxK == 0 {
			return nil, fmt.Errorf("bench: movie %s has no candidate sequences", title)
		}
		row := []string{title}
		for _, k := range append(append([]int{}, Table8Ks...), maxK) {
			if k > maxK {
				k = maxK
			}
			_, rvTime, err := offlineRun(ix, "RVAQ", q, k)
			if err != nil {
				return nil, err
			}
			_, trTime, err := offlineRun(ix, "Pq-Traverse", q, k)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fx", trTime.Seconds()/rvTime.Seconds()))
		}
		t.AddRow(row...)
		w.logf("table8 %s done (max K = %d)", title, maxK)
	}
	return []Table{t}, nil
}

// matchTopK scores a ranked top-k result against ground truth: precision
// over the returned sequences (IoU >= 0.5 against any truth sequence) and
// recall against the best achievable at this k (a top-k query cannot return
// more than k of the truth sequences).
func matchTopK(rs []rank.SeqResult, truth video.IntervalSet, k int) metrics.Counts {
	c := metrics.MatchSequences(rank.SequencesOf(rs), truth, metrics.DefaultIoU)
	achievable := truth.NumIntervals()
	if k < achievable {
		achievable = k
	}
	c.FN = achievable - c.TP
	if c.FN < 0 {
		c.FN = 0
	}
	return c
}

// OfflineAccuracy supplements the offline tables with the accuracy remark of
// §5.3: the precision and F1 of RVAQ's ranked sequences against ground
// truth on the movies.
func OfflineAccuracy(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "RVAQ result accuracy on movies (cf. §5.3 closing remarks)",
		Header: []string{"movie", "K", "precision", "F1"},
	}
	for _, title := range []string{"coffee_and_cigarettes", "iron_man", "star_wars_3", "titanic"} {
		ix, err := w.MovieIndex(title)
		if err != nil {
			return nil, err
		}
		d := w.Movies()
		spec := d.Query(title)
		v := d.Video(title)
		q := core.Query{Objects: spec.Objects, Action: spec.Action}
		for _, k := range []int{5, 10} {
			res, err := rank.RVAQ(context.Background(), ix, q, k, rank.Options{})
			if err != nil {
				return nil, err
			}
			truth := v.TruthClips(*spec, 0)
			c := matchTopK(res.Sequences, truth, k)
			t.AddRow(title, fmt.Sprint(k), f2(c.Precision()), f2(c.F1()))
		}
	}
	return []Table{t}, nil
}
