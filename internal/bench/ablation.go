package bench

import (
	"fmt"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/video"
)

// AblationPredicateOrder quantifies the effect of Algorithm 2's predicate
// evaluation order (the paper defers this to future work, footnote 5):
// evaluating the action first versus the objects first changes how much
// model inference the short-circuit saves, depending on relative predicate
// selectivity. Both arms pin their order (DeclaredOrder/ActionFirst) so the
// comparison isolates static orders; AblationPlanner covers the adaptive
// planner against them.
func AblationPredicateOrder(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Ablation: predicate evaluation order (q2, SVAQD)",
		Header: []string{"order", "object frames inferred", "action shots inferred", "F1"},
	}
	for _, actionFirst := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.ActionFirst = actionFirst
		cfg.DeclaredOrder = !actionFirst
		eng, err := core.NewSVAQD(w.Models(), cfg)
		if err != nil {
			return nil, err
		}
		var meter detect.Meter
		eng.SetMeter(&meter)
		c, _, err := OnlineEval(eng, stream, spec)
		if err != nil {
			return nil, err
		}
		label := "objects first (paper default)"
		if actionFirst {
			label = "action first"
		}
		t.AddRow(label, fmt.Sprint(meter.ObjectFrames()), fmt.Sprint(meter.ActionShots()), f2(c.F1()))
	}
	return []Table{t}, nil
}

// AblationShortCircuit quantifies the inference saved by Algorithm 2's
// short-circuiting against the fully evaluated variant.
func AblationShortCircuit(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q1")
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Ablation: predicate short-circuiting (q1, SVAQD)",
		Header: []string{"variant", "object frames", "action shots", "inference cost", "F1"},
	}
	models := w.Models()
	for _, noSC := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.NoShortCircuit = noSC
		eng, err := core.NewSVAQD(models, cfg)
		if err != nil {
			return nil, err
		}
		var meter detect.Meter
		eng.SetMeter(&meter)
		c, _, err := OnlineEval(eng, stream, spec)
		if err != nil {
			return nil, err
		}
		label := "short-circuit (default)"
		if noSC {
			label = "evaluate all predicates"
		}
		t.AddRow(label, fmt.Sprint(meter.ObjectFrames()), fmt.Sprint(meter.ActionShots()),
			meter.Cost(models).String(), f2(c.F1()))
	}
	return []Table{t}, nil
}

// AblationHorizon sweeps the scan-statistics horizon L (the paper leaves it
// implicit): longer horizons demand more evidence per clip, trading recall
// at occurrence boundaries against false-alarm control.
func AblationHorizon(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Ablation: significance horizon L (q2, SVAQD)",
		Header: []string{"L (clips)", "F1", "sequences"},
	}
	for _, L := range []float64{5, 20, 100, 500} {
		cfg := core.DefaultConfig()
		cfg.HorizonClips = L
		eng, err := core.NewSVAQD(w.Models(), cfg)
		if err != nil {
			return nil, err
		}
		c, res, err := OnlineEval(eng, stream, spec)
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(L), f2(c.F1()), fmt.Sprint(res.Sequences.NumIntervals()))
	}
	return []Table{t}, nil
}

// Experiment is one runnable evaluation unit.
type Experiment struct {
	// ID is the table/figure identifier used on the command line.
	ID string
	// Desc summarises what the experiment reproduces.
	Desc string
	// Run executes the experiment against a workspace.
	Run func(*Workspace) ([]Table, error)
}

// Experiments lists every reproducible table and figure plus the ablations,
// in presentation order.
var Experiments = []Experiment{
	{"fig2", "F1 vs initial background probability (SVAQ vs SVAQD)", Fig2},
	{"fig3", "F1 on all twelve YouTube queries", Fig3},
	{"table3", "F1 with varying object predicates", Table3},
	{"table4", "F1 under different detection models", Table4},
	{"table5", "Detector FPR without/with SVAQD", Table5},
	{"fig4", "Number of result sequences vs clip size", Fig4},
	{"fig5", "Frame-level F1 vs clip size", Fig5},
	{"runtime", "Online runtime decomposition (§5.2)", RuntimeDecomposition},
	{"table6", "Offline algorithms on Coffee and Cigarettes", Table6},
	{"table7", "Offline algorithms on YouTube (K=5)", Table7},
	{"table8", "RVAQ speedup over Pq-Traverse on three movies", Table8},
	{"accuracy", "RVAQ ranked-result accuracy on movies (§5.3)", OfflineAccuracy},
	{"ablation-order", "Predicate evaluation order", AblationPredicateOrder},
	{"ablation-planner", "Cost-based planner vs declared vs worst-case order", AblationPlanner},
	{"ablation-shortcircuit", "Short-circuit inference savings", AblationShortCircuit},
	{"ablation-horizon", "Significance horizon sweep", AblationHorizon},
	{"latency", "Online query latency percentiles", LatencyProfile},
	{"scaling", "Fleet throughput vs worker count (RunAll)", ScalingExperiment},
	{"drift", "Non-stationary background (surveillance peaks)", DriftExperiment},
	{"extended", "Extended queries: relations, multi-action, disjunction", ExtendedQueries},
	{"ablation-cascade", "Tiered cascade vs cheap-only vs accurate-only (cost at equal F1)", AblationCascade},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range Experiments {
		if Experiments[i].ID == id {
			return &Experiments[i]
		}
	}
	return nil
}
