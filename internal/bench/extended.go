package bench

import (
	"context"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// ExtendedQueries evaluates the query extensions of the paper's footnotes
// 2-4 (relations, multi-action conjunction, disjunction) against scripted
// ground truth, with the noisy default models and with ideal models. The
// paper proposes but does not evaluate these; this experiment closes that
// gap.
func ExtendedQueries(w *Workspace) ([]Table, error) {
	v, err := synth.Generate(synth.Script{
		ID: "ext-bench", Frames: 90_000, FPS: 10, Geometry: video.DefaultGeometry,
		Seed: w.opts.Seed,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 120, MeanDurShots: 30},
			{Name: "dancing", MeanGapShots: 150, MeanDurShots: 25},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 350, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "dog", MeanGapFrames: 2200, MeanDurFrames: 420},
			{Name: "car", MeanGapFrames: 2600, MeanDurFrames: 320},
		},
	})
	if err != nil {
		return nil, err
	}
	queries := []struct {
		label string
		cnf   core.CNF
	}{
		{"disjunction: (jumping OR dancing) AND human", core.CNF{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping"), core.ActionAtom("dancing")}},
			{Atoms: []core.Atom{core.ObjectAtom("human")}},
		}}},
		{"multi-action: jumping AND dancing", core.CNF{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping")}},
			{Atoms: []core.Atom{core.ActionAtom("dancing")}},
		}}},
		{"relation: jumping AND near(human,dog)", core.CNF{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping")}},
			{Atoms: []core.Atom{core.RelationAtom(detect.Near, "human", "dog")}},
		}}},
		{"relation: jumping AND left_of(human,car)", core.CNF{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping")}},
			{Atoms: []core.Atom{core.RelationAtom(detect.LeftOf, "human", "car")}},
		}}},
	}
	t := Table{
		Title:  "Extended queries (footnotes 2-4): unit-level F1 vs scripted truth",
		Header: []string{"query", "truth clips", "MaskRCNN+I3D", "Ideal"},
	}
	modelSets := []detect.Models{
		w.Models(),
		w.ModelsFor(detect.IdealObject, detect.IdealAction),
	}
	for _, q := range queries {
		truth := extendedTruthClips(v, q.cnf)
		row := []string{q.label, f1(float64(truth.TotalLen()))}
		for _, models := range modelSets {
			eng, err := core.NewSVAQD(models, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			res, err := eng.RunCNF(context.Background(), v, q.cnf)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(metrics.UnitCounts(res.Sequences, truth).F1()))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// extendedTruthClips derives the clip-level ground truth of a CNF query
// directly from the scripted world (any-coverage semantics).
func extendedTruthClips(v *synth.Video, q core.CNF) video.IntervalSet {
	g := v.Meta.Geometry
	frameInd := make([]bool, v.NumFrames())
	for f := range frameInd {
		sat := true
		for _, c := range q.Clauses {
			any := false
			for _, a := range c.Atoms {
				switch a.Kind {
				case core.ObjectPredicate:
					any = any || v.ObjectPresentAt(a.Name, f)
				case core.ActionPredicate:
					any = any || v.ActionAt(a.Name, g.ShotOfFrame(f))
				case core.RelationPredicate:
					any = any || detect.TrueRelationAt(v, detect.Relation(a.Name), a.Args[0], a.Args[1], f)
				}
			}
			if !any {
				sat = false
				break
			}
		}
		frameInd[f] = sat
	}
	frames := video.FromIndicator(frameInd)
	clipInd := make([]bool, v.Meta.NumClips())
	for c := range clipInd {
		clipInd[c] = !frames.IntersectSet(video.NewIntervalSet(g.FrameRangeOfClip(c))).Empty()
	}
	return video.FromIndicator(clipInd)
}
