package bench

import (
	"fmt"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/video"
)

// AblationCascade quantifies the tiered detector cascade on q2: the same
// query runs under the cheap distilled proxies alone, the two-tier cascade
// (distilled proxy gating the accurate model under the recall band), and the
// accurate models alone. The cascade's recall-complete construction makes
// its results bit-identical to the accurate arm (see internal/core's
// tier-invariance property tests), so its F1 must equal the accurate arm's
// at strictly lower priced inference cost; the cheap-only arm shows the
// accuracy the extra distillation false positives cost when nothing gates
// them.
func AblationCascade(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	seed := w.opts.Seed
	obj := detect.NewObjectDetector(detect.MaskRCNN, seed)
	act := detect.NewActionRecognizer(detect.I3D, seed)

	arms := []struct {
		label  string
		models detect.Models
	}{
		{"cheap-only (distilled proxies)", detect.NewModels(
			detect.NewDistilledObjectDetector(obj, detect.DistilledRCNN, seed),
			detect.NewDistilledActionRecognizer(act, detect.DistilledI3D, seed),
		)},
		{"cascade (distilled -> accurate)", detect.NewModels(
			detect.NewDistilledObjectCascade(obj, detect.DistilledRCNN, seed),
			detect.NewDistilledActionCascade(act, detect.DistilledI3D, seed),
		)},
		{"accurate-only (Mask R-CNN + I3D)", detect.NewModels(obj, act)},
	}

	t := Table{
		Title: "Ablation: tiered detector cascade (q2, SVAQD)",
		Header: []string{"variant", "F1", "inference cost", "escalation rate",
			"units escalated", "sequences"},
	}
	var cascadeCost, accurateCost float64
	var cascadeF1, accurateF1 float64
	for _, a := range arms {
		eng, err := core.NewSVAQD(a.models, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		c, res, err := OnlineEval(eng, stream, spec)
		if err != nil {
			return nil, err
		}
		escRate, escalated := escalationRate(res)
		esc := "-"
		if escRate >= 0 {
			esc = f2(escRate)
		}
		t.AddRow(a.label, f2(c.F1()), res.InferenceCost.String(), esc,
			fmt.Sprint(escalated), fmt.Sprint(res.Sequences.NumIntervals()))
		switch a.label {
		case arms[1].label:
			cascadeCost, cascadeF1 = res.InferenceCost.Seconds(), c.F1()
		case arms[2].label:
			accurateCost, accurateF1 = res.InferenceCost.Seconds(), c.F1()
		}
	}

	s := Table{
		Title:  "Cascade savings (priced inference cost, result-identical arms)",
		Header: []string{"comparison", "value"},
	}
	s.AddRow("cascade vs accurate-only speedup", f2(accurateCost/cascadeCost))
	s.AddRow("F1 delta (cascade - accurate)", f2(cascadeF1-accurateF1))
	return []Table{t, s}, nil
}

// escalationRate extracts the entry-tier escalation fraction from a run's
// plan report: units escalated past the cheapest tier over units it scored,
// summed across cascaded predicates. Returns -1 when the plan carries no
// tiers (single-model arms).
func escalationRate(res *core.Result) (float64, int64) {
	if res.Plan == nil || !res.Plan.Tiered {
		return -1, 0
	}
	var units, escalated int64
	for _, n := range res.Plan.Nodes {
		if len(n.Tiers) == 0 {
			continue
		}
		units += n.Tiers[0].Units
		escalated += n.Tiers[0].Escalated
	}
	if units == 0 {
		return 0, 0
	}
	return float64(escalated) / float64(units), escalated
}
