package bench

import (
	"context"
	"fmt"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// fig2Queries are the two queries the paper sweeps in Figure 2:
// (a) {a=blowing leaves; o1=car} and (b) {a=washing dishes; o1=faucet}.
var fig2Queries = []struct {
	label string
	set   string
	spec  synth.QuerySpec
}{
	{"(a) a=blowing_leaves; o1=car", "q2", synth.QuerySpec{Action: "blowing_leaves", Objects: []string{"car"}}},
	{"(b) a=washing_dishes; o1=faucet", "q1", synth.QuerySpec{Action: "washing_dishes", Objects: []string{"faucet"}}},
}

// Fig2BackgroundGrid is the initial-background-probability sweep of Fig. 2.
var Fig2BackgroundGrid = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Fig2 reproduces Figure 2: the F1 of SVAQ and SVAQD as the initial
// background probability p0 sweeps six orders of magnitude. The paper's
// shape: SVAQ peaks near 1e-4 and degrades away from it; SVAQD is flat.
func Fig2(w *Workspace) ([]Table, error) {
	var out []Table
	for _, fq := range fig2Queries {
		stream, _, err := w.QueryStream(video.DefaultGeometry, fq.set)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  "Figure 2 " + fq.label + ": F1 vs initial background probability",
			Header: []string{"p0", "SVAQ", "SVAQD"},
		}
		for _, p0 := range Fig2BackgroundGrid {
			row := []string{fmt.Sprintf("%.0e", p0)}
			for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
				cfg := core.DefaultConfig()
				cfg.P0Object, cfg.P0Action = p0, p0
				eng, err := mk(w.Models(), cfg)
				if err != nil {
					return nil, err
				}
				c, _, err := OnlineEval(eng, stream, fq.spec)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(c.F1()))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig3 reproduces Figure 3: the F1 of SVAQ (p0 = 1e-4, the peak of Fig. 2)
// and SVAQD across all twelve benchmark queries.
func Fig3(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "Figure 3: F1 of SVAQ and SVAQD on all YouTube queries",
		Header: []string{"query", "action", "objects", "SVAQ", "SVAQD"},
	}
	for _, q := range synth.YouTubeQueries() {
		stream, spec, err := w.QueryStream(video.DefaultGeometry, q.Name)
		if err != nil {
			return nil, err
		}
		row := []string{q.Name, q.Action, fmt.Sprint(q.Objects)}
		for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
			eng, err := mk(w.Models(), core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			c, _, err := OnlineEval(eng, stream, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(c.F1()))
		}
		t.AddRow(row...)
		w.logf("fig3 %s done", q.Name)
	}
	return []Table{t}, nil
}

// table3Variants lists the predicate variations of Table 3 for one action:
// each entry is the object list added to the bare action query.
var table3Variants = map[string][][]string{
	"blowing_leaves": {
		nil,
		{"person"},
		{"plant"},
		{"car"},
		{"person", "car"},
		{"person", "plant", "car"},
	},
	"washing_dishes": {
		nil,
		{"person"},
		{"oven"},
		{"faucet"},
		{"faucet", "oven"},
		{"person", "faucet", "oven"},
	},
}

// Table3 reproduces the paper's Table 3: F1 of SVAQ and SVAQD as object
// predicates are added to two base action queries. Correlated high-accuracy
// predicates (person) can improve F1; piling on predicates slightly lowers
// it.
func Table3(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "Table 3: F1 with varying object predicates",
		Header: []string{"query", "SVAQ", "SVAQD"},
	}
	for _, base := range []struct{ set, action string }{{"q2", "blowing_leaves"}, {"q1", "washing_dishes"}} {
		stream, _, err := w.QueryStream(video.DefaultGeometry, base.set)
		if err != nil {
			return nil, err
		}
		for _, objs := range table3Variants[base.action] {
			spec := synth.QuerySpec{Action: base.action, Objects: objs}
			label := "a=" + base.action
			for i, o := range objs {
				label += fmt.Sprintf(", o%d=%s", i+1, o)
			}
			row := []string{label}
			for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
				eng, err := mk(w.Models(), core.DefaultConfig())
				if err != nil {
					return nil, err
				}
				c, _, err := OnlineEval(eng, stream, spec)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(c.F1()))
			}
			t.AddRow(row...)
		}
	}
	return []Table{t}, nil
}

// Table4 reproduces the paper's Table 4: F1 of both algorithms under
// different detection models for q: {a=blowing_leaves; o1=car}. Ideal models
// must reach F1 = 1.00.
func Table4(w *Workspace) ([]Table, error) {
	stream, _, err := w.QueryStream(video.DefaultGeometry, "q2")
	if err != nil {
		return nil, err
	}
	spec := synth.QuerySpec{Action: "blowing_leaves", Objects: []string{"car"}}
	t := Table{
		Title:  "Table 4: F1 with different detection models, q:{a=blowing_leaves; o1=car}",
		Header: []string{"models", "SVAQ", "SVAQD"},
	}
	cases := []struct {
		label    string
		obj, act detect.Profile
	}{
		{"MaskRCNN+I3D", detect.MaskRCNN, detect.I3D},
		{"YOLOv3+I3D", detect.YOLOv3, detect.I3D},
		{"Ideal Models", detect.IdealObject, detect.IdealAction},
	}
	for _, cse := range cases {
		models := w.ModelsFor(cse.obj, cse.act)
		row := []string{cse.label}
		for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
			eng, err := mk(models, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			c, _, err := OnlineEval(eng, stream, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(c.F1()))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Table5 reproduces the paper's Table 5: the false-positive rate of the raw
// action recogniser and object detector versus the rates after SVAQD's
// statistical filtering. The paper reports 50-80% noise elimination.
func Table5(w *Workspace) ([]Table, error) {
	t := Table{
		Title:  "Table 5: detector false-positive rate without/with SVAQD",
		Header: []string{"query", "action w/o", "action w/", "object w/o", "object w/"},
	}
	for _, fq := range fig2Queries {
		stream, _, err := w.QueryStream(video.DefaultGeometry, fq.set)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.NoShortCircuit = true // complete per-predicate diagnostics
		eng, err := core.NewSVAQD(w.Models(), cfg)
		if err != nil {
			return nil, err
		}
		q := core.Query{Objects: fq.spec.Objects, Action: fq.spec.Action}
		res, err := eng.Run(context.Background(), stream, q)
		if err != nil {
			return nil, err
		}
		g := stream.Geometry()
		numClips := g.NumClips(stream.NumFrames())

		// Both rates are measured at the clip level against the same truth:
		// "without SVAQD" declares a clip positive as soon as any occurrence
		// unit inside it carries a thresholded detection (plain model output
		// merged to clips); "with SVAQD" uses the engine's clip indicator.
		actStats := res.Predicate(fq.spec.Action)
		actTruthClips := shotsToClips(stream.ActionShots(fq.spec.Action), g, numClips)
		actRaw := metrics.FalsePositiveRate(shotsToClips(actStats.RawUnits, g, numClips), actTruthClips, numClips)
		actFiltered := metrics.FalsePositiveRate(actStats.Clips, actTruthClips, numClips)

		obj := fq.spec.Objects[0]
		objStats := res.Predicate(obj)
		objTruthClips := framesToClips(stream.ObjectFrames(obj), g, numClips)
		objRaw := metrics.FalsePositiveRate(framesToClips(objStats.RawUnits, g, numClips), objTruthClips, numClips)
		objFiltered := metrics.FalsePositiveRate(objStats.Clips, objTruthClips, numClips)

		t.AddRow(fq.label, f2(actRaw), f2(actFiltered), f2(objRaw), f2(objFiltered))
	}
	return []Table{t}, nil
}

// shotsToClips maps a shot-level truth set to the clips it touches.
func shotsToClips(shots video.IntervalSet, g video.Geometry, numClips int) video.IntervalSet {
	var ivs []video.Interval
	for _, iv := range shots.Intervals() {
		ivs = append(ivs, video.Interval{Start: g.ClipOfShot(iv.Start), End: g.ClipOfShot(iv.End)})
	}
	return video.NewIntervalSet(ivs...).Clamp(video.Interval{Start: 0, End: numClips - 1})
}

// framesToClips maps a frame-level truth set to the clips it touches.
func framesToClips(frames video.IntervalSet, g video.Geometry, numClips int) video.IntervalSet {
	var ivs []video.Interval
	for _, iv := range frames.Intervals() {
		ivs = append(ivs, video.Interval{Start: g.ClipOfFrame(iv.Start), End: g.ClipOfFrame(iv.End)})
	}
	return video.NewIntervalSet(ivs...).Clamp(video.Interval{Start: 0, End: numClips - 1})
}

// ClipSizeGrid is the clip-length sweep (in shots per clip; 10-frame shots)
// of Figures 4 and 5. The grid stays within the regime where a clip holds
// "several shots" (paper §2) and a typical activity occurrence spans
// multiple clips: at two shots per clip the per-clip count statistic can no
// longer separate an event clip with one detector miss from background
// noise, and no calibration helps.
var ClipSizeGrid = []int{3, 5, 10}

// Fig4 reproduces Figure 4: the number of result sequences found as the
// clip size varies. Smaller clips fragment results into more, shorter
// sequences; larger clips merge them.
func Fig4(w *Workspace) ([]Table, error) {
	var out []Table
	for _, fq := range fig2Queries {
		t := Table{
			Title:  "Figure 4 " + fq.label + ": number of result sequences vs clip size",
			Header: []string{"clip frames", "SVAQ", "SVAQD", "truth"},
		}
		for _, spc := range ClipSizeGrid {
			g := video.Geometry{FramesPerShot: 10, ShotsPerClip: spc}
			stream, _, err := w.QueryStream(g, fq.set)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprint(g.FramesPerClip())}
			for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
				eng, err := mk(w.Models(), core.DefaultConfig())
				if err != nil {
					return nil, err
				}
				_, res, err := OnlineEval(eng, stream, fq.spec)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprint(res.Sequences.NumIntervals()))
			}
			row = append(row, fmt.Sprint(stream.TruthClips(fq.spec, 0).NumIntervals()))
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 reproduces Figure 5: the frame-level F1 as the clip size varies —
// near-flat, because clip size changes how results are fragmented, not which
// frames are returned.
func Fig5(w *Workspace) ([]Table, error) {
	var out []Table
	for _, fq := range fig2Queries {
		t := Table{
			Title:  "Figure 5 " + fq.label + ": frame-level F1 vs clip size",
			Header: []string{"clip frames", "SVAQ", "SVAQD"},
		}
		for _, spc := range ClipSizeGrid {
			g := video.Geometry{FramesPerShot: 10, ShotsPerClip: spc}
			stream, _, err := w.QueryStream(g, fq.set)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprint(g.FramesPerClip())}
			for _, mk := range []func(detect.Models, core.Config) (*core.Engine, error){core.NewSVAQ, core.NewSVAQD} {
				eng, err := mk(w.Models(), core.DefaultConfig())
				if err != nil {
					return nil, err
				}
				_, res, err := OnlineEval(eng, stream, fq.spec)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(FrameLevelF1(res, stream, fq.spec)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// EndToEndTrainingCost is the fine-tuning cost of the strawman end-to-end
// model of §5.2 (the paper reports >60 hours of training plus query
// processing for a single composite query).
const EndToEndTrainingCost = 60 * time.Hour

// RuntimeDecomposition reproduces the runtime discussion of §5.2: query
// latency decomposes into model inference (dominant, >98% in the paper) and
// engine processing; an end-to-end model fine-tuned per composite query
// would add tens of hours of training for no accuracy gain.
func RuntimeDecomposition(w *Workspace) ([]Table, error) {
	stream, spec, err := w.QueryStream(video.DefaultGeometry, "q1")
	if err != nil {
		return nil, err
	}
	models := w.Models()
	eng, err := core.NewSVAQD(models, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var meter detect.Meter
	eng.SetMeter(&meter)
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	start := time.Now()
	if _, err := eng.Run(context.Background(), stream, q); err != nil {
		return nil, err
	}
	engineTime := time.Since(start)
	inference := meter.Cost(models)
	total := inference + engineTime
	t := Table{
		Title:  "Runtime decomposition (§5.2), q1 = {a=washing_dishes; faucet, oven}",
		Header: []string{"component", "time", "share"},
	}
	t.AddRow("model inference (simulated)", inference.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f%%", 100*float64(inference)/float64(total)))
	t.AddRow("engine processing (measured)", engineTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f%%", 100*float64(engineTime)/float64(total)))
	t.AddRow("SVAQD total", total.Round(time.Millisecond).String(), "100%")
	t.AddRow("end-to-end model (training+inference)",
		(EndToEndTrainingCost + inference).Round(time.Minute).String(), "-")
	return []Table{t}, nil
}
