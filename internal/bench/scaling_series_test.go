package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(vps float64) *ScalingReport {
	return &ScalingReport{Points: []ScalingPoint{
		{Workers: 1, VideosPerSecond: vps / 2},
		{Workers: 4, VideosPerSecond: vps},
	}}
}

func TestScalingSeriesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")

	series, err := AppendScalingJSON(path, rep(10), "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].GitRev != "abc1234" || series[0].Timestamp == "" {
		t.Fatalf("first append: %+v", series)
	}
	series, err = AppendScalingJSON(path, rep(11), "def5678")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].GitRev != "abc1234" || series[1].GitRev != "def5678" {
		t.Fatalf("second append did not preserve history: %+v", series)
	}
	got, err := ReadScalingSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Report.Points[1].VideosPerSecond != 11 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestScalingSeriesAdoptsLegacyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	// A pre-series file holds a single bare report object.
	if err := WriteScalingJSON(path, rep(20)); err != nil {
		t.Fatal(err)
	}
	series, err := AppendScalingJSON(path, rep(21), "rev2")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("legacy file not adopted as baseline: %+v", series)
	}
	if series[0].Report.Points[1].VideosPerSecond != 20 || series[0].Timestamp != "" {
		t.Errorf("legacy entry = %+v", series[0])
	}
}

func TestScalingSeriesRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScalingSeries(path); err == nil {
		t.Fatal("garbage series file accepted")
	}
}

func TestCheckScalingRegression(t *testing.T) {
	mk := func(vps ...float64) []ScalingEntry {
		var s []ScalingEntry
		for _, v := range vps {
			s = append(s, ScalingEntry{Report: rep(v)})
		}
		return s
	}
	if _, err := CheckScalingRegression(mk(10), 25); err != nil {
		t.Errorf("single entry should pass (no baseline): %v", err)
	}
	if _, err := CheckScalingRegression(nil, 25); err != nil {
		t.Errorf("empty series should pass: %v", err)
	}
	if _, err := CheckScalingRegression(mk(10, 8), 25); err != nil {
		t.Errorf("20%% drop within a 25%% gate should pass: %v", err)
	}
	_, err := CheckScalingRegression(mk(10, 7), 25)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("30%% drop should fail the gate, got %v", err)
	}
	// The nearest comparable entry is the baseline: an old fast run does not
	// penalize a stable recent pair.
	if _, err := CheckScalingRegression(mk(100, 10, 9.5), 25); err != nil {
		t.Errorf("stable recent pair should pass: %v", err)
	}
	msg, err := CheckScalingRegression([]ScalingEntry{{}, {Report: rep(5)}}, 25)
	if err != nil {
		t.Errorf("series with a nil-report baseline should skip: %v", err)
	}
	if !strings.Contains(msg, "baseline skipped") {
		t.Errorf("nil-report baseline message = %q, want a baseline-skipped notice", msg)
	}
}

func TestCheckScalingRegressionConfigMatching(t *testing.T) {
	cfg := func(vps float64, procs, frames int, scale float64) ScalingEntry {
		r := rep(vps)
		r.GOMAXPROCS = procs
		r.FramesPerVideo = frames
		r.Scale = scale
		return ScalingEntry{Report: r}
	}

	// A config change between the last two entries must not gate: the slow
	// "regression" is just a different machine or workload.
	series := []ScalingEntry{cfg(100, 8, 8000, 1), cfg(10, 1, 8000, 1)}
	msg, err := CheckScalingRegression(series, 25)
	if err != nil {
		t.Errorf("config change should skip the gate: %v", err)
	}
	if !strings.Contains(msg, "baseline skipped: config changed") {
		t.Errorf("config change message = %q", msg)
	}

	// The gate reaches past non-matching entries to the latest comparable one.
	series = []ScalingEntry{cfg(10, 1, 8000, 1), cfg(100, 8, 8000, 1), cfg(9, 1, 8000, 1)}
	if msg, err = CheckScalingRegression(series, 25); err != nil {
		t.Errorf("comparable baseline two entries back should pass: %v (%s)", err, msg)
	}
	series = []ScalingEntry{cfg(20, 1, 8000, 1), cfg(100, 8, 8000, 1), cfg(9, 1, 8000, 1)}
	if _, err = CheckScalingRegression(series, 25); err == nil {
		t.Error("55% drop vs the comparable baseline should fail the gate")
	}

	// Different frames-per-video or scale is likewise not comparable.
	series = []ScalingEntry{cfg(100, 1, 500, 1), cfg(10, 1, 8000, 1)}
	if msg, _ = CheckScalingRegression(series, 25); !strings.Contains(msg, "config changed") {
		t.Errorf("frames change message = %q", msg)
	}
	series = []ScalingEntry{cfg(100, 1, 8000, 0.1), cfg(10, 1, 8000, 1)}
	if msg, _ = CheckScalingRegression(series, 25); !strings.Contains(msg, "config changed") {
		t.Errorf("scale change message = %q", msg)
	}
}
