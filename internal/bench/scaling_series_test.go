package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(vps float64) *ScalingReport {
	return &ScalingReport{Points: []ScalingPoint{
		{Workers: 1, VideosPerSecond: vps / 2},
		{Workers: 4, VideosPerSecond: vps},
	}}
}

func TestScalingSeriesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")

	series, err := AppendScalingJSON(path, rep(10), "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].GitRev != "abc1234" || series[0].Timestamp == "" {
		t.Fatalf("first append: %+v", series)
	}
	series, err = AppendScalingJSON(path, rep(11), "def5678")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].GitRev != "abc1234" || series[1].GitRev != "def5678" {
		t.Fatalf("second append did not preserve history: %+v", series)
	}
	got, err := ReadScalingSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Report.Points[1].VideosPerSecond != 11 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestScalingSeriesAdoptsLegacyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	// A pre-series file holds a single bare report object.
	if err := WriteScalingJSON(path, rep(20)); err != nil {
		t.Fatal(err)
	}
	series, err := AppendScalingJSON(path, rep(21), "rev2")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("legacy file not adopted as baseline: %+v", series)
	}
	if series[0].Report.Points[1].VideosPerSecond != 20 || series[0].Timestamp != "" {
		t.Errorf("legacy entry = %+v", series[0])
	}
}

func TestScalingSeriesRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScalingSeries(path); err == nil {
		t.Fatal("garbage series file accepted")
	}
}

func TestCheckScalingRegression(t *testing.T) {
	mk := func(vps ...float64) []ScalingEntry {
		var s []ScalingEntry
		for _, v := range vps {
			s = append(s, ScalingEntry{Report: rep(v)})
		}
		return s
	}
	if err := CheckScalingRegression(mk(10), 25); err != nil {
		t.Errorf("single entry should pass (no baseline): %v", err)
	}
	if err := CheckScalingRegression(nil, 25); err != nil {
		t.Errorf("empty series should pass: %v", err)
	}
	if err := CheckScalingRegression(mk(10, 8), 25); err != nil {
		t.Errorf("20%% drop within a 25%% gate should pass: %v", err)
	}
	err := CheckScalingRegression(mk(10, 7), 25)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("30%% drop should fail the gate, got %v", err)
	}
	// Only the last two entries matter: an old fast run does not penalize
	// a stable recent pair.
	if err := CheckScalingRegression(mk(100, 10, 9.5), 25); err != nil {
		t.Errorf("stable recent pair should pass: %v", err)
	}
	if err := CheckScalingRegression([]ScalingEntry{{}, {Report: rep(5)}}, 25); err != nil {
		t.Errorf("zero-throughput baseline should skip: %v", err)
	}
}
