package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"svqact/internal/detect"
)

// faultyModels wraps the ideal models with deterministic fault injection.
func faultyModels(fc detect.FaultConfig) detect.Models {
	m := idealModels()
	m.Objects = detect.InjectObjectFaults(m.Objects, fc)
	m.Actions = detect.InjectActionFaults(m.Actions, fc)
	return m
}

var robustQuery = Query{Objects: []string{"car", "human"}, Action: "jumping"}

// TestTransientFaultsPreserveResults is the paper-level acceptance check of
// the retry machinery: a detector failing transiently on 20% of invocations
// must — with enough retry attempts — produce exactly the sequences of a
// clean run, with no clips flagged.
func TestTransientFaultsPreserveResults(t *testing.T) {
	v := testVideo(t, 17, 12_000)
	cfg := DefaultConfig()
	clean, err := newTestEngine(t, idealModels(), cfg).Run(context.Background(), v, robustQuery)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Retry = detect.RetryConfig{Attempts: 10} // zero BaseDelay: no backoff sleeps in-test
	faulty := faultyModels(detect.FaultConfig{TransientRate: 0.2, Seed: 99})
	res, err := newTestEngine(t, faulty, cfg).Run(context.Background(), v, robustQuery)
	if err != nil {
		t.Fatalf("20%% transient faults with retries should complete: %v", err)
	}
	if !res.Flagged.Empty() {
		t.Errorf("flagged clips %v; retries should absorb all transient faults", res.Flagged)
	}
	if res.Sequences.String() != clean.Sequences.String() {
		t.Errorf("sequences diverge under transient faults:\nclean  %v\nfaulty %v", clean.Sequences, res.Sequences)
	}
}

// TestPermanentFaultsSkipAndFlag: a low permanent-failure rate flags the
// affected clips but the run completes, and the outcome is deterministic.
func TestPermanentFaultsSkipAndFlag(t *testing.T) {
	v := testVideo(t, 17, 40_000)
	cfg := DefaultConfig()
	cfg.Retry = detect.RetryConfig{Attempts: 2, BaseDelay: time.Microsecond}
	fc := detect.FaultConfig{PermanentRate: 0.0008, Seed: 4}

	run := func() *Result {
		res, err := newTestEngine(t, faultyModels(fc), cfg).Run(context.Background(), v, robustQuery)
		if err != nil {
			t.Fatalf("run should stay within the failure budget: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Flagged.Empty() {
		t.Fatal("permanent faults at this rate should flag at least one clip")
	}
	if a.Flagged.String() != b.Flagged.String() || a.Sequences.String() != b.Sequences.String() {
		t.Errorf("degraded outcome must be deterministic:\n%v vs %v\n%v vs %v",
			a.Flagged, b.Flagged, a.Sequences, b.Sequences)
	}
	// Flagged clips carry a negative indicator: none may appear in results.
	for _, iv := range a.Flagged.Intervals() {
		for c := iv.Start; c <= iv.End; c++ {
			if a.Sequences.Contains(c) {
				t.Errorf("flagged clip %d appears in result sequences", c)
			}
		}
	}
}

// TestPermanentFaultsExceedBudget: a high permanent-failure rate aborts with
// a structured DegradedError carrying partial progress.
func TestPermanentFaultsExceedBudget(t *testing.T) {
	v := testVideo(t, 17, 40_000)
	cfg := DefaultConfig()
	cfg.Retry = detect.RetryConfig{Attempts: 2, BaseDelay: time.Microsecond}
	cfg.FailureBudget = 0.05
	faulty := faultyModels(detect.FaultConfig{PermanentRate: 0.02, Seed: 4})
	res, err := newTestEngine(t, faulty, cfg).Run(context.Background(), v, robustQuery)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if de.Flagged == 0 || de.Processed == 0 || de.Total == 0 || de.Budget != 0.05 {
		t.Errorf("degraded error fields incomplete: %+v", de)
	}
	var detErr *detect.DetectionError
	if !errors.As(err, &detErr) {
		t.Errorf("DegradedError should wrap a sample DetectionError, got %v", de.Err)
	}
	if res == nil {
		t.Fatal("degraded run must still return its partial result")
	}
	if res.Flagged.Empty() {
		t.Error("partial result should report the flagged clips")
	}
}

// TestCancellationMidQuery drives a streaming run step by step, cancels the
// context, and checks the partial-progress error.
func TestCancellationMidQuery(t *testing.T) {
	v := testVideo(t, 3, 60_000)
	ctx, cancel := context.WithCancel(context.Background())
	e := newTestEngine(t, idealModels(), DefaultConfig())
	run, err := e.NewRun(ctx, v, robustQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !run.Step() {
			t.Fatalf("stream exhausted after %d clips", i)
		}
	}
	cancel()
	if run.Step() {
		t.Fatal("Step must observe cancellation")
	}
	var ie *InterruptedError
	if !errors.As(run.Err(), &ie) {
		t.Fatalf("Err = %v, want *InterruptedError", run.Err())
	}
	if ie.Processed != 5 || ie.Total != run.NumClips() {
		t.Errorf("progress = %d/%d, want 5/%d", ie.Processed, ie.Total, run.NumClips())
	}
	if !errors.Is(run.Err(), context.Canceled) {
		t.Error("InterruptedError must unwrap to context.Canceled")
	}
	res := run.Result()
	if res.Sequences.TotalLen() > 5 {
		t.Errorf("partial result covers %d clips, only 5 processed", res.Sequences.TotalLen())
	}
}

// TestDeadlineExpiryReturnsPartialResult: Run with an expired deadline stops
// immediately with an InterruptedError unwrapping to DeadlineExceeded.
func TestDeadlineExpiryReturnsPartialResult(t *testing.T) {
	v := testVideo(t, 3, 60_000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	e := newTestEngine(t, idealModels(), DefaultConfig())
	res, err := e.Run(ctx, v, robustQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded via InterruptedError", err)
	}
	if res == nil || !res.Sequences.Empty() {
		t.Error("expired deadline should yield an empty partial result")
	}
}

// TestRunCNFInterrupted: the extended path honours cancellation too.
func TestRunCNFInterrupted(t *testing.T) {
	v := testVideo(t, 3, 60_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := newTestEngine(t, idealModels(), DefaultConfig())
	q := CNF{Clauses: []Clause{{Atoms: []Atom{ActionAtom("jumping")}}}}
	res, err := e.RunCNF(ctx, v, q)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InterruptedError", err)
	}
	if res == nil {
		t.Fatal("interrupted RunCNF must return its partial result")
	}
}

// TestRunCNFDegrades: the extended path enforces the failure budget.
func TestRunCNFDegrades(t *testing.T) {
	v := testVideo(t, 17, 40_000)
	cfg := DefaultConfig()
	cfg.Retry = detect.RetryConfig{Attempts: 2, BaseDelay: time.Microsecond}
	cfg.FailureBudget = 0.05
	e := newTestEngine(t, faultyModels(detect.FaultConfig{PermanentRate: 0.02, Seed: 4}), cfg)
	q := CNF{Clauses: []Clause{
		{Atoms: []Atom{ObjectAtom("car"), ObjectAtom("human")}},
		{Atoms: []Atom{ActionAtom("jumping")}},
	}}
	res, err := e.RunCNF(context.Background(), v, q)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if res == nil || res.Flagged.Empty() {
		t.Error("degraded RunCNF must return a partial result with flagged clips")
	}
}

// TestEvaluateTypesInterrupted: ingestion-mode evaluation honours ctx.
func TestEvaluateTypesInterrupted(t *testing.T) {
	v := testVideo(t, 3, 60_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := newTestEngine(t, idealModels(), DefaultConfig())
	_, _, err := e.EvaluateTypes(ctx, v, []string{"car"}, []string{"jumping"})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InterruptedError", err)
	}
}

// TestConfigValidatesFailureKnobs: the new knobs are validated.
func TestConfigValidatesFailureKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureBudget = 1.5
	if _, err := NewSVAQD(idealModels(), cfg); err == nil {
		t.Error("failure budget > 1 should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Retry.Attempts = -2
	if _, err := NewSVAQD(idealModels(), cfg); err == nil {
		t.Error("negative retry attempts should be rejected")
	}
	// Zero values for the new knobs default rather than fail, so configs
	// written before the failure model keep working.
	cfg = DefaultConfig()
	cfg.Retry = detect.RetryConfig{}
	cfg.FailureBudget = 0
	if _, err := NewSVAQD(idealModels(), cfg); err != nil {
		t.Errorf("legacy config without failure knobs should default cleanly: %v", err)
	}
}

func newTestEngine(t *testing.T, m detect.Models, cfg Config) *Engine {
	t.Helper()
	e, err := NewSVAQD(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
