// Package core implements the paper's online query engine: the query model,
// the per-clip indicator evaluation (Algorithm 2), the static-background
// streaming algorithm SVAQ (Algorithm 1) and its adaptive variant SVAQD
// (Algorithm 3).
//
// A query conjoins one action predicate with any number of object
// predicates. Per clip, each object predicate holds when the number of
// positively detected frames reaches a scan-statistics critical value, and
// the action predicate holds when the number of positively classified shots
// reaches its own critical value; the clip satisfies the query when all
// predicates hold, and maximal runs of satisfying clips are merged into
// result sequences.
package core

import (
	"fmt"
	"sort"
	"time"

	"svqact/internal/detect"
)

// Query is the paper's q: {o_1, ..., o_I; a} — a conjunction of object
// presence predicates and exactly one action predicate.
type Query struct {
	// Objects are the queried object types, evaluated in order (the paper
	// evaluates predicates sequentially and short-circuits on the first
	// negative one).
	Objects []string
	// Action is the queried action type.
	Action string
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	if q.Action == "" {
		return fmt.Errorf("core: query needs an action predicate")
	}
	seen := make(map[string]bool, len(q.Objects))
	for _, o := range q.Objects {
		if o == "" {
			return fmt.Errorf("core: empty object predicate")
		}
		if seen[o] {
			return fmt.Errorf("core: duplicate object predicate %q", o)
		}
		seen[o] = true
	}
	return nil
}

// String renders the query in the paper's set notation.
func (q Query) String() string {
	s := "{"
	for i, o := range q.Objects {
		if i > 0 {
			s += "; "
		}
		s += "o" + fmt.Sprint(i+1) + "=" + o
	}
	if len(q.Objects) > 0 {
		s += "; "
	}
	return s + "a=" + q.Action + "}"
}

// Canonical returns a copy with sorted object predicates; two queries with
// the same canonical form are semantically identical.
func (q Query) Canonical() Query {
	objs := append([]string(nil), q.Objects...)
	sort.Strings(objs)
	return Query{Objects: objs, Action: q.Action}
}

// Config tunes the engine. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Alpha is the significance level of the scan-statistics test (paper
	// Equation 5).
	Alpha float64
	// HorizonClips is L = N/w, the number of scanning windows over which
	// significance is controlled. The paper leaves the horizon implicit; we
	// fix it as a config knob.
	HorizonClips float64

	// P0Object and P0Action seed the background probabilities: SVAQ uses
	// them as the fixed p0 for its critical values; SVAQD uses them only as
	// the (quickly forgotten) estimator priors.
	P0Object float64
	P0Action float64

	// BandwidthFrames and BandwidthShots are the SVAQD kernel bandwidths u
	// for object estimators (occurrence unit: frame) and the action
	// estimator (occurrence unit: shot).
	BandwidthFrames float64
	BandwidthShots  float64

	// CritGrid is the log10 quantisation step of the dynamic critical-value
	// cache: background estimates within the same bucket reuse k_crit.
	CritGrid float64

	// EstimatorSampleEvery controls the unbiased sampling schedule: every
	// n-th clip, all predicates are evaluated even if an earlier predicate
	// already failed, and only these unconditional evaluations feed the
	// background estimators (SVAQD) and the planner's cost model. Without
	// this, short-circuiting would feed the later predicates' statistics
	// only clips pre-selected by the earlier predicates — a sample heavily
	// enriched for the (correlated) events whose rates are being estimated.
	EstimatorSampleEvery int

	// BootstrapClips is the length of the initial bootstrap phase during
	// which every clip is sampled unconditionally (regardless of
	// EstimatorSampleEvery), so the background estimators converge within a
	// fixed prefix of the stream instead of a multiple of the sampling
	// period.
	BootstrapClips int

	// NullQuantile makes the background estimation robust to the events
	// themselves: a clip's count feeds a predicate's estimator only when it
	// does not exceed the NullQuantile-quantile of the recent counts, so
	// the minority of clips that actually contain the event cannot inflate
	// the null rate. Requires event occupancy below roughly this fraction
	// of clips.
	NullQuantile float64
	// RobustWindowClips is how many recent (unbiased) clip counts the
	// quantile gate considers.
	RobustWindowClips int

	// NoShortCircuit disables Algorithm 2's early exit, forcing every
	// predicate to be evaluated on every clip (needed when per-predicate
	// diagnostics must be complete, e.g. the false-positive-rate study).
	NoShortCircuit bool

	// ActionFirst evaluates the action predicate before the object
	// predicates — the predicate-order ablation. It pins the evaluation
	// order, disabling the adaptive planner.
	ActionFirst bool

	// DeclaredOrder pins predicate evaluation to the declared order
	// (objects in query order, then the action), disabling the cost-based
	// adaptive planner — the compatibility/ablation opt-out. Ordering
	// never changes results (clip truth is conjunctive), only cost.
	DeclaredOrder bool

	// ReplanEvery is the number of unbiased (fully evaluated) clips
	// between the planner's re-ordering rounds; zero means
	// plan.DefaultReplanEvery.
	ReplanEvery int

	// Retry tunes retrying of failed detector invocations (fallible models
	// only; the simulated models never fail unless fault-injected). The zero
	// value means detect.DefaultRetryConfig.
	Retry detect.RetryConfig

	// FailureBudget is the fraction of a video's clips that may be flagged
	// (skipped after retry exhaustion) before the run aborts with a
	// DegradedError instead of silently returning a result that is mostly
	// holes. Zero means the default of 0.25.
	FailureBudget float64

	// InferenceBudget caps the simulated inference cost one run may spend;
	// zero means unlimited. Enforced at clip granularity: once the spend
	// reaches the budget, every remaining clip is skipped-and-flagged (its
	// indicator conservatively negative, the clip surfaced in
	// Result.Flagged and the plan report's budget block) and the run
	// completes normally — planned degradation, not a failure, so budget
	// skips do not count against FailureBudget and never raise a
	// DegradedError.
	InferenceBudget time.Duration

	// Meter, when set, receives every engine's inference, retry, fault and
	// flagged-clip accounting (equivalent to calling SetMeter on each engine
	// built from this config). The serving path uses a process-lifetime meter
	// here so ingestion engines created deep inside rank charge the same
	// scraped counters.
	Meter *detect.Meter
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Alpha:                0.05,
		HorizonClips:         20,
		P0Object:             1e-4,
		P0Action:             1e-4,
		BandwidthFrames:      1500,
		BandwidthShots:       250,
		CritGrid:             0.02,
		EstimatorSampleEvery: 4,
		BootstrapClips:       48,
		NullQuantile:         0.6,
		RobustWindowClips:    48,
		Retry:                detect.DefaultRetryConfig(),
		FailureBudget:        0.25,
	}
}

// DefaultFailureBudget is the flagged-clip tolerance used when
// Config.FailureBudget is zero.
const DefaultFailureBudget = 0.25

// withDefaults fills the failure-model knobs a zero-valued or pre-existing
// Config leaves unset, so older literals keep validating.
func (c Config) withDefaults() Config {
	if c.Retry.Attempts == 0 {
		c.Retry = detect.DefaultRetryConfig()
	}
	if c.FailureBudget == 0 {
		c.FailureBudget = DefaultFailureBudget
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("core: Alpha = %v out of (0,1)", c.Alpha)
	}
	if c.HorizonClips < 1 {
		return fmt.Errorf("core: HorizonClips = %v must be >= 1", c.HorizonClips)
	}
	if c.P0Object < 0 || c.P0Object > 1 || c.P0Action < 0 || c.P0Action > 1 {
		return fmt.Errorf("core: background probabilities out of [0,1]")
	}
	if c.BandwidthFrames <= 0 || c.BandwidthShots <= 0 {
		return fmt.Errorf("core: kernel bandwidths must be positive")
	}
	if c.CritGrid <= 0 {
		return fmt.Errorf("core: CritGrid must be positive")
	}
	if c.EstimatorSampleEvery < 1 {
		return fmt.Errorf("core: EstimatorSampleEvery = %d must be >= 1", c.EstimatorSampleEvery)
	}
	if c.BootstrapClips < 0 {
		return fmt.Errorf("core: BootstrapClips = %d must be >= 0", c.BootstrapClips)
	}
	if c.NullQuantile <= 0 || c.NullQuantile >= 1 {
		return fmt.Errorf("core: NullQuantile = %v out of (0,1)", c.NullQuantile)
	}
	if c.RobustWindowClips < 4 {
		return fmt.Errorf("core: RobustWindowClips = %d must be >= 4", c.RobustWindowClips)
	}
	if c.ReplanEvery < 0 {
		return fmt.Errorf("core: ReplanEvery = %d must be >= 0", c.ReplanEvery)
	}
	if c.FailureBudget < 0 || c.FailureBudget > 1 {
		return fmt.Errorf("core: FailureBudget = %v out of [0,1]", c.FailureBudget)
	}
	if c.Retry.Attempts < 0 {
		return fmt.Errorf("core: Retry.Attempts = %d must be >= 0", c.Retry.Attempts)
	}
	if c.InferenceBudget < 0 {
		return fmt.Errorf("core: InferenceBudget = %v must be >= 0", c.InferenceBudget)
	}
	return nil
}
