package core

import (
	"sync"

	"svqact/internal/detect"
	"svqact/internal/plan"
)

// Per-run scratch pooling. A fleet run allocates the same per-video state —
// the Run itself, one predState per predicate, the clip/flag indicator
// slices, raw-unit indicators, the quantile-gate sort buffer, the batch
// score column — once per video, thousands of times per sweep. runScratch
// owns all of it; runs acquire a scratch from the pool, point their slices
// into it, and return it after Result() has materialised everything the
// caller sees (Result is alias-free by construction: interval sets are
// built fresh by video.FromIndicator, plan reports by the planner).
//
// Lifecycle: newRun acquires; Run.release returns the scratch, reclaiming
// any capacity the run's appends grew. Only the batch entry points
// (runShared, EvaluateTypes) release — a Run handed out by the public
// NewRun streaming API is owned by the caller and is simply garbage
// collected, scratch and all, which is safe because the pool holds no
// reference until Put.
type runScratch struct {
	// run is the Run storage itself, so the batch path allocates nothing
	// per video once the pool is warm.
	run Run

	// preds is the predState backing array; Run.preds holds pointers into
	// it, so it is sized up front and never grown mid-run. Each slot keeps
	// its slice capacities (clipInd, rawInd, recent) and its kernel
	// estimator across reuse.
	preds    []predState
	predPtrs []*predState

	clipInd []bool
	flagged []bool

	// scores is the batch score column evaluate fills per clip; ks is the
	// critical-value column for batched grid lookups. Both are also reused
	// by seedCrits before stepping begins.
	scores []float64
	ks     []int

	// gateSort is the quantile gate's sort buffer (one per run: Step is
	// single-goroutine).
	gateSort []int

	// planOrder receives the planner's per-clip evaluation order (a copy —
	// the planner itself may be shared fleet-wide and reorder concurrently);
	// tierModes receives the matching per-predicate tier decisions, indexed
	// by declared position.
	planOrder []int
	tierModes []plan.TierMode

	// objAcc/actAcc are the per-kind cascade accounts evaluate resets and
	// fills per clip — their per-tier slices are retained across runs.
	objAcc, actAcc detect.CascadeAccount
}

var runPool = sync.Pool{New: func() any { return new(runScratch) }}

// acquireRun returns a pooled Run with its scratch attached and all
// per-run state zeroed; predState slots and slice capacities are retained.
func acquireRun() *Run {
	s := runPool.Get().(*runScratch)
	r := &s.run
	*r = Run{scratch: s}
	r.clipInd = s.clipInd[:0]
	r.flagged = s.flagged[:0]
	return r
}

// ensurePreds returns n reset predState slots. The backing array is sized
// before any pointer into it is taken.
func (s *runScratch) ensurePreds(n int) []predState {
	if cap(s.preds) < n {
		s.preds = make([]predState, n)
	}
	s.preds = s.preds[:n]
	return s.preds
}

// release returns the run's scratch to the pool, reclaiming grown slice
// capacity and dropping every caller-owned reference (context, video,
// planner, query) so the pool pins nothing between runs. The Run must not
// be used afterwards.
func (r *Run) release() {
	s := r.scratch
	if s == nil {
		return
	}
	s.clipInd = r.clipInd[:0]
	s.flagged = r.flagged[:0]
	s.predPtrs = r.preds[:0]
	s.run = Run{}
	runPool.Put(s)
}

// scoreBuf returns the scratch score column resized to n.
func (r *Run) scoreBuf(n int) []float64 {
	if r.scratch == nil {
		return make([]float64, n)
	}
	if cap(r.scratch.scores) < n {
		r.scratch.scores = make([]float64, n)
	}
	r.scratch.scores = r.scratch.scores[:n]
	return r.scratch.scores
}

// critBuf returns the scratch critical-value column resized to n.
func (r *Run) critBuf(n int) []int {
	if r.scratch == nil {
		return make([]int, n)
	}
	if cap(r.scratch.ks) < n {
		r.scratch.ks = make([]int, n)
	}
	r.scratch.ks = r.scratch.ks[:n]
	return r.scratch.ks
}

// sortBuf returns the scratch gate-sort buffer resized to n.
func (r *Run) sortBuf(n int) []int {
	if r.scratch == nil {
		return make([]int, n)
	}
	if cap(r.scratch.gateSort) < n {
		r.scratch.gateSort = make([]int, n)
	}
	r.scratch.gateSort = r.scratch.gateSort[:n]
	return r.scratch.gateSort
}

// orderBuf returns the empty scratch buffer the planner's per-clip order is
// appended into.
func (r *Run) orderBuf() []int {
	if r.scratch == nil {
		return nil
	}
	if cap(r.scratch.planOrder) < len(r.preds) {
		r.scratch.planOrder = make([]int, 0, len(r.preds))
	}
	return r.scratch.planOrder[:0]
}

// modesBuf returns the scratch tier-decision column sized to the predicate
// count; the planner fills it by declared index.
func (r *Run) modesBuf() []plan.TierMode {
	n := len(r.preds)
	if r.scratch == nil {
		return make([]plan.TierMode, n)
	}
	if cap(r.scratch.tierModes) < n {
		r.scratch.tierModes = make([]plan.TierMode, n)
	}
	r.scratch.tierModes = r.scratch.tierModes[:n]
	return r.scratch.tierModes
}

// accountBuf returns the per-kind scratch cascade account.
func (r *Run) accountBuf(kind string) *detect.CascadeAccount {
	if r.scratch == nil {
		return &detect.CascadeAccount{}
	}
	if kind == detect.KindAction {
		return &r.scratch.actAcc
	}
	return &r.scratch.objAcc
}

// resizeBools returns b with length n and every element false, reusing the
// backing array when it is large enough.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// zeroInt64s returns s with length n and every element zero, reusing the
// backing array when it is large enough.
func zeroInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}
