package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/plan"
)

// FleetOptions tunes a fleet evaluation.
type FleetOptions struct {
	// Workers bounds the videos evaluated concurrently; <= 0 means
	// GOMAXPROCS (mirroring rank.IngestAllParallel).
	Workers int
	// OnResult, when set, receives each video's outcome as soon as its run
	// completes, from the completing worker's goroutine — the streaming
	// consumption path. It must be safe for concurrent invocation.
	OnResult func(VideoResult)
	// PerVideoTrace gives every video's run its own span tree (its trace
	// ID is the fleet's query ID suffixed with the video ID) attached to
	// the VideoResult, instead of suppressing per-run spans entirely. The
	// fleet trace still carries its one summary span per video.
	PerVideoTrace bool
}

// VideoResult is the outcome of one video of a fleet evaluation.
type VideoResult struct {
	// Index is the video's position in the input slice; ID its identifier.
	Index int
	ID    string
	// Result is the run's (possibly partial) result; nil when the run could
	// not start or the video was never dispatched.
	Result *Result
	// Err is the run's terminal error: nil for a clean run, *DegradedError
	// or *InterruptedError for partial runs, the context error for videos
	// the fleet never dispatched after cancellation.
	Err error
	// Elapsed is the wall-clock duration of this video's run.
	Elapsed time.Duration
	// Trace is the run's own span tree when FleetOptions.PerVideoTrace
	// was set; nil otherwise.
	Trace *obs.Trace
}

// Outcome classifies the video's run for aggregation and metrics:
// "ok", "degraded", "interrupted", "skipped" (never dispatched) or "error".
func (vr *VideoResult) Outcome() string {
	var de *DegradedError
	var ie *InterruptedError
	switch {
	case vr.Err == nil:
		return "ok"
	case errors.As(vr.Err, &de):
		return "degraded"
	case errors.As(vr.Err, &ie):
		return "interrupted"
	case vr.Result == nil && (errors.Is(vr.Err, context.Canceled) || errors.Is(vr.Err, context.DeadlineExceeded)):
		return "skipped"
	default:
		return "error"
	}
}

// FleetResult aggregates a fleet evaluation over a video repository.
type FleetResult struct {
	// Videos holds every video's outcome in input order. After a
	// cancellation, videos the dispatcher never handed to a worker carry the
	// context error and a nil Result.
	Videos []VideoResult

	// OK, Degraded, Interrupted, Skipped and Failed partition Videos by
	// outcome.
	OK, Degraded, Interrupted, Skipped, Failed int

	// TotalClips sums the clip counts of every started video;
	// ProcessedClips the clips actually evaluated (smaller when runs were
	// cut short); TotalSequences and FlaggedClips sum the per-video result
	// sequences and flagged clips.
	TotalClips, ProcessedClips int
	TotalSequences             int
	FlaggedClips               int

	// Elapsed is the fleet's wall-clock duration.
	Elapsed time.Duration

	// Plan is the fleet-cumulative report of the shared predicate planner
	// every run warm-started from (nil when the fleet had no videos).
	Plan *plan.Report
}

// add folds one video outcome into the aggregate (callers hold the lock).
func (fr *FleetResult) add(vr VideoResult) {
	switch vr.Outcome() {
	case "ok":
		fr.OK++
	case "degraded":
		fr.Degraded++
	case "interrupted":
		fr.Interrupted++
	case "skipped":
		fr.Skipped++
	default:
		fr.Failed++
	}
	if vr.Result != nil {
		fr.TotalClips += vr.Result.NumClips
		fr.ProcessedClips += vr.Result.Processed
		fr.TotalSequences += vr.Result.Sequences.NumIntervals()
		fr.FlaggedClips += vr.Result.Flagged.TotalLen()
	}
}

// RunAll evaluates one query over a repository of videos on a bounded worker
// pool — the fleet analogue of running the paper's per-video Algorithm 1/3
// loop once per video. Per-video failures do not abort the fleet: degraded
// and interrupted runs surface in their VideoResult (with partial results)
// and in the aggregate counts.
//
// RunAll honours ctx: on cancellation it stops dispatching, lets in-flight
// runs stop at their next clip boundary, and returns the partial FleetResult
// together with an *InterruptedError whose Processed counts completed videos.
// Results stream through FleetOptions.OnResult as they complete; the
// returned FleetResult.Videos is always in input order.
//
// All Dynamic-mode runs of the fleet share one process-wide critical-value
// grid per predicate configuration (scanstat.Shared), so the Naus search for
// a background bucket runs once for the whole fleet, not once per video.
//
// All runs of the fleet also share one predicate planner, so the cost model
// a video warms up (observed rejection rates, measured evaluation cost)
// carries into every later video of the same query instead of being
// re-learnt per video. Cost priors are taken at the first video's geometry.
func (e *Engine) RunAll(ctx context.Context, videos []detect.TruthVideo, q Query, opts FleetOptions) (*FleetResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(videos) {
		workers = len(videos)
	}

	start := time.Now()
	trace := obs.TraceFrom(ctx)
	fr := &FleetResult{Videos: make([]VideoResult, len(videos))}
	if len(videos) == 0 {
		return fr, nil
	}

	shared := e.plannerForQuery(q, videos[0].Geometry())
	fr.Plan = shared.Report()

	// The fleet's root span opens live so every per-video span parents
	// under it in the assembled tree.
	fleetSpan := obs.StartSpan(ctx, "fleet.run_all")

	// Workers pull indices from jobs; the engine's per-run span tree is
	// suppressed (the fleet emits one span per video instead), while ctx
	// cancellation still flows into every run.
	runCtx := obs.WithoutTrace(ctx)
	jobs := make(chan int)
	var mu sync.Mutex // guards fr aggregation
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				v := videos[i]
				vctx := runCtx
				var vtrace *obs.Trace
				if opts.PerVideoTrace {
					id := trace.ID()
					if id != "" {
						id += ":"
					}
					vtrace = obs.NewTrace(id + v.ID())
					vctx = obs.WithTrace(runCtx, vtrace)
				}
				t0 := time.Now()
				res, err := e.runShared(vctx, v, q, shared)
				vr := VideoResult{Index: i, ID: v.ID(), Result: res, Err: err, Elapsed: time.Since(t0), Trace: vtrace}
				sp := trace.AddSpanUnder(fleetSpan, "fleet.video:"+vr.ID, t0, vr.Elapsed)
				sp.SetAttr("outcome", vr.Outcome())
				if res != nil {
					sp.SetAttr("num_clips", res.NumClips)
					sp.SetAttr("sequences", res.Sequences.NumIntervals())
					sp.SetAttr("flagged_clips", res.Flagged.TotalLen())
				}
				mu.Lock()
				fr.Videos[i] = vr
				fr.add(vr)
				mu.Unlock()
				if opts.OnResult != nil {
					opts.OnResult(vr)
				}
			}
		}()
	}

	dispatched := make([]bool, len(videos))
dispatch:
	for i := range videos {
		select {
		case jobs <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Mark the videos the dispatcher never handed out, so Videos fully
	// accounts for the input.
	if cerr := ctx.Err(); cerr != nil {
		for i, d := range dispatched {
			if !d {
				fr.Videos[i] = VideoResult{Index: i, ID: videos[i].ID(), Err: cerr}
				fr.add(fr.Videos[i])
			}
		}
	}
	fr.Elapsed = time.Since(start)
	fr.Plan = shared.Report()

	sp := fleetSpan
	sp.SetAttr("mode", e.mode.String())
	sp.SetAttr("plan_replans", fr.Plan.Replans)
	sp.SetAttr("plan_skipped_evaluations", fr.Plan.SkippedEvaluations)
	sp.SetAttr("videos", len(videos))
	sp.SetAttr("workers", workers)
	sp.SetAttr("ok", fr.OK)
	sp.SetAttr("degraded", fr.Degraded)
	sp.SetAttr("interrupted", fr.Interrupted)
	sp.SetAttr("skipped", fr.Skipped)
	sp.SetAttr("failed", fr.Failed)
	sp.End()

	if cerr := ctx.Err(); cerr != nil {
		return fr, &InterruptedError{Processed: fr.OK + fr.Degraded + fr.Failed, Total: len(videos), Err: cerr}
	}
	return fr, nil
}
