package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// fleetVideos generates n small synthetic videos with distinct scripts.
func fleetVideos(t *testing.T, n, frames int) []detect.TruthVideo {
	t.Helper()
	vids := make([]detect.TruthVideo, n)
	for i := range vids {
		v, err := synth.Generate(synth.Script{
			ID:     "fleet-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26)),
			Frames: frames, FPS: 10, Geometry: video.DefaultGeometry, Seed: int64(100 + i),
			Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
			Objects: []synth.ObjectSpec{
				{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		vids[i] = v
	}
	return vids
}

var fleetQuery = Query{Objects: []string{"human"}, Action: "jumping"}

// TestRunAllFleetMatchesSerial is the tentpole acceptance test: a fleet of 64
// synthetic videos through RunAll (under -race via scripts/check.sh) must
// produce, per video, exactly the result a serial per-video Run produces, in
// input order, while streaming outcomes through OnResult.
func TestRunAllFleetMatchesSerial(t *testing.T) {
	vids := fleetVideos(t, 64, 4_000)
	eng, err := NewSVAQD(noisyModels(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var streamed atomic.Int64
	fr, err := eng.RunAll(context.Background(), vids, fleetQuery, FleetOptions{
		Workers:  4,
		OnResult: func(vr VideoResult) { streamed.Add(1) },
	})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := streamed.Load(); got != 64 {
		t.Errorf("OnResult fired %d times, want 64", got)
	}
	if len(fr.Videos) != 64 || fr.OK != 64 || fr.Degraded+fr.Interrupted+fr.Skipped+fr.Failed != 0 {
		t.Fatalf("aggregate = %+v, want 64 clean videos", fr)
	}
	for i, vr := range fr.Videos {
		if vr.Index != i || vr.ID != vids[i].ID() {
			t.Fatalf("Videos[%d] out of input order: %+v", i, vr)
		}
		serial, err := eng.Run(context.Background(), vids[i], fleetQuery)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		if vr.Result.Sequences.String() != serial.Sequences.String() {
			t.Errorf("video %d: fleet sequences %v != serial %v", i, vr.Result.Sequences, serial.Sequences)
		}
		if vr.Result.Processed != vr.Result.NumClips {
			t.Errorf("video %d: clean run processed %d of %d clips", i, vr.Result.Processed, vr.Result.NumClips)
		}
	}
	if fr.TotalClips == 0 || fr.ProcessedClips != fr.TotalClips {
		t.Errorf("clip accounting: processed %d of %d", fr.ProcessedClips, fr.TotalClips)
	}
}

// TestRunAllDefaultWorkers checks the workers <= 0 -> GOMAXPROCS default and
// the single-worker path agree with the parallel one.
func TestRunAllDefaultWorkers(t *testing.T) {
	vids := fleetVideos(t, 6, 3_000)
	eng, err := NewSVAQD(noisyModels(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	def, err := eng.RunAll(context.Background(), vids, fleetQuery, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := eng.RunAll(context.Background(), vids, fleetQuery, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vids {
		if def.Videos[i].Result.Sequences.String() != one.Videos[i].Result.Sequences.String() {
			t.Errorf("video %d: default-workers and one-worker fleets disagree", i)
		}
	}
}

// TestRunAllCancellation checks the fleet honours cancellation with partial
// results: dispatch stops, in-flight runs stop at a clip boundary, and the
// aggregate accounts for every input video.
func TestRunAllCancellation(t *testing.T) {
	vids := fleetVideos(t, 32, 4_000)
	eng, err := NewSVAQD(noisyModels(7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	fr, err := eng.RunAll(ctx, vids, fleetQuery, FleetOptions{
		Workers: 2,
		// Cancel as soon as the first video completes.
		OnResult: func(VideoResult) { once.Do(cancel) },
	})
	defer cancel()
	if err == nil {
		t.Fatal("cancelled fleet returned no error")
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("fleet error %v is not an InterruptedError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fleet error %v does not wrap context.Canceled", err)
	}
	if fr == nil {
		t.Fatal("cancelled fleet returned no partial result")
	}
	if len(fr.Videos) != 32 {
		t.Fatalf("partial result covers %d of 32 videos", len(fr.Videos))
	}
	if fr.OK == 0 {
		t.Error("at least the completed first video should be OK")
	}
	if fr.Skipped == 0 {
		t.Error("cancellation mid-fleet should leave undispatched videos skipped")
	}
	if total := fr.OK + fr.Degraded + fr.Interrupted + fr.Skipped + fr.Failed; total != 32 {
		t.Errorf("outcome partition sums to %d, want 32", total)
	}
	for i, vr := range fr.Videos {
		if vr.ID == "" {
			t.Fatalf("Videos[%d] unaccounted for after cancellation", i)
		}
	}
}

// TestRunAllDegradedVideosDoNotAbortFleet injects permanent detector faults:
// every video degrades past the failure budget, yet the fleet completes and
// reports the degradation per video and in aggregate.
func TestRunAllDegradedVideosDoNotAbortFleet(t *testing.T) {
	vids := fleetVideos(t, 8, 3_000)
	models := noisyModels(9)
	fc := detect.FaultConfig{PermanentRate: 1, Seed: 9}
	models.Objects = detect.InjectObjectFaults(models.Objects, fc)
	models.Actions = detect.InjectActionFaults(models.Actions, fc)
	eng, err := NewSVAQD(models, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := eng.RunAll(context.Background(), vids, fleetQuery, FleetOptions{Workers: 2})
	if err != nil {
		t.Fatalf("fleet with degraded videos should not fail as a whole: %v", err)
	}
	if fr.Degraded != 8 {
		t.Fatalf("Degraded = %d, want 8 (got %+v)", fr.Degraded, fr)
	}
	for i, vr := range fr.Videos {
		var de *DegradedError
		if !errors.As(vr.Err, &de) {
			t.Errorf("video %d error %v is not a DegradedError", i, vr.Err)
		}
		if vr.Result == nil {
			t.Errorf("video %d: degraded run should carry a partial result", i)
		}
		if vr.Outcome() != "degraded" {
			t.Errorf("video %d outcome %q, want degraded", i, vr.Outcome())
		}
	}
}

// TestRunAllFleetTrace checks the fleet emits one span per video plus a root
// span, and suppresses the engines' per-run span trees.
func TestRunAllFleetTrace(t *testing.T) {
	vids := fleetVideos(t, 5, 3_000)
	eng, err := NewSVAQD(noisyModels(11), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace("fleet-test")
	ctx := obs.WithTrace(context.Background(), trace)
	if _, err := eng.RunAll(ctx, vids, fleetQuery, FleetOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	names := trace.SpanNames()
	var perVideo, root, engineSpans int
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "fleet.video:"):
			perVideo++
		case n == "fleet.run_all":
			root++
		case n == "engine.run" || strings.HasPrefix(n, "predicate:"):
			engineSpans++
		}
	}
	if perVideo != 5 || root != 1 {
		t.Errorf("spans = %v: want 5 fleet.video spans and 1 root", names)
	}
	if engineSpans != 0 {
		t.Errorf("per-run engine spans leaked into the fleet trace: %v", names)
	}
}

// TestRunAllValidation covers the degenerate inputs.
func TestRunAllValidation(t *testing.T) {
	eng, err := NewSVAQD(noisyModels(1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(context.Background(), nil, Query{}, FleetOptions{}); err == nil {
		t.Error("invalid query accepted")
	}
	fr, err := eng.RunAll(context.Background(), nil, fleetQuery, FleetOptions{})
	if err != nil || len(fr.Videos) != 0 {
		t.Errorf("empty fleet: %v, %+v", err, fr)
	}
}
