package core

import (
	"context"
	"fmt"
	"testing"

	"svqact/internal/detect"
	"svqact/internal/synth"
	"svqact/internal/video"
)

// testVideoThreeObjects is testVideo with a third, uncorrelated object so
// every 3-object predicate permutation can be exercised.
func testVideoThreeObjects(seed int64, frames int) (*synth.Video, error) {
	return synth.Generate(synth.Script{
		ID:       "core-test-3obj",
		Frames:   frames,
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     seed,
		Actions:  []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			{Name: "car", MeanGapFrames: 4000, MeanDurFrames: 500, CorrelatedWith: "jumping", CorrelationProb: 0.75},
			{Name: "dog", MeanGapFrames: 6000, MeanDurFrames: 400},
		},
	})
}

// permutations returns every ordering of xs (Heap's algorithm).
func permutations(xs []string) [][]string {
	var out [][]string
	var rec func(k int, a []string)
	rec = func(k int, a []string) {
		if k == 1 {
			out = append(out, append([]string(nil), a...))
			return
		}
		for i := 0; i < k; i++ {
			rec(k-1, a)
			if k%2 == 0 {
				a[i], a[k-1] = a[k-1], a[i]
			} else {
				a[0], a[k-1] = a[k-1], a[0]
			}
		}
	}
	rec(len(xs), append([]string(nil), xs...))
	return out
}

// invariantSignature reduces a result to the parts the refactor's
// correctness contract pins: the result sequences, the flagged set, and
// each predicate's final critical value and background estimate. Evaluation
// counts and raw-indicator coverage legitimately vary with the order.
func invariantSignature(t *testing.T, res *Result) string {
	t.Helper()
	s := fmt.Sprintf("seq=%v flagged=%v processed=%d", res.Sequences, res.Flagged, res.Processed)
	// Predicates keyed by name so declared order drops out.
	byName := map[string]string{}
	for _, ps := range res.Predicates {
		byName[ps.Name] = fmt.Sprintf("k=%d p=%v", ps.Critical, ps.Background)
	}
	for _, name := range []string{"car", "human", "jumping"} {
		if sig, ok := byName[name]; ok {
			s += fmt.Sprintf(" %s{%s}", name, sig)
		}
	}
	return s
}

// TestOrderInvariance is the refactor's correctness contract: because clip
// truth is a pure conjunction and every statistic that feeds back into
// evaluation (SVAQD's background estimators, the planner's cost model) is
// learned only from unbiased fully-evaluated clips, the predicate
// evaluation order — declared, permuted, action-first, or chosen
// adaptively by the planner — cannot change the result sequences, the
// flagged set, or any predicate's final k_crit and background estimate.
func TestOrderInvariance(t *testing.T) {
	v := testVideo(t, 21, 20_000)
	objects := []string{"car", "human"}

	for _, mk := range []struct {
		name string
		mk   func(detect.Models, Config) (*Engine, error)
	}{{"SVAQ", NewSVAQ}, {"SVAQD", NewSVAQD}} {
		var want string
		for _, perm := range permutations(objects) {
			for _, actionFirst := range []bool{false, true} {
				for _, declared := range []bool{false, true} {
					cfg := DefaultConfig()
					cfg.ActionFirst = actionFirst
					cfg.DeclaredOrder = declared
					e, err := mk.mk(noisyModels(7), cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run(context.Background(), v, Query{Objects: perm, Action: "jumping"})
					if err != nil {
						t.Fatal(err)
					}
					got := invariantSignature(t, res)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Errorf("%s objects=%v actionFirst=%v declared=%v:\n got %s\nwant %s",
							mk.name, perm, actionFirst, declared, got, want)
					}
				}
			}
		}
	}
}

// TestOrderInvarianceThreeObjects covers all six object permutations on a
// shorter stream, adaptive and pinned, under SVAQD.
func TestOrderInvarianceThreeObjects(t *testing.T) {
	v, err := testVideoThreeObjects(31, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	objects := []string{"car", "human", "dog"}
	var want string
	for _, perm := range permutations(objects) {
		for _, declared := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.DeclaredOrder = declared
			e, err := NewSVAQD(noisyModels(8), cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(context.Background(), v, Query{Objects: perm, Action: "jumping"})
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("seq=%v flagged=%v", res.Sequences, res.Flagged)
			for _, name := range append(objects, "jumping") {
				ps := res.Predicate(name)
				got += fmt.Sprintf(" %s{k=%d p=%v}", name, ps.Critical, ps.Background)
			}
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("objects=%v declared=%v:\n got %s\nwant %s", perm, declared, got, want)
			}
		}
	}
}
