package core

import (
	"context"
	"testing"
	"time"

	"svqact/internal/detect"
)

// cascadeModels builds the two-tier distilled cascades over the same
// teachers noisyModels(seed) would return, so the cascade runs are
// comparable unit-for-unit with the accurate-only ones.
func cascadeModels(seed int64) detect.Models {
	return detect.NewModels(
		detect.NewDistilledObjectCascade(detect.NewObjectDetector(detect.MaskRCNN, seed), detect.DistilledRCNN, seed),
		detect.NewDistilledActionCascade(detect.NewActionRecognizer(detect.I3D, seed), detect.DistilledI3D, seed),
	)
}

// TestTierInvariance is the cascade refactor's correctness contract: under
// the recall band the cheap tier never decides a unit the accurate tier
// would have scored differently, so running the cascades — whatever tier
// mode the planner picks, in whatever predicate order — must produce
// bit-identical result sequences, flagged sets, critical values and
// background estimates to running the accurate models alone. Only the
// priced inference cost may (and must) differ. Run under -race in CI.
func TestTierInvariance(t *testing.T) {
	v := testVideo(t, 21, 20_000)
	objects := []string{"car", "human"}

	var refRes *Result
	for _, mk := range []struct {
		name string
		mk   func(detect.Models, Config) (*Engine, error)
	}{{"SVAQ", NewSVAQ}, {"SVAQD", NewSVAQD}} {
		// The reference signature comes from the same engine over the
		// accurate models alone.
		ref, err := mk.mk(noisyModels(7), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		refRes, err = ref.Run(context.Background(), v, Query{Objects: objects, Action: "jumping"})
		if err != nil {
			t.Fatal(err)
		}
		want := invariantSignature(t, refRes)
		for _, perm := range permutations(objects) {
			for _, declared := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.DeclaredOrder = declared
				e, err := mk.mk(cascadeModels(7), cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run(context.Background(), v, Query{Objects: perm, Action: "jumping"})
				if err != nil {
					t.Fatal(err)
				}
				if got := invariantSignature(t, res); got != want {
					t.Errorf("%s objects=%v declared=%v:\n got %s\nwant %s", mk.name, perm, declared, got, want)
				}
				if res.Plan != nil {
					if !res.Plan.Tiered {
						t.Errorf("%s: cascade plan must report Tiered", mk.name)
					}
					if res.InferenceCost <= 0 || res.InferenceCost >= refRes.InferenceCost {
						t.Errorf("%s: cascade cost %v not below accurate-only %v", mk.name, res.InferenceCost, refRes.InferenceCost)
					}
				}
			}
		}
	}

	// Single-tier plans must not grow tier fields: the legacy report shape
	// is part of the surface contract (satellite: EXPLAIN/JSON regression).
	if refRes.Plan != nil {
		if refRes.Plan.Tiered || refRes.Plan.Budget != nil {
			t.Error("accurate-only plan must not set Tiered or Budget")
		}
		for _, n := range refRes.Plan.Nodes {
			if n.Tier != "" || n.Tiers != nil {
				t.Errorf("single-model node %s carries tier fields: %+v", n.Name, n)
			}
		}
	}
}

// TestTierInvarianceThreeObjects covers all six permutations of a 3-object
// conjunction under the cascades, adaptive and pinned.
func TestTierInvarianceThreeObjects(t *testing.T) {
	v, err := testVideoThreeObjects(31, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	objects := []string{"car", "human", "dog"}
	ref, err := NewSVAQD(noisyModels(8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background(), v, Query{Objects: objects, Action: "jumping"})
	if err != nil {
		t.Fatal(err)
	}
	want := invariantSignature(t, refRes)
	for _, perm := range permutations(objects) {
		for _, declared := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.DeclaredOrder = declared
			e, err := NewSVAQD(cascadeModels(8), cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(context.Background(), v, Query{Objects: perm, Action: "jumping"})
			if err != nil {
				t.Fatal(err)
			}
			if got := invariantSignature(t, res); got != want {
				t.Errorf("objects=%v declared=%v:\n got %s\nwant %s", perm, declared, got, want)
			}
		}
	}
}

// TestInferenceBudgetDegradesGracefully: a budget too small for the video
// must not error — the run completes, clips past exhaustion are skipped and
// flagged (outside the failure budget), and the plan carries an honest
// budget block.
func TestInferenceBudgetDegradesGracefully(t *testing.T) {
	v := testVideo(t, 22, 20_000)
	cfg := DefaultConfig()
	cfg.InferenceBudget = 500 * time.Millisecond
	e, err := NewSVAQD(cascadeModels(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"})
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	if res.BudgetSkipped == 0 {
		t.Fatal("a 500ms budget on a 20k-frame video must skip clips")
	}
	if res.Processed != v.Geometry().NumClips(v.NumFrames()) {
		t.Errorf("run must process the whole stream (skipping counts), got %d clips", res.Processed)
	}
	if int64(res.Flagged.TotalLen()) < res.BudgetSkipped {
		t.Errorf("skipped clips must be flagged: %d flagged < %d skipped", res.Flagged.TotalLen(), res.BudgetSkipped)
	}
	if res.InferenceCost < cfg.InferenceBudget {
		t.Errorf("spend %v below the budget %v yet clips were skipped", res.InferenceCost, cfg.InferenceBudget)
	}
	b := res.Plan.Budget
	if b == nil {
		t.Fatal("budgeted plan must carry a budget block")
	}
	if !b.Exhausted || b.SkippedClips != res.BudgetSkipped {
		t.Errorf("budget block %+v inconsistent with result (skipped %d)", b, res.BudgetSkipped)
	}
	if b.LimitMS != 500 {
		t.Errorf("budget limit %vms, want 500", b.LimitMS)
	}

	// An ample budget must change nothing: no skips, not exhausted, and the
	// results identical to the unbudgeted run.
	cfg2 := DefaultConfig()
	cfg2.InferenceBudget = time.Hour
	e2, err := NewSVAQD(cascadeModels(9), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BudgetSkipped != 0 || res2.Plan.Budget == nil || res2.Plan.Budget.Exhausted {
		t.Errorf("ample budget must not skip or exhaust: %+v", res2.Plan.Budget)
	}
	free, err := NewSVAQD(cascadeModels(9), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resFree, err := free.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"})
	if err != nil {
		t.Fatal(err)
	}
	if invariantSignature(t, res2) != invariantSignature(t, resFree) {
		t.Error("ample budget changed results vs unbudgeted run")
	}
	if resFree.Plan.Budget != nil {
		t.Error("unbudgeted plan must omit the budget block")
	}
}

// TestInferenceBudgetValidation: a negative budget is a config error.
func TestInferenceBudgetValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InferenceBudget = -time.Second
	if _, err := NewSVAQD(noisyModels(1), cfg); err == nil {
		t.Fatal("negative inference budget must be rejected")
	}
}
