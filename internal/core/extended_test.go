package core

import (
	"context"
	"testing"

	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func extTestVideo(t *testing.T, seed int64) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID: "ext-test", Frames: 60_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: seed,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 120, MeanDurShots: 30},
			{Name: "dancing", MeanGapShots: 150, MeanDurShots: 25},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 320, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "car", MeanGapFrames: 2500, MeanDurFrames: 400},
			{Name: "dog", MeanGapFrames: 3000, MeanDurFrames: 350},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAtomValidation(t *testing.T) {
	good := []Atom{
		ObjectAtom("car"),
		ActionAtom("jumping"),
		RelationAtom(detect.LeftOf, "human", "car"),
		RelationAtom(detect.Near, "dog", "car"),
	}
	for _, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("%v rejected: %v", a, err)
		}
	}
	bad := []Atom{
		{},
		{Kind: ObjectPredicate, Name: "car", Args: []string{"x"}},
		{Kind: RelationPredicate, Name: "hovers_over", Args: []string{"a", "b"}},
		{Kind: RelationPredicate, Name: string(detect.LeftOf), Args: []string{"a"}},
		{Kind: RelationPredicate, Name: string(detect.LeftOf), Args: []string{"a", "a"}},
		{Kind: PredicateKind(9), Name: "x"},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%+v should be rejected", a)
		}
	}
}

func TestCNFValidation(t *testing.T) {
	ok := CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("jumping"), ActionAtom("dancing")}},
		{Atoms: []Atom{ObjectAtom("car")}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid CNF rejected: %v", err)
	}
	bad := []CNF{
		{},
		{Clauses: []Clause{{}}},
		{Clauses: []Clause{{Atoms: []Atom{ObjectAtom("car")}}}}, // no action
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad CNF %d accepted", i)
		}
	}
}

func TestCNFString(t *testing.T) {
	q := CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("a"), ActionAtom("b")}},
		{Atoms: []Atom{RelationAtom(detect.LeftOf, "x", "y")}},
	}}
	want := "(a OR b) AND left_of(x,y)"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFromQueryEquivalence(t *testing.T) {
	// The CNF lift of a basic query must produce the same sequences as the
	// basic engine without short-circuiting.
	v := extTestVideo(t, 1)
	q := Query{Objects: []string{"human"}, Action: "jumping"}
	cfg := DefaultConfig()
	cfg.NoShortCircuit = true
	eng, err := NewSVAQD(noisyModels(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := eng.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := eng.RunCNF(context.Background(), v, FromQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if basic.Sequences.String() != ext.Sequences.String() {
		t.Errorf("CNF lift diverged:\nbasic %v\n  cnf %v", basic.Sequences, ext.Sequences)
	}
}

func TestRunCNFRejectsBadQuery(t *testing.T) {
	eng, _ := NewSVAQD(idealModels(), DefaultConfig())
	if _, err := eng.RunCNF(context.Background(), extTestVideo(t, 2), CNF{}); err == nil {
		t.Error("empty CNF should be rejected")
	}
}

// truthCNF computes ground-truth frames for a CNF query directly from the
// scripted world.
func truthCNF(v *synth.Video, q CNF) video.IntervalSet {
	g := v.Meta.Geometry
	n := v.NumFrames()
	ind := make([]bool, n)
	for f := 0; f < n; f++ {
		sat := true
		for _, c := range q.Clauses {
			any := false
			for _, a := range c.Atoms {
				switch a.Kind {
				case ObjectPredicate:
					any = any || v.ObjectPresentAt(a.Name, f)
				case ActionPredicate:
					any = any || v.ActionAt(a.Name, g.ShotOfFrame(f))
				case RelationPredicate:
					any = any || detect.TrueRelationAt(v, detect.Relation(a.Name), a.Args[0], a.Args[1], f)
				}
			}
			if !any {
				sat = false
				break
			}
		}
		ind[f] = sat
	}
	return video.FromIndicator(ind)
}

func truthCNFClips(v *synth.Video, q CNF) video.IntervalSet {
	g := v.Meta.Geometry
	frames := truthCNF(v, q)
	ind := make([]bool, v.Meta.NumClips())
	for c := range ind {
		ind[c] = !frames.IntersectSet(video.NewIntervalSet(g.FrameRangeOfClip(c))).Empty()
	}
	return video.FromIndicator(ind)
}

func TestMultipleActionsConjunction(t *testing.T) {
	// Footnote 3: two action atoms in separate clauses = both must occur.
	v := extTestVideo(t, 5)
	q := CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("jumping")}},
		{Atoms: []Atom{ActionAtom("dancing")}},
	}}
	eng, _ := NewSVAQD(idealModels(), DefaultConfig())
	res, err := eng.RunCNF(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthCNFClips(v, q)
	c := metrics.MatchSequences(res.Sequences, truth, 0.3)
	if truth.TotalLen() > 0 && c.F1() < 0.6 {
		t.Errorf("two-action conjunction F1 = %.2f (%+v, truth %v)", c.F1(), c, truth)
	}
	// The conjunction must be a subset of each single-action query.
	single, err := eng.RunCNF(context.Background(), v, CNF{Clauses: []Clause{{Atoms: []Atom{ActionAtom("jumping")}}, {Atoms: []Atom{ObjectAtom("human")}}}})
	if err != nil {
		t.Fatal(err)
	}
	_ = single
}

func TestDisjunctionIsUnionLike(t *testing.T) {
	// Footnote 4: (jumping OR dancing) must cover at least everything the
	// individual action queries cover, clip-wise.
	v := extTestVideo(t, 7)
	eng, _ := NewSVAQD(idealModels(), DefaultConfig())
	or, err := eng.RunCNF(context.Background(), v, CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("jumping"), ActionAtom("dancing")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	onlyJ, err := eng.RunCNF(context.Background(), v, CNF{Clauses: []Clause{{Atoms: []Atom{ActionAtom("jumping")}}}})
	if err != nil {
		t.Fatal(err)
	}
	onlyD, err := eng.RunCNF(context.Background(), v, CNF{Clauses: []Clause{{Atoms: []Atom{ActionAtom("dancing")}}}})
	if err != nil {
		t.Fatal(err)
	}
	union := onlyJ.Sequences.Union(onlyD.Sequences)
	missing := union.Subtract(or.Sequences)
	if missing.TotalLen() > 0 {
		t.Errorf("disjunction misses %d clips covered by the single-action queries (%v)",
			missing.TotalLen(), missing)
	}
}

func TestRelationAtomAgainstTruth(t *testing.T) {
	v := extTestVideo(t, 9)
	q := CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("jumping")}},
		{Atoms: []Atom{RelationAtom(detect.Near, "human", "car")}},
	}}
	eng, _ := NewSVAQD(idealModels(), DefaultConfig())
	res, err := eng.RunCNF(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthCNFClips(v, q)
	// With ideal models the relation indicator is computed from exact
	// detections, so results should track the truth closely at the unit
	// level.
	c := metrics.UnitCounts(res.Sequences, truth)
	if truth.TotalLen() >= 5 && c.F1() < 0.6 {
		t.Errorf("relation query clip F1 = %.2f (%+v), truth clips %d",
			c.F1(), c, truth.TotalLen())
	}
	if rs := res.Atom("near(human,car)"); rs == nil {
		t.Error("relation atom stats missing")
	} else if rs.Kind != RelationPredicate {
		t.Error("relation atom kind wrong")
	}
}

func TestSharedAtomStateAcrossClauses(t *testing.T) {
	// The same atom in two clauses must be evaluated once per clip.
	v := extTestVideo(t, 11)
	q := CNF{Clauses: []Clause{
		{Atoms: []Atom{ActionAtom("jumping"), ObjectAtom("car")}},
		{Atoms: []Atom{ObjectAtom("car"), ObjectAtom("dog")}},
	}}
	eng, _ := NewSVAQD(noisyModels(4), DefaultConfig())
	res, err := eng.RunCNF(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Atoms) != 3 {
		t.Fatalf("want 3 distinct atoms, got %d", len(res.Atoms))
	}
	for _, a := range res.Atoms {
		if a.EvaluatedClips != res.NumClips {
			t.Errorf("atom %s evaluated %d times, want %d", a.Name, a.EvaluatedClips, res.NumClips)
		}
	}
	if res.Atom("nope") != nil {
		t.Error("unknown atom lookup should be nil")
	}
}

func TestPositionOfProperties(t *testing.T) {
	seen := map[int]bool{}
	for track := 1; track < 50; track++ {
		prev := -1.0
		for f := 0; f < 2000; f++ {
			x := detect.PositionOf("vid", track, f)
			if x < 0 || x > 1 {
				t.Fatalf("position out of range: %v", x)
			}
			if prev >= 0 {
				// Trajectories are smooth: per-frame movement is small.
				d := x - prev
				if d < -0.02 || d > 0.02 {
					t.Fatalf("track %d jumped %v at frame %d", track, d, f)
				}
			}
			prev = x
		}
		if detect.PositionOf("vid", track, 100) != detect.PositionOf("vid", track, 100) {
			t.Fatal("position not deterministic")
		}
		seen[int(detect.PositionOf("vid", track, 0)*100)] = true
	}
	if len(seen) < 10 {
		t.Error("instance anchors are not diverse")
	}
}

func TestRelationSemantics(t *testing.T) {
	v := extTestVideo(t, 13)
	det := detect.NewObjectDetector(detect.IdealObject, 0)
	checked := 0
	for f := 0; f < v.NumFrames() && checked < 500; f += 11 {
		l := detect.RelationPositive(det, v, detect.LeftOf, "human", "car", f)
		r := detect.RelationPositive(det, v, detect.RightOf, "car", "human", f)
		// left_of(human, car) and right_of(car, human) are the same
		// geometric condition.
		if l != r {
			t.Fatalf("frame %d: left_of/right_of asymmetry", f)
		}
		// With ideal detection, RelationPositive must equal the truth.
		if l != detect.TrueRelationAt(v, detect.LeftOf, "human", "car", f) {
			t.Fatalf("frame %d: ideal relation detection diverges from truth", f)
		}
		if l {
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no co-occurrence frames in this realisation")
	}
}
