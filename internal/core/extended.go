package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/plan"
	"svqact/internal/video"
)

// The paper's footnotes 2-4 sketch how the engine generalises beyond "one
// action plus object conjunction": relationship predicates become binary
// per-frame outputs derived from the detections (footnote 2), multiple
// actions get per-clip indicators combined by conjunction (footnote 3), and
// disjunctive queries are transformed to conjunctive normal form with one
// indicator per clause per clip (footnote 4). This file implements that
// extended model: a CNF of atoms, where every atom carries its own
// scan-statistics indicator machinery and clauses OR the atom indicators.

// RelationPredicate extends PredicateKind for spatial-relationship atoms
// (evaluated per frame from pairs of detections).
const RelationPredicate PredicateKind = 2

// Atom is one primitive predicate of an extended query.
type Atom struct {
	Kind PredicateKind
	// Name is the object type, the action type, or the relation name.
	Name string
	// Args holds the two operand object types for relation atoms.
	Args []string
}

// ObjectAtom builds an object-presence atom.
func ObjectAtom(typ string) Atom { return Atom{Kind: ObjectPredicate, Name: typ} }

// ActionAtom builds an action-occurrence atom.
func ActionAtom(act string) Atom { return Atom{Kind: ActionPredicate, Name: act} }

// RelationAtom builds a spatial-relationship atom between two object types.
func RelationAtom(rel detect.Relation, a, b string) Atom {
	return Atom{Kind: RelationPredicate, Name: string(rel), Args: []string{a, b}}
}

// Validate reports whether the atom is well-formed.
func (a Atom) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("core: atom with empty name")
	}
	switch a.Kind {
	case ObjectPredicate, ActionPredicate:
		if len(a.Args) != 0 {
			return fmt.Errorf("core: %s atom %q takes no arguments", a.Kind.label(), a.Name)
		}
	case RelationPredicate:
		if !detect.ValidRelation(detect.Relation(a.Name)) {
			return fmt.Errorf("core: unknown relation %q", a.Name)
		}
		if len(a.Args) != 2 || a.Args[0] == "" || a.Args[1] == "" {
			return fmt.Errorf("core: relation %q needs two object operands", a.Name)
		}
		if a.Args[0] == a.Args[1] {
			return fmt.Errorf("core: relation %q needs two distinct object types", a.Name)
		}
	default:
		return fmt.Errorf("core: unknown atom kind %d", a.Kind)
	}
	return nil
}

func (k PredicateKind) label() string {
	switch k {
	case ObjectPredicate:
		return "object"
	case ActionPredicate:
		return "action"
	case RelationPredicate:
		return "relation"
	}
	return "unknown"
}

// String renders the atom.
func (a Atom) String() string {
	if a.Kind == RelationPredicate {
		return fmt.Sprintf("%s(%s,%s)", a.Name, a.Args[0], a.Args[1])
	}
	return a.Name
}

// key identifies the atom for state sharing (two clauses mentioning the
// same atom share one indicator).
func (a Atom) key() string {
	return fmt.Sprintf("%d/%s/%s", a.Kind, a.Name, strings.Join(a.Args, ","))
}

// Clause is a disjunction of atoms: it holds on a clip when any of its
// atoms' indicators is positive.
type Clause struct {
	Atoms []Atom
}

// String renders the clause.
func (c Clause) String() string {
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// CNF is an extended query: a conjunction of clauses.
type CNF struct {
	Clauses []Clause
}

// String renders the query.
func (q CNF) String() string {
	parts := make([]string, len(q.Clauses))
	for i, c := range q.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// Validate reports whether the query is well-formed: non-empty clauses of
// valid atoms, with at least one action atom somewhere (an action query
// without an action is a plain object query, outside this engine's scope).
func (q CNF) Validate() error {
	if len(q.Clauses) == 0 {
		return fmt.Errorf("core: empty query")
	}
	hasAction := false
	for _, c := range q.Clauses {
		if len(c.Atoms) == 0 {
			return fmt.Errorf("core: empty clause")
		}
		for _, a := range c.Atoms {
			if err := a.Validate(); err != nil {
				return err
			}
			if a.Kind == ActionPredicate {
				hasAction = true
			}
		}
	}
	if !hasAction {
		return fmt.Errorf("core: extended query needs at least one action atom")
	}
	return nil
}

// FromQuery lifts a basic query (object conjunction plus one action) into
// CNF form: one single-atom clause per predicate.
func FromQuery(q Query) CNF {
	var cnf CNF
	for _, o := range q.Objects {
		cnf.Clauses = append(cnf.Clauses, Clause{Atoms: []Atom{ObjectAtom(o)}})
	}
	cnf.Clauses = append(cnf.Clauses, Clause{Atoms: []Atom{ActionAtom(q.Action)}})
	return cnf
}

// ExtendedResult is the outcome of an extended-query run.
type ExtendedResult struct {
	Query    CNF
	Mode     Mode
	Geometry video.Geometry
	NumClips int
	// Sequences is the merged set of clips satisfying every clause.
	Sequences video.IntervalSet
	// Flagged is the set of clips skipped after detector retry exhaustion.
	Flagged video.IntervalSet
	// Atoms holds per-atom diagnostics in first-appearance order.
	Atoms []PredicateStats
}

// Atom returns the stats for an atom by its rendered name, or nil.
func (r *ExtendedResult) Atom(name string) *PredicateStats {
	for i := range r.Atoms {
		if r.Atoms[i].Name == name {
			return &r.Atoms[i]
		}
	}
	return nil
}

// FrameSequences converts the clip-level result sequences to frames.
func (r *ExtendedResult) FrameSequences() video.IntervalSet {
	ivs := make([]video.Interval, 0, r.Sequences.NumIntervals())
	for _, iv := range r.Sequences.Intervals() {
		ivs = append(ivs, r.Geometry.FrameRangeOfClips(iv))
	}
	return video.NewIntervalSet(ivs...)
}

// RunCNF evaluates an extended query over the whole video. Every atom gets
// the engine's per-clip indicator machinery (static critical values for
// SVAQ, adaptive for SVAQD); per clip, a clause holds when any of its atoms
// does and the query holds when every clause does. Atoms are always
// evaluated on every clip (no short-circuiting), so all estimator samples
// are unbiased.
//
// Like Run, RunCNF honours ctx between clips (returning the partial result
// plus an *InterruptedError) and flags clips whose detector invocations fail
// after retries, aborting with a *DegradedError past the failure budget.
func (e *Engine) RunCNF(ctx context.Context, v detect.TruthVideo, q CNF) (*ExtendedResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	g := v.Geometry()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	numClips := g.NumClips(v.NumFrames())
	numShots := g.NumShots(v.NumFrames())
	run := acquireRun()
	run.e, run.ctx, run.v, run.geom, run.numClips = e, ctx, v, g, numClips
	run.trace, run.parent, run.started = obs.TraceFrom(ctx), obs.SpanFrom(ctx), time.Now()
	// The extended result is materialised fresh by video.FromIndicator, so
	// the scratch can go back to the pool on every exit path.
	defer run.release()

	// One predState per distinct atom; clauses reference them by index. The
	// pooled slots must be sized before any pointer into them is taken.
	distinct := map[string]bool{}
	for _, c := range q.Clauses {
		for _, a := range c.Atoms {
			distinct[a.key()] = true
		}
	}
	slots := run.scratch.ensurePreds(len(distinct))
	run.preds = run.scratch.predPtrs[:0]
	type boundAtom struct {
		atom Atom
		ps   *predState
	}
	var atoms []boundAtom
	index := map[string]int{}
	clauseAtoms := make([][]int, len(q.Clauses))
	for ci, c := range q.Clauses {
		for _, a := range c.Atoms {
			k := a.key()
			i, ok := index[k]
			if !ok {
				w, units := g.FramesPerClip(), v.NumFrames()
				p0, bw := e.cfg.P0Object, e.cfg.BandwidthFrames
				if a.Kind == ActionPredicate {
					w, units = g.ShotsPerClip, numShots
					p0, bw = e.cfg.P0Action, e.cfg.BandwidthShots
				}
				ps := &slots[len(atoms)]
				if err := run.initPred(ps, a.String(), a.Kind, w, p0, bw, units); err != nil {
					return nil, err
				}
				run.preds = append(run.preds, ps)
				i = len(atoms)
				atoms = append(atoms, boundAtom{atom: a, ps: ps})
				index[k] = i
			}
			clauseAtoms[ci] = append(clauseAtoms[ci], i)
		}
	}
	run.seedCrits()

	clipInd := make([]bool, 0, numClips)
	var runErr error
	for clip := 0; clip < numClips && runErr == nil; clip++ {
		if cerr := ctx.Err(); cerr != nil {
			runErr = &InterruptedError{Processed: clip, Total: numClips, Err: cerr}
			break
		}
		chargedFrames := false
		var clipErr error
		for _, ba := range atoms {
			if clipErr != nil || runErr != nil {
				ba.ps.clipInd = append(ba.ps.clipInd, false)
				continue
			}
			count, err := run.evaluateAtom(ba.atom, ba.ps, clip, &chargedFrames)
			if err != nil {
				ba.ps.clipInd = append(ba.ps.clipInd, false)
				if ctx.Err() != nil {
					runErr = &InterruptedError{Processed: clip, Total: numClips, Err: ctx.Err()}
				} else {
					clipErr = err
				}
				continue
			}
			ba.ps.evaluated++
			ind := count >= ba.ps.crit
			if ba.ps.est != nil {
				run.learn(ba.ps, count)
			}
			ba.ps.clipInd = append(ba.ps.clipInd, ind)
		}
		sat := clipErr == nil && runErr == nil
		if sat {
			for _, refs := range clauseAtoms {
				any := false
				for _, i := range refs {
					if atoms[i].ps.clipInd[clip] {
						any = true
						break
					}
				}
				if !any {
					sat = false
					break
				}
			}
		}
		clipInd = append(clipInd, sat)
		run.flagged = append(run.flagged, clipErr != nil)
		if clipErr != nil {
			run.recordFlagged(clipErr)
			run.flaggedCount++
			if float64(run.flaggedCount) > e.cfg.FailureBudget*float64(numClips) {
				runErr = &DegradedError{
					Flagged: run.flaggedCount, Processed: clip + 1, Total: numClips,
					Budget: e.cfg.FailureBudget, Err: clipErr,
				}
			}
		}
	}

	// On interruption or degradation the result covers the clips processed
	// so far and accompanies the error.
	res := &ExtendedResult{
		Query:     q,
		Mode:      e.mode,
		Geometry:  g,
		NumClips:  numClips,
		Sequences: video.FromIndicator(clipInd),
		Flagged:   run.Flagged(),
	}
	for _, ba := range atoms {
		res.Atoms = append(res.Atoms, PredicateStats{
			Name:           ba.ps.name,
			Kind:           ba.ps.kind,
			Clips:          video.FromIndicator(ba.ps.clipInd),
			RawUnits:       video.FromIndicator(ba.ps.rawInd),
			Background:     run.background(ba.ps),
			Critical:       ba.ps.crit,
			EvaluatedClips: ba.ps.evaluated,
		})
	}
	run.nextClip = len(clipInd)
	states := make([]*predState, len(atoms))
	for i, ba := range atoms {
		states[i] = ba.ps
	}
	run.emitSpans("engine.run_cnf", states)
	return res, runErr
}

// evaluateAtom computes the atom's positive-unit count over one clip,
// recording raw indicators and charging the meter. Detection failures
// surface as errors (the caller flags the clip).
func (r *Run) evaluateAtom(a Atom, ps *predState, clip int, chargedFrames *bool) (int, error) {
	count := 0
	switch a.Kind {
	case ObjectPredicate, ActionPredicate:
		// The CNF path has no adaptive planner; cascaded models run under
		// the static tier choice priced from the calibrated priors.
		mode := plan.StaticTierChoice(TierCosts(r.tierInfos(a.Kind)))
		n, _, err := r.evaluate(ps, clip, mode, chargedFrames)
		return n, err
	case RelationPredicate:
		defer func(t0 time.Time) { ps.evalTime += time.Since(t0) }(time.Now())
		fr := r.geom.FrameRangeOfClip(clip)
		if r.e.meter != nil && !*chargedFrames {
			r.e.meter.AddObjectFrames(fr.Len())
			*chargedFrames = true
		}
		for f := fr.Start; f <= fr.End; f++ {
			ps.units++
			if detect.RelationPositive(r.e.models.Objects, r.v, detect.Relation(a.Name), a.Args[0], a.Args[1], f) {
				ps.rawInd[f] = true
				count++
			}
		}
	}
	return count, nil
}
