package core

import (
	"context"
	"fmt"

	"svqact/internal/detect"
	"svqact/internal/plan"
	"svqact/internal/video"
)

// EvaluateTypes runs the engine's per-clip indicator machinery over each
// given object and action type independently — the evaluation mode of the
// offline ingestion phase (paper §4.2), which materialises one set of
// "individual sequences" (maximal runs of positive clips) per type. No
// conjunction or short-circuiting applies: every type is evaluated on every
// clip, and in Dynamic mode every clip feeds the background estimators
// (subject to the robust quantile gate).
//
// The returned maps give the positive-clip interval set per object type and
// per action type.
//
// The context is checked between clips: ingestion of a long video aborts
// promptly (with an *InterruptedError) when the caller goes away. Clips
// whose detector invocations fail after retries are flagged per predicate
// (indicator negative); past the failure budget the evaluation aborts with a
// *DegradedError.
func (e *Engine) EvaluateTypes(ctx context.Context, v detect.TruthVideo, objects, actions []string) (map[string]video.IntervalSet, map[string]video.IntervalSet, error) {
	g := v.Geometry()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.cfg
	numClips := g.NumClips(v.NumFrames())
	numShots := g.NumShots(v.NumFrames())

	run := acquireRun()
	run.e, run.ctx, run.v, run.geom, run.numClips = e, ctx, v, g, numClips
	// The returned maps are materialised fresh by video.FromIndicator, so
	// the scratch can go back to the pool on every exit path.
	defer run.release()
	slots := run.scratch.ensurePreds(len(objects) + len(actions))
	run.preds = run.scratch.predPtrs[:0]
	seen := map[string]bool{}
	for i, o := range objects {
		if o == "" || seen["o/"+o] {
			return nil, nil, fmt.Errorf("core: empty or duplicate object type %q", o)
		}
		seen["o/"+o] = true
		if err := run.initPred(&slots[i], o, ObjectPredicate, g.FramesPerClip(), cfg.P0Object, cfg.BandwidthFrames, v.NumFrames()); err != nil {
			return nil, nil, err
		}
		run.preds = append(run.preds, &slots[i])
	}
	for i, a := range actions {
		if a == "" || seen["a/"+a] {
			return nil, nil, fmt.Errorf("core: empty or duplicate action type %q", a)
		}
		seen["a/"+a] = true
		if err := run.initPred(&slots[len(objects)+i], a, ActionPredicate, g.ShotsPerClip, cfg.P0Action, cfg.BandwidthShots, numShots); err != nil {
			return nil, nil, err
		}
		run.preds = append(run.preds, &slots[len(objects)+i])
	}
	run.seedCrits()

	// Ingestion has no adaptive planner: cascaded models run under the
	// static tier choice priced from the calibrated escalation priors (the
	// same decision rank's offline planner makes).
	objMode := plan.StaticTierChoice(TierCosts(e.objTiers))
	actMode := plan.StaticTierChoice(TierCosts(e.actTiers))

	for c := 0; c < numClips; c++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, &InterruptedError{Processed: c, Total: numClips, Err: cerr}
		}
		objectFramesCharged := false
		var clipErr error
		for _, ps := range run.preds {
			if clipErr != nil {
				ps.clipInd = append(ps.clipInd, false)
				continue
			}
			mode := objMode
			if ps.kind == ActionPredicate {
				mode = actMode
			}
			count, _, err := run.evaluate(ps, c, mode, &objectFramesCharged)
			if err != nil {
				ps.clipInd = append(ps.clipInd, false)
				if ctx.Err() != nil {
					return nil, nil, &InterruptedError{Processed: c, Total: numClips, Err: ctx.Err()}
				}
				clipErr = err
				continue
			}
			ps.evaluated++
			ind := count >= ps.crit
			if ps.est != nil {
				run.learn(ps, count)
			}
			ps.clipInd = append(ps.clipInd, ind)
		}
		if clipErr != nil {
			run.flaggedCount++
			if float64(run.flaggedCount) > cfg.FailureBudget*float64(numClips) {
				return nil, nil, &DegradedError{
					Flagged: run.flaggedCount, Processed: c + 1, Total: numClips,
					Budget: cfg.FailureBudget, Err: clipErr,
				}
			}
		}
	}

	objSeqs := make(map[string]video.IntervalSet, len(objects))
	actSeqs := make(map[string]video.IntervalSet, len(actions))
	for _, ps := range run.preds {
		set := video.FromIndicator(ps.clipInd)
		if ps.kind == ObjectPredicate {
			objSeqs[ps.name] = set
		} else {
			actSeqs[ps.name] = set
		}
	}
	return objSeqs, actSeqs, nil
}
