package core

import (
	"fmt"

	"svqact/internal/detect"
	"svqact/internal/video"
)

// EvaluateTypes runs the engine's per-clip indicator machinery over each
// given object and action type independently — the evaluation mode of the
// offline ingestion phase (paper §4.2), which materialises one set of
// "individual sequences" (maximal runs of positive clips) per type. No
// conjunction or short-circuiting applies: every type is evaluated on every
// clip, and in Dynamic mode every clip feeds the background estimators
// (subject to the robust quantile gate).
//
// The returned maps give the positive-clip interval set per object type and
// per action type.
func (e *Engine) EvaluateTypes(v detect.TruthVideo, objects, actions []string) (map[string]video.IntervalSet, map[string]video.IntervalSet, error) {
	g := v.Geometry()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := e.cfg
	numClips := g.NumClips(v.NumFrames())
	numShots := g.NumShots(v.NumFrames())

	run := &Run{e: e, v: v, geom: g, numClips: numClips}
	seen := map[string]bool{}
	for _, o := range objects {
		if o == "" || seen["o/"+o] {
			return nil, nil, fmt.Errorf("core: empty or duplicate object type %q", o)
		}
		seen["o/"+o] = true
		ps, err := run.newPred(o, ObjectPredicate, g.FramesPerClip(), cfg.P0Object, cfg.BandwidthFrames, v.NumFrames())
		if err != nil {
			return nil, nil, err
		}
		run.preds = append(run.preds, ps)
	}
	for _, a := range actions {
		if a == "" || seen["a/"+a] {
			return nil, nil, fmt.Errorf("core: empty or duplicate action type %q", a)
		}
		seen["a/"+a] = true
		ps, err := run.newPred(a, ActionPredicate, g.ShotsPerClip, cfg.P0Action, cfg.BandwidthShots, numShots)
		if err != nil {
			return nil, nil, err
		}
		run.preds = append(run.preds, ps)
	}

	for c := 0; c < numClips; c++ {
		objectFramesCharged := false
		for _, ps := range run.preds {
			count := run.evaluate(ps, c, &objectFramesCharged)
			ps.evaluated++
			ind := count >= ps.crit
			if ps.est != nil {
				run.learn(ps, count)
			}
			ps.clipInd = append(ps.clipInd, ind)
		}
	}

	objSeqs := make(map[string]video.IntervalSet, len(objects))
	actSeqs := make(map[string]video.IntervalSet, len(actions))
	for _, ps := range run.preds {
		set := video.FromIndicator(ps.clipInd)
		if ps.kind == ObjectPredicate {
			objSeqs[ps.name] = set
		} else {
			actSeqs[ps.name] = set
		}
	}
	return objSeqs, actSeqs, nil
}
