package core

import (
	"context"
	"testing"

	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func testVideo(t *testing.T, seed int64, frames int) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID:       "core-test",
		Frames:   frames,
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     seed,
		Actions:  []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			{Name: "car", MeanGapFrames: 4000, MeanDurFrames: 500, CorrelatedWith: "jumping", CorrelationProb: 0.75},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func idealModels() detect.Models {
	return detect.NewModels(detect.NewObjectDetector(detect.IdealObject, 0), detect.NewActionRecognizer(detect.IdealAction, 0))
}

func noisyModels(seed int64) detect.Models {
	return detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, seed), detect.NewActionRecognizer(detect.I3D, seed))
}

func TestQueryValidate(t *testing.T) {
	good := Query{Objects: []string{"car", "human"}, Action: "jumping"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []Query{
		{Objects: []string{"car"}},                           // no action
		{Objects: []string{"car", "car"}, Action: "jumping"}, // duplicate
		{Objects: []string{""}, Action: "jumping"},           // empty object
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("query %v should be rejected", q)
		}
	}
}

func TestQueryStringAndCanonical(t *testing.T) {
	q := Query{Objects: []string{"human", "car"}, Action: "jumping"}
	if got := q.String(); got != "{o1=human; o2=car; a=jumping}" {
		t.Errorf("String = %q", got)
	}
	if got := (Query{Action: "x"}).String(); got != "{a=x}" {
		t.Errorf("objectless String = %q", got)
	}
	c := q.Canonical()
	if c.Objects[0] != "car" || c.Objects[1] != "human" {
		t.Errorf("Canonical = %v", c)
	}
	if q.Objects[0] != "human" {
		t.Error("Canonical mutated the original")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.HorizonClips = 0.5 },
		func(c *Config) { c.P0Object = -1 },
		func(c *Config) { c.P0Action = 2 },
		func(c *Config) { c.BandwidthFrames = 0 },
		func(c *Config) { c.BandwidthShots = -1 },
		func(c *Config) { c.CritGrid = 0 },
		func(c *Config) { c.EstimatorSampleEvery = 0 },
		func(c *Config) { c.NullQuantile = 0 },
		func(c *Config) { c.NullQuantile = 1 },
		func(c *Config) { c.RobustWindowClips = 2 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewSVAQ(detect.Models{}, DefaultConfig()); err == nil {
		t.Error("engine without models should be rejected")
	}
	bad := DefaultConfig()
	bad.Alpha = 0
	if _, err := NewSVAQD(idealModels(), bad); err == nil {
		t.Error("bad config should be rejected")
	}
	e, err := NewSVAQ(idealModels(), DefaultConfig())
	if err != nil || e.Mode() != Static || e.Mode().String() != "SVAQ" {
		t.Errorf("SVAQ engine: %v, mode %v", err, e.Mode())
	}
	d, err := NewSVAQD(idealModels(), DefaultConfig())
	if err != nil || d.Mode() != Dynamic || d.Mode().String() != "SVAQD" {
		t.Errorf("SVAQD engine: %v, mode %v", err, d.Mode())
	}
}

func TestRunRejectsBadQuery(t *testing.T) {
	e, _ := NewSVAQD(idealModels(), DefaultConfig())
	if _, err := e.Run(context.Background(), testVideo(t, 1, 10_000), Query{}); err == nil {
		t.Error("bad query should be rejected")
	}
}

func TestIdealModelsHighF1(t *testing.T) {
	v := testVideo(t, 2, 60_000)
	q := Query{Objects: []string{"human", "car"}, Action: "jumping"}
	spec := synth.QuerySpec{Action: q.Action, Objects: q.Objects}
	truth := v.TruthClips(spec, 0)

	for _, mk := range []func(detect.Models, Config) (*Engine, error){NewSVAQ, NewSVAQD} {
		e, err := mk(idealModels(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), v, q)
		if err != nil {
			t.Fatal(err)
		}
		c := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
		if f1 := c.F1(); f1 < 0.85 {
			t.Errorf("%v: ideal-model F1 = %v (counts %+v), want >= 0.85", e.Mode(), f1, c)
		}
	}
}

func TestSVAQDRobustToBadPrior(t *testing.T) {
	v := testVideo(t, 3, 60_000)
	q := Query{Objects: []string{"car"}, Action: "jumping"}
	spec := synth.QuerySpec{Action: q.Action, Objects: q.Objects}
	truth := v.TruthClips(spec, 0)

	f1For := func(mk func(detect.Models, Config) (*Engine, error), p0 float64) float64 {
		cfg := DefaultConfig()
		cfg.P0Object, cfg.P0Action = p0, p0
		e, err := mk(noisyModels(9), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), v, q)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU).F1()
	}

	// With a grossly overestimated background, SVAQ's critical values become
	// unattainable and it returns nothing; SVAQD recovers.
	svaqHigh := f1For(NewSVAQ, 0.9)
	svaqdHigh := f1For(NewSVAQD, 0.9)
	if svaqHigh > 0.1 {
		t.Errorf("SVAQ with p0=0.9 should collapse, got F1 %v", svaqHigh)
	}
	if svaqdHigh < 0.5 {
		t.Errorf("SVAQD with p0=0.9 should recover, got F1 %v", svaqdHigh)
	}
	// SVAQD must be roughly insensitive to the prior across six orders of
	// magnitude.
	lo, hi := f1For(NewSVAQD, 1e-6), f1For(NewSVAQD, 0.3)
	if diff := lo - hi; diff > 0.15 || diff < -0.15 {
		t.Errorf("SVAQD prior sensitivity too high: F1(1e-6)=%v F1(0.3)=%v", lo, hi)
	}
}

func TestShortCircuitSkipsLaterPredicates(t *testing.T) {
	v := testVideo(t, 4, 40_000)
	q := Query{Objects: []string{"car", "human"}, Action: "jumping"}

	// Pinned to the declared order, the exact skipping contract holds: the
	// first declared predicate is never skipped and evaluation counts are
	// non-increasing along the declared order.
	pinned := DefaultConfig()
	pinned.DeclaredOrder = true
	e, _ := NewSVAQD(noisyModels(1), pinned)
	res, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	car, human, act := res.Predicate("car"), res.Predicate("human"), res.Predicate("jumping")
	if car.EvaluatedClips != res.NumClips {
		t.Errorf("first predicate evaluated on %d of %d clips", car.EvaluatedClips, res.NumClips)
	}
	if human.EvaluatedClips > car.EvaluatedClips || act.EvaluatedClips > human.EvaluatedClips {
		t.Errorf("evaluation counts should be non-increasing: %d, %d, %d",
			car.EvaluatedClips, human.EvaluatedClips, act.EvaluatedClips)
	}
	if act.EvaluatedClips == res.NumClips {
		t.Error("action predicate was never skipped; short-circuit seems inactive")
	}
	if res.Plan == nil || res.Plan.Adaptive {
		t.Error("DeclaredOrder run should report a pinned plan")
	}

	// Under the adaptive planner, whichever order it picks must still
	// short-circuit: strictly fewer total evaluations than evaluating every
	// predicate on every clip, with the savings on the plan's ledger.
	ad, _ := NewSVAQD(noisyModels(1), DefaultConfig())
	resAd, err := ad.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range resAd.Predicates {
		total += ps.EvaluatedClips
	}
	if total >= len(resAd.Predicates)*resAd.NumClips {
		t.Errorf("adaptive run never short-circuited: %d evaluations over %d clips", total, resAd.NumClips)
	}
	if resAd.Plan == nil || !resAd.Plan.Adaptive {
		t.Fatal("adaptive run must report an adaptive plan")
	}
	if resAd.Plan.SkippedEvaluations == 0 {
		t.Error("plan reported no short-circuit savings")
	}

	cfg := DefaultConfig()
	cfg.NoShortCircuit = true
	e2, _ := NewSVAQD(noisyModels(1), cfg)
	res2, err := e2.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res2.Predicates {
		if ps.EvaluatedClips != res2.NumClips {
			t.Errorf("NoShortCircuit: predicate %s evaluated on %d of %d clips",
				ps.Name, ps.EvaluatedClips, res2.NumClips)
		}
	}
}

func TestActionFirstOrdering(t *testing.T) {
	v := testVideo(t, 5, 40_000)
	q := Query{Objects: []string{"car"}, Action: "jumping"}
	cfg := DefaultConfig()
	cfg.ActionFirst = true
	e, _ := NewSVAQD(noisyModels(2), cfg)
	res, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	act, car := res.Predicate("jumping"), res.Predicate("car")
	if act.EvaluatedClips != res.NumClips {
		t.Errorf("action-first: action evaluated on %d of %d clips", act.EvaluatedClips, res.NumClips)
	}
	if car.EvaluatedClips >= res.NumClips {
		t.Errorf("action-first: object should be skipped sometimes, evaluated %d", car.EvaluatedClips)
	}
	// Predicates must still be reported in query order (objects, then action).
	if res.Predicates[0].Name != "car" || res.Predicates[1].Name != "jumping" {
		t.Errorf("report order wrong: %s, %s", res.Predicates[0].Name, res.Predicates[1].Name)
	}
}

func TestMeterCharging(t *testing.T) {
	v := testVideo(t, 6, 20_000)
	fpc := v.Geometry().FramesPerClip()
	numClips := v.Geometry().NumClips(v.NumFrames())

	// Two object predicates must not double-charge object inference.
	var m detect.Meter
	cfg := DefaultConfig()
	cfg.NoShortCircuit = true
	models := noisyModels(3)
	e, _ := NewSVAQD(models, cfg)
	e.SetMeter(&m)
	if _, err := e.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"}); err != nil {
		t.Fatal(err)
	}
	if got, want := m.ObjectFrames(), int64(numClips*fpc); got != want {
		t.Errorf("object frames charged %d, want %d", got, want)
	}
	if got, want := m.ActionShots(), int64(numClips*v.Geometry().ShotsPerClip); got != want {
		t.Errorf("action shots charged %d, want %d", got, want)
	}

	// With short-circuiting, total priced inference must drop, whichever
	// evaluation order the planner picks.
	var m2 detect.Meter
	models2 := noisyModels(3)
	e2, _ := NewSVAQD(models2, DefaultConfig())
	e2.SetMeter(&m2)
	if _, err := e2.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"}); err != nil {
		t.Fatal(err)
	}
	if m2.Cost(models2) >= m.Cost(models) {
		t.Errorf("short-circuit did not reduce priced inference: %v vs %v", m2.Cost(models2), m.Cost(models))
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	v := testVideo(t, 7, 30_000)
	q := Query{Objects: []string{"car"}, Action: "jumping"}
	e, _ := NewSVAQD(noisyModels(4), DefaultConfig())

	batch, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.NewRun(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumClips() != batch.NumClips {
		t.Fatalf("NumClips mismatch")
	}
	steps := 0
	for run.Step() {
		steps++
		if run.Processed() != steps {
			t.Fatalf("Processed = %d after %d steps", run.Processed(), steps)
		}
	}
	if steps != batch.NumClips {
		t.Fatalf("streamed %d clips, want %d", steps, batch.NumClips)
	}
	if run.Step() {
		t.Error("Step after exhaustion should return false")
	}
	if got, want := run.Sequences().String(), batch.Sequences.String(); got != want {
		t.Errorf("streaming sequences %v != batch %v", got, want)
	}
	if got := run.Result().Sequences.String(); got != batch.Sequences.String() {
		t.Errorf("Result sequences differ: %v", got)
	}
}

func TestPartialResultCoversPrefix(t *testing.T) {
	v := testVideo(t, 8, 30_000)
	q := Query{Objects: []string{"car"}, Action: "jumping"}
	e, _ := NewSVAQD(noisyModels(5), DefaultConfig())
	run, _ := e.NewRun(context.Background(), v, q)
	for i := 0; i < 100; i++ {
		if !run.Step() {
			t.Fatal("stream ended early")
		}
	}
	res := run.Result()
	if sp, ok := res.Sequences.Span(); ok && sp.End >= 100 {
		t.Errorf("partial result references unprocessed clip %d", sp.End)
	}
}

func TestFrameSequencesConversion(t *testing.T) {
	v := testVideo(t, 9, 20_000)
	q := Query{Objects: []string{"human"}, Action: "jumping"}
	e, _ := NewSVAQD(idealModels(), DefaultConfig())
	res, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.FrameSequences()
	fpc := v.Geometry().FramesPerClip()
	if got, want := fs.TotalLen(), res.Sequences.TotalLen()*fpc; got != want {
		t.Errorf("frame sequence length %d, want %d", got, want)
	}
}

func TestDynamicBackgroundTracksReality(t *testing.T) {
	v := testVideo(t, 10, 60_000)
	q := Query{Objects: []string{"car"}, Action: "jumping"}
	models := noisyModels(6)
	// Pin the declared order so the object predicate runs on every clip and
	// its raw indicators cover the whole video.
	cfg := DefaultConfig()
	cfg.DeclaredOrder = true
	e, _ := NewSVAQD(models, cfg)
	res, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	// The final background estimate should be near the detector's null
	// (false-positive) rate — the raw positive rate outside the object's
	// true presence — not the 1e-4 prior, and not the much higher mixture
	// rate that includes the events themselves.
	car := res.Predicate("car")
	presence := v.ObjectPresence("car")
	noiseFrames := car.RawUnits.Subtract(presence).TotalLen()
	nullFrames := v.NumFrames() - presence.TotalLen()
	rate := float64(noiseFrames) / float64(nullFrames)
	if car.Background < rate/4 || car.Background > rate*4 {
		t.Errorf("background estimate %v far from null rate %v", car.Background, rate)
	}
	if car.Critical <= 0 || car.Critical > v.Geometry().FramesPerClip()+1 {
		t.Errorf("critical value %d out of range", car.Critical)
	}
}

func TestPredicateLookup(t *testing.T) {
	v := testVideo(t, 11, 10_000)
	e, _ := NewSVAQ(idealModels(), DefaultConfig())
	res, err := e.Run(context.Background(), v, Query{Objects: []string{"car"}, Action: "jumping"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate("car") == nil || res.Predicate("jumping") == nil {
		t.Error("predicate lookup failed")
	}
	if res.Predicate("nope") != nil {
		t.Error("unknown predicate should be nil")
	}
	if res.Predicate("car").Kind != ObjectPredicate || res.Predicate("jumping").Kind != ActionPredicate {
		t.Error("predicate kinds wrong")
	}
}

func TestObjectlessQuery(t *testing.T) {
	// The paper's Table 3 includes queries with zero object predicates.
	v := testVideo(t, 12, 30_000)
	q := Query{Action: "jumping"}
	e, _ := NewSVAQD(idealModels(), DefaultConfig())
	res, err := e.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	truth := v.TruthClips(synth.QuerySpec{Action: "jumping"}, 0)
	c := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
	if f1 := c.F1(); f1 < 0.85 {
		t.Errorf("objectless ideal F1 = %v", f1)
	}
}
