package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"svqact/internal/detect"
	"svqact/internal/kernel"
	"svqact/internal/obs"
	"svqact/internal/plan"
	"svqact/internal/scanstat"
	"svqact/internal/video"
)

// Mode selects between the paper's two online algorithms.
type Mode int

const (
	// Static is SVAQ: critical values fixed from the initial background
	// probabilities (paper Algorithm 1).
	Static Mode = iota
	// Dynamic is SVAQD: per-predicate background probabilities estimated
	// online and critical values refreshed as they drift (Algorithm 3).
	Dynamic
)

func (m Mode) String() string {
	if m == Dynamic {
		return "SVAQD"
	}
	return "SVAQ"
}

// Engine runs online action queries over streaming videos.
type Engine struct {
	models detect.Models
	cfg    Config
	mode   Mode
	meter  *detect.Meter

	// objTiers/actTiers describe the models' detector cascades (nil for
	// single-tier models), cached once so the per-clip tier dispatch is a
	// slice-length check rather than an interface assertion.
	objTiers []detect.TierInfo
	actTiers []detect.TierInfo
}

// NewSVAQ builds the static-background engine.
func NewSVAQ(models detect.Models, cfg Config) (*Engine, error) {
	return newEngine(models, cfg, Static)
}

// NewSVAQD builds the adaptive engine.
func NewSVAQD(models detect.Models, cfg Config) (*Engine, error) {
	return newEngine(models, cfg, Dynamic)
}

func newEngine(models detect.Models, cfg Config, mode Mode) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if models.Objects == nil || models.Actions == nil {
		return nil, fmt.Errorf("core: engine needs both an object detector and an action recogniser")
	}
	e := &Engine{models: models, cfg: cfg, mode: mode, meter: cfg.Meter}
	if _, ok := models.Objects.(detect.CascadedObjectScorer); ok {
		e.objTiers = detect.CascadeTierInfos(models.Objects)
	}
	if _, ok := models.Actions.(detect.CascadedActionScorer); ok {
		e.actTiers = detect.CascadeTierInfos(models.Actions)
	}
	return e, nil
}

// TierCosts converts cascade tier descriptions into the planner's tier cost
// model — the bridge between detect's calibrated profiles and plan's
// escalation estimators, shared by the online planner and rank's static one.
func TierCosts(infos []detect.TierInfo) []plan.TierCost {
	if len(infos) < 2 {
		return nil
	}
	tiers := make([]plan.TierCost, len(infos))
	for i, ti := range infos {
		tiers[i] = plan.TierCost{Name: ti.Name, UnitCost: ti.UnitCost, PriorEscalate: ti.PriorEscalate}
	}
	return tiers
}

// Mode returns which algorithm the engine runs.
func (e *Engine) Mode() Mode { return e.mode }

// SetMeter attaches an inference meter; subsequent runs charge their model
// invocations to it.
func (e *Engine) SetMeter(m *detect.Meter) { e.meter = m }

// PredicateKind distinguishes object and action predicates in diagnostics.
type PredicateKind int

const (
	// ObjectPredicate is evaluated per frame.
	ObjectPredicate PredicateKind = iota
	// ActionPredicate is evaluated per shot.
	ActionPredicate
)

// PredicateStats reports per-predicate diagnostics of a run.
type PredicateStats struct {
	Name string
	Kind PredicateKind
	// Clips is the set of clips on which the predicate's indicator was
	// positive (the offline phase materialises these as the paper's
	// "individual sequences").
	Clips video.IntervalSet
	// RawUnits is the set of occurrence units (frames for objects, shots
	// for the action) with positive thresholded detections — the
	// pre-filtering signal.
	RawUnits video.IntervalSet
	// Background is the final background probability in effect (the fixed
	// p0 for SVAQ, the last estimate for SVAQD).
	Background float64
	// Critical is the final critical value in effect.
	Critical int
	// EvaluatedClips counts the clips on which the predicate was actually
	// evaluated (short-circuiting skips the rest).
	EvaluatedClips int
}

// Result is the outcome of a run over one video.
type Result struct {
	Query    Query
	Mode     Mode
	Geometry video.Geometry
	// NumClips is the number of clips in the processed video; Processed
	// counts the clips actually evaluated (smaller when the run was cut
	// short by cancellation or degradation).
	NumClips  int
	Processed int
	// Sequences is P_q: maximal runs of clips satisfying the whole query.
	Sequences video.IntervalSet
	// Flagged is the set of clips skipped after detector retry exhaustion
	// (their indicator is conservatively negative) — the degraded-but-alive
	// outcome of the failure model.
	Flagged video.IntervalSet
	// Predicates holds per-predicate diagnostics, objects in query order
	// followed by the action.
	Predicates []PredicateStats
	// Plan reports the predicate evaluation plan the run used: the chosen
	// order, the per-node cost model, re-plan count and short-circuit
	// savings. Runs sharing a fleet-wide planner report the shared
	// (fleet-cumulative) statistics.
	Plan *plan.Report
	// InferenceCost is the priced simulated inference time the run spent —
	// for cascaded models the per-attempt tier spend, otherwise units scored
	// times the detector's unit cost.
	InferenceCost time.Duration
	// BudgetSkipped counts the clips skipped-and-flagged after the
	// inference budget ran out (zero when no budget is configured).
	BudgetSkipped int64
}

// FrameSequences converts the clip-level result sequences to frame
// intervals.
func (r *Result) FrameSequences() video.IntervalSet {
	ivs := make([]video.Interval, 0, r.Sequences.NumIntervals())
	for _, iv := range r.Sequences.Intervals() {
		ivs = append(ivs, r.Geometry.FrameRangeOfClips(iv))
	}
	return video.NewIntervalSet(ivs...)
}

// Predicate returns the stats for a predicate by name, or nil.
func (r *Result) Predicate(name string) *PredicateStats {
	for i := range r.Predicates {
		if r.Predicates[i].Name == name {
			return &r.Predicates[i]
		}
	}
	return nil
}

// Run processes the whole video and returns the result sequences — the
// batch entry point. For incremental streaming consumption use NewRun/Step.
//
// The run honours ctx: on deadline expiry or cancellation it stops between
// clips and returns the partial result covering the clips processed so far
// together with an *InterruptedError. A run whose flagged clips exceed the
// failure budget likewise returns its partial result and a *DegradedError.
func (e *Engine) Run(ctx context.Context, v detect.TruthVideo, q Query) (*Result, error) {
	return e.runShared(ctx, v, q, nil)
}

// runShared is Run with an optional externally owned planner — the fleet
// path hands every per-video run one shared, warm-started cost model. As a
// batch entry point it owns the run's pooled scratch: the scratch goes back
// to the pool only after Result() has materialised everything the caller
// sees, so nothing the caller holds aliases pooled memory.
func (e *Engine) runShared(ctx context.Context, v detect.TruthVideo, q Query, pl *plan.Planner) (*Result, error) {
	run, err := e.newRun(ctx, v, q, pl)
	if err != nil {
		return nil, err
	}
	for run.Step() {
	}
	res, rerr := run.Result(), run.Err()
	run.release()
	return res, rerr
}

// predState is the per-predicate evaluation state of a run.
type predState struct {
	name string
	kind PredicateKind

	window int // occurrence units per clip (frames or shots)

	crit int // current critical value

	est   *kernel.Estimator        // Dynamic mode only
	cache *scanstat.CriticalValues // Dynamic mode only

	// lastBucket memoizes the grid bucket of the last background estimate:
	// the critical value is a pure function of the bucket, so the shared
	// grid is consulted only when the estimate crosses into a new bucket,
	// not on every admitted clip.
	lastBucket int
	hasBucket  bool

	// recent is a ring of the latest unbiased clip counts; the quantile
	// gate (Config.NullQuantile) derives an admission threshold from it,
	// keeping the null-rate estimate robust to the events themselves.
	recent     []int
	recentPos  int
	recentSeen int

	// prev2/prev1 hold the last two unbiased counts so updates can be
	// applied one clip late with both temporal neighbours known: a count
	// feeds the estimator only when it and both neighbours are below the
	// gate threshold, excluding event boundaries from the null estimate.
	prev2, prev1 int
	lagSeen      int

	clipInd   []bool // indicator per processed clip
	rawInd    []bool // indicator per occurrence unit (false when skipped)
	evaluated int

	// Per-run observability: cumulative time spent evaluating this
	// predicate's detector calls, occurrence units scored, and critical-value
	// refreshes applied (Dynamic mode).
	evalTime   time.Duration
	units      int
	recomputes int

	// Cascade accounting (empty slices for single-tier models): cumulative
	// units scored and units escalated per tier across the run, and the
	// planner's most recent tier decision — the run-local numbers behind the
	// tier:* span attributes.
	tierUnits     []int64
	tierEscalated []int64
	lastMode      plan.TierMode
}

// Run is an in-progress streaming evaluation over one video. It is not safe
// for concurrent use.
type Run struct {
	e     *Engine
	ctx   context.Context
	v     detect.TruthVideo
	q     Query
	geom  video.Geometry
	preds []*predState // declared order: objects in query order, action last or first

	// planner owns the evaluation order over preds (cheapest expected cost
	// to reject first, re-planned as statistics drift; pinned to the
	// declared order under NoShortCircuit/ActionFirst/DeclaredOrder). Fleet
	// runs share one planner per query.
	planner *plan.Planner

	numClips int
	nextClip int
	clipInd  []bool

	// Failure-model state: flagged marks processed clips skipped after
	// retry exhaustion; err latches the terminal error of the run.
	flagged      []bool
	flaggedCount int
	err          error

	// Inference-budget state: the simulated inference cost spent so far,
	// and the clips skipped-and-flagged after the budget ran out (planned
	// degradation — these never raise a DegradedError).
	budgetSpent   time.Duration
	budgetSkipped int64

	// lastAcc points at the cascade account the most recent evaluate call
	// filled (nil when the predicate's model is single-tier), so Step can
	// feed the planner's escalation estimators without re-deriving it.
	lastAcc *detect.CascadeAccount

	// Observability: the trace carried by the run's context (nil when the
	// caller attached none), the context's current span (the engine span's
	// parent in the assembled tree), the run's start time, and whether the
	// run's spans were already emitted (Result may be called repeatedly).
	trace        *obs.Trace
	parent       *obs.Span
	started      time.Time
	spansEmitted bool

	// scratch is the pooled per-run state this Run's slices point into; nil
	// only for zero-value Runs. See pool.go for the lifecycle.
	scratch *runScratch
}

// NewRun prepares a streaming evaluation of q over v. Critical values are
// initialised from the configured background probabilities; in Dynamic mode
// each predicate also gets a kernel estimator. The context is checked before
// every clip; a nil ctx means context.Background.
func (e *Engine) NewRun(ctx context.Context, v detect.TruthVideo, q Query) (*Run, error) {
	return e.newRun(ctx, v, q, nil)
}

// newRun is NewRun with an optional shared planner (fleet warm start). A
// nil or mismatched planner gets replaced by a fresh one for this run.
func (e *Engine) newRun(ctx context.Context, v detect.TruthVideo, q Query, pl *plan.Planner) (*Run, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	g := v.Geometry()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.cfg
	r := acquireRun()
	r.e = e
	r.ctx = ctx
	r.v = v
	r.q = q
	r.geom = g
	r.numClips = g.NumClips(v.NumFrames())
	r.trace = obs.TraceFrom(ctx)
	r.parent = obs.SpanFrom(ctx)
	r.started = time.Now()

	fpc, spc := g.FramesPerClip(), g.ShotsPerClip
	numShots := g.NumShots(v.NumFrames())

	slots := r.scratch.ensurePreds(len(q.Objects) + 1)
	for i, o := range q.Objects {
		if err := r.initPred(&slots[i], o, ObjectPredicate, fpc, cfg.P0Object, cfg.BandwidthFrames, v.NumFrames()); err != nil {
			r.release()
			return nil, err
		}
	}
	act := &slots[len(slots)-1]
	if err := r.initPred(act, q.Action, ActionPredicate, spc, cfg.P0Action, cfg.BandwidthShots, numShots); err != nil {
		r.release()
		return nil, err
	}
	r.preds = r.scratch.predPtrs[:0]
	if cfg.ActionFirst {
		r.preds = append(r.preds, act)
	}
	for i := range q.Objects {
		r.preds = append(r.preds, &slots[i])
	}
	if !cfg.ActionFirst {
		r.preds = append(r.preds, act)
	}
	r.seedCrits()
	if pl == nil || pl.Len() != len(r.preds) {
		pl = e.plannerForQuery(q, g)
	}
	r.planner = pl
	return r, nil
}

// plannerForQuery builds the predicate planner for one query at one video
// geometry: one node per predicate in the declared order NewRun uses, with
// the per-clip prior cost priced as the predicate's occurrence-unit window
// times the detector's unit cost. The order is pinned to the declared one
// under NoShortCircuit (every predicate runs anyway), ActionFirst (the
// explicit ordering ablation) and DeclaredOrder (the planner opt-out).
func (e *Engine) plannerForQuery(q Query, g video.Geometry) *plan.Planner {
	objCost := time.Duration(g.FramesPerClip()) * e.models.Objects.UnitCost()
	actCost := time.Duration(g.ShotsPerClip) * e.models.Actions.UnitCost()
	objTiers, actTiers := TierCosts(e.objTiers), TierCosts(e.actTiers)
	nodes := make([]plan.Node, 0, len(q.Objects)+1)
	for _, o := range q.Objects {
		nodes = append(nodes, plan.Node{Name: o, PriorCost: objCost, Tiers: objTiers, Window: g.FramesPerClip()})
	}
	act := plan.Node{Name: q.Action, PriorCost: actCost, Tiers: actTiers, Window: g.ShotsPerClip}
	if e.cfg.ActionFirst {
		nodes = append([]plan.Node{act}, nodes...)
	} else {
		nodes = append(nodes, act)
	}
	pinned := e.cfg.NoShortCircuit || e.cfg.ActionFirst || e.cfg.DeclaredOrder
	return plan.New(nodes, plan.Options{Pinned: pinned, ReplanEvery: e.cfg.ReplanEvery})
}

// initPred (re)builds the evaluation state for one predicate in a pooled
// slot: its static critical value and, in Dynamic mode, its kernel
// estimator and critical-value cache. Slice capacities and a
// bandwidth-matching estimator already in the slot are reused. Dynamic
// critical values are seeded afterwards, in one batch per grid, by
// seedCrits.
func (r *Run) initPred(ps *predState, name string, kind PredicateKind, w int, p0, bw float64, units int) error {
	cfg := r.e.cfg
	ps.name, ps.kind, ps.window = name, kind, w
	ps.rawInd = resizeBools(ps.rawInd, units)
	ps.clipInd = ps.clipInd[:0]
	ps.recentPos, ps.recentSeen = 0, 0
	ps.prev2, ps.prev1, ps.lagSeen = 0, 0, 0
	ps.evaluated = 0
	ps.evalTime, ps.units, ps.recomputes = 0, 0, 0
	ps.tierUnits, ps.tierEscalated = ps.tierUnits[:0], ps.tierEscalated[:0]
	ps.lastMode = plan.TierSingle
	if tiers := r.tierInfos(kind); len(tiers) >= 2 {
		ps.tierUnits = zeroInt64s(ps.tierUnits, len(tiers))
		ps.tierEscalated = zeroInt64s(ps.tierEscalated, len(tiers))
	}
	ps.hasBucket = false
	ps.cache = nil
	ps.crit = scanstat.CriticalValue(w, p0, cfg.HorizonClips, cfg.Alpha)
	if r.e.mode != Dynamic {
		ps.est = nil
		return nil
	}
	if ps.est != nil && ps.est.Bandwidth() == bw {
		if err := ps.est.Reset(p0); err != nil {
			return err
		}
	} else {
		est, err := kernel.NewEstimator(bw, p0)
		if err != nil {
			return err
		}
		ps.est = est
	}
	// The grid is shared process-wide: every run at this configuration —
	// all videos of a fleet, all concurrent server queries — reuses one
	// memoized Naus search per bucket instead of recomputing it per run.
	ps.cache = scanstat.Shared(w, cfg.HorizonClips, cfg.Alpha, cfg.CritGrid)
	return nil
}

// seedCrits initialises the Dynamic-mode critical values of every
// predicate, batching the grid lookups so each shared cache is locked once
// per run rather than once per predicate. Object predicates all share one
// grid (same window) and the action another, so this is at most two locked
// passes.
func (r *Run) seedCrits() {
	if r.e.mode != Dynamic {
		return
	}
	n := len(r.preds)
	probs, ks := r.scoreBuf(n), r.critBuf(n)
	for i, ps := range r.preds {
		if ps.hasBucket {
			continue
		}
		// Gather every predicate sharing this one's cache into one batch.
		batch := 0
		for j := i; j < n; j++ {
			if qs := r.preds[j]; !qs.hasBucket && qs.cache == ps.cache {
				probs[batch] = qs.est.P()
				batch++
			}
		}
		ps.cache.AtBatch(probs[:batch], ks[:batch])
		batch = 0
		for j := i; j < n; j++ {
			if qs := r.preds[j]; !qs.hasBucket && qs.cache == ps.cache {
				qs.crit = ks[batch]
				qs.lastBucket = qs.cache.BucketOf(probs[batch])
				qs.hasBucket = true
				batch++
			}
		}
	}
}

// NumClips returns the number of clips the run will process.
func (r *Run) NumClips() int { return r.numClips }

// Processed returns the number of clips processed so far.
func (r *Run) Processed() int { return r.nextClip }

// Err returns the terminal error of the run: an *InterruptedError when the
// context ended mid-stream, a *DegradedError when flagged clips exceeded the
// failure budget, nil while the run is healthy. Once set, Step returns
// false.
func (r *Run) Err() error { return r.err }

// Flagged returns the clips skipped so far after detector retry exhaustion.
func (r *Run) Flagged() video.IntervalSet { return video.FromIndicator(r.flagged) }

// Step processes the next clip of the stream; it returns false when the
// stream is exhausted, the context has ended, or the run has degraded past
// the failure budget (check Err). This is Algorithm 1/3's main loop body:
// evaluate the clip indicator (Algorithm 2) and, in Dynamic mode, fold the
// clip's observations into each evaluated predicate's background estimate
// and refresh its critical value.
//
// A detector invocation that still fails after the configured retries does
// not abort the run: the clip is flagged, its indicator forced negative, and
// processing continues — until the flagged fraction exceeds the failure
// budget, at which point the run stops with a DegradedError.
func (r *Run) Step() bool {
	if r.err != nil || r.nextClip >= r.numClips {
		return false
	}
	if cerr := r.ctx.Err(); cerr != nil {
		r.err = &InterruptedError{Processed: r.nextClip, Total: r.numClips, Err: cerr}
		return false
	}
	c := r.nextClip
	r.nextClip++

	// Inference-budget gate, at clip granularity: once the spend reaches
	// the budget the remaining clips are skipped-and-flagged without
	// touching a detector — graceful degradation, not an error, so the
	// flagged clips stay out of the failure budget.
	if r.e.cfg.InferenceBudget > 0 && r.budgetSpent >= r.e.cfg.InferenceBudget {
		for _, ps := range r.preds {
			ps.clipInd = append(ps.clipInd, false)
		}
		r.clipInd = append(r.clipInd, false)
		r.flagged = append(r.flagged, true)
		r.budgetSkipped++
		return true
	}

	// Every EstimatorSampleEvery-th clip all predicates are evaluated
	// unconditionally; only these unbiased evaluations may feed background
	// estimators and the planner's cost model (evaluations admitted by
	// short-circuiting see a stream pre-filtered by the predicates that ran
	// earlier — a biased sample under correlation).
	sampled := r.e.cfg.NoShortCircuit || c < r.e.cfg.BootstrapClips ||
		c%r.e.cfg.EstimatorSampleEvery == 0

	positive := true
	var clipErr error // detection failure flagging this clip
	objectFramesCharged := false
	modes := r.modesBuf()
	for _, idx := range r.planner.AppendDecisions(r.orderBuf(), modes) {
		ps := r.preds[idx]
		if clipErr != nil || r.err != nil ||
			(!positive && !r.e.cfg.NoShortCircuit && !sampled) {
			if clipErr == nil && r.err == nil {
				// Spared by short-circuit (not by a failure): credit the
				// planner's savings ledger.
				r.planner.Skip(idx)
			}
			ps.clipInd = append(ps.clipInd, false)
			continue
		}
		count, cost, err := r.evaluate(ps, c, modes[idx], &objectFramesCharged)
		r.budgetSpent += cost
		if err != nil {
			// Keep per-predicate indicator alignment, then decide whether
			// this is an interruption (context ended during retries) or a
			// skip-and-flag detection failure.
			ps.clipInd = append(ps.clipInd, false)
			positive = false
			if r.ctx.Err() != nil {
				r.err = &InterruptedError{Processed: c, Total: r.numClips, Err: r.ctx.Err()}
			} else {
				clipErr = err
			}
			continue
		}
		ps.evaluated++
		ind := count >= ps.crit
		if sampled {
			// The observed cost is the evaluation's priced inference time —
			// for cascades, the per-attempt tier spend; otherwise units
			// scored × the detector's unit cost — the simulator's
			// equivalent of measured detector latency.
			r.planner.Observe(idx, !ind, cost)
			if r.lastAcc != nil {
				r.planner.ObserveTiers(idx, r.lastAcc.Units, r.lastAcc.Escalated)
			}
		}
		if ps.est != nil && sampled {
			r.learn(ps, count)
		}
		ps.clipInd = append(ps.clipInd, ind)
		if !ind {
			positive = false
		}
	}
	if sampled && clipErr == nil && r.err == nil {
		r.planner.EndClip()
	}
	r.clipInd = append(r.clipInd, positive)
	r.flagged = append(r.flagged, clipErr != nil)
	if clipErr != nil {
		r.recordFlagged(clipErr)
		r.flaggedCount++
		if float64(r.flaggedCount) > r.e.cfg.FailureBudget*float64(r.numClips) {
			r.err = &DegradedError{
				Flagged: r.flaggedCount, Processed: r.nextClip, Total: r.numClips,
				Budget: r.e.cfg.FailureBudget, Err: clipErr,
			}
		}
	}
	return true
}

// learn feeds one unbiased clip count into the predicate's background
// estimation machinery: the robust quantile gate plus delayed
// neighbourhood exclusion.
//
// The gate threshold is the NullQuantile-quantile of the recent unbiased
// counts plus a binomial slack of about two standard deviations: the
// quantile locates the majority (background) behaviour even when the current
// estimate is badly off, and the slack keeps the admitted sample covering
// essentially the whole null distribution so the estimate is not censored
// downwards. Updates run one clip late so both temporal neighbours of a
// count are known: a count feeds the estimator only when it and both
// neighbours fall below the threshold, which keeps the partially covered
// boundary clips of genuine events (whose counts are individually
// indistinguishable from noise) out of the null estimate. During warm-up
// nothing is admitted and the prior holds.
func (r *Run) learn(ps *predState, count int) {
	thr, ready := r.gateThreshold(ps)

	// Ring update (the threshold above was computed before this count). The
	// ring's stale contents from a previous pooled run are never read:
	// gateThreshold waits for recentSeen to cover the whole ring.
	if len(ps.recent) != r.e.cfg.RobustWindowClips {
		ps.recent = make([]int, r.e.cfg.RobustWindowClips)
	}
	ps.recent[ps.recentPos] = count
	ps.recentPos = (ps.recentPos + 1) % len(ps.recent)
	ps.recentSeen++

	defer func() {
		ps.prev2, ps.prev1 = ps.prev1, count
		ps.lagSeen++
	}()
	if !ready || ps.lagSeen < 2 {
		return
	}
	if ps.prev1 <= thr && ps.prev2 <= thr && count <= thr {
		ps.est.TickN(ps.window, ps.prev1)
		// The critical value depends only on the estimate's grid bucket, so
		// the shared grid is consulted only on a bucket crossing — same
		// values as an unconditional At, minus the per-clip lock traffic.
		if b := ps.cache.BucketOf(ps.est.P()); !ps.hasBucket || b != ps.lastBucket {
			ps.lastBucket, ps.hasBucket = b, true
			if crit := ps.cache.AtBucket(b); crit != ps.crit {
				ps.crit = crit
				ps.recomputes++
			}
		}
	}
}

// gateThreshold derives the admission threshold from the recent-count ring.
// It is only ready once the ring is full: on a partially filled ring a
// single event occurrence could dominate the quantile, poisoning the null
// estimate with event counts that a short stream never forgets.
func (r *Run) gateThreshold(ps *predState) (thr int, ready bool) {
	if len(ps.recent) == 0 || ps.recentSeen < len(ps.recent) {
		return 0, false
	}
	n := len(ps.recent)
	sorted := r.sortBuf(n)
	copy(sorted, ps.recent[:n])
	sort.Ints(sorted)
	idx := int(r.e.cfg.NullQuantile * float64(n))
	if idx >= n {
		idx = n - 1
	}
	q := sorted[idx]
	// Rate implied by the quantile (with a light quarter-count prior so a
	// zero quantile still grants some slack), then ~2 sd of binomial slack.
	// A heavier prior would inflate the implied rate so much on small
	// windows (shots-per-clip can be as low as 2) that the threshold stops
	// excluding anything.
	w := float64(ps.window)
	pt := (float64(q) + 0.25) / (w + 0.5)
	slack := int(math.Ceil(2 * math.Sqrt(w*pt*(1-pt))))
	return q + slack, true
}

// unitCost is the priced cost of one detector invocation for a predicate
// kind (per frame for objects, per shot for the action).
func (r *Run) unitCost(kind PredicateKind) time.Duration {
	if kind == ActionPredicate {
		return r.e.models.Actions.UnitCost()
	}
	return r.e.models.Objects.UnitCost()
}

// tierInfos returns the engine's cascade description for a predicate kind
// (nil for single-tier models).
func (r *Run) tierInfos(kind PredicateKind) []detect.TierInfo {
	if kind == ActionPredicate {
		return r.e.actTiers
	}
	return r.e.objTiers
}

// entryTier maps the planner's tier decision to the cascade entry index.
func entryTier(mode plan.TierMode, tiers int) int {
	if mode == plan.TierAccurate {
		return tiers - 1
	}
	return 0
}

// evaluate runs the detector over the clip's occurrence units for one
// predicate, records the raw indicators, charges the meter and the
// predicate's evaluation-time accumulator, and returns the positive count
// together with the evaluation's priced inference cost. Cascaded models
// execute the planner's tier decision (mode) with per-tier retry and
// accounting; the cost is then the per-attempt tier spend. A detector
// invocation that fails after retries aborts the clip's evaluation with the
// error (the caller flags the clip); the cost spent up to the failure is
// still reported so the budget ledger stays honest.
func (r *Run) evaluate(ps *predState, clip int, mode plan.TierMode, objectFramesCharged *bool) (int, time.Duration, error) {
	defer func(t0 time.Time) { ps.evalTime += time.Since(t0) }(time.Now())
	count := 0
	units0 := ps.units
	r.lastAcc = nil
	m := r.e.models
	switch ps.kind {
	case ObjectPredicate:
		fr := r.geom.FrameRangeOfClip(clip)
		if r.e.meter != nil && !*objectFramesCharged {
			// One object-detector inference per frame covers every type, so
			// a clip's frames are charged once no matter how many object
			// predicates read them.
			r.e.meter.AddObjectFrames(fr.Len())
			*objectFramesCharged = true
		}
		if len(r.e.objTiers) >= 2 {
			cs := m.Objects.(detect.CascadedObjectScorer)
			acc := r.accountBuf(detect.KindObject)
			acc.Reset(len(r.e.objTiers))
			scores := r.scoreBuf(fr.Len())
			err := cs.FrameScoreCascade(r.ctx, r.v, ps.name, fr.Start, entryTier(mode, len(r.e.objTiers)), scores, r.e.cfg.Retry, r.e.meter, acc)
			count = r.settleCascade(ps, acc, mode, scores, fr.Start, m.ObjThreshold, detect.KindObject, err)
			if err != nil {
				return 0, acc.Cost, err
			}
			return count, acc.Cost, nil
		}
		if _, fallible := m.Objects.(detect.FallibleObjectDetector); !fallible {
			// Infallible detectors cannot fail an attempt, so the whole
			// clip scores as one batch into the pooled column — same scores
			// and meter charges as the per-frame path, without its per-unit
			// interface dispatch.
			scores := r.scoreBuf(fr.Len())
			detect.FrameScoreBatch(m.Objects, r.v, ps.name, fr.Start, scores)
			r.recordAttempts(detect.KindObject, len(scores))
			ps.units += len(scores)
			for i, score := range scores {
				if score >= m.ObjThreshold {
					ps.rawInd[fr.Start+i] = true
					count++
				}
			}
			return count, time.Duration(len(scores)) * r.unitCost(ps.kind), nil
		}
		for f := fr.Start; f <= fr.End; f++ {
			score, err := r.objectScore(ps.name, f)
			if err != nil {
				return 0, time.Duration(ps.units-units0) * r.unitCost(ps.kind), err
			}
			ps.units++
			if score >= m.ObjThreshold {
				ps.rawInd[f] = true
				count++
			}
		}
	case ActionPredicate:
		sr := r.geom.ShotRangeOfClip(clip)
		if r.e.meter != nil {
			r.e.meter.AddActionShots(sr.Len())
		}
		if len(r.e.actTiers) >= 2 {
			cs := m.Actions.(detect.CascadedActionScorer)
			acc := r.accountBuf(detect.KindAction)
			acc.Reset(len(r.e.actTiers))
			scores := r.scoreBuf(sr.Len())
			err := cs.ShotScoreCascade(r.ctx, r.v, ps.name, sr.Start, entryTier(mode, len(r.e.actTiers)), scores, r.e.cfg.Retry, r.e.meter, acc)
			count = r.settleCascade(ps, acc, mode, scores, sr.Start, m.ActThreshold, detect.KindAction, err)
			if err != nil {
				return 0, acc.Cost, err
			}
			return count, acc.Cost, nil
		}
		if _, fallible := m.Actions.(detect.FallibleActionRecognizer); !fallible {
			scores := r.scoreBuf(sr.Len())
			detect.ShotScoreBatch(m.Actions, r.v, ps.name, sr.Start, scores)
			r.recordAttempts(detect.KindAction, len(scores))
			ps.units += len(scores)
			for i, score := range scores {
				if score >= m.ActThreshold {
					ps.rawInd[sr.Start+i] = true
					count++
				}
			}
			return count, time.Duration(len(scores)) * r.unitCost(ps.kind), nil
		}
		for s := sr.Start; s <= sr.End; s++ {
			score, err := r.actionScore(ps.name, s)
			if err != nil {
				return 0, time.Duration(ps.units-units0) * r.unitCost(ps.kind), err
			}
			ps.units++
			if score >= m.ActThreshold {
				ps.rawInd[s] = true
				count++
			}
		}
	}
	return count, time.Duration(ps.units-units0) * r.unitCost(ps.kind), nil
}

// settleCascade folds one cascade evaluation into the predicate's state and
// the meter: thresholds the scores into raw indicators (on success),
// accumulates the per-tier accounting, flushes the tier counters, and
// leaves the account on lastAcc for the planner's escalation estimators.
// Returns the positive count.
func (r *Run) settleCascade(ps *predState, acc *detect.CascadeAccount, mode plan.TierMode, scores []float64, start int, threshold float64, kind string, err error) int {
	count := 0
	if err == nil {
		for i, score := range scores {
			if score >= threshold {
				ps.rawInd[start+i] = true
				count++
			}
		}
	}
	total := 0
	for t := range acc.Units {
		total += int(acc.Units[t])
		if t < len(ps.tierUnits) {
			ps.tierUnits[t] += acc.Units[t]
		}
		if t < len(ps.tierEscalated) {
			ps.tierEscalated[t] += acc.Escalated[t]
		}
	}
	ps.units += total
	ps.lastMode = mode
	if r.e.meter != nil {
		r.e.meter.RecordCascade(kind, r.tierInfos(ps.kind), acc)
	}
	r.lastAcc = acc
	return count
}

// objectScore invokes the object detector on one frame, retrying transient
// failures of fallible detectors with exponential backoff. Infallible
// detectors take the direct path. Every attempt and fault is charged to the
// meter.
func (r *Run) objectScore(typ string, frame int) (float64, error) {
	m := r.e.models
	if _, ok := m.Objects.(detect.FallibleObjectDetector); !ok {
		r.recordAttempt(detect.KindObject, 0)
		return m.Objects.FrameScore(r.v, typ, frame), nil
	}
	var s float64
	err := detect.Retry(r.ctx, r.e.cfg.Retry, func(attempt int) error {
		r.recordAttempt(detect.KindObject, attempt)
		var err error
		s, err = m.ObjectScoreAttempt(r.v, typ, frame, attempt)
		r.recordFault(err)
		return err
	})
	return s, err
}

// actionScore invokes the action recogniser on one shot, retrying transient
// failures of fallible recognisers.
func (r *Run) actionScore(act string, shot int) (float64, error) {
	m := r.e.models
	if _, ok := m.Actions.(detect.FallibleActionRecognizer); !ok {
		r.recordAttempt(detect.KindAction, 0)
		return m.Actions.ShotScore(r.v, act, shot), nil
	}
	var s float64
	err := detect.Retry(r.ctx, r.e.cfg.Retry, func(attempt int) error {
		r.recordAttempt(detect.KindAction, attempt)
		var err error
		s, err = m.ActionScoreAttempt(r.v, act, shot, attempt)
		r.recordFault(err)
		return err
	})
	return s, err
}

// recordAttempt charges one invocation attempt to the meter, if any.
func (r *Run) recordAttempt(kind string, attempt int) {
	if m := r.e.meter; m != nil {
		m.RecordAttempt(kind, attempt)
	}
}

// recordAttempts charges n first-attempt invocations in one shot (the
// batch-scoring path).
func (r *Run) recordAttempts(kind string, n int) {
	if m := r.e.meter; m != nil {
		m.RecordAttempts(kind, n)
	}
}

// recordFault charges one failed invocation attempt to the meter. Context
// errors (the run being cancelled mid-retry) are not detector faults.
func (r *Run) recordFault(err error) {
	m := r.e.meter
	if m == nil || err == nil {
		return
	}
	var de *detect.DetectionError
	if errors.As(err, &de) {
		m.RecordFault(de.Kind, de.Transient)
	}
}

// recordFlagged charges one skipped-and-flagged clip to the meter,
// attributed to the detector kind whose retries were exhausted.
func (r *Run) recordFlagged(clipErr error) {
	m := r.e.meter
	if m == nil || clipErr == nil {
		return
	}
	kind := detect.KindObject
	var de *detect.DetectionError
	if errors.As(clipErr, &de) {
		kind = de.Kind
	}
	m.RecordFlagged(kind)
}

// Sequences returns the result sequences over the clips processed so far.
func (r *Run) Sequences() video.IntervalSet { return video.FromIndicator(r.clipInd) }

// Result finalises the run. It may be called at any point; the result covers
// the clips processed so far.
func (r *Run) Result() *Result {
	res := &Result{
		Query:     r.q,
		Mode:      r.e.mode,
		Geometry:  r.geom,
		NumClips:  r.numClips,
		Processed: r.nextClip,
		Sequences: r.Sequences(),
		Flagged:   r.Flagged(),
	}
	// Report objects in query order then the action, regardless of the
	// evaluation order used.
	ordered := make([]*predState, 0, len(r.preds))
	for _, name := range r.q.Objects {
		for _, ps := range r.preds {
			if ps.kind == ObjectPredicate && ps.name == name {
				ordered = append(ordered, ps)
			}
		}
	}
	for _, ps := range r.preds {
		if ps.kind == ActionPredicate {
			ordered = append(ordered, ps)
		}
	}
	for _, ps := range ordered {
		st := PredicateStats{
			Name:           ps.name,
			Kind:           ps.kind,
			Clips:          video.FromIndicator(ps.clipInd),
			RawUnits:       video.FromIndicator(ps.rawInd),
			Background:     r.background(ps),
			Critical:       ps.crit,
			EvaluatedClips: ps.evaluated,
		}
		res.Predicates = append(res.Predicates, st)
	}
	res.Plan = r.planner.Report()
	res.InferenceCost = r.budgetSpent
	res.BudgetSkipped = r.budgetSkipped
	if res.Plan != nil && r.e.cfg.InferenceBudget > 0 {
		res.Plan.Budget = &plan.BudgetReport{
			LimitMS:      float64(r.e.cfg.InferenceBudget) / 1e6,
			SpentMS:      float64(r.budgetSpent) / 1e6,
			SkippedClips: r.budgetSkipped,
			Exhausted:    r.budgetSpent >= r.e.cfg.InferenceBudget,
		}
	}
	r.emitSpans("engine.run", ordered)
	return res
}

// emitSpans surfaces the run's accounting on the context's trace, once: an
// engine-level span covering the whole run plus one span per predicate whose
// duration is the predicate's accumulated detector-evaluation time (the
// paper's per-stage cost decomposition — short-circuit savings and SVAQD
// recomputation are readable directly off the spans).
func (r *Run) emitSpans(root string, preds []*predState) {
	if r.trace == nil || r.spansEmitted {
		return
	}
	r.spansEmitted = true
	eng := r.trace.AddSpanUnder(r.parent, root, r.started, time.Since(r.started))
	eng.SetAttr("mode", r.e.mode.String())
	eng.SetAttr("clips_processed", r.nextClip)
	eng.SetAttr("num_clips", r.numClips)
	eng.SetAttr("flagged_clips", r.flaggedCount)
	if r.e.cfg.InferenceBudget > 0 {
		eng.SetAttr("tier:budget_spent_ms", float64(r.budgetSpent)/1e6)
		eng.SetAttr("tier:budget_skipped_clips", r.budgetSkipped)
	}
	if rep := r.planner.Report(); rep != nil {
		sp := r.trace.AddSpanUnder(eng, "plan.order", r.started, 0)
		sp.SetAttr("adaptive", rep.Adaptive)
		if rep.Tiered {
			sp.SetAttr("tiered", true)
		}
		sp.SetAttr("order", strings.Join(rep.Order, ","))
		sp.SetAttr("replans", rep.Replans)
		sp.SetAttr("skipped_evaluations", rep.SkippedEvaluations)
		sp.SetAttr("saved_cost_ms", rep.SavedCostMS)
	}
	for _, ps := range preds {
		sp := r.trace.AddSpanUnder(eng, "predicate:"+ps.name, r.started, ps.evalTime)
		sp.SetAttr("kind", ps.kind.label())
		sp.SetAttr("evaluated_clips", ps.evaluated)
		sp.SetAttr("units_scored", ps.units)
		sp.SetAttr("k_crit", ps.crit)
		sp.SetAttr("background", r.background(ps))
		if r.e.mode == Dynamic {
			sp.SetAttr("k_crit_recomputes", ps.recomputes)
		}
		if len(ps.tierUnits) > 0 {
			var units, escalated int64
			for t := range ps.tierUnits {
				units += ps.tierUnits[t]
				escalated += ps.tierEscalated[t]
			}
			sp.SetAttr("tier:mode", ps.lastMode.String())
			sp.SetAttr("tier:units", units)
			sp.SetAttr("tier:escalated", escalated)
		}
	}
}

func (r *Run) background(ps *predState) float64 {
	if ps.est != nil {
		return ps.est.P()
	}
	if ps.kind == ObjectPredicate {
		return r.e.cfg.P0Object
	}
	return r.e.cfg.P0Action
}
