package core

import "fmt"

// InterruptedError reports a run stopped by its context — deadline expiry or
// caller cancellation — before the stream was exhausted. The partial result
// returned alongside it covers the clips processed so far.
type InterruptedError struct {
	// Processed and Total count clips.
	Processed, Total int
	// Err is the underlying context error.
	Err error
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("core: query interrupted after %d/%d clips: %v", e.Processed, e.Total, e.Err)
}

// Unwrap exposes the context error to errors.Is.
func (e *InterruptedError) Unwrap() error { return e.Err }

// DegradedError reports a run abandoned because too many clips were flagged:
// detector invocations kept failing after retry exhaustion and the flagged
// fraction exceeded the configured failure budget, so the result would be
// mostly holes.
type DegradedError struct {
	// Flagged counts clips skipped after retry exhaustion; Processed and
	// Total count clips; Budget is the configured tolerance.
	Flagged, Processed, Total int
	Budget                    float64
	// Err is a sample detection error from a flagged clip.
	Err error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("core: degraded beyond failure budget %.2f: %d of %d processed clips flagged (of %d total): %v",
		e.Budget, e.Flagged, e.Processed, e.Total, e.Err)
}

// Unwrap exposes the sample detection error to errors.As.
func (e *DegradedError) Unwrap() error { return e.Err }
