package core

import (
	"context"
	"fmt"
	"testing"

	"svqact/internal/testenv"
	"svqact/internal/video"
)

// snapshotResult renders everything a caller can observe about a result, so
// two runs can be compared for exact equality.
func snapshotResult(res *Result) string {
	flat := *res
	flat.Plan = nil // compare the report by value, not by pointer identity
	return fmt.Sprintf("%+v|plan=%+v", flat, res.Plan)
}

// TestPooledRunResultsUnaliased is the cross-run aliasing regression test
// for the scratch pool: a caller that mutates everything reachable from a
// returned Result — including the interval slices Intervals() exposes by
// reference — must not be able to change what the next run returns.
func TestPooledRunResultsUnaliased(t *testing.T) {
	v := testVideo(t, 7, 4000)
	eng, err := NewSVAQD(noisyModels(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Objects: []string{"human", "car"}, Action: "jumping"}

	first, err := eng.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotResult(first)

	// Clobber every mutable surface of the first result.
	junk := video.Interval{Start: -99, End: -98}
	for i := range first.Sequences.Intervals() {
		first.Sequences.Intervals()[i] = junk
	}
	for i := range first.Flagged.Intervals() {
		first.Flagged.Intervals()[i] = junk
	}
	for i := range first.Predicates {
		ps := &first.Predicates[i]
		ps.Name = "clobbered"
		ps.Background = -1
		ps.Critical = -1
		for j := range ps.Clips.Intervals() {
			ps.Clips.Intervals()[j] = junk
		}
		for j := range ps.RawUnits.Intervals() {
			ps.RawUnits.Intervals()[j] = junk
		}
	}
	// (Result.Query deliberately shares the caller's own Objects slice — the
	// query is caller-owned input, not pooled state — so it is not mutated
	// here.)

	second, err := eng.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotResult(second); got != want {
		t.Errorf("second run changed after mutating the first run's result:\n first: %s\nsecond: %s", want, got)
	}
}

// TestRunAllocsSteadyState bounds the per-video allocation count of a warm
// engine — the property the scratch pool exists to provide. The bound has
// slack for noise but fails loudly if the hot path regresses to per-clip or
// per-frame allocation.
func TestRunAllocsSteadyState(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	v := testVideo(t, 11, 4000)
	eng, err := NewSVAQD(noisyModels(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Objects: []string{"human", "car"}, Action: "jumping"}
	ctx := context.Background()
	// Warm the pool, the critical-value grid and the planner.
	for i := 0; i < 3; i++ {
		if _, err := eng.Run(ctx, v, q); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(ctx, v, q); err != nil {
			t.Fatal(err)
		}
	})
	// A 4000-frame video spans ~133 clips; the steady-state run should
	// allocate far below one heap object per clip (result materialisation,
	// spans and the plan report are the remaining allocators).
	const maxAllocs = 120
	if allocs > maxAllocs {
		t.Errorf("steady-state Run allocates %.0f objects/video, want <= %d", allocs, maxAllocs)
	}
}
