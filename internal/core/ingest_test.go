package core

import (
	"context"
	"testing"

	"svqact/internal/metrics"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func TestEvaluateTypesMatchesQueryRun(t *testing.T) {
	// Per-type evaluation (the ingestion path) must produce exactly the
	// per-predicate positive clips of an equivalent fully evaluated query
	// run: both evaluate every predicate on every clip and feed estimators
	// identically.
	v := testVideo(t, 21, 40_000)
	models := noisyModels(8)
	cfg := DefaultConfig()
	cfg.NoShortCircuit = true

	eng, err := NewSVAQD(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	objSeqs, actSeqs, err := eng.EvaluateTypes(context.Background(), v, []string{"car", "human"}, []string{"jumping"})
	if err != nil {
		t.Fatal(err)
	}

	eng2, err := NewSVAQD(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Run(context.Background(), v, Query{Objects: []string{"car", "human"}, Action: "jumping"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"car", "human"} {
		if objSeqs[name].String() != res.Predicate(name).Clips.String() {
			t.Errorf("%s: EvaluateTypes %v != query run %v", name, objSeqs[name], res.Predicate(name).Clips)
		}
	}
	if actSeqs["jumping"].String() != res.Predicate("jumping").Clips.String() {
		t.Errorf("action: EvaluateTypes %v != query run %v", actSeqs["jumping"], res.Predicate("jumping").Clips)
	}
}

func TestEvaluateTypesValidation(t *testing.T) {
	v := testVideo(t, 22, 10_000)
	eng, _ := NewSVAQD(noisyModels(1), DefaultConfig())
	if _, _, err := eng.EvaluateTypes(context.Background(), v, []string{"car", "car"}, nil); err == nil {
		t.Error("duplicate object types should be rejected")
	}
	if _, _, err := eng.EvaluateTypes(context.Background(), v, nil, []string{""}); err == nil {
		t.Error("empty action type should be rejected")
	}
	objSeqs, actSeqs, err := eng.EvaluateTypes(context.Background(), v, nil, nil)
	if err != nil {
		t.Fatalf("empty type lists should be fine: %v", err)
	}
	if len(objSeqs) != 0 || len(actSeqs) != 0 {
		t.Error("no types should give no sequences")
	}
}

func TestEvaluateTypesSameNameAcrossKinds(t *testing.T) {
	// An object type and an action type may share a name; their indicators
	// must stay separate.
	v, err := synth.Generate(synth.Script{
		ID: "same-name", Frames: 20_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 31,
		Actions: []synth.ActionSpec{{Name: "surfing", MeanGapShots: 100, MeanDurShots: 25}},
		Objects: []synth.ObjectSpec{{Name: "surfing", MeanGapFrames: 2000, MeanDurFrames: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewSVAQD(noisyModels(2), DefaultConfig())
	objSeqs, actSeqs, err := eng.EvaluateTypes(context.Background(), v, []string{"surfing"}, []string{"surfing"})
	if err != nil {
		t.Fatal(err)
	}
	if objSeqs["surfing"].Empty() && actSeqs["surfing"].Empty() {
		t.Skip("nothing detected in this realisation")
	}
	if objSeqs["surfing"].String() == actSeqs["surfing"].String() {
		t.Error("object and action indicators with the same name should differ")
	}
}

func TestSVAQDSurvivesStepDrift(t *testing.T) {
	// A sudden 8x jump of an object's background rate mid-stream: SVAQD must
	// remain usable on both sides of the jump.
	v, err := synth.Generate(synth.Script{
		ID: "step-drift", Frames: 120_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 33,
		Actions: []synth.ActionSpec{{Name: "running", MeanGapShots: 150, MeanDurShots: 25}},
		Objects: []synth.ObjectSpec{
			{Name: "person", MeanDurFrames: 280, CorrelatedWith: "running", CorrelationProb: 0.95},
			{Name: "car", MeanGapFrames: 2500, MeanDurFrames: 120, Rate: synth.StepRate(60_000, 8)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Objects: []string{"person", "car"}, Action: "running"}
	spec := synth.QuerySpec{Action: q.Action, Objects: q.Objects}
	truth := v.TruthClips(spec, 0)
	eng, err := NewSVAQD(noisyModels(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), v, q)
	if err != nil {
		t.Fatal(err)
	}
	half := video.Interval{Start: 1200, End: 2399} // clips after the jump
	after := metrics.UnitCounts(res.Sequences.Clamp(half), truth.Clamp(half))
	if truth.Clamp(half).TotalLen() >= 3 && after.F1() < 0.4 {
		t.Errorf("post-drift clip F1 = %.2f (%+v)", after.F1(), after)
	}
	overall := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
	if overall.F1() < 0.5 {
		t.Errorf("overall F1 under drift = %.2f (%+v)", overall.F1(), overall)
	}
}
