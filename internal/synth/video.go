package synth

import (
	"math"
	"sort"

	"svqact/internal/video"
)

// Appearance is one tracked instance of an object type: a contiguous frame
// interval during which the instance is visible, carrying the tracking ID
// the simulated tracker reports for it.
type Appearance struct {
	TrackID int
	Frames  video.Interval
}

// Video is a generated video: its metadata plus the scripted ground truth.
type Video struct {
	Meta video.Meta

	objects  map[string][]Appearance      // per type, sorted by start frame
	presence map[string]video.IntervalSet // per type, union of appearances (frames)
	actions  map[string]video.IntervalSet // per action, occurrence shots
}

// ID returns the video identifier.
func (v *Video) ID() string { return v.Meta.ID }

// NumFrames returns the number of frames.
func (v *Video) NumFrames() int { return v.Meta.NumFrames }

// Geometry returns the shot/clip decomposition.
func (v *Video) Geometry() video.Geometry { return v.Meta.Geometry }

// ObjectTypes lists the object types scripted in this video, sorted.
func (v *Video) ObjectTypes() []string {
	names := make([]string, 0, len(v.objects))
	for n := range v.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ActionTypes lists the scripted action types, sorted.
func (v *Video) ActionTypes() []string {
	names := make([]string, 0, len(v.actions))
	for n := range v.actions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ObjectAppearances returns the tracked instances of an object type, sorted
// by start frame. The caller must not mutate the slice.
func (v *Video) ObjectAppearances(typ string) []Appearance { return v.objects[typ] }

// ObjectPresence returns the frame intervals during which at least one
// instance of the type is visible.
func (v *Video) ObjectPresence(typ string) video.IntervalSet { return v.presence[typ] }

// ActionPresence returns the shot intervals during which the action occurs.
func (v *Video) ActionPresence(act string) video.IntervalSet { return v.actions[act] }

// ObjectInstancesAt returns the tracking IDs of the type's instances visible
// on the frame.
func (v *Video) ObjectInstancesAt(typ string, frame int) []int {
	return v.AppendObjectInstancesAt(typ, frame, nil)
}

// AppendObjectInstancesAt implements detect.InstanceAppender: the IDs are
// appended to the caller's buffer, so per-frame scoring loops reuse one
// allocation across a whole video.
func (v *Video) AppendObjectInstancesAt(typ string, frame int, ids []int) []int {
	apps := v.objects[typ]
	// Appearances are sorted by start; all candidates start at or before the
	// frame. Durations vary, so scan the prefix — appearance counts per type
	// are small (tens to hundreds) and queries are typically sequential.
	i := sort.Search(len(apps), func(i int) bool { return apps[i].Frames.Start > frame })
	for j := 0; j < i; j++ {
		if apps[j].Frames.Contains(frame) {
			ids = append(ids, apps[j].TrackID)
		}
	}
	return ids
}

// ObjectPresentAt reports whether any instance of the type is visible on the
// frame.
func (v *Video) ObjectPresentAt(typ string, frame int) bool {
	return v.presence[typ].Contains(frame)
}

// ActionAt reports whether the action occurs during the shot.
func (v *Video) ActionAt(act string, shot int) bool {
	return v.actions[act].Contains(shot)
}

// TruthFrames returns the ground-truth frame set for a query: the
// intersection of all the query objects' presence intervals with the
// action's occurrence intervals (converted from shots to frames) — exactly
// the paper's annotation rule ("the intersection of the temporal intervals
// of all the query-specified objects and the action").
func (v *Video) TruthFrames(q QuerySpec) video.IntervalSet {
	g := v.Meta.Geometry
	actShots := v.actions[q.Action]
	actFrames := make([]video.Interval, 0, actShots.NumIntervals())
	for _, iv := range actShots.Intervals() {
		actFrames = append(actFrames, video.Interval{
			Start: g.FrameRangeOfShot(iv.Start).Start,
			End:   g.FrameRangeOfShot(iv.End).End,
		})
	}
	acc := video.NewIntervalSet(actFrames...)
	for _, o := range q.Objects {
		acc = acc.IntersectSet(v.presence[o])
	}
	return acc.Clamp(video.Interval{Start: 0, End: v.Meta.NumFrames - 1})
}

// TruthClips maps the ground-truth frame set to clips: a clip belongs to the
// ground truth when the truth frames cover at least minCover of it, where
// minCover = 0 means any non-empty coverage. The engine decides "is the
// query present in this clip", so the natural clip-level ground truth is
// any-coverage (minCover 0); stricter thresholds are available for
// sensitivity studies.
func (v *Video) TruthClips(q QuerySpec, minCover float64) video.IntervalSet {
	g := v.Meta.Geometry
	numClips := v.Meta.NumClips()
	truth := v.TruthFrames(q)
	ind := make([]bool, numClips)
	for c := 0; c < numClips; c++ {
		r := g.FrameRangeOfClip(c)
		covered := truth.Clamp(r).TotalLen()
		need := 1
		if minCover > 0 {
			need = int(math.Ceil(minCover * float64(r.Len())))
		}
		ind[c] = covered >= need
	}
	return video.FromIndicator(ind)
}
