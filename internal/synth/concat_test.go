package synth

import (
	"testing"

	"svqact/internal/video"
)

func concatFixture(t *testing.T) (*Concat, []*Video) {
	t.Helper()
	mk := func(id string, frames int, seed int64) *Video {
		return MustGenerate(Script{
			ID: id, Frames: frames, FPS: 10, Geometry: video.DefaultGeometry, Seed: seed,
			Actions: []ActionSpec{{Name: "jumping", MeanGapShots: 40, MeanDurShots: 15}},
			Objects: []ObjectSpec{
				{Name: "car", MeanGapFrames: 1000, MeanDurFrames: 200},
			},
		})
	}
	vids := []*Video{mk("a", 5017, 1), mk("b", 3000, 2), mk("c", 4444, 3)}
	c, err := NewConcat("all", vids)
	if err != nil {
		t.Fatal(err)
	}
	return c, vids
}

func TestConcatGeometryAndLength(t *testing.T) {
	c, vids := concatFixture(t)
	want := 0
	for _, v := range vids {
		want += v.Meta.NumClips() * 50
	}
	if c.NumFrames() != want {
		t.Errorf("NumFrames = %d, want %d (whole clips only)", c.NumFrames(), want)
	}
	if c.ID() != "all" || c.Geometry() != video.DefaultGeometry {
		t.Error("metadata wrong")
	}
	if len(c.Components()) != 3 {
		t.Error("components lost")
	}
}

func TestConcatDelegatesTruth(t *testing.T) {
	c, vids := concatFixture(t)
	fpc := 50
	// Frame in the middle of the second video.
	local := 777
	global := vids[0].Meta.NumClips()*fpc + local
	if c.ObjectPresentAt("car", global) != vids[1].ObjectPresentAt("car", local) {
		t.Error("presence mapping wrong")
	}
	wantShot := video.DefaultGeometry.ShotOfFrame(local)
	globalShot := video.DefaultGeometry.ShotOfFrame(global)
	if c.ActionAt("jumping", globalShot) != vids[1].ActionAt("jumping", wantShot) {
		t.Error("action mapping wrong")
	}
	ids := c.ObjectInstancesAt("car", global)
	local2 := vids[1].ObjectInstancesAt("car", local)
	if len(ids) != len(local2) {
		t.Fatalf("instance count mismatch")
	}
	for i := range ids {
		if ids[i] != local2[i]+2*trackStride {
			t.Errorf("track id %d not namespaced: %d vs %d", i, ids[i], local2[i])
		}
	}
}

func TestConcatTruthSets(t *testing.T) {
	c, vids := concatFixture(t)
	q := QuerySpec{Action: "jumping", Objects: []string{"car"}}
	frames := c.TruthFrames(q)
	clips := c.TruthClips(q, 0)
	// Spot-check consistency between global truth and per-video truth.
	for f := 0; f < c.NumFrames(); f += 97 {
		g := video.DefaultGeometry
		want := c.ObjectPresentAt("car", f) && c.ActionAt("jumping", g.ShotOfFrame(f))
		if frames.Contains(f) != want {
			t.Fatalf("frame %d truth mismatch", f)
		}
	}
	// Clip truth must be within clip bounds.
	if sp, ok := clips.Span(); ok {
		total := 0
		for _, v := range vids {
			total += v.Meta.NumClips()
		}
		if sp.End >= total {
			t.Errorf("truth clip %d beyond %d", sp.End, total)
		}
	}
}

func TestConcatUnionTypes(t *testing.T) {
	a := MustGenerate(Script{
		ID: "x", Frames: 3000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 1,
		Actions: []ActionSpec{{Name: "act1", MeanGapShots: 30, MeanDurShots: 10}},
		Objects: []ObjectSpec{{Name: "o1", MeanGapFrames: 800, MeanDurFrames: 100}},
	})
	b := MustGenerate(Script{
		ID: "y", Frames: 3000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 2,
		Actions: []ActionSpec{{Name: "act2", MeanGapShots: 30, MeanDurShots: 10}},
		Objects: []ObjectSpec{{Name: "o2", MeanGapFrames: 800, MeanDurFrames: 100}},
	})
	c, err := NewConcat("u", []*Video{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ObjectTypes(); len(got) != 2 || got[0] != "o1" || got[1] != "o2" {
		t.Errorf("ObjectTypes = %v", got)
	}
	if got := c.ActionTypes(); len(got) != 2 {
		t.Errorf("ActionTypes = %v", got)
	}
	// Absent types are simply never present.
	if c.ObjectPresentAt("o2", 10) {
		t.Error("o2 cannot be present inside video x")
	}
}

func TestConcatValidation(t *testing.T) {
	if _, err := NewConcat("none", nil); err == nil {
		t.Error("empty concat should fail")
	}
	a := MustGenerate(Script{
		ID: "x", Frames: 3000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 1,
		Actions: []ActionSpec{{Name: "a", MeanGapShots: 30, MeanDurShots: 10}},
		Objects: []ObjectSpec{{Name: "o", MeanGapFrames: 800, MeanDurFrames: 100}},
	})
	b := MustGenerate(Script{
		ID: "y", Frames: 3000, FPS: 10, Geometry: video.Geometry{FramesPerShot: 5, ShotsPerClip: 4}, Seed: 2,
		Actions: []ActionSpec{{Name: "a", MeanGapShots: 30, MeanDurShots: 10}},
		Objects: []ObjectSpec{{Name: "o", MeanGapFrames: 800, MeanDurFrames: 100}},
	})
	if _, err := NewConcat("mixed", []*Video{a, b}); err == nil {
		t.Error("mixed geometries should fail")
	}
}
