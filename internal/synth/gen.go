package synth

import (
	"fmt"
	"sort"

	"svqact/internal/video"
)

// Generate materialises a script into a Video with scripted ground truth.
// Generation is deterministic: the same script (including Seed) always
// produces the same video.
//
// Occurrences are drawn from per-unit Bernoulli start processes — at each
// occurrence unit not already covered, an occurrence starts with probability
// rate(unit)/meanGap and lasts 1 + Exp(meanDur-1) units — which realises a
// (possibly non-homogeneous) alternating renewal process one unit at a time.
func Generate(s Script) (*Video, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	v := &Video{
		Meta: video.Meta{
			ID:        s.ID,
			NumFrames: s.Frames,
			FPS:       s.FPS,
			Geometry:  s.Geometry,
		},
		objects:  make(map[string][]Appearance, len(s.Objects)),
		presence: make(map[string]video.IntervalSet, len(s.Objects)),
		actions:  make(map[string]video.IntervalSet, len(s.Actions)),
	}
	numShots := s.Geometry.NumShots(s.Frames)

	for _, a := range s.Actions {
		r := newRNG(uint64(s.Seed), hashKey(s.ID), hashKey("action"), hashKey(a.Name))
		occ := renewal(r, numShots, a.MeanGapShots, a.MeanDurShots, a.Rate)
		v.actions[a.Name] = video.NewIntervalSet(occ...)
	}

	nextTrack := 1
	for _, o := range s.Objects {
		r := newRNG(uint64(s.Seed), hashKey(s.ID), hashKey("object"), hashKey(o.Name))
		var apps []Appearance

		if o.MeanGapFrames > 0 {
			for _, iv := range renewal(r, s.Frames, o.MeanGapFrames, o.MeanDurFrames, o.Rate) {
				apps = append(apps, Appearance{TrackID: nextTrack, Frames: iv})
				nextTrack++
			}
		}

		if o.CorrelatedWith != "" {
			g := s.Geometry
			for _, shots := range v.actions[o.CorrelatedWith].Intervals() {
				if r.float64() >= o.CorrelationProb {
					continue
				}
				frames := video.Interval{
					Start: g.FrameRangeOfShot(shots.Start).Start,
					End:   g.FrameRangeOfShot(shots.End).End,
				}
				// The accompanying object typically enters a little before
				// and lingers a little after the action.
				lead := int(r.exp(float64(g.FramesPerShot)))
				tail := int(r.exp(float64(g.FramesPerShot)))
				frames.Start = max(0, frames.Start-lead)
				frames.End = min(s.Frames-1, frames.End+tail)
				if frames.Len() <= 0 {
					continue
				}
				apps = append(apps, Appearance{TrackID: nextTrack, Frames: frames})
				nextTrack++
			}
		}

		sort.Slice(apps, func(i, j int) bool { return apps[i].Frames.Start < apps[j].Frames.Start })
		ivs := make([]video.Interval, len(apps))
		for i, a := range apps {
			ivs[i] = a.Frames
		}
		v.objects[o.Name] = apps
		v.presence[o.Name] = video.NewIntervalSet(ivs...)
	}
	return v, nil
}

// MustGenerate is Generate for statically known-good scripts (benchmark
// definitions); it panics on error.
func MustGenerate(s Script) *Video {
	v, err := Generate(s)
	if err != nil {
		panic(fmt.Sprintf("synth: %v", err))
	}
	return v
}

// renewal draws occurrence intervals over [0, units) with per-unit start
// probability rate(unit)/meanGap outside occurrences and duration
// 1 + Exp(meanDur-1).
func renewal(r *rng, units int, meanGap, meanDur float64, rate RateFn) []video.Interval {
	var out []video.Interval
	base := 1 / meanGap
	for u := 0; u < units; u++ {
		p := base
		if rate != nil {
			p *= rate(u)
		}
		if p < 0 {
			p = 0
		}
		if r.float64() >= p {
			continue
		}
		dur := 1
		if meanDur > 1 {
			dur = 1 + int(r.exp(meanDur-1))
		}
		end := min(units-1, u+dur-1)
		out = append(out, video.Interval{Start: u, End: end})
		u = end // skip past the occurrence before sampling the next start
	}
	return out
}
