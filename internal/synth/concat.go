package synth

import (
	"fmt"
	"sort"

	"svqact/internal/video"
)

// Concat presents a collection of videos as one continuous stream, the way
// the benchmark feeds a query's video set to the online engine. Each
// component video is trimmed to whole clips so clip and shot boundaries stay
// aligned across the seam. Tracking identities are namespaced per component
// so they remain unique in the concatenation.
type Concat struct {
	id       string
	geometry video.Geometry
	videos   []*Video
	// frameOff[i] is the first global frame of component i; frames is the
	// total length.
	frameOff []int
	frames   int
}

// trackStride separates the tracking-ID namespaces of concatenated videos.
const trackStride = 10_000_000

// NewConcat builds the concatenation. All component videos must share the
// same geometry.
func NewConcat(id string, videos []*Video) (*Concat, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("synth: concat of zero videos")
	}
	g := videos[0].Meta.Geometry
	c := &Concat{id: id, geometry: g, videos: videos}
	off := 0
	for _, v := range videos {
		if v.Meta.Geometry != g {
			return nil, fmt.Errorf("synth: concat mixes geometries (%v vs %v)", v.Meta.Geometry, g)
		}
		c.frameOff = append(c.frameOff, off)
		off += v.Meta.NumClips() * g.FramesPerClip()
	}
	c.frames = off
	return c, nil
}

// ID implements detect.TruthVideo.
func (c *Concat) ID() string { return c.id }

// NumFrames implements detect.TruthVideo.
func (c *Concat) NumFrames() int { return c.frames }

// Geometry implements detect.TruthVideo.
func (c *Concat) Geometry() video.Geometry { return c.geometry }

// locate maps a global frame to (component index, local frame).
func (c *Concat) locate(frame int) (int, int) {
	i := sort.Search(len(c.frameOff), func(i int) bool { return c.frameOff[i] > frame }) - 1
	return i, frame - c.frameOff[i]
}

// ObjectTypes implements detect.TruthVideo: the union over components.
func (c *Concat) ObjectTypes() []string {
	seen := map[string]bool{}
	for _, v := range c.videos {
		for _, t := range v.ObjectTypes() {
			seen[t] = true
		}
	}
	return sortedNames(seen)
}

// ActionTypes implements detect.TruthVideo.
func (c *Concat) ActionTypes() []string {
	seen := map[string]bool{}
	for _, v := range c.videos {
		for _, t := range v.ActionTypes() {
			seen[t] = true
		}
	}
	return sortedNames(seen)
}

func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ObjectInstancesAt implements detect.TruthVideo.
func (c *Concat) ObjectInstancesAt(typ string, frame int) []int {
	ids := c.AppendObjectInstancesAt(typ, frame, nil)
	if len(ids) == 0 {
		return nil
	}
	return ids
}

// AppendObjectInstancesAt implements detect.InstanceAppender, remapping the
// segment-local track IDs into the concatenation's ID space in place.
func (c *Concat) AppendObjectInstancesAt(typ string, frame int, ids []int) []int {
	i, local := c.locate(frame)
	n := len(ids)
	ids = c.videos[i].AppendObjectInstancesAt(typ, local, ids)
	for j := n; j < len(ids); j++ {
		ids[j] += (i + 1) * trackStride
	}
	return ids
}

// ObjectPresentAt implements detect.TruthVideo.
func (c *Concat) ObjectPresentAt(typ string, frame int) bool {
	i, local := c.locate(frame)
	return c.videos[i].ObjectPresentAt(typ, local)
}

// ActionAt implements detect.TruthVideo.
func (c *Concat) ActionAt(act string, shot int) bool {
	frame := shot * c.geometry.FramesPerShot
	i, local := c.locate(frame)
	return c.videos[i].ActionAt(act, c.geometry.ShotOfFrame(local))
}

// TruthFrames returns the concatenated ground-truth frame set for a query.
func (c *Concat) TruthFrames(q QuerySpec) video.IntervalSet {
	var ivs []video.Interval
	for i, v := range c.videos {
		limit := v.Meta.NumClips()*c.geometry.FramesPerClip() - 1
		for _, iv := range v.TruthFrames(q).Clamp(video.Interval{Start: 0, End: limit}).Intervals() {
			ivs = append(ivs, video.Interval{Start: iv.Start + c.frameOff[i], End: iv.End + c.frameOff[i]})
		}
	}
	return video.NewIntervalSet(ivs...)
}

// TruthClips returns the concatenated clip-level ground truth (minCover
// semantics as in Video.TruthClips).
func (c *Concat) TruthClips(q QuerySpec, minCover float64) video.IntervalSet {
	fpc := c.geometry.FramesPerClip()
	var ivs []video.Interval
	for i, v := range c.videos {
		clipOff := c.frameOff[i] / fpc
		for _, iv := range v.TruthClips(q, minCover).Intervals() {
			if iv.End >= v.Meta.NumClips() {
				continue // trimmed partial clip
			}
			ivs = append(ivs, video.Interval{Start: iv.Start + clipOff, End: iv.End + clipOff})
		}
	}
	return video.NewIntervalSet(ivs...)
}

// ObjectFrames returns the concatenated frame intervals during which the
// object type is present.
func (c *Concat) ObjectFrames(typ string) video.IntervalSet {
	var ivs []video.Interval
	for i, v := range c.videos {
		limit := v.Meta.NumClips()*c.geometry.FramesPerClip() - 1
		for _, iv := range v.ObjectPresence(typ).Clamp(video.Interval{Start: 0, End: limit}).Intervals() {
			ivs = append(ivs, video.Interval{Start: iv.Start + c.frameOff[i], End: iv.End + c.frameOff[i]})
		}
	}
	return video.NewIntervalSet(ivs...)
}

// ActionShots returns the concatenated shot intervals during which the
// action occurs.
func (c *Concat) ActionShots(act string) video.IntervalSet {
	fps := c.geometry.FramesPerShot
	var ivs []video.Interval
	for i, v := range c.videos {
		limit := v.Meta.NumClips()*c.geometry.ShotsPerClip - 1
		shotOff := c.frameOff[i] / fps
		for _, iv := range v.ActionPresence(act).Clamp(video.Interval{Start: 0, End: limit}).Intervals() {
			ivs = append(ivs, video.Interval{Start: iv.Start + shotOff, End: iv.End + shotOff})
		}
	}
	return video.NewIntervalSet(ivs...)
}

// Components returns the underlying videos.
func (c *Concat) Components() []*Video { return c.videos }
