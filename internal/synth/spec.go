// Package synth generates synthetic videos with scripted ground truth: per
// video, the frame intervals during which each object type is present (as
// individually tracked instances) and the shot intervals during which each
// action occurs.
//
// The engine under test never inspects pixels — it consumes per-frame and
// per-shot detector outputs — so a world that produces exactly those event
// streams, with controllable densities, durations, predicate correlation and
// non-stationary background rates, exercises the same code paths as the
// paper's real videos (see DESIGN.md, substitution table). The package also
// defines the two benchmark datasets mirroring the paper's evaluation: the
// YouTube/ActivityNet query workload of Table 1 and the Movies workload of
// Table 2.
package synth

import (
	"fmt"

	"svqact/internal/video"
)

// RateFn modulates an appearance rate over time; it receives the frame (or
// shot) index and returns a non-negative multiplier. A nil RateFn means a
// constant rate.
type RateFn func(unit int) float64

// ConstantRate returns a RateFn with a fixed multiplier.
func ConstantRate(m float64) RateFn { return func(int) float64 { return m } }

// PeakRate models the paper's surveillance-camera example: the base rate is
// multiplied by peak during recurring windows of peakLen units every period
// units — traffic peaks at certain times of day.
func PeakRate(period, peakLen int, peak float64) RateFn {
	return func(unit int) float64 {
		if period <= 0 {
			return 1
		}
		if unit%period < peakLen {
			return peak
		}
		return 1
	}
}

// StepRate jumps the multiplier from 1 to level at the given unit — a sudden
// regime change for adaptivity experiments.
func StepRate(at int, level float64) RateFn {
	return func(unit int) float64 {
		if unit >= at {
			return level
		}
		return 1
	}
}

// ActionSpec scripts one action type: an alternating renewal process over
// shots with exponential gaps and durations.
type ActionSpec struct {
	Name string
	// MeanGapShots is the expected number of shots between occurrences.
	MeanGapShots float64
	// MeanDurShots is the expected occurrence length in shots.
	MeanDurShots float64
	// Rate optionally modulates the start rate over time.
	Rate RateFn
}

// ObjectSpec scripts one object type. Appearances come from two sources: a
// background renewal process (like actions, over frames), and — when
// CorrelatedWith names an action — appearances tied to that action's
// occurrences, which is how the benchmark reproduces the paper's correlated
// predicates (e.g. a faucet visible while dishes are washed).
type ObjectSpec struct {
	Name string
	// MeanGapFrames is the expected gap between background appearances. Use
	// a very large value (or 0 with CorrelatedWith set) for objects that only
	// show up alongside their action.
	MeanGapFrames float64
	// MeanDurFrames is the expected appearance duration in frames.
	MeanDurFrames float64
	// CorrelatedWith optionally names an action in the same script.
	CorrelatedWith string
	// CorrelationProb is the probability that an occurrence of the
	// correlated action is accompanied by this object.
	CorrelationProb float64
	// Rate optionally modulates the background appearance rate.
	Rate RateFn
}

// Script is the full generation recipe for one video.
type Script struct {
	ID       string
	Frames   int
	FPS      float64
	Geometry video.Geometry
	Actions  []ActionSpec
	Objects  []ObjectSpec
	Seed     int64
}

// Validate checks the script for inconsistencies before generation.
func (s Script) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("synth: script needs an ID")
	}
	if s.Frames <= 0 {
		return fmt.Errorf("synth: script %q: Frames = %d must be positive", s.ID, s.Frames)
	}
	if s.FPS <= 0 {
		return fmt.Errorf("synth: script %q: FPS = %v must be positive", s.ID, s.FPS)
	}
	if err := s.Geometry.Validate(); err != nil {
		return fmt.Errorf("synth: script %q: %w", s.ID, err)
	}
	actions := map[string]bool{}
	for _, a := range s.Actions {
		if a.Name == "" {
			return fmt.Errorf("synth: script %q: action with empty name", s.ID)
		}
		if actions[a.Name] {
			return fmt.Errorf("synth: script %q: duplicate action %q", s.ID, a.Name)
		}
		actions[a.Name] = true
		if a.MeanGapShots <= 0 || a.MeanDurShots <= 0 {
			return fmt.Errorf("synth: script %q: action %q needs positive gap and duration", s.ID, a.Name)
		}
	}
	objects := map[string]bool{}
	for _, o := range s.Objects {
		if o.Name == "" {
			return fmt.Errorf("synth: script %q: object with empty name", s.ID)
		}
		if objects[o.Name] {
			return fmt.Errorf("synth: script %q: duplicate object %q", s.ID, o.Name)
		}
		objects[o.Name] = true
		if o.MeanDurFrames <= 0 {
			return fmt.Errorf("synth: script %q: object %q needs a positive duration", s.ID, o.Name)
		}
		if o.MeanGapFrames < 0 {
			return fmt.Errorf("synth: script %q: object %q has negative gap", s.ID, o.Name)
		}
		if o.MeanGapFrames == 0 && o.CorrelatedWith == "" {
			return fmt.Errorf("synth: script %q: object %q has neither background rate nor correlation", s.ID, o.Name)
		}
		if o.CorrelatedWith != "" {
			if !actions[o.CorrelatedWith] {
				return fmt.Errorf("synth: script %q: object %q correlates with unknown action %q", s.ID, o.Name, o.CorrelatedWith)
			}
			if o.CorrelationProb < 0 || o.CorrelationProb > 1 {
				return fmt.Errorf("synth: script %q: object %q correlation probability %v out of [0,1]", s.ID, o.Name, o.CorrelationProb)
			}
		}
	}
	return nil
}

// QuerySpec names the predicates of one benchmark query: one action and any
// number of object types (the paper's q: {o_1..o_I; a}).
type QuerySpec struct {
	Name    string
	Action  string
	Objects []string
}

// Dataset is a generated benchmark: a collection of videos plus the queries
// the paper evaluates on them.
type Dataset struct {
	Name    string
	Videos  []*Video
	Queries []QuerySpec
}

// TotalFrames sums the frames across all videos.
func (d *Dataset) TotalFrames() int {
	t := 0
	for _, v := range d.Videos {
		t += v.Meta.NumFrames
	}
	return t
}

// Video returns the video with the given ID, or nil.
func (d *Dataset) Video(id string) *Video {
	for _, v := range d.Videos {
		if v.Meta.ID == id {
			return v
		}
	}
	return nil
}

// Query returns the query with the given name, or nil.
func (d *Dataset) Query(name string) *QuerySpec {
	for i := range d.Queries {
		if d.Queries[i].Name == name {
			return &d.Queries[i]
		}
	}
	return nil
}
