package synth

import (
	"math"
	"testing"

	"svqact/internal/video"
)

func testScript(seed int64) Script {
	return Script{
		ID:       "test-video",
		Frames:   6000,
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     seed,
		Actions: []ActionSpec{
			{Name: "jumping", MeanGapShots: 30, MeanDurShots: 8},
		},
		Objects: []ObjectSpec{
			{Name: "car", MeanGapFrames: 1500, MeanDurFrames: 200},
			{Name: "human", MeanDurFrames: 150, CorrelatedWith: "jumping", CorrelationProb: 0.9},
		},
	}
}

func TestScriptValidate(t *testing.T) {
	base := testScript(1)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	mutate := func(f func(*Script)) Script {
		s := testScript(1)
		s.Actions = append([]ActionSpec(nil), s.Actions...)
		s.Objects = append([]ObjectSpec(nil), s.Objects...)
		f(&s)
		return s
	}
	bad := []struct {
		name string
		s    Script
	}{
		{"empty id", mutate(func(s *Script) { s.ID = "" })},
		{"zero frames", mutate(func(s *Script) { s.Frames = 0 })},
		{"zero fps", mutate(func(s *Script) { s.FPS = 0 })},
		{"bad geometry", mutate(func(s *Script) { s.Geometry.FramesPerShot = 0 })},
		{"unnamed action", mutate(func(s *Script) { s.Actions[0].Name = "" })},
		{"dup action", mutate(func(s *Script) { s.Actions = append(s.Actions, s.Actions[0]) })},
		{"bad action gap", mutate(func(s *Script) { s.Actions[0].MeanGapShots = 0 })},
		{"unnamed object", mutate(func(s *Script) { s.Objects[0].Name = "" })},
		{"dup object", mutate(func(s *Script) { s.Objects = append(s.Objects, s.Objects[0]) })},
		{"bad duration", mutate(func(s *Script) { s.Objects[0].MeanDurFrames = 0 })},
		{"negative gap", mutate(func(s *Script) { s.Objects[0].MeanGapFrames = -1 })},
		{"no source", mutate(func(s *Script) { s.Objects[0].MeanGapFrames = 0 })},
		{"unknown correlation", mutate(func(s *Script) { s.Objects[1].CorrelatedWith = "nope" })},
		{"bad correlation prob", mutate(func(s *Script) { s.Objects[1].CorrelationProb = 1.5 })},
	}
	for _, c := range bad {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(testScript(7))
	b := MustGenerate(testScript(7))
	if a.ObjectPresence("car").String() != b.ObjectPresence("car").String() {
		t.Error("same seed produced different car presence")
	}
	if a.ActionPresence("jumping").String() != b.ActionPresence("jumping").String() {
		t.Error("same seed produced different action occurrences")
	}
	c := MustGenerate(testScript(8))
	if a.ObjectPresence("car").String() == c.ObjectPresence("car").String() &&
		a.ActionPresence("jumping").String() == c.ActionPresence("jumping").String() {
		t.Error("different seeds produced identical video")
	}
}

func TestGenerateBounds(t *testing.T) {
	v := MustGenerate(testScript(3))
	numShots := v.Meta.Geometry.NumShots(v.NumFrames())
	for _, typ := range v.ObjectTypes() {
		for _, iv := range v.ObjectPresence(typ).Intervals() {
			if iv.Start < 0 || iv.End >= v.NumFrames() {
				t.Errorf("object %s interval %v out of frame bounds", typ, iv)
			}
		}
	}
	for _, act := range v.ActionTypes() {
		for _, iv := range v.ActionPresence(act).Intervals() {
			if iv.Start < 0 || iv.End >= numShots {
				t.Errorf("action %s interval %v out of shot bounds", act, iv)
			}
		}
	}
}

func TestGenerateDensities(t *testing.T) {
	// Over a long horizon the renewal process should produce occupancy close
	// to dur/(gap+dur).
	s := testScript(11)
	s.Frames = 400_000
	v := MustGenerate(s)
	occ := float64(v.ObjectPresence("car").TotalLen()) / float64(s.Frames)
	want := 200.0 / (1500 + 200)
	if math.Abs(occ-want) > 0.35*want {
		t.Errorf("car occupancy %v, want ~%v", occ, want)
	}
	numShots := s.Geometry.NumShots(s.Frames)
	aocc := float64(v.ActionPresence("jumping").TotalLen()) / float64(numShots)
	awant := 8.0 / (30 + 8)
	if math.Abs(aocc-awant) > 0.35*awant {
		t.Errorf("action occupancy %v, want ~%v", aocc, awant)
	}
}

func TestCorrelatedObjectCoOccurs(t *testing.T) {
	v := MustGenerate(testScript(5))
	g := v.Meta.Geometry
	acts := v.ActionPresence("jumping").Intervals()
	if len(acts) < 5 {
		t.Fatalf("too few action occurrences (%d) to test correlation", len(acts))
	}
	covered := 0
	for _, shots := range acts {
		frames := video.Interval{
			Start: g.FrameRangeOfShot(shots.Start).Start,
			End:   g.FrameRangeOfShot(shots.End).End,
		}
		if !v.ObjectPresence("human").IntersectSet(video.NewIntervalSet(frames)).Empty() {
			covered++
		}
	}
	frac := float64(covered) / float64(len(acts))
	if frac < 0.6 {
		t.Errorf("only %v of action occurrences have the correlated human (want ~0.9)", frac)
	}
}

func TestInstancesAtMatchesPresence(t *testing.T) {
	v := MustGenerate(testScript(9))
	for f := 0; f < v.NumFrames(); f += 37 {
		for _, typ := range v.ObjectTypes() {
			ids := v.ObjectInstancesAt(typ, f)
			if (len(ids) > 0) != v.ObjectPresentAt(typ, f) {
				t.Fatalf("frame %d type %s: instances %v disagree with presence %v",
					f, typ, ids, v.ObjectPresentAt(typ, f))
			}
		}
	}
}

func TestTrackIDsUnique(t *testing.T) {
	v := MustGenerate(testScript(13))
	seen := map[int]bool{}
	for _, typ := range v.ObjectTypes() {
		for _, a := range v.ObjectAppearances(typ) {
			if seen[a.TrackID] {
				t.Fatalf("duplicate track id %d", a.TrackID)
			}
			seen[a.TrackID] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no appearances generated")
	}
}

func TestTruthFramesIsIntersection(t *testing.T) {
	v := MustGenerate(testScript(17))
	q := QuerySpec{Name: "q", Action: "jumping", Objects: []string{"car", "human"}}
	truth := v.TruthFrames(q)
	g := v.Meta.Geometry
	for f := 0; f < v.NumFrames(); f += 13 {
		inTruth := truth.Contains(f)
		want := v.ObjectPresentAt("car", f) && v.ObjectPresentAt("human", f) &&
			v.ActionAt("jumping", g.ShotOfFrame(f))
		if inTruth != want {
			t.Fatalf("frame %d: truth %v, want %v", f, inTruth, want)
		}
	}
}

func TestTruthClipsCoverage(t *testing.T) {
	v := MustGenerate(testScript(19))
	q := QuerySpec{Name: "q", Action: "jumping", Objects: []string{"human"}}
	truth := v.TruthFrames(q)
	any := v.TruthClips(q, 0)
	half := v.TruthClips(q, 0.5)
	g := v.Meta.Geometry
	for c := 0; c < v.Meta.NumClips(); c++ {
		r := g.FrameRangeOfClip(c)
		covered := truth.Clamp(r).TotalLen()
		if any.Contains(c) != (covered > 0) {
			t.Fatalf("clip %d: any-coverage truth %v but covered %d", c, any.Contains(c), covered)
		}
		if half.Contains(c) != (covered >= (r.Len()+1)/2) {
			t.Fatalf("clip %d: half-coverage truth %v but covered %d/%d", c, half.Contains(c), covered, r.Len())
		}
	}
	// Stricter coverage must select a subset of clips.
	strict := v.TruthClips(q, 1.0)
	if strict.TotalLen() > half.TotalLen() || half.TotalLen() > any.TotalLen() {
		t.Error("coverage thresholds not monotone")
	}
}

func TestRateFns(t *testing.T) {
	if ConstantRate(2.5)(100) != 2.5 {
		t.Error("ConstantRate")
	}
	p := PeakRate(100, 10, 5)
	if p(5) != 5 || p(50) != 1 || p(105) != 5 {
		t.Error("PeakRate windows wrong")
	}
	if PeakRate(0, 10, 5)(3) != 1 {
		t.Error("PeakRate with zero period should be constant 1")
	}
	st := StepRate(1000, 8)
	if st(999) != 1 || st(1000) != 8 {
		t.Error("StepRate boundary wrong")
	}
}

func TestStepRateChangesOccupancy(t *testing.T) {
	s := Script{
		ID: "drift", Frames: 200_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 21,
		Actions: []ActionSpec{{Name: "a", MeanGapShots: 100, MeanDurShots: 2}},
		Objects: []ObjectSpec{{
			Name: "car", MeanGapFrames: 2000, MeanDurFrames: 100,
			Rate: StepRate(100_000, 10),
		}},
	}
	v := MustGenerate(s)
	first := v.ObjectPresence("car").Clamp(video.Interval{Start: 0, End: 99_999}).TotalLen()
	second := v.ObjectPresence("car").Clamp(video.Interval{Start: 100_000, End: 199_999}).TotalLen()
	if second < 3*first {
		t.Errorf("step rate had no effect: first half %d, second half %d", first, second)
	}
}

func TestYouTubeDataset(t *testing.T) {
	d := YouTube(Options{Scale: 0.02, Seed: 1})
	if len(d.Queries) != 12 {
		t.Fatalf("want 12 queries, got %d", len(d.Queries))
	}
	if len(d.Videos) == 0 {
		t.Fatal("no videos generated")
	}
	q1 := d.Query("q1")
	if q1 == nil || q1.Action != "washing_dishes" || len(q1.Objects) != 2 {
		t.Fatalf("q1 wrong: %+v", q1)
	}
	if d.Query("nope") != nil {
		t.Error("unknown query should be nil")
	}
	// Every query-set video must script the query's action and objects plus
	// a person.
	v := d.Videos[0]
	if v.ActionPresence("washing_dishes").Empty() && len(v.ActionTypes()) == 0 {
		t.Error("first video has no actions at all")
	}
	found := false
	for _, typ := range v.ObjectTypes() {
		if typ == "person" {
			found = true
		}
	}
	if !found {
		t.Error("videos must script a person object")
	}
	if d.Video(v.ID()) != v {
		t.Error("Video lookup by ID failed")
	}
	if d.TotalFrames() <= 0 {
		t.Error("TotalFrames should be positive")
	}
}

func TestYouTubeScaleRoughlyLinear(t *testing.T) {
	small := YouTube(Options{Scale: 0.02, Seed: 1})
	big := Movies(Options{Scale: 0.02, Seed: 1})
	_ = big
	small2 := YouTube(Options{Scale: 0.04, Seed: 1})
	r := float64(small2.TotalFrames()) / float64(small.TotalFrames())
	if r < 1.5 || r > 2.5 {
		t.Errorf("doubling scale changed frames by %vx, want ~2x", r)
	}
}

func TestMoviesDataset(t *testing.T) {
	d := Movies(Options{Scale: 0.05, Seed: 2})
	if len(d.Videos) != 4 || len(d.Queries) != 4 {
		t.Fatalf("want 4 movies and 4 queries, got %d, %d", len(d.Videos), len(d.Queries))
	}
	titanic := d.Video("titanic")
	if titanic == nil {
		t.Fatal("no titanic")
	}
	q := d.Query("titanic")
	if q.Action != "kissing" {
		t.Errorf("titanic action = %s", q.Action)
	}
	// The queried action must actually occur.
	if titanic.ActionPresence("kissing").Empty() {
		t.Error("kissing never occurs in titanic")
	}
	// Movies must carry a wider vocabulary than the query.
	if len(titanic.ActionTypes()) < 3 || len(titanic.ObjectTypes()) < 5 {
		t.Errorf("vocabulary too narrow: %d actions, %d objects",
			len(titanic.ActionTypes()), len(titanic.ObjectTypes()))
	}
	// Durations follow Table 2 ordering: titanic is the longest.
	for _, v := range d.Videos {
		if v.NumFrames() > titanic.NumFrames() {
			t.Errorf("%s longer than titanic", v.ID())
		}
	}
}

func TestMoviesDeterministic(t *testing.T) {
	a := Movies(Options{Scale: 0.03, Seed: 5})
	b := Movies(Options{Scale: 0.03, Seed: 5})
	av, bv := a.Video("iron_man"), b.Video("iron_man")
	if av.ActionPresence("robot_dancing").String() != bv.ActionPresence("robot_dancing").String() {
		t.Error("movies not deterministic")
	}
}

func TestRNGBasics(t *testing.T) {
	r := newRNG(1, 2, 3)
	s := newRNG(1, 2, 3)
	for i := 0; i < 100; i++ {
		if r.next() != s.next() {
			t.Fatal("rng streams with same key diverge")
		}
	}
	r2 := newRNG(1, 2, 4)
	same := true
	for i := 0; i < 10; i++ {
		if r.next() != r2.next() {
			same = false
		}
	}
	if same {
		t.Error("different keys produced identical streams")
	}
	// float64 in [0,1)
	for i := 0; i < 1000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
	}
	// exponential mean
	sum := 0.0
	for i := 0; i < 20000; i++ {
		sum += r.exp(5)
	}
	if mean := sum / 20000; math.Abs(mean-5) > 0.3 {
		t.Errorf("exp mean %v, want ~5", mean)
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) should be 0")
	}
	for i := 0; i < 100; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}
