package synth

import "math"

// The generators in this package derive all randomness from SplitMix64
// hashes of structured keys (seed, video, type, index ...) rather than from
// a shared stateful RNG. This keeps every generated artefact a pure function
// of the dataset seed: regenerating a video, replaying a stream, or
// re-running ingestion always observes identical ground truth.

// splitmix64 is the SplitMix64 finalizer, a fast high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4a2e24f643db7
	return x ^ (x >> 31)
}

// hashKey folds a string into a 64-bit key.
func hashKey(s string) uint64 {
	// FNV-1a, then mixed; good enough for seeding.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return splitmix64(h)
}

// rng is a tiny deterministic PRNG (SplitMix64 stream) used for sequential
// draws inside one generation task.
type rng struct{ state uint64 }

func newRNG(parts ...uint64) *rng {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return splitmix64(r.state)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential draw with the given mean.
func (r *rng) exp(mean float64) float64 {
	u := r.float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// norm returns a normal draw (Box-Muller).
func (r *rng) norm(mean, std float64) float64 {
	u1 := r.float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + std*z
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
