package synth

import (
	"fmt"

	"svqact/internal/video"
)

// The benchmark constructors below mirror the paper's two evaluation
// workloads. Durations follow Table 1 (total minutes of video per queried
// action) and Table 2 (movie lengths); an Options.Scale below 1 shrinks
// every video proportionally for fast tests while preserving the workload
// shape.

// Options control benchmark generation.
type Options struct {
	// Scale multiplies all video durations; 1.0 reproduces the paper-scale
	// workload. Values in (0, 1) generate proportionally shorter videos.
	Scale float64
	// Seed drives all randomness. Datasets with equal seeds are identical.
	Seed int64
	// FPS defaults to 10 (duration-faithful while keeping frame counts
	// tractable; the engine is frame-rate agnostic).
	FPS float64
	// Geometry defaults to video.DefaultGeometry (10-frame shots, 5-shot
	// clips).
	Geometry video.Geometry
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.FPS == 0 {
		o.FPS = 10
	}
	if (o.Geometry == video.Geometry{}) {
		o.Geometry = video.DefaultGeometry
	}
	return o
}

// youTubeQuery describes one row of the paper's Table 1.
type youTubeQuery struct {
	name    string
	action  string
	objects []string
	minutes int // total video minutes containing the action
}

var youTubeTable = []youTubeQuery{
	{"q1", "washing_dishes", []string{"faucet", "oven"}, 57},
	{"q2", "blowing_leaves", []string{"car", "plant"}, 52},
	{"q3", "walking_the_dog", []string{"tree", "chair"}, 127},
	{"q4", "drinking_beer", []string{"bottle", "chair"}, 63},
	{"q5", "volleyball", []string{"tree"}, 110},
	{"q6", "playing_rubik_cube", []string{"clock"}, 89},
	{"q7", "cleaning_sink", []string{"faucet", "knife"}, 84},
	{"q8", "kneeling", []string{"tree"}, 104},
	{"q9", "doing_crunches", []string{"chair"}, 85},
	{"q10", "blow_drying_hair", []string{"kid"}, 138},
	{"q11", "washing_hands", []string{"faucet", "dish"}, 113},
	{"q12", "archery", []string{"sunglasses"}, 156},
}

// YouTubeQueries returns the Table 1 query list (without generating videos).
func YouTubeQueries() []QuerySpec {
	qs := make([]QuerySpec, len(youTubeTable))
	for i, q := range youTubeTable {
		qs[i] = QuerySpec{Name: q.name, Action: q.action, Objects: append([]string(nil), q.objects...)}
	}
	return qs
}

// YouTube generates the ActivityNet-style benchmark of Table 1: twelve
// per-action video sets, each a collection of short (1-2.5 minute) videos in
// which the action occurs repeatedly and the queried objects appear both
// correlated with the action and as background. Every video also scripts a
// ubiquitous "person" object (used by the paper's Table 3 predicate-count
// study) and a few distractor types that only matter to offline ingestion.
func YouTube(opts Options) *Dataset {
	opts = opts.withDefaults()
	d := &Dataset{Name: "youtube", Queries: YouTubeQueries()}
	for qi, q := range youTubeTable {
		totalFrames := int(float64(q.minutes) * 60 * opts.FPS * opts.Scale)
		r := newRNG(uint64(opts.Seed), hashKey("youtube"), uint64(qi))
		for vi := 0; totalFrames > 0; vi++ {
			frames := int(opts.FPS * (120 + 150*r.float64())) // 2-4.5 minutes
			if frames > totalFrames {
				frames = totalFrames
			}
			totalFrames -= frames
			if frames < 4*opts.Geometry.FramesPerClip() {
				break // too short to hold even a few clips
			}
			id := fmt.Sprintf("yt-%s-%03d", q.name, vi)
			d.Videos = append(d.Videos, MustGenerate(youTubeScript(id, frames, q, opts)))
		}
	}
	return d
}

// youTubeScript builds the generation recipe for one ActivityNet-style
// video of query set q.
func youTubeScript(id string, frames int, q youTubeQuery, opts Options) Script {
	s := Script{
		ID:       id,
		Frames:   frames,
		FPS:      opts.FPS,
		Geometry: opts.Geometry,
		Seed:     opts.Seed ^ int64(hashKey(id)),
	}
	// The titular action occupies roughly a fifth of the video in
	// occurrences of ~30 shots (30 s at the default geometry and 10 fps),
	// the regime of ActivityNet activities: long enough to span several
	// clips, sparse enough that the background estimators see mostly
	// background.
	s.Actions = append(s.Actions, ActionSpec{
		Name:         q.action,
		MeanGapShots: 120,
		MeanDurShots: 30,
	})
	// Queried objects: strongly correlated with the action plus sparse
	// background appearances. Per-object correlation strength varies across
	// the benchmark (hash-derived in [0.72, 0.92]) so queries differ in
	// difficulty, as in the paper's Figure 3 spread.
	for _, o := range q.objects {
		corr := 0.72 + 0.2*float64(hashKey(q.name+"/"+o)%1000)/1000
		s.Objects = append(s.Objects, ObjectSpec{
			Name:            o,
			MeanGapFrames:   6000,
			MeanDurFrames:   250,
			CorrelatedWith:  q.action,
			CorrelationProb: corr,
		})
	}
	// A person is visible in almost every occurrence of a human activity
	// and frequently elsewhere — the paper's high-accuracy correlated
	// predicate.
	s.Objects = append(s.Objects, ObjectSpec{
		Name:            "person",
		MeanGapFrames:   1800,
		MeanDurFrames:   350,
		CorrelatedWith:  q.action,
		CorrelationProb: 0.97,
	})
	// Distractor vocabulary: present in the world, irrelevant to the query.
	for i, name := range []string{"backpack", "phone", "cup"} {
		s.Objects = append(s.Objects, ObjectSpec{
			Name:          name,
			MeanGapFrames: 2500 + 1500*float64(i),
			MeanDurFrames: 200,
		})
	}
	return s
}

// movieSpec describes one row of the paper's Table 2.
type movieSpec struct {
	title   string
	action  string
	objects []string
	minutes int
}

var moviesTable = []movieSpec{
	{"coffee_and_cigarettes", "smoking", []string{"wine_glass", "cup"}, 96},
	{"iron_man", "robot_dancing", []string{"car", "airplane"}, 126},
	{"star_wars_3", "archery", []string{"bird", "cat"}, 134},
	{"titanic", "kissing", []string{"surfboard", "boat"}, 194},
}

// MovieQueries returns the Table 2 query list.
func MovieQueries() []QuerySpec {
	qs := make([]QuerySpec, len(moviesTable))
	for i, m := range moviesTable {
		qs[i] = QuerySpec{Name: m.title, Action: m.action, Objects: append([]string(nil), m.objects...)}
	}
	return qs
}

// Movies generates the Table 2 workload: four long videos, one per movie,
// with the queried action occurring sparsely and the queried objects only
// partially correlated with it, so each movie yields a few dozen candidate
// sequences of which ~20 satisfy the whole query — the regime RVAQ's top-k
// processing targets.
func Movies(opts Options) *Dataset {
	opts = opts.withDefaults()
	d := &Dataset{Name: "movies", Queries: MovieQueries()}
	for mi, m := range moviesTable {
		frames := int(float64(m.minutes) * 60 * opts.FPS * opts.Scale)
		s := Script{
			ID:       m.title,
			Frames:   frames,
			FPS:      opts.FPS,
			Geometry: opts.Geometry,
			Seed:     opts.Seed ^ int64(hashKey(m.title)),
		}
		s.Actions = append(s.Actions, ActionSpec{
			Name:         m.action,
			MeanGapShots: 200, // sparse: one scene every ~4 minutes
			MeanDurShots: 40,
		})
		// Other actions happening in the movie; ingestion must cope with a
		// vocabulary much wider than any one query.
		for i, a := range []string{"talking", "walking", "driving", "fighting"} {
			s.Actions = append(s.Actions, ActionSpec{
				Name:         a,
				MeanGapShots: 40 + 25*float64(i),
				MeanDurShots: 10,
			})
		}
		for _, o := range m.objects {
			corr := 0.72 + 0.2*float64(hashKey(m.title+"/"+o)%1000)/1000
			s.Objects = append(s.Objects, ObjectSpec{
				Name:            o,
				MeanGapFrames:   9000,
				MeanDurFrames:   400,
				CorrelatedWith:  m.action,
				CorrelationProb: corr,
			})
		}
		s.Objects = append(s.Objects, ObjectSpec{
			Name:            "person",
			MeanGapFrames:   900,
			MeanDurFrames:   600,
			CorrelatedWith:  m.action,
			CorrelationProb: 0.98,
		})
		for i, name := range []string{"chair", "bottle", "car_background", "tie"} {
			s.Objects = append(s.Objects, ObjectSpec{
				Name:          name,
				MeanGapFrames: 2000 + 1200*float64(i),
				MeanDurFrames: 300,
			})
		}
		d.Videos = append(d.Videos, MustGenerate(s))
		_ = mi
	}
	return d
}
