//go:build !race

// Package testenv exposes build-mode facts tests need to calibrate their
// expectations — currently only whether the race detector is compiled in
// (allocation-count assertions are meaningless under its instrumentation).
package testenv

// RaceEnabled reports whether the race detector is compiled into the binary.
const RaceEnabled = false
