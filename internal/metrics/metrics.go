// Package metrics implements the evaluation measures of the paper's §5.1:
// sequence-level F1 under an intersection-over-union matching threshold,
// frame-level F1, and unit-level false-positive rates with and without the
// engine's statistical filtering.
package metrics

import "svqact/internal/video"

// DefaultIoU is the matching threshold eta = 0.5 used throughout the paper's
// evaluation (and conventionally in detection work).
const DefaultIoU = 0.5

// Counts holds true positives, false positives and false negatives. Counts
// from independent videos or queries add.
type Counts struct {
	TP, FP, FN int
}

// Add accumulates another count.
func (c *Counts) Add(o Counts) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted (no
// prediction, no false alarms).
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when there was nothing to find.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, 0 when both vanish.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MatchSequences scores predicted result sequences against ground-truth
// sequences following the paper's rule: a predicted sequence is a true
// positive iff its IoU with some ground-truth sequence reaches eta; a
// ground-truth sequence is missed (false negative) iff no predicted sequence
// reaches IoU eta with it. The matching is deliberately not one-to-one —
// that is how the paper defines it.
func MatchSequences(pred, truth video.IntervalSet, eta float64) Counts {
	var c Counts
	for _, p := range pred.Intervals() {
		matched := false
		for _, t := range truth.Intervals() {
			if p.IoU(t) >= eta {
				matched = true
				break
			}
		}
		if matched {
			c.TP++
		} else {
			c.FP++
		}
	}
	for _, t := range truth.Intervals() {
		matched := false
		for _, p := range pred.Intervals() {
			if t.IoU(p) >= eta {
				matched = true
				break
			}
		}
		if !matched {
			c.FN++
		}
	}
	return c
}

// UnitCounts scores predictions at the individual-unit level (frames or
// clips): a unit is a true positive when both sets contain it, a false
// positive when only the prediction does, a false negative when only the
// truth does.
func UnitCounts(pred, truth video.IntervalSet) Counts {
	tp := pred.IntersectSet(truth).TotalLen()
	return Counts{
		TP: tp,
		FP: pred.TotalLen() - tp,
		FN: truth.TotalLen() - tp,
	}
}

// FalsePositiveRate returns |pred \ truth| / |universe \ truth| over a
// universe of total units [0, total): the fraction of truly negative units
// flagged positive. It returns 0 when there are no negative units.
func FalsePositiveRate(pred, truth video.IntervalSet, total int) float64 {
	bounds := video.Interval{Start: 0, End: total - 1}
	negatives := total - truth.Clamp(bounds).TotalLen()
	if negatives <= 0 {
		return 0
	}
	fp := pred.Clamp(bounds).Subtract(truth).TotalLen()
	return float64(fp) / float64(negatives)
}
