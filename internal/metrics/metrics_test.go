package metrics

import (
	"math"
	"testing"

	"svqact/internal/video"
)

func set(ivs ...video.Interval) video.IntervalSet { return video.NewIntervalSet(ivs...) }

func iv(a, b int) video.Interval { return video.Interval{Start: a, End: b} }

func TestCountsArithmetic(t *testing.T) {
	c := Counts{TP: 3, FP: 1, FN: 2}
	c.Add(Counts{TP: 1, FP: 1, FN: 0})
	if c != (Counts{TP: 4, FP: 2, FN: 2}) {
		t.Fatalf("Add: %+v", c)
	}
	if got := c.Precision(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
}

func TestCountsDegenerate(t *testing.T) {
	empty := Counts{}
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.F1() != 1 {
		t.Errorf("all-zero counts should score perfect: P=%v R=%v F1=%v",
			empty.Precision(), empty.Recall(), empty.F1())
	}
	onlyFN := Counts{FN: 3}
	if onlyFN.Precision() != 1 || onlyFN.Recall() != 0 || onlyFN.F1() != 0 {
		t.Errorf("miss-everything counts wrong: %+v", onlyFN)
	}
	onlyFP := Counts{FP: 3}
	if onlyFP.Precision() != 0 || onlyFP.Recall() != 1 || onlyFP.F1() != 0 {
		t.Errorf("all-noise counts wrong: %+v", onlyFP)
	}
}

func TestMatchSequencesExact(t *testing.T) {
	truth := set(iv(10, 19), iv(40, 49))
	pred := set(iv(10, 19), iv(40, 49))
	c := MatchSequences(pred, truth, DefaultIoU)
	if c != (Counts{TP: 2, FP: 0, FN: 0}) {
		t.Errorf("exact match: %+v", c)
	}
	if c.F1() != 1 {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestMatchSequencesPartial(t *testing.T) {
	truth := set(iv(10, 19))
	// IoU([10,19],[13,22]) = 7/13 > 0.5; IoU([10,19],[16,25]) = 4/16 < 0.5.
	if c := MatchSequences(set(iv(13, 22)), truth, 0.5); c != (Counts{TP: 1}) {
		t.Errorf("overlapping pred: %+v", c)
	}
	if c := MatchSequences(set(iv(16, 25)), truth, 0.5); c != (Counts{TP: 0, FP: 1, FN: 1}) {
		t.Errorf("weakly overlapping pred: %+v", c)
	}
}

func TestMatchSequencesManyToOne(t *testing.T) {
	// Two fragments each reaching IoU >= eta with the same truth sequence
	// both count as TP (the paper's matching is not one-to-one). Use a low
	// eta so both fragments qualify.
	truth := set(iv(0, 9))
	pred := set(iv(0, 4), iv(6, 9))
	c := MatchSequences(pred, truth, 0.3)
	if c != (Counts{TP: 2, FP: 0, FN: 0}) {
		t.Errorf("many-to-one: %+v", c)
	}
}

func TestMatchSequencesEmpty(t *testing.T) {
	if c := MatchSequences(video.IntervalSet{}, video.IntervalSet{}, 0.5); c != (Counts{}) {
		t.Errorf("both empty: %+v", c)
	}
	if c := MatchSequences(set(iv(0, 5)), video.IntervalSet{}, 0.5); c != (Counts{FP: 1}) {
		t.Errorf("pred only: %+v", c)
	}
	if c := MatchSequences(video.IntervalSet{}, set(iv(0, 5)), 0.5); c != (Counts{FN: 1}) {
		t.Errorf("truth only: %+v", c)
	}
}

func TestUnitCounts(t *testing.T) {
	pred := set(iv(0, 9), iv(20, 24))
	truth := set(iv(5, 14))
	c := UnitCounts(pred, truth)
	if c != (Counts{TP: 5, FP: 10, FN: 5}) {
		t.Errorf("UnitCounts: %+v", c)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	truth := set(iv(0, 49))
	pred := set(iv(40, 59)) // 10 units outside the truth
	got := FalsePositiveRate(pred, truth, 100)
	if math.Abs(got-10.0/50) > 1e-12 {
		t.Errorf("FPR = %v, want 0.2", got)
	}
	if FalsePositiveRate(pred, truth, 50) != 0 {
		t.Error("no negatives should give FPR 0")
	}
	if FalsePositiveRate(video.IntervalSet{}, truth, 100) != 0 {
		t.Error("no predictions should give FPR 0")
	}
	// Predictions beyond the universe must not count.
	far := set(iv(90, 199))
	if got := FalsePositiveRate(far, truth, 100); math.Abs(got-10.0/50) > 1e-12 {
		t.Errorf("clamped FPR = %v, want 0.2", got)
	}
}
