// Package detect defines the detection-model abstractions the query engine
// is built on, plus simulated implementations with calibrated noise
// profiles.
//
// The paper's engine treats object detectors, action recognisers and
// trackers as black boxes that emit scores per frame (objects) or per shot
// (actions). The simulated models here reproduce that contract against the
// scripted ground truth of a synthetic video: when a type is truly present
// the model detects it with the profile's true-positive rate and a high
// score; when absent it hallucinates detections both as independent per-unit
// noise and as occasional bursts (a look-alike object in the scene), the
// failure mode that makes thresholding alone insufficient and motivates the
// paper's scan-statistics layer.
//
// All draws are pure functions of (video, model, type, unit), so repeated
// evaluation — online streaming, offline ingestion, re-runs — observes
// identical detections.
package detect

import (
	"time"

	"svqact/internal/video"
)

// TruthVideo is the ground-truth view simulated models sample against.
// synth.Video implements it.
type TruthVideo interface {
	ID() string
	NumFrames() int
	Geometry() video.Geometry
	ObjectTypes() []string
	ActionTypes() []string
	// ObjectInstancesAt returns the track IDs of instances of the type
	// visible on the frame.
	ObjectInstancesAt(typ string, frame int) []int
	// ObjectPresentAt reports whether any instance of the type is visible.
	ObjectPresentAt(typ string, frame int) bool
	// ActionAt reports whether the action occurs during the shot.
	ActionAt(act string, shot int) bool
}

// Detection is one detected object instance on a frame. Ground-truth
// instances carry their tracker ID; hallucinated detections carry negative
// IDs so downstream aggregation still sees consistent per-instance identity.
type Detection struct {
	TrackID int
	Score   float64
}

// ObjectDetector scores object types on frames.
type ObjectDetector interface {
	// Name identifies the model (for reports and deterministic seeding).
	Name() string
	// FrameScore returns the maximum detection score for the type on the
	// frame, or 0 when nothing is detected — the paper's maxS.
	FrameScore(v TruthVideo, typ string, frame int) float64
	// FrameDetections returns every detection of the type on the frame.
	FrameDetections(v TruthVideo, typ string, frame int) []Detection
	// UnitCost is the simulated inference latency for one frame.
	UnitCost() time.Duration
}

// ActionRecognizer scores action types on shots.
type ActionRecognizer interface {
	Name() string
	// ShotScore returns the classification score of the action on the shot,
	// or 0 when the action is not predicted.
	ShotScore(v TruthVideo, act string, shot int) float64
	UnitCost() time.Duration
}

// Models bundles the detector pair a query runs with, plus the score
// thresholds applied to their outputs (the paper's T_obj and T_act).
type Models struct {
	Objects      ObjectDetector
	Actions      ActionRecognizer
	ObjThreshold float64
	ActThreshold float64
}

// DefaultThreshold is the score threshold used throughout the evaluation,
// matching the 0.5 convention of the detection literature.
const DefaultThreshold = 0.5

// NewModels pairs an object detector and action recogniser with the default
// thresholds.
func NewModels(o ObjectDetector, a ActionRecognizer) Models {
	return Models{Objects: o, Actions: a, ObjThreshold: DefaultThreshold, ActThreshold: DefaultThreshold}
}

// ObjectPositive reports the thresholded indicator 1_{o}(v) for the type on
// the frame.
func (m Models) ObjectPositive(v TruthVideo, typ string, frame int) bool {
	return m.Objects.FrameScore(v, typ, frame) >= m.ObjThreshold
}

// ActionPositive reports the thresholded indicator 1_{a}(s) for the action
// on the shot.
func (m Models) ActionPositive(v TruthVideo, act string, shot int) bool {
	return m.Actions.ShotScore(v, act, shot) >= m.ActThreshold
}

// ObjectScoreAttempt invokes the object detector for one attempt, surfacing
// invocation failures when the detector is fallible. Infallible detectors
// never fail.
func (m Models) ObjectScoreAttempt(v TruthVideo, typ string, frame, attempt int) (float64, error) {
	if fd, ok := m.Objects.(FallibleObjectDetector); ok {
		return fd.FrameScoreAttempt(v, typ, frame, attempt)
	}
	return m.Objects.FrameScore(v, typ, frame), nil
}

// ActionScoreAttempt invokes the action recogniser for one attempt,
// surfacing invocation failures when the recogniser is fallible.
func (m Models) ActionScoreAttempt(v TruthVideo, act string, shot, attempt int) (float64, error) {
	if fr, ok := m.Actions.(FallibleActionRecognizer); ok {
		return fr.ShotScoreAttempt(v, act, shot, attempt)
	}
	return m.Actions.ShotScore(v, act, shot), nil
}

// FrameDetectionsAttempt invokes d for one attempt, surfacing invocation
// failures when the detector is fallible.
func FrameDetectionsAttempt(d ObjectDetector, v TruthVideo, typ string, frame, attempt int) ([]Detection, error) {
	if fd, ok := d.(FallibleObjectDetector); ok {
		return fd.FrameDetectionsAttempt(v, typ, frame, attempt)
	}
	return d.FrameDetections(v, typ, frame), nil
}
