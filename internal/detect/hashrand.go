package detect

import "math"

// Deterministic per-unit randomness: every stochastic decision a simulated
// model makes is a pure function of a structured key, so detections are
// reproducible across passes (a requirement for comparing online and offline
// processing of the same video and for repeatable benchmarks).

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4a2e24f643db7
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// keyed folds parts into a single 64-bit hash.
func keyed(parts ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return h
}

// unitFloat maps a hash to a uniform float in [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// gauss maps a hash to a standard normal draw via Box-Muller on two derived
// uniforms.
func gauss(h uint64) float64 {
	u1 := unitFloat(mix64(h ^ 0xa5a5a5a5a5a5a5a5))
	u2 := unitFloat(mix64(h ^ 0x5a5a5a5a5a5a5a5a))
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Key64 folds parts into a single 64-bit hash. Exported for callers outside
// detect that need the same reproducible per-unit randomness — e.g. the
// cluster coordinator's retry backoff derives its jitter from
// (query, shard, attempt) keys so failover schedules replay identically in
// tests.
func Key64(parts ...uint64) uint64 { return keyed(parts...) }

// KeyString hashes a string into a 64-bit key suitable for Key64.
func KeyString(s string) uint64 { return hashString(s) }

// Unit01 maps a 64-bit key to a uniform float in [0, 1).
func Unit01(h uint64) float64 { return unitFloat(h) }

// clampScore limits a sampled confidence to (0, 1].
func clampScore(s float64) float64 {
	if s <= 0 {
		return 0.01
	}
	if s > 1 {
		return 1
	}
	return s
}
