package detect

import (
	"testing"
)

// The batch fast paths must be advertised by the simulated models and the
// tracker, and must NOT leak through the fault decorators — fallible models
// keep the per-attempt retry contract.
var (
	_ BatchObjectScorer   = (*SimObjectDetector)(nil)
	_ ObjectEventAppender = (*SimObjectDetector)(nil)
	_ BatchActionScorer   = (*SimActionRecognizer)(nil)
	_ BatchObjectScorer   = (*Tracker)(nil)
	_ ObjectEventAppender = (*Tracker)(nil)
)

func TestFaultDecoratorsHideBatchPaths(t *testing.T) {
	d := InjectObjectFaults(NewObjectDetector(MaskRCNN, 1), FaultConfig{})
	if _, ok := any(d).(BatchObjectScorer); ok {
		t.Error("FaultyObjectDetector must not advertise BatchObjectScorer")
	}
	if _, ok := any(d).(ObjectEventAppender); ok {
		t.Error("FaultyObjectDetector must not advertise ObjectEventAppender")
	}
	r := InjectActionFaults(NewActionRecognizer(I3D, 1), FaultConfig{})
	if _, ok := any(r).(BatchActionScorer); ok {
		t.Error("FaultyActionRecognizer must not advertise BatchActionScorer")
	}
}

// TestFrameScoreBatchMatchesScalar pins the batch contract: for every
// detector shape (sim, tracked, and the generic fallback), FrameScoreBatch
// must equal per-frame FrameScore bit for bit.
func TestFrameScoreBatchMatchesScalar(t *testing.T) {
	v := testVideo(t, 11)
	dets := map[string]ObjectDetector{
		"sim":     NewObjectDetector(MaskRCNN, 7),
		"tracked": CenterTrack(NewObjectDetector(MaskRCNN, 7)),
		// The fault decorator exercises the generic per-frame fallback.
		"fallback": InjectObjectFaults(NewObjectDetector(MaskRCNN, 7), FaultConfig{}),
	}
	for name, d := range dets {
		for _, start := range []int{0, 137, v.NumFrames() - 64} {
			dst := make([]float64, 64)
			FrameScoreBatch(d, v, "car", start, dst)
			for i, got := range dst {
				if want := d.FrameScore(v, "car", start+i); got != want {
					t.Fatalf("%s: batch score frame %d = %v, scalar %v", name, start+i, got, want)
				}
			}
		}
	}
}

func TestShotScoreBatchMatchesScalar(t *testing.T) {
	v := testVideo(t, 12)
	numShots := v.Geometry().NumShots(v.NumFrames())
	recs := map[string]ActionRecognizer{
		"sim":      NewActionRecognizer(I3D, 5),
		"fallback": InjectActionFaults(NewActionRecognizer(I3D, 5), FaultConfig{}),
	}
	for name, r := range recs {
		dst := make([]float64, numShots)
		ShotScoreBatch(r, v, "jumping", 0, dst)
		for i, got := range dst {
			if want := r.ShotScore(v, "jumping", i); got != want {
				t.Fatalf("%s: batch score shot %d = %v, scalar %v", name, i, got, want)
			}
		}
	}
}

// TestAppendFrameEventsMatchesFrameDetections pins the columnar path to the
// AoS one for every detector shape, including the tracker's identity
// remapping.
func TestAppendFrameEventsMatchesFrameDetections(t *testing.T) {
	v := testVideo(t, 13)
	dets := map[string]ObjectDetector{
		"sim":      NewObjectDetector(MaskRCNN, 7),
		"tracked":  CenterTrack(NewObjectDetector(MaskRCNN, 7)),
		"fallback": InjectObjectFaults(NewObjectDetector(MaskRCNN, 7), FaultConfig{}),
	}
	for name, d := range dets {
		var ev Events
		var want []Detection
		var wantFrames []int
		for f := 0; f < v.NumFrames(); f += 37 {
			for _, det := range d.FrameDetections(v, "human", f) {
				want = append(want, det)
				wantFrames = append(wantFrames, f)
			}
			AppendFrameEvents(d, v, "human", f, &ev)
		}
		if ev.Len() != len(want) {
			t.Fatalf("%s: %d events, want %d", name, ev.Len(), len(want))
		}
		for i := range want {
			if int(ev.Units[i]) != wantFrames[i] || ev.Tracks[i] != int64(want[i].TrackID) || ev.Scores[i] != want[i].Score {
				t.Fatalf("%s: event %d = (%d, %d, %v), want (%d, %d, %v)",
					name, i, ev.Units[i], ev.Tracks[i], ev.Scores[i], wantFrames[i], want[i].TrackID, want[i].Score)
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s: no events sampled — test is vacuous", name)
		}
		ev.Reset()
		if ev.Len() != 0 || cap(ev.Scores) == 0 {
			t.Fatalf("%s: Reset should empty the batch but keep capacity", name)
		}
	}
}
