package detect

import (
	"context"
	"math/rand/v2"
	"time"
)

// RetryConfig tunes retrying of failed model invocations.
type RetryConfig struct {
	// Attempts is the total number of invocations tried, including the
	// first; values below 1 behave like 1 (no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay. Full jitter in [0.5, 1.5)x is applied
	// so synchronised callers do not retry in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryConfig is the serving default: three attempts with a short
// exponential backoff.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// backoff returns the jittered delay before retry number retry (0-based).
func (c RetryConfig) backoff(retry int) time.Duration {
	d := c.BaseDelay << uint(retry)
	if c.MaxDelay > 0 && d > c.MaxDelay {
		d = c.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// Retry invokes op with increasing attempt numbers until it succeeds, fails
// permanently (IsTransient false), runs out of attempts, or ctx ends.
// Between attempts it sleeps the jittered exponential backoff, honouring ctx
// cancellation. The returned error is op's last error, or ctx.Err() when the
// context ended first.
func Retry(ctx context.Context, cfg RetryConfig, op func(attempt int) error) error {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(a); err == nil || !IsTransient(err) {
			return err
		}
		if a == attempts-1 {
			break
		}
		if d := cfg.backoff(a); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return err
}
