package detect

import "time"

// Recall-complete distilled proxies. A distilled student model compresses
// an accurate teacher into a fraction of the inference cost; calibrated for
// cascade duty, its operating threshold is tuned so it never misses a unit
// the teacher would score — at the price of extra false positives the
// teacher then has to veto. The simulation reproduces exactly that
// contract: the proxy's score is the teacher's score wherever the teacher
// detects anything, and the proxy's own (cheaper, noisier) false-positive
// process elsewhere. The proxy's score is therefore ≥ the teacher's on
// every unit, which is the property the cascade soundness argument in
// cascade.go rests on.

// DistilledObjectDetector is a recall-complete cheap proxy of a teacher
// object detector. Construct with NewDistilledObjectDetector.
type DistilledObjectDetector struct {
	teacher ObjectDetector
	core    *simCore
}

// NewDistilledObjectDetector builds a proxy of teacher whose extra false
// positives and unit cost come from prof. Draws are deterministic per
// (profile, seed, video, type, unit), like every simulated model.
func NewDistilledObjectDetector(teacher ObjectDetector, prof Profile, seed int64) *DistilledObjectDetector {
	return &DistilledObjectDetector{teacher: teacher, core: newSimCore(prof, seed)}
}

// Name implements ObjectDetector.
func (d *DistilledObjectDetector) Name() string { return d.core.prof.Name }

// UnitCost implements ObjectDetector.
func (d *DistilledObjectDetector) UnitCost() time.Duration { return d.core.prof.UnitCost }

// FrameScore implements ObjectDetector: the teacher's score when the
// teacher detects anything, otherwise the proxy's own false-positive draw.
func (d *DistilledObjectDetector) FrameScore(v TruthVideo, typ string, frame int) float64 {
	if s := d.teacher.FrameScore(v, typ, frame); s > 0 {
		return s
	}
	if !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			return s
		}
	}
	return 0
}

// FrameDetections implements ObjectDetector: the teacher's detections, plus
// a phantom instance when only the proxy hallucinates.
func (d *DistilledObjectDetector) FrameDetections(v TruthVideo, typ string, frame int) []Detection {
	out := d.teacher.FrameDetections(v, typ, frame)
	if len(out) == 0 && !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			// Same stable phantom identity scheme as SimObjectDetector.
			id := -1 - int(keyed(hashString(v.ID()), hashString(typ), uint64(frame/30))%1_000_000)
			out = append(out, Detection{TrackID: id, Score: s})
		}
	}
	return out
}

// FrameScoreBatch implements BatchObjectScorer: the teacher's batch path
// with the proxy's false-positive overlay filled in over its zeros.
func (d *DistilledObjectDetector) FrameScoreBatch(v TruthVideo, typ string, start int, dst []float64) {
	FrameScoreBatch(d.teacher, v, typ, start, dst)
	overlay := d.core.burstOverlay(v.ID(), typ, v.NumFrames())
	for i, s := range dst {
		if s > 0 {
			continue
		}
		frame := start + i
		if v.ObjectPresentAt(typ, frame) {
			continue
		}
		if fs, ok := d.core.falsePositiveIn(overlay, v, typ, frame); ok {
			dst[i] = fs
		}
	}
}

// AppendFrameEvents implements ObjectEventAppender.
func (d *DistilledObjectDetector) AppendFrameEvents(v TruthVideo, typ string, frame int, ev *Events) {
	n := ev.Len()
	AppendFrameEvents(d.teacher, v, typ, frame, ev)
	if ev.Len() == n && !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			id := -1 - int(keyed(hashString(v.ID()), hashString(typ), uint64(frame/30))%1_000_000)
			ev.Append(frame, int64(id), s)
		}
	}
}

// DistilledActionRecognizer is the recall-complete cheap proxy of a teacher
// action recogniser.
type DistilledActionRecognizer struct {
	teacher ActionRecognizer
	core    *simCore
}

// NewDistilledActionRecognizer builds a proxy of teacher whose extra false
// positives and unit cost come from prof.
func NewDistilledActionRecognizer(teacher ActionRecognizer, prof Profile, seed int64) *DistilledActionRecognizer {
	return &DistilledActionRecognizer{teacher: teacher, core: newSimCore(prof, seed)}
}

// Name implements ActionRecognizer.
func (r *DistilledActionRecognizer) Name() string { return r.core.prof.Name }

// UnitCost implements ActionRecognizer.
func (r *DistilledActionRecognizer) UnitCost() time.Duration { return r.core.prof.UnitCost }

// ShotScore implements ActionRecognizer.
func (r *DistilledActionRecognizer) ShotScore(v TruthVideo, act string, shot int) float64 {
	if s := r.teacher.ShotScore(v, act, shot); s > 0 {
		return s
	}
	if !v.ActionAt(act, shot) {
		numShots := v.Geometry().NumShots(v.NumFrames())
		if s, ok := r.core.falsePositive(v, act, shot, numShots); ok {
			return s
		}
	}
	return 0
}

// ShotScoreBatch implements BatchActionScorer.
func (r *DistilledActionRecognizer) ShotScoreBatch(v TruthVideo, act string, start int, dst []float64) {
	ShotScoreBatch(r.teacher, v, act, start, dst)
	numShots := v.Geometry().NumShots(v.NumFrames())
	overlay := r.core.burstOverlay(v.ID(), act, numShots)
	for i, s := range dst {
		if s > 0 {
			continue
		}
		shot := start + i
		if v.ActionAt(act, shot) {
			continue
		}
		if fs, ok := r.core.falsePositiveIn(overlay, v, act, shot); ok {
			dst[i] = fs
		}
	}
}
