package detect

import "math"

// Spatial relationships between objects (paper footnote 2): the engine
// treats a relationship predicate as a binary per-frame output derived from
// the object detection outcomes — the relationship holds on a frame when
// some detected instance pair satisfies the geometric condition.
//
// The synthetic world has no pixels, so instance geometry is itself
// synthesised: every tracked instance follows a smooth, deterministic
// horizontal trajectory derived from its identity (a per-instance base
// position plus slow sinusoidal drift). Ground truth and detector both read
// the same trajectory; the detector's errors come from missed or
// hallucinated instances, exactly as for presence predicates.

// Relation names a geometric predicate over two object types.
type Relation string

const (
	// LeftOf holds when an instance of the first type is left of an
	// instance of the second by at least relationMargin.
	LeftOf Relation = "left_of"
	// RightOf is the mirror image.
	RightOf Relation = "right_of"
	// Near holds when instances of the two types are within
	// relationNearDist horizontally.
	Near Relation = "near"
)

// relationMargin is the minimal horizontal separation for LeftOf/RightOf,
// in normalised image coordinates [0, 1].
const relationMargin = 0.05

// relationNearDist is the maximal separation for Near.
const relationNearDist = 0.2

// ValidRelation reports whether the name is a supported relation.
func ValidRelation(r Relation) bool {
	switch r {
	case LeftOf, RightOf, Near:
		return true
	}
	return false
}

// PositionOf returns the horizontal centre (in [0, 1]) of a tracked
// instance on a frame. It is a pure function of (video, track, frame):
// a per-instance anchor plus two slow incommensurate sinusoids.
func PositionOf(videoID string, trackID, frame int) float64 {
	h := keyed(hashString(videoID), uint64(int64(trackID)))
	anchor := unitFloat(h)
	phase1 := 2 * math.Pi * unitFloat(mix64(h^0x1234))
	phase2 := 2 * math.Pi * unitFloat(mix64(h^0x5678))
	t := float64(frame)
	drift := 0.18*math.Sin(t/180+phase1) + 0.09*math.Sin(t/411+phase2)
	x := anchor + drift
	// Reflect into [0, 1].
	x = math.Mod(math.Abs(x), 2)
	if x > 1 {
		x = 2 - x
	}
	return x
}

// holds evaluates the geometric condition for a pair of positions.
func (r Relation) holds(xa, xb float64) bool {
	switch r {
	case LeftOf:
		return xa <= xb-relationMargin
	case RightOf:
		return xa >= xb+relationMargin
	case Near:
		return math.Abs(xa-xb) <= relationNearDist
	}
	return false
}

// RelationPositive reports the detector-derived indicator of the relation
// on a frame: some detected instance of type a and some detected instance
// of type b satisfy it. Hallucinated detections (negative IDs) participate,
// as they would in a real pipeline.
func RelationPositive(det ObjectDetector, v TruthVideo, rel Relation, a, b string, frame int) bool {
	da := det.FrameDetections(v, a, frame)
	if len(da) == 0 {
		return false
	}
	db := det.FrameDetections(v, b, frame)
	if len(db) == 0 {
		return false
	}
	for _, ia := range da {
		xa := PositionOf(v.ID(), ia.TrackID, frame)
		for _, ib := range db {
			if ia.TrackID == ib.TrackID {
				continue
			}
			if rel.holds(xa, PositionOf(v.ID(), ib.TrackID, frame)) {
				return true
			}
		}
	}
	return false
}

// TrueRelationAt reports the ground-truth indicator of the relation on a
// frame, from the true instances and the same trajectories.
func TrueRelationAt(v TruthVideo, rel Relation, a, b string, frame int) bool {
	ia := v.ObjectInstancesAt(a, frame)
	if len(ia) == 0 {
		return false
	}
	ib := v.ObjectInstancesAt(b, frame)
	if len(ib) == 0 {
		return false
	}
	for _, ta := range ia {
		xa := PositionOf(v.ID(), ta, frame)
		for _, tb := range ib {
			if ta == tb {
				continue
			}
			if rel.holds(xa, PositionOf(v.ID(), tb, frame)) {
				return true
			}
		}
	}
	return false
}
