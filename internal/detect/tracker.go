package detect

import "time"

// Tracker simulates an object tracker (the paper deploys CenterTrack): it
// wraps an ObjectDetector and post-processes its per-frame detections into
// temporally consistent instance identities. Real trackers occasionally lose
// an instance and re-identify it under a new ID; FragmentEvery models that
// by splitting long tracks into segments of roughly that many frames, each
// with its own derived identity. Zero disables fragmentation (perfect
// tracking).
type Tracker struct {
	det           ObjectDetector
	fragmentEvery int
}

// NewTracker wraps det with simulated tracking.
func NewTracker(det ObjectDetector, fragmentEvery int) *Tracker {
	return &Tracker{det: det, fragmentEvery: fragmentEvery}
}

// CenterTrack wraps det with the fragmentation behaviour calibrated for the
// paper's tracker: identities survive about 20 seconds (600 frames) before a
// re-identification.
func CenterTrack(det ObjectDetector) *Tracker { return NewTracker(det, 600) }

// Name implements ObjectDetector.
func (t *Tracker) Name() string { return t.det.Name() + "+track" }

// UnitCost implements ObjectDetector; tracking cost is folded into the
// wrapped detector's.
func (t *Tracker) UnitCost() time.Duration { return t.det.UnitCost() }

// FrameScore implements ObjectDetector (tracking does not change scores).
func (t *Tracker) FrameScore(v TruthVideo, typ string, frame int) float64 {
	return t.det.FrameScore(v, typ, frame)
}

// FrameScoreBatch implements BatchObjectScorer; tracking does not change
// scores, so the wrapped detector's batch path (if any) is used directly.
func (t *Tracker) FrameScoreBatch(v TruthVideo, typ string, start int, dst []float64) {
	FrameScoreBatch(t.det, v, typ, start, dst)
}

// AppendFrameEvents implements ObjectEventAppender: the wrapped detector's
// events are appended, then their identities remapped in place exactly as
// FrameDetections would.
func (t *Tracker) AppendFrameEvents(v TruthVideo, typ string, frame int, ev *Events) {
	n := ev.Len()
	AppendFrameEvents(t.det, v, typ, frame, ev)
	if t.fragmentEvery <= 0 {
		return
	}
	seg := int64(frame / t.fragmentEvery)
	for i := n; i < ev.Len(); i++ {
		if id := ev.Tracks[i]; id >= 0 {
			ev.Tracks[i] = id*1_000_000 + seg + 1
		}
	}
}

// FrameDetections implements ObjectDetector, remapping track identities.
func (t *Tracker) FrameDetections(v TruthVideo, typ string, frame int) []Detection {
	dets := t.det.FrameDetections(v, typ, frame)
	if t.fragmentEvery <= 0 {
		return dets
	}
	out := make([]Detection, len(dets))
	for i, d := range dets {
		seg := frame / t.fragmentEvery
		// Segment-local identity: stable within a segment, distinct across
		// segments and from all ground-truth IDs of other instances.
		id := d.TrackID
		if id >= 0 {
			id = id*1_000_000 + seg + 1
		}
		out[i] = Detection{TrackID: id, Score: d.Score}
	}
	return out
}
