package detect

import (
	"math"
	"sync"
	"time"

	"svqact/internal/video"
)

// simCore holds the machinery shared by the simulated object detector and
// action recogniser: profile-driven sampling plus a lazily materialised,
// deterministic false-positive burst overlay per (video, type).
type simCore struct {
	prof Profile
	seed uint64

	mu sync.Mutex
	// overlays is keyed video ID → type, two levels instead of a
	// concatenated string so the per-batch lookup allocates nothing.
	overlays map[string]map[string]video.IntervalSet
}

func newSimCore(prof Profile, seed int64) *simCore {
	return &simCore{
		prof:     prof,
		seed:     keyed(uint64(seed), hashString(prof.Name)),
		overlays: make(map[string]map[string]video.IntervalSet),
	}
}

// idScratch pools the per-batch track-ID buffers of the simulated scoring
// loops; detectors are shared across fleet workers, so the scratch cannot
// live on the detector itself.
var idScratch = sync.Pool{New: func() any { s := make([]int, 0, 16); return &s }}

// burstOverlay returns the false-positive burst intervals for a type in a
// video, generating them on first use. Bursts are an alternating renewal
// process drawn from a stream seeded by (model, video, type) only, so they
// are identical on every pass over the video.
func (c *simCore) burstOverlay(videoID, typ string, units int) video.IntervalSet {
	if c.prof.FPBurstGap <= 0 || c.prof.FPBurstLen <= 0 {
		return video.IntervalSet{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	byType := c.overlays[videoID]
	if s, ok := byType[typ]; ok {
		return s
	}
	if byType == nil {
		byType = make(map[string]video.IntervalSet)
		c.overlays[videoID] = byType
	}
	state := keyed(c.seed, hashString(videoID), hashString(typ), 0xb02575)
	next := func() float64 {
		state = mix64(state + 0x9e3779b97f4a7c15)
		return unitFloat(state)
	}
	exp := func(mean float64) float64 {
		u := next()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		return -mean * math.Log(1-u)
	}
	var ivs []video.Interval
	pos := 0
	for {
		pos += 1 + int(exp(c.prof.FPBurstGap))
		if pos >= units {
			break
		}
		end := min(units-1, pos+int(exp(c.prof.FPBurstLen)))
		ivs = append(ivs, video.Interval{Start: pos, End: end})
		pos = end + 1
	}
	s := video.NewIntervalSet(ivs...)
	byType[typ] = s
	return s
}

// falsePositive decides whether the model hallucinates the absent type on
// the unit and, if so, returns the score.
func (c *simCore) falsePositive(v TruthVideo, typ string, unit, units int) (float64, bool) {
	return c.falsePositiveIn(c.burstOverlay(v.ID(), typ, units), v, typ, unit)
}

// falsePositiveIn is falsePositive with the burst overlay already in hand,
// so batch callers fetch it (one lock) once per run instead of per unit.
func (c *simCore) falsePositiveIn(overlay video.IntervalSet, v TruthVideo, typ string, unit int) (float64, bool) {
	p := c.prof.FPIID
	if overlay.Contains(unit) {
		p = c.prof.FPWithinBurst
	}
	if p <= 0 {
		return 0, false
	}
	h := keyed(c.seed, hashString(v.ID()), hashString(typ), uint64(unit), 0xfa15e)
	if unitFloat(h) >= p {
		return 0, false
	}
	score := clampScore(c.prof.FPScoreMean + c.prof.FPScoreStd*gauss(mix64(h^0x5c0e)))
	return score, true
}

// truePositive decides whether a truly present instance is detected and
// scored. The extra key distinguishes instances sharing a frame.
func (c *simCore) truePositive(v TruthVideo, typ string, unit int, extra uint64) (float64, bool) {
	h := keyed(c.seed, hashString(v.ID()), hashString(typ), uint64(unit), extra, 0x7b0e)
	if unitFloat(h) >= c.prof.TPR {
		return 0, false
	}
	score := clampScore(c.prof.TPScoreMean + c.prof.TPScoreStd*gauss(mix64(h^0x3d09)))
	return score, true
}

// SimObjectDetector is an ObjectDetector that samples detections from a
// noise profile against ground truth. Construct with NewObjectDetector.
type SimObjectDetector struct {
	core *simCore
}

// NewObjectDetector builds a simulated object detector from a profile. The
// seed lets experiments draw independent noise realisations; the detections
// for a fixed (profile, seed) are deterministic.
func NewObjectDetector(prof Profile, seed int64) *SimObjectDetector {
	return &SimObjectDetector{core: newSimCore(prof, seed)}
}

// Name implements ObjectDetector.
func (d *SimObjectDetector) Name() string { return d.core.prof.Name }

// UnitCost implements ObjectDetector.
func (d *SimObjectDetector) UnitCost() time.Duration { return d.core.prof.UnitCost }

// FrameScore implements ObjectDetector.
func (d *SimObjectDetector) FrameScore(v TruthVideo, typ string, frame int) float64 {
	best := 0.0
	for _, id := range v.ObjectInstancesAt(typ, frame) {
		if s, ok := d.core.truePositive(v, typ, frame, uint64(id)); ok && s > best {
			best = s
		}
	}
	if best > 0 {
		return best
	}
	if !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			return s
		}
	}
	return 0
}

// FrameDetections implements ObjectDetector.
func (d *SimObjectDetector) FrameDetections(v TruthVideo, typ string, frame int) []Detection {
	var out []Detection
	for _, id := range v.ObjectInstancesAt(typ, frame) {
		if s, ok := d.core.truePositive(v, typ, frame, uint64(id)); ok {
			out = append(out, Detection{TrackID: id, Score: s})
		}
	}
	if len(out) == 0 && !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			// Hallucinations get a stable negative identity per ~3-second
			// window so the tracker-level aggregation sees them as one
			// phantom instance rather than many.
			id := -1 - int(keyed(hashString(v.ID()), hashString(typ), uint64(frame/30))%1_000_000)
			out = append(out, Detection{TrackID: id, Score: s})
		}
	}
	return out
}

// FrameScoreBatch implements BatchObjectScorer: identical draws to
// FrameScore, with the frame count and burst overlay hoisted out of the
// per-frame loop.
func (d *SimObjectDetector) FrameScoreBatch(v TruthVideo, typ string, start int, dst []float64) {
	overlay := d.core.burstOverlay(v.ID(), typ, v.NumFrames())
	idsp := idScratch.Get().(*[]int)
	defer idScratch.Put(idsp)
	for i := range dst {
		frame := start + i
		best := 0.0
		*idsp = AppendObjectInstancesAt(v, typ, frame, (*idsp)[:0])
		for _, id := range *idsp {
			if s, ok := d.core.truePositive(v, typ, frame, uint64(id)); ok && s > best {
				best = s
			}
		}
		if best == 0 && !v.ObjectPresentAt(typ, frame) {
			if s, ok := d.core.falsePositiveIn(overlay, v, typ, frame); ok {
				best = s
			}
		}
		dst[i] = best
	}
}

// AppendFrameEvents implements ObjectEventAppender: the same draws as
// FrameDetections, appended to the caller's columnar batch instead of a
// fresh slice.
func (d *SimObjectDetector) AppendFrameEvents(v TruthVideo, typ string, frame int, ev *Events) {
	n := ev.Len()
	idsp := idScratch.Get().(*[]int)
	defer idScratch.Put(idsp)
	*idsp = AppendObjectInstancesAt(v, typ, frame, (*idsp)[:0])
	for _, id := range *idsp {
		if s, ok := d.core.truePositive(v, typ, frame, uint64(id)); ok {
			ev.Append(frame, int64(id), s)
		}
	}
	if ev.Len() == n && !v.ObjectPresentAt(typ, frame) {
		if s, ok := d.core.falsePositive(v, typ, frame, v.NumFrames()); ok {
			// Same stable phantom identity as FrameDetections.
			id := -1 - int(keyed(hashString(v.ID()), hashString(typ), uint64(frame/30))%1_000_000)
			ev.Append(frame, int64(id), s)
		}
	}
}

// SimActionRecognizer is an ActionRecognizer sampling per-shot
// classifications from a noise profile.
type SimActionRecognizer struct {
	core *simCore
}

// NewActionRecognizer builds a simulated action recogniser from a profile.
func NewActionRecognizer(prof Profile, seed int64) *SimActionRecognizer {
	return &SimActionRecognizer{core: newSimCore(prof, seed)}
}

// Name implements ActionRecognizer.
func (r *SimActionRecognizer) Name() string { return r.core.prof.Name }

// UnitCost implements ActionRecognizer.
func (r *SimActionRecognizer) UnitCost() time.Duration { return r.core.prof.UnitCost }

// ShotScore implements ActionRecognizer.
func (r *SimActionRecognizer) ShotScore(v TruthVideo, act string, shot int) float64 {
	if v.ActionAt(act, shot) {
		if s, ok := r.core.truePositive(v, act, shot, 0); ok {
			return s
		}
		return 0
	}
	numShots := v.Geometry().NumShots(v.NumFrames())
	if s, ok := r.core.falsePositive(v, act, shot, numShots); ok {
		return s
	}
	return 0
}

// ShotScoreBatch implements BatchActionScorer: identical draws to
// ShotScore, with the shot count and burst overlay hoisted out of the
// per-shot loop.
func (r *SimActionRecognizer) ShotScoreBatch(v TruthVideo, act string, start int, dst []float64) {
	numShots := v.Geometry().NumShots(v.NumFrames())
	overlay := r.core.burstOverlay(v.ID(), act, numShots)
	for i := range dst {
		shot := start + i
		if v.ActionAt(act, shot) {
			s, ok := r.core.truePositive(v, act, shot, 0)
			if !ok {
				s = 0
			}
			dst[i] = s
			continue
		}
		s, ok := r.core.falsePositiveIn(overlay, v, act, shot)
		if !ok {
			s = 0
		}
		dst[i] = s
	}
}
