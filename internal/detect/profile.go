package detect

import "time"

// Profile calibrates a simulated model's error structure. The same profile
// type serves object detectors (occurrence unit: frame) and action
// recognisers (occurrence unit: shot).
type Profile struct {
	Name string

	// TPR is the probability a truly present type is detected on an
	// occurrence unit.
	TPR float64
	// TPScoreMean/Std shape the confidence scores of true detections
	// (clamped normal).
	TPScoreMean, TPScoreStd float64

	// FPIID is the probability of an isolated spurious detection of an
	// absent type per occurrence unit — the noise scan statistics are
	// designed to reject.
	FPIID float64
	// FPBurstGap and FPBurstLen parameterise sustained false-positive
	// episodes (a look-alike object in frame): mean units between bursts
	// and mean burst length. Zero FPBurstGap disables bursts.
	FPBurstGap, FPBurstLen float64
	// FPWithinBurst is the per-unit detection probability inside a burst.
	FPWithinBurst float64
	// FPScoreMean/Std shape hallucinated detection scores.
	FPScoreMean, FPScoreStd float64

	// UnitCost is the simulated inference latency per occurrence unit,
	// used for the runtime accounting of §5.2 (the paper reports >98% of
	// query latency is model inference).
	UnitCost time.Duration
}

// Calibrated model profiles. True-positive and false-positive rates are set
// so that, after the 0.5 score threshold, effective per-unit indicator rates
// land in the regimes the paper reports: Mask R-CNN strictly dominates
// YOLOv3, I3D has low per-shot noise, and the Ideal profiles reproduce
// ground truth exactly (paper Table 4's "ideal model" rows).
var (
	// MaskRCNN models the paper's high-accuracy two-stage object detector.
	MaskRCNN = Profile{
		Name:        "maskrcnn",
		TPR:         0.94,
		TPScoreMean: 0.84, TPScoreStd: 0.10,
		FPIID:      0.015,
		FPBurstGap: 3000, FPBurstLen: 45, FPWithinBurst: 0.55,
		FPScoreMean: 0.58, FPScoreStd: 0.10,
		UnitCost: 45 * time.Millisecond,
	}

	// YOLOv3 models the faster, noisier one-stage detector.
	YOLOv3 = Profile{
		Name:        "yolov3",
		TPR:         0.87,
		TPScoreMean: 0.78, TPScoreStd: 0.12,
		FPIID:      0.030,
		FPBurstGap: 2000, FPBurstLen: 60, FPWithinBurst: 0.60,
		FPScoreMean: 0.60, FPScoreStd: 0.11,
		UnitCost: 18 * time.Millisecond,
	}

	// I3D models the two-stream inflated 3D ConvNet action recogniser; its
	// occurrence unit is a shot.
	I3D = Profile{
		Name:        "i3d",
		TPR:         0.90,
		TPScoreMean: 0.80, TPScoreStd: 0.10,
		FPIID:      0.012,
		FPBurstGap: 500, FPBurstLen: 4, FPWithinBurst: 0.50,
		FPScoreMean: 0.57, FPScoreStd: 0.10,
		UnitCost: 90 * time.Millisecond,
	}

	// IdealObject reproduces object ground truth exactly (paper Table 4).
	IdealObject = Profile{
		Name: "ideal-object",
		TPR:  1, TPScoreMean: 1, TPScoreStd: 0,
	}

	// IdealAction reproduces action ground truth exactly.
	IdealAction = Profile{
		Name: "ideal-action",
		TPR:  1, TPScoreMean: 1, TPScoreStd: 0,
	}
)
