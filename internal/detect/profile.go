package detect

import (
	"math"
	"time"
)

// Profile calibrates a simulated model's error structure. The same profile
// type serves object detectors (occurrence unit: frame) and action
// recognisers (occurrence unit: shot).
type Profile struct {
	Name string

	// TPR is the probability a truly present type is detected on an
	// occurrence unit.
	TPR float64
	// TPScoreMean/Std shape the confidence scores of true detections
	// (clamped normal).
	TPScoreMean, TPScoreStd float64

	// FPIID is the probability of an isolated spurious detection of an
	// absent type per occurrence unit — the noise scan statistics are
	// designed to reject.
	FPIID float64
	// FPBurstGap and FPBurstLen parameterise sustained false-positive
	// episodes (a look-alike object in frame): mean units between bursts
	// and mean burst length. Zero FPBurstGap disables bursts.
	FPBurstGap, FPBurstLen float64
	// FPWithinBurst is the per-unit detection probability inside a burst.
	FPWithinBurst float64
	// FPScoreMean/Std shape hallucinated detection scores.
	FPScoreMean, FPScoreStd float64

	// UnitCost is the simulated inference latency per occurrence unit,
	// used for the runtime accounting of §5.2 (the paper reports >98% of
	// query latency is model inference).
	UnitCost time.Duration
}

// scoreTail returns P(score ≥ t) for a clamped-normal score distribution
// with the given mean and std. Scores clamp into (0, 1], so for thresholds
// in that range the clamping does not move mass across t and the plain
// normal tail applies; a zero std collapses to a point mass at the mean.
func scoreTail(t, mean, std float64) float64 {
	if t <= 0 {
		return 1
	}
	if std <= 0 {
		if mean >= t {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((t-mean)/(std*math.Sqrt2))
}

// fpUnitRate is the steady-state per-unit probability of a hallucinated
// detection: the burst process is an alternating renewal with mean gap
// FPBurstGap and mean length FPBurstLen, so a unit is inside a burst with
// probability len/(gap+len), hallucinating at FPWithinBurst there and FPIID
// elsewhere.
func (p Profile) fpUnitRate() float64 {
	bf := 0.0
	if p.FPBurstGap > 0 && p.FPBurstLen > 0 {
		bf = p.FPBurstLen / (p.FPBurstGap + p.FPBurstLen)
	}
	return (1-bf)*p.FPIID + bf*p.FPWithinBurst
}

// EffectiveTPR is the probability a truly present unit yields a score ≥
// threshold: the detection rate times the true-positive score tail. This is
// the per-tier indicator-level TPR the planner and the calibration tests
// reason about.
func (p Profile) EffectiveTPR(threshold float64) float64 {
	return p.TPR * scoreTail(threshold, p.TPScoreMean, p.TPScoreStd)
}

// EffectiveFPR is the steady-state probability an absent unit yields a
// score ≥ threshold: the hallucination rate times the false-positive score
// tail.
func (p Profile) EffectiveFPR(threshold float64) float64 {
	return p.fpUnitRate() * scoreTail(threshold, p.FPScoreMean, p.FPScoreStd)
}

// presencePrior is the assumed fraction of units whose type is truly
// present, used only to seed escalation priors before the planner observes
// real traffic. The synthetic worlds are sparse; the live estimators take
// over within a few clips either way.
const presencePrior = 0.1

// EscalationPrior estimates the probability a unit scored under this
// profile lands in the escalation band b: present units contribute the
// true-positive band mass, absent units the hallucination band mass.
func (p Profile) EscalationPrior(b Band) float64 {
	tp := p.TPR * (scoreTail(b.Lo, p.TPScoreMean, p.TPScoreStd) - scoreTail(b.Hi, p.TPScoreMean, p.TPScoreStd))
	fp := p.fpUnitRate() * (scoreTail(b.Lo, p.FPScoreMean, p.FPScoreStd) - scoreTail(b.Hi, p.FPScoreMean, p.FPScoreStd))
	e := presencePrior*tp + (1-presencePrior)*fp
	return math.Min(1, math.Max(0, e))
}

// Calibrated model profiles. True-positive and false-positive rates are set
// so that, after the 0.5 score threshold, effective per-unit indicator rates
// land in the regimes the paper reports: Mask R-CNN strictly dominates
// YOLOv3, I3D has low per-shot noise, and the Ideal profiles reproduce
// ground truth exactly (paper Table 4's "ideal model" rows).
var (
	// MaskRCNN models the paper's high-accuracy two-stage object detector.
	MaskRCNN = Profile{
		Name:        "maskrcnn",
		TPR:         0.94,
		TPScoreMean: 0.84, TPScoreStd: 0.10,
		FPIID:      0.015,
		FPBurstGap: 3000, FPBurstLen: 45, FPWithinBurst: 0.55,
		FPScoreMean: 0.58, FPScoreStd: 0.10,
		UnitCost: 45 * time.Millisecond,
	}

	// YOLOv3 models the faster, noisier one-stage detector.
	YOLOv3 = Profile{
		Name:        "yolov3",
		TPR:         0.87,
		TPScoreMean: 0.78, TPScoreStd: 0.12,
		FPIID:      0.030,
		FPBurstGap: 2000, FPBurstLen: 60, FPWithinBurst: 0.60,
		FPScoreMean: 0.60, FPScoreStd: 0.11,
		UnitCost: 18 * time.Millisecond,
	}

	// I3D models the two-stream inflated 3D ConvNet action recogniser; its
	// occurrence unit is a shot.
	I3D = Profile{
		Name:        "i3d",
		TPR:         0.90,
		TPScoreMean: 0.80, TPScoreStd: 0.10,
		FPIID:      0.012,
		FPBurstGap: 500, FPBurstLen: 4, FPWithinBurst: 0.50,
		FPScoreMean: 0.57, FPScoreStd: 0.10,
		UnitCost: 90 * time.Millisecond,
	}

	// DistilledRCNN calibrates the recall-complete distilled student of
	// Mask R-CNN used as the cheap tier of the default object cascade: 15×
	// cheaper per frame, with the extra hallucination rate the distillation
	// trades for never missing a teacher detection. The TPR/TPScore fields
	// describe its indicator-level behaviour (teacher recall preserved,
	// scores shifted down) for calibration checks and planner priors; the
	// simulated proxy delegates true detections to its teacher, so only the
	// FP fields and UnitCost drive draws.
	DistilledRCNN = Profile{
		Name:        "distilled-rcnn",
		TPR:         0.94,
		TPScoreMean: 0.70, TPScoreStd: 0.14,
		FPIID:      0.060,
		FPBurstGap: 1200, FPBurstLen: 70, FPWithinBurst: 0.70,
		FPScoreMean: 0.52, FPScoreStd: 0.12,
		UnitCost: 3 * time.Millisecond,
	}

	// DistilledI3D calibrates the recall-complete distilled student of I3D
	// used as the cheap tier of the default action cascade: 10× cheaper per
	// shot.
	DistilledI3D = Profile{
		Name:        "distilled-i3d",
		TPR:         0.90,
		TPScoreMean: 0.68, TPScoreStd: 0.13,
		FPIID:      0.050,
		FPBurstGap: 350, FPBurstLen: 6, FPWithinBurst: 0.60,
		FPScoreMean: 0.52, FPScoreStd: 0.12,
		UnitCost: 9 * time.Millisecond,
	}

	// IdealObject reproduces object ground truth exactly (paper Table 4).
	IdealObject = Profile{
		Name: "ideal-object",
		TPR:  1, TPScoreMean: 1, TPScoreStd: 0,
	}

	// IdealAction reproduces action ground truth exactly.
	IdealAction = Profile{
		Name: "ideal-action",
		TPR:  1, TPScoreMean: 1, TPScoreStd: 0,
	}
)
