package detect

import (
	"math"
	"testing"
	"time"

	"svqact/internal/synth"
	"svqact/internal/video"
)

// The simulated models must accept generated videos directly.
var _ TruthVideo = (*synth.Video)(nil)

func testVideo(t *testing.T, seed int64) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID:       "dv",
		Frames:   30_000,
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     seed,
		Actions:  []synth.ActionSpec{{Name: "jumping", MeanGapShots: 25, MeanDurShots: 8}},
		Objects: []synth.ObjectSpec{
			{Name: "car", MeanGapFrames: 1200, MeanDurFrames: 250},
			{Name: "human", MeanDurFrames: 150, CorrelatedWith: "jumping", CorrelationProb: 0.9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestObjectDetectorDeterministic(t *testing.T) {
	v := testVideo(t, 1)
	d1 := NewObjectDetector(MaskRCNN, 7)
	d2 := NewObjectDetector(MaskRCNN, 7)
	for f := 0; f < v.NumFrames(); f += 101 {
		if d1.FrameScore(v, "car", f) != d2.FrameScore(v, "car", f) {
			t.Fatalf("frame %d: same model+seed disagree", f)
		}
	}
	d3 := NewObjectDetector(MaskRCNN, 8)
	same := true
	for f := 0; f < 5000; f++ {
		if d1.FrameScore(v, "car", f) != d3.FrameScore(v, "car", f) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical detections")
	}
}

func TestObjectDetectorCalibration(t *testing.T) {
	v := testVideo(t, 2)
	for _, prof := range []Profile{MaskRCNN, YOLOv3} {
		d := NewObjectDetector(prof, 3)
		m := NewModels(d, nil)
		var tp, present, fp, absent int
		for f := 0; f < v.NumFrames(); f++ {
			pos := m.ObjectPositive(v, "car", f)
			if v.ObjectPresentAt("car", f) {
				present++
				if pos {
					tp++
				}
			} else {
				absent++
				if pos {
					fp++
				}
			}
		}
		tpr := float64(tp) / float64(present)
		fpr := float64(fp) / float64(absent)
		// Post-threshold TPR is profile TPR times the mass of the score
		// distribution above 0.5; both calibrated profiles keep most mass
		// above it.
		if tpr < 0.7*prof.TPR || tpr > prof.TPR+1e-9 {
			t.Errorf("%s: post-threshold TPR %v out of range for profile TPR %v", prof.Name, tpr, prof.TPR)
		}
		if fpr <= 0 || fpr > 0.15 {
			t.Errorf("%s: FPR %v out of expected range", prof.Name, fpr)
		}
	}
}

func TestMaskRCNNBeatsYOLO(t *testing.T) {
	v := testVideo(t, 4)
	rates := map[string][2]float64{}
	for _, prof := range []Profile{MaskRCNN, YOLOv3} {
		m := NewModels(NewObjectDetector(prof, 3), nil)
		var tp, present, fp, absent int
		for f := 0; f < v.NumFrames(); f++ {
			pos := m.ObjectPositive(v, "car", f)
			if v.ObjectPresentAt("car", f) {
				present++
				if pos {
					tp++
				}
			} else {
				absent++
				if pos {
					fp++
				}
			}
		}
		rates[prof.Name] = [2]float64{float64(tp) / float64(present), float64(fp) / float64(absent)}
	}
	if rates["maskrcnn"][0] <= rates["yolov3"][0] {
		t.Errorf("MaskRCNN TPR %v should beat YOLOv3 %v", rates["maskrcnn"][0], rates["yolov3"][0])
	}
	if rates["maskrcnn"][1] >= rates["yolov3"][1] {
		t.Errorf("MaskRCNN FPR %v should be below YOLOv3 %v", rates["maskrcnn"][1], rates["yolov3"][1])
	}
}

func TestIdealModelsReproduceTruth(t *testing.T) {
	v := testVideo(t, 5)
	m := NewModels(NewObjectDetector(IdealObject, 0), NewActionRecognizer(IdealAction, 0))
	for f := 0; f < v.NumFrames(); f += 17 {
		if m.ObjectPositive(v, "car", f) != v.ObjectPresentAt("car", f) {
			t.Fatalf("ideal object detector wrong at frame %d", f)
		}
	}
	numShots := v.Geometry().NumShots(v.NumFrames())
	for s := 0; s < numShots; s++ {
		if m.ActionPositive(v, "jumping", s) != v.ActionAt("jumping", s) {
			t.Fatalf("ideal action recogniser wrong at shot %d", s)
		}
	}
}

func TestFrameScoreConsistentWithDetections(t *testing.T) {
	v := testVideo(t, 6)
	d := NewObjectDetector(YOLOv3, 9)
	for f := 0; f < v.NumFrames(); f += 53 {
		max := 0.0
		for _, det := range d.FrameDetections(v, "car", f) {
			if det.Score <= 0 || det.Score > 1 {
				t.Fatalf("frame %d: score %v out of (0,1]", f, det.Score)
			}
			if det.Score > max {
				max = det.Score
			}
		}
		if got := d.FrameScore(v, "car", f); math.Abs(got-max) > 1e-12 {
			t.Fatalf("frame %d: FrameScore %v != max detection %v", f, got, max)
		}
	}
}

func TestDetectionsCarryGroundTruthIDs(t *testing.T) {
	v := testVideo(t, 7)
	d := NewObjectDetector(MaskRCNN, 1)
	checked := 0
	for f := 0; f < v.NumFrames() && checked < 200; f++ {
		if !v.ObjectPresentAt("car", f) {
			continue
		}
		ids := map[int]bool{}
		for _, id := range v.ObjectInstancesAt("car", f) {
			ids[id] = true
		}
		for _, det := range d.FrameDetections(v, "car", f) {
			if det.TrackID < 0 {
				t.Fatalf("frame %d: true detection with negative id", f)
			}
			if !ids[det.TrackID] {
				t.Fatalf("frame %d: detection id %d not a ground-truth instance", f, det.TrackID)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no present frames found")
	}
}

func TestFalsePositiveIdentitiesNegativeAndStable(t *testing.T) {
	v := testVideo(t, 8)
	d := NewObjectDetector(YOLOv3, 2)
	found := false
	for f := 0; f < v.NumFrames(); f++ {
		if v.ObjectPresentAt("car", f) {
			continue
		}
		dets := d.FrameDetections(v, "car", f)
		for _, det := range dets {
			if det.TrackID >= 0 {
				t.Fatalf("frame %d: hallucination with non-negative id %d", f, det.TrackID)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no false positives sampled; calibration too clean for this test")
	}
}

func TestActionRecognizerCalibration(t *testing.T) {
	v := testVideo(t, 9)
	m := NewModels(nil, NewActionRecognizer(I3D, 3))
	numShots := v.Geometry().NumShots(v.NumFrames())
	var tp, present, fp, absent int
	for s := 0; s < numShots; s++ {
		pos := m.ActionPositive(v, "jumping", s)
		if v.ActionAt("jumping", s) {
			present++
			if pos {
				tp++
			}
		} else {
			absent++
			if pos {
				fp++
			}
		}
	}
	if present == 0 {
		t.Fatal("no action shots")
	}
	tpr := float64(tp) / float64(present)
	fpr := float64(fp) / float64(absent)
	if tpr < 0.65 || fpr > 0.1 || fpr <= 0 {
		t.Errorf("I3D post-threshold rates off: TPR %v FPR %v", tpr, fpr)
	}
}

func TestBurstsProduceRuns(t *testing.T) {
	// Within-burst FP rates must be visibly higher than the background rate:
	// sort absent frames into runs flagged positive and check the longest
	// run is burst-like (several consecutive hits would be vanishingly
	// unlikely under iid noise alone).
	v := testVideo(t, 10)
	d := NewObjectDetector(YOLOv3, 11)
	m := NewModels(d, nil)
	run, maxRun := 0, 0
	for f := 0; f < v.NumFrames(); f++ {
		if v.ObjectPresentAt("car", f) {
			run = 0
			continue
		}
		if m.ObjectPositive(v, "car", f) {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 3 {
		t.Errorf("longest FP run %d; bursts should produce longer runs", maxRun)
	}
}

func TestTrackerFragmentsLongTracks(t *testing.T) {
	v := testVideo(t, 12)
	base := NewObjectDetector(IdealObject, 0)
	tr := NewTracker(base, 100)
	// Find a long appearance and check its identity changes across segments
	// while staying stable within one.
	apps := v.ObjectAppearances("car")
	var long *synth.Appearance
	for i := range apps {
		if apps[i].Frames.Len() > 300 {
			long = &apps[i]
			break
		}
	}
	if long == nil {
		t.Skip("no long appearance in this realisation")
	}
	idAt := func(f int) int {
		for _, d := range tr.FrameDetections(v, "car", f) {
			if d.TrackID/1_000_000 == long.TrackID {
				return d.TrackID
			}
		}
		return 0
	}
	f0 := long.Frames.Start
	a, b := idAt(f0), idAt(f0+1)
	if a == 0 || a != b {
		// The two frames are in the same segment only if they do not
		// straddle a boundary; pick a pair safely inside one segment.
		f0 = (f0/100)*100 + 1
		a, b = idAt(f0), idAt(f0+1)
		if a == 0 || a != b {
			t.Fatalf("identity unstable within segment: %d vs %d", a, b)
		}
	}
	c := idAt(f0 + 150)
	if c != 0 && c == a {
		t.Error("identity did not change across segment boundary")
	}
	if got := tr.Name(); got != "ideal-object+track" {
		t.Errorf("tracker name %q", got)
	}
	if tr.UnitCost() != base.UnitCost() {
		t.Error("tracker should inherit unit cost")
	}
}

func TestTrackerNoFragmentationPassThrough(t *testing.T) {
	v := testVideo(t, 13)
	base := NewObjectDetector(MaskRCNN, 1)
	tr := NewTracker(base, 0)
	for f := 0; f < 3000; f += 7 {
		a := base.FrameDetections(v, "car", f)
		b := tr.FrameDetections(v, "car", f)
		if len(a) != len(b) {
			t.Fatalf("frame %d: lengths differ", f)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d: detection %d differs", f, i)
			}
		}
		if base.FrameScore(v, "car", f) != tr.FrameScore(v, "car", f) {
			t.Fatalf("frame %d: scores differ", f)
		}
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.AddObjectFrames(100)
	m.AddObjectFrames(50)
	m.AddActionShots(30)
	if m.ObjectFrames() != 150 || m.ActionShots() != 30 {
		t.Fatalf("counters: %d, %d", m.ObjectFrames(), m.ActionShots())
	}
	models := NewModels(NewObjectDetector(MaskRCNN, 0), NewActionRecognizer(I3D, 0))
	want := 150*45*time.Millisecond + 30*90*time.Millisecond
	if got := m.Cost(models); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if got := m.Cost(Models{}); got != 0 {
		t.Errorf("Cost with nil models = %v", got)
	}
	m.Reset()
	if m.ObjectFrames() != 0 || m.ActionShots() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestModelsThresholds(t *testing.T) {
	m := NewModels(NewObjectDetector(IdealObject, 0), NewActionRecognizer(IdealAction, 0))
	if m.ObjThreshold != DefaultThreshold || m.ActThreshold != DefaultThreshold {
		t.Errorf("default thresholds wrong: %+v", m)
	}
}
