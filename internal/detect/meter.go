package detect

import (
	"sync/atomic"
	"time"
)

// Meter accumulates inference accounting for the runtime analysis of §5.2:
// the engine registers each occurrence unit it actually runs a model on
// (object inference covers all types in one pass, so a frame is charged once
// no matter how many query predicates read it), and the meter prices the
// total against the models' simulated unit costs.
type Meter struct {
	objectFrames atomic.Int64
	actionShots  atomic.Int64
}

// AddObjectFrames records n frames passed through the object detector.
func (m *Meter) AddObjectFrames(n int) { m.objectFrames.Add(int64(n)) }

// AddActionShots records n shots passed through the action recogniser.
func (m *Meter) AddActionShots(n int) { m.actionShots.Add(int64(n)) }

// ObjectFrames returns the number of object-detector inferences.
func (m *Meter) ObjectFrames() int64 { return m.objectFrames.Load() }

// ActionShots returns the number of action-recogniser inferences.
func (m *Meter) ActionShots() int64 { return m.actionShots.Load() }

// Cost prices the recorded inferences with the given models.
func (m *Meter) Cost(models Models) time.Duration {
	oc, ac := time.Duration(0), time.Duration(0)
	if models.Objects != nil {
		oc = models.Objects.UnitCost()
	}
	if models.Actions != nil {
		ac = models.Actions.UnitCost()
	}
	return time.Duration(m.ObjectFrames())*oc + time.Duration(m.ActionShots())*ac
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	m.objectFrames.Store(0)
	m.actionShots.Store(0)
}
