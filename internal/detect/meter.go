package detect

import (
	"strings"
	"sync"
	"time"

	"svqact/internal/obs"
)

// Detector kinds, the label values of the per-kind metrics and the Kind
// field of DetectionError.
const (
	KindObject = "object"
	KindAction = "action"
)

// Meter accumulates inference accounting for the runtime analysis of §5.2
// and the serving metrics: the engine registers each occurrence unit it
// actually runs a model on (object inference covers all types in one pass,
// so a frame is charged once no matter how many query predicates read it),
// every invocation attempt with its retry/fault outcome, and every clip
// skipped-and-flagged after retry exhaustion. The meter prices the inference
// total against the models' simulated unit costs.
//
// Counters are obs instruments, so a server-lifetime meter exposes them
// directly on /metrics via Register — the engine's charge sites are the only
// accounting path. The zero value is ready to use.
type Meter struct {
	objectFrames obs.Counter
	actionShots  obs.Counter

	objAttempts obs.Counter
	actAttempts obs.Counter
	objRetries  obs.Counter
	actRetries  obs.Counter

	objTransient obs.Counter
	actTransient obs.Counter
	objPermanent obs.Counter
	actPermanent obs.Counter

	objFlagged obs.Counter
	actFlagged obs.Counter

	// Tier accounting is dynamic: cascade tiers are named models discovered
	// at charge time, so their counters live in a map and attach lazily to
	// the registry the meter was registered on.
	mu    sync.Mutex
	reg   *obs.Registry
	tiers map[string]*tierCounters
}

// tierCounters is the per-(kind, tier) counter block of the
// svqact_detect_tier_* families.
type tierCounters struct {
	units       obs.Counter
	decided     obs.Counter
	escalated   obs.Counter
	fellthrough obs.Counter
}

// AddObjectFrames records n frames passed through the object detector.
func (m *Meter) AddObjectFrames(n int) { m.objectFrames.Add(int64(n)) }

// AddActionShots records n shots passed through the action recogniser.
func (m *Meter) AddActionShots(n int) { m.actionShots.Add(int64(n)) }

// ObjectFrames returns the number of object-detector inferences.
func (m *Meter) ObjectFrames() int64 { return m.objectFrames.Value() }

// ActionShots returns the number of action-recogniser inferences.
func (m *Meter) ActionShots() int64 { return m.actionShots.Value() }

// RecordAttempt records one model invocation attempt; attempts past the
// first additionally count as retries.
func (m *Meter) RecordAttempt(kind string, attempt int) {
	a, r := &m.objAttempts, &m.objRetries
	if kind == KindAction {
		a, r = &m.actAttempts, &m.actRetries
	}
	a.Inc()
	if attempt > 0 {
		r.Inc()
	}
}

// RecordAttempts records n first-attempt invocations in one shot — the
// batch-scoring path's equivalent of n RecordAttempt(kind, 0) calls.
func (m *Meter) RecordAttempts(kind string, n int) {
	a := &m.objAttempts
	if kind == KindAction {
		a = &m.actAttempts
	}
	a.Add(int64(n))
}

// RecordFault records one failed invocation attempt by outcome class.
func (m *Meter) RecordFault(kind string, transient bool) {
	switch {
	case kind == KindAction && transient:
		m.actTransient.Inc()
	case kind == KindAction:
		m.actPermanent.Inc()
	case transient:
		m.objTransient.Inc()
	default:
		m.objPermanent.Inc()
	}
}

// RecordFlagged records one clip skipped-and-flagged after retry exhaustion,
// attributed to the detector kind whose invocation exhausted its retries.
func (m *Meter) RecordFlagged(kind string) {
	if kind == KindAction {
		m.actFlagged.Inc()
	} else {
		m.objFlagged.Inc()
	}
}

// Attempts returns the invocation attempts recorded for the kind.
func (m *Meter) Attempts(kind string) int64 {
	if kind == KindAction {
		return m.actAttempts.Value()
	}
	return m.objAttempts.Value()
}

// Retries returns the re-attempts (attempt > 0) recorded for the kind.
func (m *Meter) Retries(kind string) int64 {
	if kind == KindAction {
		return m.actRetries.Value()
	}
	return m.objRetries.Value()
}

// Faults returns the failed attempts of the given outcome class.
func (m *Meter) Faults(kind string, transient bool) int64 {
	switch {
	case kind == KindAction && transient:
		return m.actTransient.Value()
	case kind == KindAction:
		return m.actPermanent.Value()
	case transient:
		return m.objTransient.Value()
	default:
		return m.objPermanent.Value()
	}
}

// Flagged returns the clips skipped-and-flagged for the kind.
func (m *Meter) Flagged(kind string) int64 {
	if kind == KindAction {
		return m.actFlagged.Value()
	}
	return m.objFlagged.Value()
}

// tier returns the counter block for a (kind, tier) pair, creating it — and
// attaching it to the registry when the meter is registered — on first use.
func (m *Meter) tier(kind, name string) *tierCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := kind + "/" + name
	tc, ok := m.tiers[key]
	if !ok {
		if m.tiers == nil {
			m.tiers = make(map[string]*tierCounters)
		}
		tc = &tierCounters{}
		m.tiers[key] = tc
		if m.reg != nil {
			attachTierCounters(m.reg, kind, name, tc)
		}
	}
	return tc
}

func attachTierCounters(r *obs.Registry, kind, name string, tc *tierCounters) {
	kl, tl := obs.L("kind", kind), obs.L("tier", name)
	r.AttachCounter("svqact_detect_tier_units_total",
		"Inference units scored at each cascade tier.",
		&tc.units, kl, tl)
	r.AttachCounter("svqact_detect_tier_decisions_total",
		"Cascade tier outcomes: units decided at the tier, escalated past it, or fallen through after tier failure.",
		&tc.decided, kl, tl, obs.L("outcome", "decided"))
	r.AttachCounter("svqact_detect_tier_decisions_total", "",
		&tc.escalated, kl, tl, obs.L("outcome", "escalated"))
	r.AttachCounter("svqact_detect_tier_decisions_total", "",
		&tc.fellthrough, kl, tl, obs.L("outcome", "fallthrough"))
}

// RecordTier adds one tier's accounting deltas: units scored at the tier
// and how many of them were decided there, escalated past it, or fell
// through on tier failure.
func (m *Meter) RecordTier(kind, tier string, units, decided, escalated, fellthrough int64) {
	tc := m.tier(kind, tier)
	tc.units.Add(units)
	tc.decided.Add(decided)
	tc.escalated.Add(escalated)
	tc.fellthrough.Add(fellthrough)
}

// RecordCascade flushes a cascade account against the cascade's tier
// descriptions — one RecordTier per tier that saw traffic.
func (m *Meter) RecordCascade(kind string, infos []TierInfo, acc *CascadeAccount) {
	for i, ti := range infos {
		if i >= len(acc.Units) {
			break
		}
		u, d, e, f := acc.Units[i], acc.Decided[i], acc.Escalated[i], acc.Fallthroughs[i]
		if u == 0 && d == 0 && e == 0 && f == 0 {
			continue
		}
		m.RecordTier(kind, ti.Name, u, d, e, f)
	}
}

// TierUnits returns the units scored at a tier.
func (m *Meter) TierUnits(kind, tier string) int64 {
	return m.tier(kind, tier).units.Value()
}

// TierOutcome returns a tier's count for one outcome: "decided",
// "escalated" or "fallthrough".
func (m *Meter) TierOutcome(kind, tier, outcome string) int64 {
	tc := m.tier(kind, tier)
	switch outcome {
	case "escalated":
		return tc.escalated.Value()
	case "fallthrough":
		return tc.fellthrough.Value()
	default:
		return tc.decided.Value()
	}
}

// Cost prices the recorded inferences with the given models.
func (m *Meter) Cost(models Models) time.Duration {
	oc, ac := time.Duration(0), time.Duration(0)
	if models.Objects != nil {
		oc = models.Objects.UnitCost()
	}
	if models.Actions != nil {
		ac = models.Actions.UnitCost()
	}
	return time.Duration(m.ObjectFrames())*oc + time.Duration(m.ActionShots())*ac
}

// Reset zeroes every counter. Only meaningful for per-run meters; a meter
// registered for scraping must stay monotone.
func (m *Meter) Reset() {
	for _, c := range []*obs.Counter{
		&m.objectFrames, &m.actionShots,
		&m.objAttempts, &m.actAttempts, &m.objRetries, &m.actRetries,
		&m.objTransient, &m.actTransient, &m.objPermanent, &m.actPermanent,
		&m.objFlagged, &m.actFlagged,
	} {
		c.Reset()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tc := range m.tiers {
		tc.units.Reset()
		tc.decided.Reset()
		tc.escalated.Reset()
		tc.fellthrough.Reset()
	}
}

// Register exposes the meter's counters on the registry as the
// svqact_detect_* metric families, labelled by detector kind. The registry
// serves the very counters the engine charges, so /metrics can never
// disagree with the meter.
func (m *Meter) Register(r *obs.Registry) {
	m.mu.Lock()
	m.reg = r
	for key, tc := range m.tiers {
		k, t, _ := strings.Cut(key, "/")
		attachTierCounters(r, k, t, tc)
	}
	m.mu.Unlock()
	kind := func(k string) obs.Label { return obs.L("kind", k) }
	r.AttachCounter("svqact_detect_inferences_total",
		"Model inference units executed (frames for objects, shots for actions).",
		&m.objectFrames, kind(KindObject))
	r.AttachCounter("svqact_detect_inferences_total", "",
		&m.actionShots, kind(KindAction))
	r.AttachCounter("svqact_detect_attempts_total",
		"Model invocation attempts, including retries.",
		&m.objAttempts, kind(KindObject))
	r.AttachCounter("svqact_detect_attempts_total", "",
		&m.actAttempts, kind(KindAction))
	r.AttachCounter("svqact_detect_retries_total",
		"Model invocation re-attempts after a transient failure.",
		&m.objRetries, kind(KindObject))
	r.AttachCounter("svqact_detect_retries_total", "",
		&m.actRetries, kind(KindAction))
	r.AttachCounter("svqact_detect_faults_total",
		"Failed model invocation attempts by outcome class.",
		&m.objTransient, kind(KindObject), obs.L("outcome", "transient"))
	r.AttachCounter("svqact_detect_faults_total", "",
		&m.objPermanent, kind(KindObject), obs.L("outcome", "permanent"))
	r.AttachCounter("svqact_detect_faults_total", "",
		&m.actTransient, kind(KindAction), obs.L("outcome", "transient"))
	r.AttachCounter("svqact_detect_faults_total", "",
		&m.actPermanent, kind(KindAction), obs.L("outcome", "permanent"))
	r.AttachCounter("svqact_detect_flagged_clips_total",
		"Clips skipped-and-flagged after detector retry exhaustion.",
		&m.objFlagged, kind(KindObject))
	r.AttachCounter("svqact_detect_flagged_clips_total", "",
		&m.actFlagged, kind(KindAction))
}
