package detect

import (
	"errors"
	"fmt"
	"time"
)

// Fault injection for the detection models. Real serving treats detectors as
// remote, unreliable dependencies: invocations time out, backends restart,
// individual inputs poison a model. The decorators here graft exactly that
// failure surface onto any ObjectDetector/ActionRecognizer so the engine's
// retry and skip-and-flag machinery can be exercised deterministically.
//
// Faults are pure functions of (seed, video, type, unit, attempt), like every
// other draw in this package: a transient fault on attempt 0 may clear on
// attempt 1, a permanent fault fails every attempt, and repeated runs observe
// identical fault patterns — which is what makes degraded results testable.

// DetectionError reports a failed model invocation.
type DetectionError struct {
	// Model is the failing model's name.
	Model string
	// Kind is "object" or "action".
	Kind string
	// Type is the queried object/action type; Unit the frame or shot.
	Type string
	Unit int
	// Transient marks faults that may clear on retry.
	Transient bool
}

func (e *DetectionError) Error() string {
	mode := "permanent"
	if e.Transient {
		mode = "transient"
	}
	return fmt.Sprintf("detect: %s failure of %s on %s type %q unit %d", mode, e.Model, e.Kind, e.Type, e.Unit)
}

// IsTransient reports whether err is worth retrying. Injected faults say so
// explicitly; unknown errors are treated as transient (the conservative
// choice for a remote dependency).
func IsTransient(err error) bool {
	var de *DetectionError
	if errors.As(err, &de) {
		return de.Transient
	}
	return err != nil
}

// FallibleObjectDetector is the optional fault-aware interface of an object
// detector: the Attempt methods surface invocation failures and let the
// caller distinguish retries (the plain ObjectDetector methods stay
// infallible for callers that predate the failure model).
type FallibleObjectDetector interface {
	ObjectDetector
	FrameScoreAttempt(v TruthVideo, typ string, frame, attempt int) (float64, error)
	FrameDetectionsAttempt(v TruthVideo, typ string, frame, attempt int) ([]Detection, error)
}

// FallibleActionRecognizer is the fault-aware interface of an action
// recogniser.
type FallibleActionRecognizer interface {
	ActionRecognizer
	ShotScoreAttempt(v TruthVideo, act string, shot, attempt int) (float64, error)
}

// FaultConfig parameterises injected faults.
type FaultConfig struct {
	// TransientRate is the per-attempt probability of a transient failure;
	// independent across attempts, so retries absorb it.
	TransientRate float64
	// PermanentRate is the per-unit probability that every attempt on the
	// unit fails (a poisoned input or a dead shard).
	PermanentRate float64
	// SpikeRate and SpikeDelay inject latency spikes: with probability
	// SpikeRate an invocation sleeps SpikeDelay before answering.
	SpikeRate  float64
	SpikeDelay time.Duration
	// Seed makes the fault pattern deterministic; different seeds draw
	// independent fault realisations.
	Seed int64
}

// Validate reports whether the rates are usable probabilities.
func (c FaultConfig) Validate() error {
	for _, p := range []float64{c.TransientRate, c.PermanentRate, c.SpikeRate} {
		if p < 0 || p > 1 {
			return fmt.Errorf("detect: fault rate %v out of [0,1]", p)
		}
	}
	return nil
}

// faultCore implements the fault draws shared by both decorators.
type faultCore struct {
	cfg  FaultConfig
	seed uint64
}

func newFaultCore(cfg FaultConfig, kind string) faultCore {
	return faultCore{cfg: cfg, seed: keyed(uint64(cfg.Seed), hashString("fault/"+kind))}
}

// fault decides the outcome of one attempt: a latency spike (slept here) and
// possibly an error. The permanent draw depends only on the unit; the
// transient draw is independent per attempt.
func (c faultCore) fault(model, kind string, v TruthVideo, typ string, unit, attempt int) error {
	h := keyed(c.seed, hashString(v.ID()), hashString(typ), uint64(unit))
	if c.cfg.SpikeRate > 0 && c.cfg.SpikeDelay > 0 &&
		unitFloat(keyed(h, uint64(attempt), 0x51a7e)) < c.cfg.SpikeRate {
		time.Sleep(c.cfg.SpikeDelay)
	}
	if c.cfg.PermanentRate > 0 && unitFloat(mix64(h^0xdead)) < c.cfg.PermanentRate {
		return &DetectionError{Model: model, Kind: kind, Type: typ, Unit: unit, Transient: false}
	}
	if c.cfg.TransientRate > 0 && unitFloat(keyed(h, uint64(attempt), 0xf1a9)) < c.cfg.TransientRate {
		return &DetectionError{Model: model, Kind: kind, Type: typ, Unit: unit, Transient: true}
	}
	return nil
}

// FaultyObjectDetector decorates an ObjectDetector with injected faults.
// The plain ObjectDetector methods delegate untouched; only fault-aware
// callers (the Attempt methods) observe failures.
type FaultyObjectDetector struct {
	inner ObjectDetector
	core  faultCore
}

// InjectObjectFaults wraps d with deterministic fault injection.
func InjectObjectFaults(d ObjectDetector, cfg FaultConfig) *FaultyObjectDetector {
	return &FaultyObjectDetector{inner: d, core: newFaultCore(cfg, "object")}
}

// Name implements ObjectDetector.
func (d *FaultyObjectDetector) Name() string { return d.inner.Name() }

// UnitCost implements ObjectDetector.
func (d *FaultyObjectDetector) UnitCost() time.Duration { return d.inner.UnitCost() }

// FrameScore implements ObjectDetector, delegating without faults.
func (d *FaultyObjectDetector) FrameScore(v TruthVideo, typ string, frame int) float64 {
	return d.inner.FrameScore(v, typ, frame)
}

// FrameDetections implements ObjectDetector, delegating without faults.
func (d *FaultyObjectDetector) FrameDetections(v TruthVideo, typ string, frame int) []Detection {
	return d.inner.FrameDetections(v, typ, frame)
}

// FrameScoreAttempt implements FallibleObjectDetector.
func (d *FaultyObjectDetector) FrameScoreAttempt(v TruthVideo, typ string, frame, attempt int) (float64, error) {
	if err := d.core.fault(d.Name(), "object", v, typ, frame, attempt); err != nil {
		return 0, err
	}
	return d.inner.FrameScore(v, typ, frame), nil
}

// FrameDetectionsAttempt implements FallibleObjectDetector.
func (d *FaultyObjectDetector) FrameDetectionsAttempt(v TruthVideo, typ string, frame, attempt int) ([]Detection, error) {
	if err := d.core.fault(d.Name(), "object", v, typ, frame, attempt); err != nil {
		return nil, err
	}
	return d.inner.FrameDetections(v, typ, frame), nil
}

// FaultyActionRecognizer decorates an ActionRecognizer with injected faults.
type FaultyActionRecognizer struct {
	inner ActionRecognizer
	core  faultCore
}

// InjectActionFaults wraps r with deterministic fault injection.
func InjectActionFaults(r ActionRecognizer, cfg FaultConfig) *FaultyActionRecognizer {
	return &FaultyActionRecognizer{inner: r, core: newFaultCore(cfg, "action")}
}

// Name implements ActionRecognizer.
func (r *FaultyActionRecognizer) Name() string { return r.inner.Name() }

// UnitCost implements ActionRecognizer.
func (r *FaultyActionRecognizer) UnitCost() time.Duration { return r.inner.UnitCost() }

// ShotScore implements ActionRecognizer, delegating without faults.
func (r *FaultyActionRecognizer) ShotScore(v TruthVideo, act string, shot int) float64 {
	return r.inner.ShotScore(v, act, shot)
}

// ShotScoreAttempt implements FallibleActionRecognizer.
func (r *FaultyActionRecognizer) ShotScoreAttempt(v TruthVideo, act string, shot, attempt int) (float64, error) {
	if err := r.core.fault(r.Name(), "action", v, act, shot, attempt); err != nil {
		return 0, err
	}
	return r.inner.ShotScore(v, act, shot), nil
}
