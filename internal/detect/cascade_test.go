package detect

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The cascades must satisfy both the plain and the tier-aware contracts.
var (
	_ CascadedObjectScorer = (*ObjectCascade)(nil)
	_ CascadedActionScorer = (*ActionCascade)(nil)
	_ BatchObjectScorer    = (*ObjectCascade)(nil)
	_ BatchActionScorer    = (*ActionCascade)(nil)
	_ BatchObjectScorer    = (*DistilledObjectDetector)(nil)
	_ BatchActionScorer    = (*DistilledActionRecognizer)(nil)
)

// TestDistilledRecallComplete pins the property the cascade's soundness
// argument rests on: the proxy's score equals the teacher's wherever the
// teacher detects anything, and is ≥ 0 (its own false-positive draw)
// elsewhere — so the proxy never scores below the teacher on any unit.
func TestDistilledRecallComplete(t *testing.T) {
	v := testVideo(t, 31)
	teacher := NewObjectDetector(MaskRCNN, 7)
	proxy := NewDistilledObjectDetector(teacher, DistilledRCNN, 7)
	for f := 0; f < v.NumFrames(); f++ {
		ts := teacher.FrameScore(v, "car", f)
		ps := proxy.FrameScore(v, "car", f)
		if ps < ts {
			t.Fatalf("frame %d: proxy score %v below teacher %v", f, ps, ts)
		}
		if ts > 0 && ps != ts {
			t.Fatalf("frame %d: teacher detected (%v) but proxy returned %v", f, ts, ps)
		}
	}
	art := NewActionRecognizer(I3D, 7)
	arp := NewDistilledActionRecognizer(art, DistilledI3D, 7)
	numShots := v.Geometry().NumShots(v.NumFrames())
	for s := 0; s < numShots; s++ {
		ts := art.ShotScore(v, "jumping", s)
		ps := arp.ShotScore(v, "jumping", s)
		if ps < ts {
			t.Fatalf("shot %d: proxy score %v below teacher %v", s, ps, ts)
		}
		if ts > 0 && ps != ts {
			t.Fatalf("shot %d: teacher detected (%v) but proxy returned %v", s, ts, ps)
		}
	}
}

// TestCascadeBitIdenticalToAccurate: under the recall band, the cascade's
// plain-contract outputs (scores, detections, events) are bit-identical to
// running the accurate tier alone.
func TestCascadeBitIdenticalToAccurate(t *testing.T) {
	v := testVideo(t, 32)
	teacher := NewObjectDetector(MaskRCNN, 9)
	casc := NewDistilledObjectCascade(teacher, DistilledRCNN, 9)
	var evC, evT Events
	for f := 0; f < v.NumFrames(); f++ {
		if cs, ts := casc.FrameScore(v, "car", f), teacher.FrameScore(v, "car", f); cs != ts {
			t.Fatalf("frame %d: cascade score %v != accurate %v", f, cs, ts)
		}
		cd, td := casc.FrameDetections(v, "car", f), teacher.FrameDetections(v, "car", f)
		if len(cd) != len(td) {
			t.Fatalf("frame %d: %d cascade detections vs %d accurate", f, len(cd), len(td))
		}
		for i := range cd {
			if cd[i] != td[i] {
				t.Fatalf("frame %d: detection %d differs: %+v vs %+v", f, i, cd[i], td[i])
			}
		}
		casc.AppendFrameEvents(v, "car", f, &evC)
		AppendFrameEvents(teacher, v, "car", f, &evT)
	}
	if evC.Len() != evT.Len() {
		t.Fatalf("event streams diverge: %d vs %d", evC.Len(), evT.Len())
	}
	for i := range evC.Scores {
		if evC.Scores[i] != evT.Scores[i] || evC.Units[i] != evT.Units[i] || evC.Tracks[i] != evT.Tracks[i] {
			t.Fatalf("event %d differs", i)
		}
	}

	art := NewActionRecognizer(I3D, 9)
	acasc := NewDistilledActionCascade(art, DistilledI3D, 9)
	numShots := v.Geometry().NumShots(v.NumFrames())
	for s := 0; s < numShots; s++ {
		if cs, ts := acasc.ShotScore(v, "jumping", s), art.ShotScore(v, "jumping", s); cs != ts {
			t.Fatalf("shot %d: cascade score %v != accurate %v", s, cs, ts)
		}
	}
}

// TestFrameScoreCascadeAccounting runs the tier-aware batch path over the
// video and checks the scores match the plain contract and the account's
// invariants hold: every unit is scored at the entry tier, each is either
// decided or escalated there, exactly the escalated units reach tier 1, and
// the cost is the per-tier unit-cost weighted sum.
func TestFrameScoreCascadeAccounting(t *testing.T) {
	v := testVideo(t, 33)
	teacher := NewObjectDetector(MaskRCNN, 5)
	casc := NewDistilledObjectCascade(teacher, DistilledRCNN, 5)
	ctx := context.Background()
	var acc CascadeAccount
	acc.Reset(2)
	n := 2000
	dst := make([]float64, n)
	if err := casc.FrameScoreCascade(ctx, v, "car", 0, 0, dst, DefaultRetryConfig(), nil, &acc); err != nil {
		t.Fatal(err)
	}
	for i, s := range dst {
		if want := teacher.FrameScore(v, "car", i); s != want {
			t.Fatalf("frame %d: cascade path %v != accurate %v", i, s, want)
		}
	}
	if acc.Units[0] != int64(n) {
		t.Errorf("entry tier scored %d units, want %d", acc.Units[0], n)
	}
	if acc.Decided[0]+acc.Escalated[0] != acc.Units[0] {
		t.Errorf("tier 0: decided %d + escalated %d != units %d", acc.Decided[0], acc.Escalated[0], acc.Units[0])
	}
	if acc.Units[1] != acc.Escalated[0] {
		t.Errorf("tier 1 scored %d units, want the %d escalated", acc.Units[1], acc.Escalated[0])
	}
	if acc.Escalated[0] == 0 || acc.Escalated[0] == int64(n) {
		t.Errorf("escalations %d should be strictly between 0 and %d", acc.Escalated[0], n)
	}
	infos := casc.Tiers()
	want := time.Duration(acc.Units[0])*infos[0].UnitCost + time.Duration(acc.Units[1])*infos[1].UnitCost
	if acc.Cost != want {
		t.Errorf("cost %v, want %v (faultless run: attempts == units)", acc.Cost, want)
	}
	if acc.Cost >= time.Duration(n)*infos[1].UnitCost {
		t.Errorf("cascade cost %v not below accurate-only %v", acc.Cost, time.Duration(n)*infos[1].UnitCost)
	}

	// Entering at the accurate tier skips tier 0 entirely.
	acc.Reset(2)
	if err := casc.FrameScoreCascade(ctx, v, "car", 0, 1, dst, DefaultRetryConfig(), nil, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Units[0] != 0 || acc.Units[1] != int64(n) {
		t.Errorf("accurate entry: units %v, want [0 %d]", acc.Units, n)
	}
	for i, s := range dst {
		if want := teacher.FrameScore(v, "car", i); s != want {
			t.Fatalf("accurate entry frame %d: %v != %v", i, s, want)
		}
	}
}

// failingObjectDetector always fails (transiently or permanently) — used to
// exercise per-tier fallthrough and last-tier error surfacing.
type failingObjectDetector struct {
	name      string
	transient bool
}

func (d failingObjectDetector) Name() string                                        { return d.name }
func (d failingObjectDetector) UnitCost() time.Duration                             { return time.Millisecond }
func (d failingObjectDetector) FrameScore(TruthVideo, string, int) float64          { return 0 }
func (d failingObjectDetector) FrameDetections(TruthVideo, string, int) []Detection { return nil }
func (d failingObjectDetector) FrameScoreAttempt(v TruthVideo, typ string, frame, attempt int) (float64, error) {
	return 0, &DetectionError{Model: d.name, Unit: frame, Transient: d.transient}
}
func (d failingObjectDetector) FrameDetectionsAttempt(v TruthVideo, typ string, frame, attempt int) ([]Detection, error) {
	return nil, &DetectionError{Model: d.name, Unit: frame, Transient: d.transient}
}

// TestCascadeFallthroughOnTierFailure: a failed non-last tier escalates
// conservatively instead of failing the unit, with the fallthrough counted;
// a failed last tier surfaces the error.
func TestCascadeFallthroughOnTierFailure(t *testing.T) {
	v := testVideo(t, 34)
	teacher := NewObjectDetector(MaskRCNN, 5)
	casc := NewObjectCascade(
		ObjectTier{Detector: failingObjectDetector{name: "dead-proxy", transient: true}, Band: RecallBand()},
		ObjectTier{Detector: teacher},
	)
	ctx := context.Background()
	var acc CascadeAccount
	acc.Reset(2)
	n := 64
	dst := make([]float64, n)
	retry := RetryConfig{Attempts: 2}
	if err := casc.FrameScoreCascade(ctx, v, "car", 0, 0, dst, retry, nil, &acc); err != nil {
		t.Fatalf("dead entry tier must fall through, got error: %v", err)
	}
	for i, s := range dst {
		if want := teacher.FrameScore(v, "car", i); s != want {
			t.Fatalf("frame %d after fallthrough: %v != accurate %v", i, s, want)
		}
	}
	if acc.Fallthroughs[0] != int64(n) {
		t.Errorf("fallthroughs[0] = %d, want %d", acc.Fallthroughs[0], n)
	}
	if acc.Escalated[0] != int64(n) || acc.Decided[1] != int64(n) {
		t.Errorf("escalated[0]=%d decided[1]=%d, want both %d", acc.Escalated[0], acc.Decided[1], n)
	}
	// Each transient-failing attempt is priced: the 2-attempt retry budget
	// is spent per unit before the tier falls through.
	if want := time.Duration(2*n)*time.Millisecond + time.Duration(n)*teacher.UnitCost(); acc.Cost != want {
		t.Errorf("cost %v, want %v (per-attempt pricing)", acc.Cost, want)
	}

	// A permanently failing last tier surfaces the error.
	bad := NewObjectCascade(
		ObjectTier{Detector: failingObjectDetector{name: "dead-proxy"}, Band: RecallBand()},
		ObjectTier{Detector: failingObjectDetector{name: "dead-teacher"}},
	)
	err := bad.FrameScoreCascade(ctx, v, "car", 0, 0, dst, retry, nil, nil)
	var de *DetectionError
	if !errors.As(err, &de) || de.Model != "dead-teacher" {
		t.Fatalf("want dead-teacher DetectionError from last tier, got %v", err)
	}

	// Context cancellation aborts instead of falling through.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := casc.FrameScoreCascade(cctx, v, "car", 0, 0, dst, retry, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: want context.Canceled, got %v", err)
	}
}

// TestCascadePerTierFaults: each tier composes its own fault decorator and
// retry budget; transient faults on the cheap tier retry within the tier and
// the final scores stay identical to the faultless accurate run.
func TestCascadePerTierFaults(t *testing.T) {
	v := testVideo(t, 35)
	teacher := NewObjectDetector(MaskRCNN, 5)
	proxy := NewDistilledObjectDetector(teacher, DistilledRCNN, 5)
	flakyProxy := InjectObjectFaults(proxy, FaultConfig{TransientRate: 0.3, Seed: 21})
	casc := NewObjectCascade(
		ObjectTier{Detector: flakyProxy, Band: RecallBand()},
		ObjectTier{Detector: teacher},
	)
	var acc CascadeAccount
	acc.Reset(2)
	n := 1000
	dst := make([]float64, n)
	retry := RetryConfig{Attempts: 8}
	if err := casc.FrameScoreCascade(context.Background(), v, "car", 0, 0, dst, retry, nil, &acc); err != nil {
		t.Fatal(err)
	}
	for i, s := range dst {
		if want := teacher.FrameScore(v, "car", i); s != want {
			t.Fatalf("frame %d under tier-0 faults: %v != accurate %v", i, s, want)
		}
	}
	// A 30% transient rate must have cost extra attempts on tier 0 (priced),
	// but no unit may have fallen through with an 8-attempt budget.
	infos := casc.Tiers()
	faultless := time.Duration(acc.Units[0])*infos[0].UnitCost + time.Duration(acc.Units[1])*infos[1].UnitCost
	if acc.Cost <= faultless {
		t.Errorf("cost %v should exceed faultless %v (retried attempts are priced)", acc.Cost, faultless)
	}
	if acc.Fallthroughs[0] != 0 {
		t.Errorf("%d fallthroughs under a generous retry budget", acc.Fallthroughs[0])
	}
}

// TestCascadeDeterminism: same construction, same draws — tier-aware and
// plain paths agree run to run.
func TestCascadeDeterminism(t *testing.T) {
	v := testVideo(t, 36)
	mk := func() *ObjectCascade {
		return NewDistilledObjectCascade(NewObjectDetector(MaskRCNN, 11), DistilledRCNN, 11)
	}
	a, b := mk(), mk()
	for f := 0; f < 3000; f++ {
		if a.FrameScore(v, "car", f) != b.FrameScore(v, "car", f) {
			t.Fatalf("frame %d: identical cascades disagree", f)
		}
	}
}

// TestCascadeTierInfos pins the planner-facing tier metadata: cheapest
// first, last tier never escalates, and the conservative UnitCost is the
// accurate tier's.
func TestCascadeTierInfos(t *testing.T) {
	teacher := NewObjectDetector(MaskRCNN, 1)
	casc := NewDistilledObjectCascade(teacher, DistilledRCNN, 1)
	infos := casc.Tiers()
	if len(infos) != 2 {
		t.Fatalf("want 2 tiers, got %d", len(infos))
	}
	if infos[0].UnitCost >= infos[1].UnitCost {
		t.Errorf("tier order not cheapest-first: %v then %v", infos[0].UnitCost, infos[1].UnitCost)
	}
	if infos[0].PriorEscalate <= 0 || infos[0].PriorEscalate >= 1 {
		t.Errorf("entry tier escalation prior %v outside (0,1)", infos[0].PriorEscalate)
	}
	if infos[1].PriorEscalate != 0 {
		t.Errorf("last tier must not escalate, prior %v", infos[1].PriorEscalate)
	}
	if casc.UnitCost() != teacher.UnitCost() {
		t.Errorf("cascade UnitCost %v, want accurate tier's %v", casc.UnitCost(), teacher.UnitCost())
	}
	if CascadeTierInfos(casc) == nil || CascadeTierInfos(teacher) != nil {
		t.Error("CascadeTierInfos must detect cascades and only cascades")
	}
}

// TestProfileCalibrationInvariants checks every calibrated profile is
// internally coherent: at the operating threshold each tier separates truth
// from noise (effective TPR strictly above effective FPR), true-detection
// scores dominate hallucinated ones, and cascade-tier profiles price below
// their teachers while escalating a nontrivial-but-bounded fraction.
func TestProfileCalibrationInvariants(t *testing.T) {
	const threshold = 0.5
	for _, p := range []Profile{MaskRCNN, YOLOv3, I3D, DistilledRCNN, DistilledI3D} {
		tpr, fpr := p.EffectiveTPR(threshold), p.EffectiveFPR(threshold)
		if tpr <= fpr {
			t.Errorf("%s: effective TPR %v not above effective FPR %v at %v", p.Name, tpr, fpr, threshold)
		}
		if tpr <= 0 || tpr > p.TPR {
			t.Errorf("%s: effective TPR %v outside (0, %v]", p.Name, tpr, p.TPR)
		}
		if fpr < 0 || fpr >= 0.2 {
			t.Errorf("%s: effective FPR %v outside [0, 0.2)", p.Name, fpr)
		}
		if p.TPScoreMean <= p.FPScoreMean {
			t.Errorf("%s: TP score mean %v not above FP score mean %v", p.Name, p.TPScoreMean, p.FPScoreMean)
		}
		// EffectiveTPR must be monotone non-increasing in the threshold.
		prev := p.EffectiveTPR(0)
		for _, th := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			cur := p.EffectiveTPR(th)
			if cur > prev+1e-12 {
				t.Errorf("%s: EffectiveTPR not monotone at %v: %v > %v", p.Name, th, cur, prev)
			}
			prev = cur
		}
	}
	for _, pair := range [][2]Profile{{DistilledRCNN, MaskRCNN}, {DistilledI3D, I3D}} {
		student, tchr := pair[0], pair[1]
		if student.UnitCost >= tchr.UnitCost {
			t.Errorf("%s: unit cost %v not below teacher %s's %v", student.Name, student.UnitCost, tchr.Name, tchr.UnitCost)
		}
		prior := student.EscalationPrior(RecallBand())
		if prior <= 0 || prior >= 0.5 {
			t.Errorf("%s: recall-band escalation prior %v outside (0, 0.5)", student.Name, prior)
		}
	}
}

// TestDistilledDeterminism: same (teacher, profile, seed) → identical
// draws; a different seed must change the false-positive overlay.
func TestDistilledDeterminism(t *testing.T) {
	v := testVideo(t, 37)
	teacher := NewObjectDetector(MaskRCNN, 2)
	a := NewDistilledObjectDetector(teacher, DistilledRCNN, 13)
	b := NewDistilledObjectDetector(teacher, DistilledRCNN, 13)
	c := NewDistilledObjectDetector(teacher, DistilledRCNN, 14)
	same := true
	for f := 0; f < v.NumFrames(); f += 7 {
		if a.FrameScore(v, "car", f) != b.FrameScore(v, "car", f) {
			t.Fatalf("frame %d: same seed disagrees", f)
		}
		if a.FrameScore(v, "car", f) != c.FrameScore(v, "car", f) {
			same = false
		}
	}
	if same {
		t.Error("different proxy seeds produced identical draws")
	}
	// The batch path must agree bit-for-bit with the scalar path.
	n := 4096
	dst := make([]float64, n)
	a.FrameScoreBatch(v, "car", 0, dst)
	for i, s := range dst {
		if want := b.FrameScore(v, "car", i); s != want {
			t.Fatalf("frame %d: batch %v != scalar %v", i, s, want)
		}
	}
}
