package detect

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"svqact/internal/synth"
	"svqact/internal/video"
)

func faultVideo(t *testing.T) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.Script{
		ID: "fault-vid", Frames: 3000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 5,
		Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 90, MeanDurShots: 30}},
		Objects: []synth.ObjectSpec{{Name: "car", MeanGapFrames: 400, MeanDurFrames: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFaultDeterminism(t *testing.T) {
	v := faultVideo(t)
	cfg := FaultConfig{TransientRate: 0.3, PermanentRate: 0.05, Seed: 11}
	a := InjectObjectFaults(NewObjectDetector(MaskRCNN, 1), cfg)
	b := InjectObjectFaults(NewObjectDetector(MaskRCNN, 1), cfg)
	for frame := 0; frame < 200; frame++ {
		for attempt := 0; attempt < 3; attempt++ {
			_, errA := a.FrameScoreAttempt(v, "car", frame, attempt)
			_, errB := b.FrameScoreAttempt(v, "car", frame, attempt)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("frame %d attempt %d: fault draws differ", frame, attempt)
			}
			if errA != nil && errA.Error() != errB.Error() {
				t.Fatalf("frame %d attempt %d: errors differ: %v vs %v", frame, attempt, errA, errB)
			}
		}
	}
}

func TestFaultPermanentPersistsTransientClears(t *testing.T) {
	v := faultVideo(t)
	d := InjectObjectFaults(NewObjectDetector(MaskRCNN, 1),
		FaultConfig{TransientRate: 0.4, PermanentRate: 0.1, Seed: 3})
	sawTransientClear := false
	sawPermanent := false
	for frame := 0; frame < 500; frame++ {
		_, err0 := d.FrameScoreAttempt(v, "car", frame, 0)
		if err0 == nil {
			continue
		}
		var de *DetectionError
		if !errors.As(err0, &de) {
			t.Fatalf("frame %d: unexpected error type %T", frame, err0)
		}
		if !de.Transient {
			sawPermanent = true
			// Every later attempt must fail identically.
			for attempt := 1; attempt < 4; attempt++ {
				if _, err := d.FrameScoreAttempt(v, "car", frame, attempt); err == nil || IsTransient(err) {
					t.Fatalf("frame %d: permanent fault cleared on attempt %d (%v)", frame, attempt, err)
				}
			}
			continue
		}
		// Transient: some retry within a generous budget must succeed.
		for attempt := 1; attempt < 32; attempt++ {
			if _, err := d.FrameScoreAttempt(v, "car", frame, attempt); err == nil {
				sawTransientClear = true
				break
			}
		}
	}
	if !sawTransientClear {
		t.Error("no transient fault cleared on retry")
	}
	if !sawPermanent {
		t.Error("no permanent fault drawn at 10% over 500 frames")
	}
}

func TestFaultyDecoratorsDelegatePlainMethods(t *testing.T) {
	v := faultVideo(t)
	inner := NewObjectDetector(MaskRCNN, 1)
	d := InjectObjectFaults(inner, FaultConfig{TransientRate: 0.9, PermanentRate: 0.5, Seed: 3})
	for frame := 0; frame < 50; frame++ {
		if d.FrameScore(v, "car", frame) != inner.FrameScore(v, "car", frame) {
			t.Fatalf("plain FrameScore diverges at %d", frame)
		}
	}
	ra := NewActionRecognizer(I3D, 1)
	fr := InjectActionFaults(ra, FaultConfig{TransientRate: 0.9, Seed: 3})
	for shot := 0; shot < 50; shot++ {
		if fr.ShotScore(v, "jumping", shot) != ra.ShotScore(v, "jumping", shot) {
			t.Fatalf("plain ShotScore diverges at %d", shot)
		}
	}
	if d.Name() != inner.Name() || d.UnitCost() != inner.UnitCost() {
		t.Error("object decorator must delegate metadata")
	}
	if fr.Name() != ra.Name() || fr.UnitCost() != ra.UnitCost() {
		t.Error("action decorator must delegate metadata")
	}
}

func TestFaultConfigValidate(t *testing.T) {
	if err := (FaultConfig{TransientRate: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (FaultConfig{TransientRate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 should be rejected")
	}
	if err := (FaultConfig{PermanentRate: -0.1}).Validate(); err == nil {
		t.Error("negative rate should be rejected")
	}
}

func TestRetryAbsorbsTransient(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 3}, func(attempt int) error {
		calls++
		if attempt < 2 {
			return &DetectionError{Model: "m", Kind: "object", Type: "car", Unit: 1, Transient: true}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want success after 3 calls", err, calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	perm := &DetectionError{Model: "m", Kind: "object", Type: "car", Unit: 1, Transient: false}
	err := Retry(context.Background(), RetryConfig{Attempts: 5}, func(attempt int) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; permanent failures must not retry", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 4}, func(attempt int) error {
		calls++
		return &DetectionError{Transient: true}
	})
	if err == nil || calls != 4 {
		t.Fatalf("err = %v, calls = %d; want last transient error after 4 attempts", err, calls)
	}
	var de *DetectionError
	if !errors.As(err, &de) || !de.Transient {
		t.Fatalf("exhausted retry should surface the transient error, got %v", err)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryConfig{Attempts: 10, BaseDelay: time.Hour}, func(attempt int) error {
		calls++
		cancel() // cancel while "waiting" for the backoff
		return &DetectionError{Transient: true}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d; backoff sleep must abort on cancellation", calls)
	}

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := Retry(cancelled, DefaultRetryConfig(), func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx should short-circuit, got %v", err)
	}
}

func TestRetryUnknownErrorsAreTransient(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 2}, func(attempt int) error {
		calls++
		return fmt.Errorf("socket reset")
	})
	if err == nil || calls != 2 {
		t.Fatalf("err = %v, calls = %d; unknown errors should retry", err, calls)
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	cfg := RetryConfig{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	for retry := 0; retry < 6; retry++ {
		for i := 0; i < 20; i++ {
			d := cfg.backoff(retry)
			if d < 0 || d >= time.Duration(1.5*float64(25*time.Millisecond)) {
				t.Fatalf("retry %d: backoff %v outside [0, 1.5*MaxDelay)", retry, d)
			}
		}
	}
	if (RetryConfig{Attempts: 3}).backoff(0) != 0 {
		t.Error("zero BaseDelay should not sleep")
	}
}

func TestLatencySpikes(t *testing.T) {
	v := faultVideo(t)
	d := InjectObjectFaults(NewObjectDetector(MaskRCNN, 1),
		FaultConfig{SpikeRate: 1, SpikeDelay: 2 * time.Millisecond, Seed: 7})
	start := time.Now()
	if _, err := d.FrameScoreAttempt(v, "car", 0, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("spike rate 1 should delay every call; elapsed %v", elapsed)
	}
}
