package detect

// Events is a struct-of-arrays batch of object detection events: three
// parallel columns (unit, track, score) instead of per-event structs. The
// hot paths — online evaluation over a clip, offline ingest over a whole
// video — append thousands of events per video; the columnar layout keeps
// them in three contiguous allocations that a caller can Reset and reuse,
// where the AoS []Detection-per-frame shape paid one heap slice per frame.
type Events struct {
	// Units holds the frame (object events) or shot (action events) index of
	// each event. int32 comfortably covers any video length the engine sees.
	Units []int32
	// Tracks holds each event's instance identity. Tracker remapping widens
	// IDs by a factor of one million, so the column is int64.
	Tracks []int64
	// Scores holds each event's detection score.
	Scores []float64
}

// Len returns the number of buffered events.
func (e *Events) Len() int { return len(e.Units) }

// Reset empties the batch, retaining the columns' capacity for reuse.
func (e *Events) Reset() {
	e.Units = e.Units[:0]
	e.Tracks = e.Tracks[:0]
	e.Scores = e.Scores[:0]
}

// Append adds one event to the batch.
func (e *Events) Append(unit int, track int64, score float64) {
	e.Units = append(e.Units, int32(unit))
	e.Tracks = append(e.Tracks, track)
	e.Scores = append(e.Scores, score)
}

// BatchObjectScorer is an optional ObjectDetector capability: score a
// contiguous run of frames in one call, filling dst[i] with the score of
// frame start+i. Implementations hoist per-video work (burst overlays,
// frame counts) out of the per-frame loop; callers hoist the interface
// dispatch and, for simulated models, the per-call lock on the overlay
// cache. Fault-injecting decorators deliberately do not implement it — the
// batch path is only taken for infallible models, so the per-attempt retry
// contract is untouched.
type BatchObjectScorer interface {
	FrameScoreBatch(v TruthVideo, typ string, start int, dst []float64)
}

// BatchActionScorer is the shot-level analogue of BatchObjectScorer.
type BatchActionScorer interface {
	ShotScoreBatch(v TruthVideo, act string, start int, dst []float64)
}

// ObjectEventAppender is an optional ObjectDetector capability: append the
// frame's detections to a columnar Events batch instead of materialising a
// fresh []Detection.
type ObjectEventAppender interface {
	AppendFrameEvents(v TruthVideo, typ string, frame int, ev *Events)
}

// InstanceAppender is an optional TruthVideo capability: append the track
// IDs visible on a frame to a caller-owned buffer instead of allocating a
// fresh slice per frame. The per-frame instance query sits on the innermost
// loop of both simulated scoring and ingest, so the allocation matters.
type InstanceAppender interface {
	AppendObjectInstancesAt(typ string, frame int, ids []int) []int
}

// AppendObjectInstancesAt appends the frame's visible track IDs of typ to
// ids, using v's appender implementation when it has one and adapting
// ObjectInstancesAt otherwise.
func AppendObjectInstancesAt(v TruthVideo, typ string, frame int, ids []int) []int {
	if a, ok := v.(InstanceAppender); ok {
		return a.AppendObjectInstancesAt(typ, frame, ids)
	}
	return append(ids, v.ObjectInstancesAt(typ, frame)...)
}

// FrameScoreBatch fills dst[i] with d's score for frame start+i, using the
// detector's batch implementation when it has one and falling back to
// per-frame FrameScore calls otherwise. The results are identical either
// way; only the constant factors differ.
func FrameScoreBatch(d ObjectDetector, v TruthVideo, typ string, start int, dst []float64) {
	if b, ok := d.(BatchObjectScorer); ok {
		b.FrameScoreBatch(v, typ, start, dst)
		return
	}
	for i := range dst {
		dst[i] = d.FrameScore(v, typ, start+i)
	}
}

// ShotScoreBatch fills dst[i] with r's score for shot start+i, batching
// when the recogniser supports it.
func ShotScoreBatch(r ActionRecognizer, v TruthVideo, act string, start int, dst []float64) {
	if b, ok := r.(BatchActionScorer); ok {
		b.ShotScoreBatch(v, act, start, dst)
		return
	}
	for i := range dst {
		dst[i] = r.ShotScore(v, act, start+i)
	}
}

// AppendFrameEvents appends the frame's detections of typ to ev, using d's
// columnar implementation when it has one and adapting FrameDetections
// otherwise.
func AppendFrameEvents(d ObjectDetector, v TruthVideo, typ string, frame int, ev *Events) {
	if a, ok := d.(ObjectEventAppender); ok {
		a.AppendFrameEvents(v, typ, frame, ev)
		return
	}
	for _, det := range d.FrameDetections(v, typ, frame) {
		ev.Append(frame, int64(det.TrackID), det.Score)
	}
}
