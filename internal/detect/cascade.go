package detect

import (
	"context"
	"strings"
	"time"
)

// Multi-tier detector cascades. Production video systems rarely run the
// accurate model on every unit: a cheap proxy (a distilled or pruned student
// of the accurate teacher) scores first, and only units whose proxy score
// lands in an uncertainty band escalate to the expensive tier. The types
// here wrap ordered detector tiers behind the ordinary ObjectDetector /
// ActionRecognizer contracts, so every existing consumer keeps working,
// while tier-aware callers (the engine's evaluate path, rank's ingest) use
// the *Cascade methods to execute the planner's tier decisions with full
// per-tier accounting.
//
// Soundness. A cascade is never less sound than its most accurate tier
// alone, by construction:
//
//   - a tier decides a unit only when its score falls outside its
//     escalation band; anything in-band escalates to the next tier, and the
//     last tier always decides;
//   - a tier whose invocation fails (after its own per-model retry budget)
//     falls through to the next tier instead of failing the unit — only the
//     last tier's failure surfaces as an error;
//   - the calibrated proxies built by NewDistilledObjectCascade /
//     NewDistilledActionCascade are recall-complete: the proxy's score is
//     ≥ the teacher's score on every unit (it sees everything the teacher
//     sees, plus its own extra false positives). Under RecallBand — escalate
//     on any nonzero score — the teacher therefore scores every unit the
//     proxy does not silently reject, and a proxy rejection (score 0)
//     implies the teacher would also have scored 0. The cascade's scores,
//     detections and events are bit-identical to running the accurate tier
//     alone; only the cost differs.

// Band is a tier's escalation band: a score in [Lo, Hi) is uncertain and
// escalates to the next tier; a score outside the band decides the unit at
// this tier. The last tier's band is ignored — it always decides.
type Band struct {
	Lo, Hi float64
}

// Escalates reports whether a score is uncertain at this tier.
func (b Band) Escalates(s float64) bool { return s >= b.Lo && s < b.Hi }

// RecallBand escalates on any detection at all: simulated scores are either
// 0 (nothing detected) or ≥ 0.01 (clampScore's floor), so Lo sits strictly
// between and Hi above the score ceiling. With a recall-complete proxy this
// band makes the cascade bit-identical to its accurate tier.
func RecallBand() Band { return Band{Lo: 0.005, Hi: 2} }

// TierInfo describes one cascade tier to the planner and the EXPLAIN
// surfaces.
type TierInfo struct {
	// Name is the tier model's name.
	Name string
	// UnitCost is the tier's simulated inference latency per unit.
	UnitCost time.Duration
	// PriorEscalate is the prior probability a unit scored at this tier
	// escalates past it, before any live observations. Always 0 for the
	// last tier.
	PriorEscalate float64
}

// ObjectTier is one tier of an object cascade. The detector may be wrapped
// in a FaultyObjectDetector — fault decorators compose per tier, so each
// model keeps its own fault realisation and its own retry budget.
type ObjectTier struct {
	Detector ObjectDetector
	// Band is the tier's escalation band; ignored for the last tier.
	Band Band
	// PriorEscalate seeds the planner's escalation estimate for this tier.
	PriorEscalate float64
}

// ActionTier is one tier of an action cascade.
type ActionTier struct {
	Recognizer    ActionRecognizer
	Band          Band
	PriorEscalate float64
}

// CascadeAccount accumulates per-tier accounting across FrameScoreCascade /
// ShotScoreCascade calls: how many units each tier scored, how each was
// resolved, and the simulated inference cost accrued (priced per attempt,
// so retries are paid for). Callers reset it per clip and feed it to the
// planner's escalation estimators and the meter's tier counters.
type CascadeAccount struct {
	// Units counts units scored at each tier (indexed by tier position).
	Units []int64
	// Decided counts units resolved at each tier.
	Decided []int64
	// Escalated counts units whose score landed in the tier's band.
	Escalated []int64
	// Fallthroughs counts units escalated because the tier's invocation
	// failed after its retry budget — the conservative failure path.
	Fallthroughs []int64
	// Cost is the simulated inference cost accrued, per attempt.
	Cost time.Duration
}

// Reset zeroes the account for a cascade with the given number of tiers.
func (a *CascadeAccount) Reset(tiers int) {
	a.Units = zeroCounts(a.Units, tiers)
	a.Decided = zeroCounts(a.Decided, tiers)
	a.Escalated = zeroCounts(a.Escalated, tiers)
	a.Fallthroughs = zeroCounts(a.Fallthroughs, tiers)
	a.Cost = 0
}

func zeroCounts(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// CascadedObjectScorer is the tier-aware interface of an object cascade:
// the engine uses it to execute the planner's tier decision (enter at tier
// `from`) with per-tier retry, fallthrough and accounting.
type CascadedObjectScorer interface {
	ObjectDetector
	// Tiers describes the cascade for planning and EXPLAIN.
	Tiers() []TierInfo
	// AccurateTier returns the last (most accurate) tier's detector.
	AccurateTier() ObjectDetector
	// FrameScoreCascade fills dst[i] with the cascade's score for frame
	// start+i, entering at tier from (clamped to the tier range) and
	// escalating as bands and failures dictate. retry is applied per tier —
	// each model invocation gets its own attempt budget. meter (optional)
	// receives attempt/fault accounting; acc (optional) accumulates tier
	// accounting. The first unit whose last-tier invocation fails aborts
	// with that error.
	FrameScoreCascade(ctx context.Context, v TruthVideo, typ string, start, from int, dst []float64, retry RetryConfig, meter *Meter, acc *CascadeAccount) error
}

// CascadedActionScorer is the shot-level analogue of CascadedObjectScorer.
type CascadedActionScorer interface {
	ActionRecognizer
	Tiers() []TierInfo
	AccurateTier() ActionRecognizer
	ShotScoreCascade(ctx context.Context, v TruthVideo, act string, start, from int, dst []float64, retry RetryConfig, meter *Meter, acc *CascadeAccount) error
}

// ObjectCascade chains object detector tiers from cheapest to most
// accurate. It implements ObjectDetector (plus the batch capabilities), so
// any consumer built for a single detector runs the full cascade
// transparently; tier-aware consumers use FrameScoreCascade.
type ObjectCascade struct {
	tiers []ObjectTier
	infos []TierInfo
	name  string
}

// NewObjectCascade chains tiers ordered cheapest first, most accurate last.
// Panics on fewer than two tiers — a one-tier cascade is just the detector.
func NewObjectCascade(tiers ...ObjectTier) *ObjectCascade {
	if len(tiers) < 2 {
		panic("detect: object cascade needs at least two tiers")
	}
	c := &ObjectCascade{tiers: tiers}
	names := make([]string, len(tiers))
	c.infos = make([]TierInfo, len(tiers))
	for i, t := range tiers {
		names[i] = t.Detector.Name()
		esc := t.PriorEscalate
		if i == len(tiers)-1 {
			esc = 0
		}
		c.infos[i] = TierInfo{Name: t.Detector.Name(), UnitCost: t.Detector.UnitCost(), PriorEscalate: esc}
	}
	c.name = "cascade(" + strings.Join(names, ">") + ")"
	return c
}

// NewDistilledObjectCascade builds the standard two-tier cascade: a
// recall-complete distilled proxy of teacher (see DistilledObjectDetector)
// gating the teacher itself, escalating under RecallBand. prof calibrates
// the proxy's extra false positives and unit cost.
func NewDistilledObjectCascade(teacher ObjectDetector, prof Profile, seed int64) *ObjectCascade {
	proxy := NewDistilledObjectDetector(teacher, prof, seed)
	return NewObjectCascade(
		ObjectTier{Detector: proxy, Band: RecallBand(), PriorEscalate: prof.EscalationPrior(RecallBand())},
		ObjectTier{Detector: teacher},
	)
}

// Name implements ObjectDetector.
func (c *ObjectCascade) Name() string { return c.name }

// UnitCost implements ObjectDetector. It reports the accurate tier's unit
// cost — the conservative price a consumer without tier awareness plans
// with.
func (c *ObjectCascade) UnitCost() time.Duration { return c.tiers[len(c.tiers)-1].Detector.UnitCost() }

// Tiers implements CascadedObjectScorer.
func (c *ObjectCascade) Tiers() []TierInfo { return c.infos }

// AccurateTier implements CascadedObjectScorer.
func (c *ObjectCascade) AccurateTier() ObjectDetector { return c.tiers[len(c.tiers)-1].Detector }

// decidingTier walks the cascade faultlessly and returns the tier index
// that decides the frame along with its score.
func (c *ObjectCascade) decidingTier(v TruthVideo, typ string, frame int) (int, float64) {
	last := len(c.tiers) - 1
	for i, t := range c.tiers {
		s := t.Detector.FrameScore(v, typ, frame)
		if i == last || !t.Band.Escalates(s) {
			return i, s
		}
	}
	return last, 0 // unreachable
}

// FrameScore implements ObjectDetector: the deciding tier's score.
func (c *ObjectCascade) FrameScore(v TruthVideo, typ string, frame int) float64 {
	_, s := c.decidingTier(v, typ, frame)
	return s
}

// FrameDetections implements ObjectDetector: the deciding tier's
// detections.
func (c *ObjectCascade) FrameDetections(v TruthVideo, typ string, frame int) []Detection {
	i, _ := c.decidingTier(v, typ, frame)
	return c.tiers[i].Detector.FrameDetections(v, typ, frame)
}

// AppendFrameEvents implements ObjectEventAppender: the deciding tier's
// events, appended columnar.
func (c *ObjectCascade) AppendFrameEvents(v TruthVideo, typ string, frame int, ev *Events) {
	i, _ := c.decidingTier(v, typ, frame)
	AppendFrameEvents(c.tiers[i].Detector, v, typ, frame, ev)
}

// FrameScoreBatch implements BatchObjectScorer: the cheap tier scores the
// whole run in one batch call, and only in-band frames walk the higher
// tiers. Faultless, like every plain-method path.
func (c *ObjectCascade) FrameScoreBatch(v TruthVideo, typ string, start int, dst []float64) {
	t0 := c.tiers[0]
	FrameScoreBatch(t0.Detector, v, typ, start, dst)
	if len(c.tiers) == 1 {
		return
	}
	for i, s := range dst {
		if t0.Band.Escalates(s) {
			dst[i] = c.frameScoreFrom(v, typ, start+i, 1)
		}
	}
}

// frameScoreFrom is the faultless scalar walk entering at tier from.
func (c *ObjectCascade) frameScoreFrom(v TruthVideo, typ string, frame, from int) float64 {
	last := len(c.tiers) - 1
	for i := from; ; i++ {
		s := c.tiers[i].Detector.FrameScore(v, typ, frame)
		if i == last || !c.tiers[i].Band.Escalates(s) {
			return s
		}
	}
}

// FrameScoreCascade implements CascadedObjectScorer.
func (c *ObjectCascade) FrameScoreCascade(ctx context.Context, v TruthVideo, typ string, start, from int, dst []float64, retry RetryConfig, meter *Meter, acc *CascadeAccount) error {
	last := len(c.tiers) - 1
	if from < 0 {
		from = 0
	}
	if from > last {
		from = last
	}
	t := c.tiers[from]
	_, fallible := t.Detector.(FallibleObjectDetector)
	if bs, ok := t.Detector.(BatchObjectScorer); ok && !fallible {
		// Columnar fast path: the entry tier cannot fault, so the whole run
		// is scored in one batch call and only in-band units walk up.
		bs.FrameScoreBatch(v, typ, start, dst)
		chargeTier(acc, from, int64(len(dst)), int64(len(dst)), t.Detector.UnitCost())
		if meter != nil {
			meter.RecordAttempts(KindObject, len(dst))
		}
		for i, s := range dst {
			if from < last && t.Band.Escalates(s) {
				noteEscalate(acc, from, false)
				s2, err := c.scoreFrom(ctx, v, typ, start+i, from+1, retry, meter, acc)
				if err != nil {
					return err
				}
				dst[i] = s2
			} else {
				noteDecide(acc, from)
			}
		}
		return nil
	}
	for i := range dst {
		s, err := c.scoreFrom(ctx, v, typ, start+i, from, retry, meter, acc)
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

// scoreFrom scores one frame entering at tier from, with per-tier retry and
// conservative fallthrough.
func (c *ObjectCascade) scoreFrom(ctx context.Context, v TruthVideo, typ string, frame, from int, retry RetryConfig, meter *Meter, acc *CascadeAccount) (float64, error) {
	last := len(c.tiers) - 1
	for ti := from; ; ti++ {
		t := c.tiers[ti]
		var s float64
		var err error
		attempts := int64(0)
		if fd, ok := t.Detector.(FallibleObjectDetector); ok {
			err = Retry(ctx, retry, func(attempt int) error {
				attempts++
				if meter != nil {
					meter.RecordAttempt(KindObject, attempt)
				}
				var aerr error
				s, aerr = fd.FrameScoreAttempt(v, typ, frame, attempt)
				if aerr != nil && meter != nil {
					meter.RecordFault(KindObject, IsTransient(aerr))
				}
				return aerr
			})
		} else {
			attempts = 1
			if meter != nil {
				meter.RecordAttempt(KindObject, 0)
			}
			s = t.Detector.FrameScore(v, typ, frame)
		}
		chargeTier(acc, ti, 1, attempts, t.Detector.UnitCost())
		switch {
		case err != nil && ctx.Err() != nil:
			return 0, ctx.Err()
		case err != nil && ti < last:
			// Conservative fallthrough: a failed tier escalates instead of
			// failing the unit, so the cascade is never less sound than its
			// accurate tier.
			noteEscalate(acc, ti, true)
		case err != nil:
			return 0, err
		case ti < last && t.Band.Escalates(s):
			noteEscalate(acc, ti, false)
		default:
			noteDecide(acc, ti)
			return s, nil
		}
	}
}

// ActionCascade chains action recogniser tiers cheapest first. See
// ObjectCascade; the structure is identical with shots for units.
type ActionCascade struct {
	tiers []ActionTier
	infos []TierInfo
	name  string
}

// NewActionCascade chains tiers ordered cheapest first, most accurate last.
func NewActionCascade(tiers ...ActionTier) *ActionCascade {
	if len(tiers) < 2 {
		panic("detect: action cascade needs at least two tiers")
	}
	c := &ActionCascade{tiers: tiers}
	names := make([]string, len(tiers))
	c.infos = make([]TierInfo, len(tiers))
	for i, t := range tiers {
		names[i] = t.Recognizer.Name()
		esc := t.PriorEscalate
		if i == len(tiers)-1 {
			esc = 0
		}
		c.infos[i] = TierInfo{Name: t.Recognizer.Name(), UnitCost: t.Recognizer.UnitCost(), PriorEscalate: esc}
	}
	c.name = "cascade(" + strings.Join(names, ">") + ")"
	return c
}

// NewDistilledActionCascade builds the two-tier recall-complete cascade for
// action recognisers, mirroring NewDistilledObjectCascade.
func NewDistilledActionCascade(teacher ActionRecognizer, prof Profile, seed int64) *ActionCascade {
	proxy := NewDistilledActionRecognizer(teacher, prof, seed)
	return NewActionCascade(
		ActionTier{Recognizer: proxy, Band: RecallBand(), PriorEscalate: prof.EscalationPrior(RecallBand())},
		ActionTier{Recognizer: teacher},
	)
}

// Name implements ActionRecognizer.
func (c *ActionCascade) Name() string { return c.name }

// UnitCost implements ActionRecognizer, reporting the accurate tier's cost.
func (c *ActionCascade) UnitCost() time.Duration {
	return c.tiers[len(c.tiers)-1].Recognizer.UnitCost()
}

// Tiers implements CascadedActionScorer.
func (c *ActionCascade) Tiers() []TierInfo { return c.infos }

// AccurateTier implements CascadedActionScorer.
func (c *ActionCascade) AccurateTier() ActionRecognizer {
	return c.tiers[len(c.tiers)-1].Recognizer
}

// ShotScore implements ActionRecognizer: the deciding tier's score.
func (c *ActionCascade) ShotScore(v TruthVideo, act string, shot int) float64 {
	return c.shotScoreFrom(v, act, shot, 0)
}

func (c *ActionCascade) shotScoreFrom(v TruthVideo, act string, shot, from int) float64 {
	last := len(c.tiers) - 1
	for i := from; ; i++ {
		s := c.tiers[i].Recognizer.ShotScore(v, act, shot)
		if i == last || !c.tiers[i].Band.Escalates(s) {
			return s
		}
	}
}

// ShotScoreBatch implements BatchActionScorer: batch the cheap tier, walk
// escalations scalar.
func (c *ActionCascade) ShotScoreBatch(v TruthVideo, act string, start int, dst []float64) {
	t0 := c.tiers[0]
	ShotScoreBatch(t0.Recognizer, v, act, start, dst)
	for i, s := range dst {
		if t0.Band.Escalates(s) {
			dst[i] = c.shotScoreFrom(v, act, start+i, 1)
		}
	}
}

// ShotScoreCascade implements CascadedActionScorer.
func (c *ActionCascade) ShotScoreCascade(ctx context.Context, v TruthVideo, act string, start, from int, dst []float64, retry RetryConfig, meter *Meter, acc *CascadeAccount) error {
	last := len(c.tiers) - 1
	if from < 0 {
		from = 0
	}
	if from > last {
		from = last
	}
	t := c.tiers[from]
	_, fallible := t.Recognizer.(FallibleActionRecognizer)
	if bs, ok := t.Recognizer.(BatchActionScorer); ok && !fallible {
		bs.ShotScoreBatch(v, act, start, dst)
		chargeTier(acc, from, int64(len(dst)), int64(len(dst)), t.Recognizer.UnitCost())
		if meter != nil {
			meter.RecordAttempts(KindAction, len(dst))
		}
		for i, s := range dst {
			if from < last && t.Band.Escalates(s) {
				noteEscalate(acc, from, false)
				s2, err := c.shotFrom(ctx, v, act, start+i, from+1, retry, meter, acc)
				if err != nil {
					return err
				}
				dst[i] = s2
			} else {
				noteDecide(acc, from)
			}
		}
		return nil
	}
	for i := range dst {
		s, err := c.shotFrom(ctx, v, act, start+i, from, retry, meter, acc)
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

func (c *ActionCascade) shotFrom(ctx context.Context, v TruthVideo, act string, shot, from int, retry RetryConfig, meter *Meter, acc *CascadeAccount) (float64, error) {
	last := len(c.tiers) - 1
	for ti := from; ; ti++ {
		t := c.tiers[ti]
		var s float64
		var err error
		attempts := int64(0)
		if fr, ok := t.Recognizer.(FallibleActionRecognizer); ok {
			err = Retry(ctx, retry, func(attempt int) error {
				attempts++
				if meter != nil {
					meter.RecordAttempt(KindAction, attempt)
				}
				var aerr error
				s, aerr = fr.ShotScoreAttempt(v, act, shot, attempt)
				if aerr != nil && meter != nil {
					meter.RecordFault(KindAction, IsTransient(aerr))
				}
				return aerr
			})
		} else {
			attempts = 1
			if meter != nil {
				meter.RecordAttempt(KindAction, 0)
			}
			s = t.Recognizer.ShotScore(v, act, shot)
		}
		chargeTier(acc, ti, 1, attempts, t.Recognizer.UnitCost())
		switch {
		case err != nil && ctx.Err() != nil:
			return 0, ctx.Err()
		case err != nil && ti < last:
			noteEscalate(acc, ti, true)
		case err != nil:
			return 0, err
		case ti < last && t.Band.Escalates(s):
			noteEscalate(acc, ti, false)
		default:
			noteDecide(acc, ti)
			return s, nil
		}
	}
}

// chargeTier accrues scored units and per-attempt cost for a tier on the
// account (attempts ≥ units when retries fired).
func chargeTier(acc *CascadeAccount, tier int, units, attempts int64, unitCost time.Duration) {
	if acc == nil {
		return
	}
	if tier < len(acc.Units) {
		acc.Units[tier] += units
		acc.Cost += time.Duration(attempts) * unitCost
	}
}

func noteEscalate(acc *CascadeAccount, tier int, fellthrough bool) {
	if acc == nil || tier >= len(acc.Escalated) {
		return
	}
	acc.Escalated[tier]++
	if fellthrough {
		acc.Fallthroughs[tier]++
	}
}

func noteDecide(acc *CascadeAccount, tier int) {
	if acc == nil || tier >= len(acc.Decided) {
		return
	}
	acc.Decided[tier]++
}

// CascadeTierInfos returns d's tier descriptions when d is a cascade, nil
// otherwise. It accepts any detector-shaped value so both object and action
// models flow through one call site.
func CascadeTierInfos(d any) []TierInfo {
	if c, ok := d.(interface{ Tiers() []TierInfo }); ok {
		return c.Tiers()
	}
	return nil
}
