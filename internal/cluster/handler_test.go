package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHandlerQueryOK(t *testing.T) {
	shardIxs, mono := buildWorld(t, 2)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": rankedSQL},
		map[string]string{"X-Query-ID": "00c0ffee00c0ffee"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Query-ID"); got != "00c0ffee00c0ffee" {
		t.Fatalf("X-Query-ID = %q, want the inbound id adopted", got)
	}
	var ans QueryAnswer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if ans.QueryID != "00c0ffee00c0ffee" || ans.Degraded {
		t.Fatalf("answer = %+v", ans)
	}
	assertSameSeqs(t, ans.Sequences, monolithTopK(t, mono, rankedSQL))
	if len(ans.Partition.OK) != 2 {
		t.Fatalf("shards partition = %+v, want both ok", ans.Partition)
	}
	if ans.Trace == nil {
		t.Fatal("answer missing trace")
	}
	names := strings.Join(spanNames(ans), ",")
	for _, want := range []string{"cluster.topk", "cluster.shard:s0", "cluster.shard:s1"} {
		if !strings.Contains(names, want) {
			t.Errorf("trace missing span %s (have %s)", want, names)
		}
	}
}

func spanNames(ans QueryAnswer) []string {
	var out []string
	for _, sp := range ans.Trace.Spans {
		out = append(out, sp.Name)
	}
	return out
}

func TestHandlerBadRequests(t *testing.T) {
	shardIxs, _ := buildWorld(t, 1)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		url  string
		body any
	}{
		"parse error":      {ts.URL + "/query", map[string]string{"sql": "SELECT nonsense"}},
		"online statement": {ts.URL + "/query", map[string]string{"sql": "SELECT clipID FROM (PROCESS repo PRODUCE clipID, act USING ActionRecognizer) WHERE act='jumping'"}},
		"empty batch":      {ts.URL + "/query/batch", map[string][]string{"queries": {}}},
	} {
		resp, body := postJSON(t, tc.url, tc.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
}

// The acceptance scenario: one of two replicas of a shard is killed
// mid-batch. The batch must still answer 200, the degraded partition must
// name the shard, and every entry's top-k must equal the single-process
// answer.
func TestHandlerBatchReplicaKilledMidBatch(t *testing.T) {
	shardIxs, mono := buildWorld(t, 2)
	// s1's primary serves the first batch entry, then dies.
	s1primary := NewFaultBackend(NewLocalBackend("s1-r0", 1, shardIxs[1]), FaultPlan{DownFrom: 2})
	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{
			NewLocalBackend("s0-r0", 1, shardIxs[0]),
			NewLocalBackend("s0-r1", 1, shardIxs[0])}},
		{Name: "s1", Replicas: []Backend{
			s1primary,
			NewLocalBackend("s1-r1", 1, shardIxs[1])}},
	}
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	queries := []string{rankedSQL, rankedSQLK(2), rankedSQLK(5)}
	resp, body := postJSON(t, ts.URL+"/query/batch", map[string][]string{"queries": queries}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (graceful degradation): %s", resp.StatusCode, body)
	}
	var ans BatchAnswer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if len(ans.Entries) != len(queries) {
		t.Fatalf("entries = %d, want %d", len(ans.Entries), len(queries))
	}
	// Every entry's top-k must equal the single-process answer — failover
	// degrades latency, never results.
	for i, e := range ans.Entries {
		if e.TopKResult == nil {
			t.Fatalf("entry %d missing result: %+v", i, e)
		}
		assertSameSeqs(t, e.Sequences, monolithTopK(t, mono, queries[i]))
	}
	// The batch partition names s1 as degraded (served by its secondary
	// after the kill) and s0 as ok.
	if !ans.Degraded {
		t.Fatal("batch with a killed replica must be flagged degraded")
	}
	if fmt.Sprint(ans.Shards.Degraded) != "[s1]" || fmt.Sprint(ans.Shards.OK) != "[s0]" {
		t.Fatalf("batch shards partition = %+v, want s0 ok / s1 degraded", ans.Shards)
	}
	if s1primary.Calls() < 2 {
		t.Fatalf("kill never exercised: primary saw %d calls", s1primary.Calls())
	}
}

// Whole-shard loss mid-batch: still 200, the failed partition names the
// shard, and entries carry the surviving shards' exact top-k.
func TestHandlerBatchShardLost(t *testing.T) {
	shardIxs, _ := buildWorld(t, 2)
	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{NewLocalBackend("s0-r0", 1, shardIxs[0])}},
		{Name: "s1", Replicas: []Backend{
			NewFaultBackend(NewLocalBackend("s1-r0", 1, shardIxs[1]), FaultPlan{DownFrom: 1}),
			NewFaultBackend(NewLocalBackend("s1-r1", 1, shardIxs[1]), FaultPlan{DownFrom: 1})}},
	}
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query/batch", map[string][]string{"queries": {rankedSQL, rankedSQL}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with degraded partition: %s", resp.StatusCode, body)
	}
	var ans BatchAnswer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if fmt.Sprint(ans.Shards.Failed) != "[s1]" {
		t.Fatalf("failed partition = %v, want [s1]", ans.Shards.Failed)
	}
	want := monolithTopK(t, shardIxs[0], rankedSQL)
	for i, e := range ans.Entries {
		if !e.Degraded || e.Error == "" || !strings.Contains(e.Error, "s1") {
			t.Fatalf("entry %d should carry a degraded error naming s1: %+v", i, e)
		}
		assertSameSeqs(t, e.Sequences, want)
	}
}

// Losing every shard is an outage, not degradation: /query answers 503.
func TestHandlerAllShardsLost(t *testing.T) {
	shardIxs, _ := buildWorld(t, 1)
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{
		NewFaultBackend(NewLocalBackend("s0-r0", 1, shardIxs[0]), FaultPlan{DownFrom: 1}),
	}}}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": rankedSQL}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
}

func TestHandlerHealthAndShards(t *testing.T) {
	shardIxs, _ := buildWorld(t, 2)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/shards", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d: %s", path, resp.StatusCode, data)
		}
		if path == "/metrics" && !strings.Contains(string(data), "svqact_cluster_shards") {
			t.Errorf("/metrics missing svqact_cluster_shards gauge")
		}
	}
}
